//! `zfgan train` — a deterministic supervised training run with durable,
//! crash-consistent checkpointing and bit-identical resume.
//!
//! The run is small by design (the tiny 8×8 GAN): its purpose is to be a
//! *provable* durability harness, not to train a useful model. Everything
//! that influences the trajectory — initial weights, step RNG, optimizer
//! moments, loss records — lives in the [`DurableSnapshot`] published to
//! the store, so a `--resume` after any crash replays the exact same
//! trajectory as an uninterrupted run.
//!
//! The final stdout line is the machine-checkable contract:
//!
//! ```text
//! deterministic:{"seed":…,"iters":…,"batch":…,"records":[…],"final_digest":"0x…"}
//! ```
//!
//! Two runs that print the same `deterministic:` line went through
//! byte-identical weight/optimizer/RNG states. The crash-injection
//! campaign (`zfgan crashtest`) diffs exactly this line between crashed +
//! resumed runs and an uninterrupted baseline.
//!
//! Crash injection (used by the campaign; all deterministic):
//!
//! * `--crash-iter K --crash-phase before-publish` — abort after training
//!   iteration K but before its snapshot publish,
//! * `--crash-phase mid-write --crash-bytes B` — arm the store to write
//!   only the first B envelope bytes, fsync the torn prefix, then abort
//!   before the atomic rename (power loss mid-write),
//! * `--crash-phase after-publish` — abort right after the publish.

use std::path::PathBuf;

use crate::nn::{
    DurableCheckpointer, DurableSnapshot, GanPair, GanTrainer, SupervisedTrainer, SupervisorConfig,
    TrainRecord, TrainerConfig,
};
use crate::store::{fnv64, WriteCrash};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Salt separating the weight-initialisation RNG stream from the
/// step-sampling stream (both derive from the user seed).
const STEP_RNG_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Where in the iteration the injected crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPhase {
    /// After training the iteration, before its snapshot publish.
    BeforePublish,
    /// During the publish: torn temp-file write, abort before rename.
    MidWrite,
    /// After the publish completes.
    AfterPublish,
}

impl CrashPhase {
    /// Parses the `--crash-phase` spelling.
    ///
    /// # Errors
    ///
    /// Names the accepted spellings when `s` is not one of them.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "before-publish" => Ok(Self::BeforePublish),
            "mid-write" => Ok(Self::MidWrite),
            "after-publish" => Ok(Self::AfterPublish),
            other => Err(format!(
                "--crash-phase '{other}' unknown (expected one of: before-publish, mid-write, after-publish)"
            )),
        }
    }
}

/// A deterministic injected crash: at iteration `iteration`, in `phase`.
#[derive(Debug, Clone, Copy)]
pub struct CrashSpec {
    /// The 1-based iteration the crash fires at.
    pub iteration: u64,
    /// Where in the iteration it fires.
    pub phase: CrashPhase,
    /// For [`CrashPhase::MidWrite`]: how many envelope bytes land on disk
    /// before the simulated power loss.
    pub bytes: usize,
}

/// Parsed `zfgan train` invocation.
#[derive(Debug, Clone)]
pub struct TrainArgs {
    /// Run seed: fixes initial weights and the sampling stream.
    pub seed: u64,
    /// Total iterations the run should reach.
    pub iters: u64,
    /// Batch size per step.
    pub batch: usize,
    /// Checkpoint store directory; `None` disables durability.
    pub dir: Option<PathBuf>,
    /// Publish a snapshot every this many iterations.
    pub every: u64,
    /// Retained snapshot generations.
    pub keep: usize,
    /// Resume from the newest valid snapshot in `dir` instead of
    /// starting fresh.
    pub resume: bool,
    /// Optional injected crash.
    pub crash: Option<CrashSpec>,
}

impl Default for TrainArgs {
    fn default() -> Self {
        Self {
            seed: 2024,
            iters: 6,
            batch: 2,
            dir: None,
            every: 1,
            keep: 4,
            resume: false,
            crash: None,
        }
    }
}

/// The fixed trainer configuration of `zfgan train` runs. One critic step
/// per iteration keeps the harness fast; the config still participates in
/// the store's config hash, so snapshots from a different configuration
/// are never resumed.
fn train_config() -> TrainerConfig {
    TrainerConfig {
        n_critic: 1,
        ..TrainerConfig::default()
    }
}

/// Runs the training loop and renders its report. See the module docs for
/// the crash-injection and determinism contract.
///
/// # Errors
///
/// Returns a one-line message on argument, store, or checkpoint errors —
/// including the typed invariant a corrupt snapshot failed.
pub fn run_train(args: &TrainArgs) -> Result<String, String> {
    if args.batch == 0 {
        return Err("--batch must be non-zero".to_string());
    }
    if args.every == 0 {
        return Err("--every must be non-zero".to_string());
    }
    if args.keep == 0 {
        return Err("--keep must be non-zero".to_string());
    }
    if args.resume && args.dir.is_none() {
        return Err("--resume requires --dir".to_string());
    }
    if let Some(crash) = &args.crash {
        if args.dir.is_none() {
            return Err("--crash-iter requires --dir".to_string());
        }
        if crash.iteration == 0 || crash.iteration > args.iters {
            return Err(format!(
                "--crash-iter {} out of range (1..={})",
                crash.iteration, args.iters
            ));
        }
    }

    let config = train_config();
    let config_hash = crate::nn::durable::run_config_hash(&config, args.seed, args.batch);
    let mut out = format!(
        "train: seed {}, iters {}, batch {}\n",
        args.seed, args.iters, args.batch
    );

    // Either resume from the newest valid snapshot or start fresh.
    let mut resumed: Option<(u64, DurableSnapshot, Vec<String>)> = None;
    let mut checkpointer = match &args.dir {
        Some(dir) => {
            let mut cp = DurableCheckpointer::open_dir(
                dir.clone(),
                "train",
                config_hash,
                args.every,
                args.keep,
            )
            .map_err(|e| e.to_string())?;
            if args.resume {
                resumed = cp.load_latest().map_err(|e| e.to_string())?;
            }
            Some(cp)
        }
        None => None,
    };

    let (trainer, mut rng, start_iter, mut records) = match resumed.take() {
        Some((generation, snapshot, skipped)) => {
            for note in &skipped {
                out.push_str(&format!("  fallback: {note}\n"));
            }
            let (trainer, rng, iter, records) = snapshot.resume().map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "  resumed from generation {generation} at iteration {iter}\n"
            ));
            (trainer, rng, iter, records)
        }
        None => {
            if args.resume {
                out.push_str("  no snapshot found; starting fresh\n");
            }
            let mut init_rng = SmallRng::seed_from_u64(args.seed);
            let trainer = GanTrainer::new(GanPair::tiny(&mut init_rng), config);
            let rng = SmallRng::seed_from_u64(args.seed ^ STEP_RNG_SALT);
            (trainer, rng, 0, Vec::new())
        }
    };

    let mut sup =
        SupervisedTrainer::new(trainer, SupervisorConfig::default()).map_err(|e| e.to_string())?;
    if let Some(cp) = checkpointer.take() {
        sup.set_checkpointer(cp);
    }

    let mut published = 0u64;
    for i in start_iter + 1..=args.iters {
        let (dis, gen) = sup
            .train_iteration(args.batch, &mut rng)
            .map_err(|e| format!("iteration {i}: {e}"))?;
        records.push(TrainRecord {
            iteration: i,
            dis_loss: dis.dis_loss,
            gen_loss: gen.gen_loss,
            wasserstein: dis.wasserstein_estimate,
        });
        if let Some(crash) = &args.crash {
            if crash.iteration == i {
                match crash.phase {
                    CrashPhase::BeforePublish => std::process::abort(),
                    CrashPhase::MidWrite => {
                        if let Some(cp) = sup.checkpointer_mut() {
                            cp.store_mut()
                                .set_crash_on_next_publish(Some(WriteCrash::TruncateAt(
                                    crash.bytes,
                                )));
                        }
                    }
                    CrashPhase::AfterPublish => {}
                }
            }
        }
        if let Some(generation) = sup
            .maybe_publish(i, &rng, &records)
            .map_err(|e| format!("publish at iteration {i}: {e}"))?
        {
            published = generation;
        }
        if let Some(crash) = &args.crash {
            if crash.iteration == i && crash.phase == CrashPhase::AfterPublish {
                std::process::abort();
            }
        }
    }

    if published > 0 {
        out.push_str(&format!(
            "  published up to generation {published} (every {}, keep {})\n",
            args.every, args.keep
        ));
    }

    // The determinism contract: a digest of the complete final state plus
    // the full record list. Two runs printing the same line went through
    // bit-identical states.
    let final_snapshot = DurableSnapshot::capture(
        &sup.trainer().snapshot(),
        sup.trainer().config(),
        &rng,
        args.iters,
        &records,
    );
    let digest = fnv64(final_snapshot.to_json().as_bytes());
    let records_json =
        serde_json::to_string(&records).map_err(|e| format!("record serialisation: {e}"))?;
    out.push_str(&format!(
        "deterministic:{{\"seed\":{},\"iters\":{},\"batch\":{},\"records\":{records_json},\"final_digest\":\"{digest:#018x}\"}}\n",
        args.seed, args.iters, args.batch
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("zfgan-train-test-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn det_line(out: &str) -> &str {
        out.lines()
            .find(|l| l.starts_with("deterministic:"))
            .expect("deterministic line")
    }

    #[test]
    fn same_seed_same_deterministic_line() {
        let args = TrainArgs {
            iters: 3,
            ..TrainArgs::default()
        };
        let a = run_train(&args).expect("run a");
        let b = run_train(&args).expect("run b");
        assert_eq!(det_line(&a), det_line(&b));
        let other = run_train(&TrainArgs {
            seed: 7,
            iters: 3,
            ..TrainArgs::default()
        })
        .expect("other seed");
        assert_ne!(det_line(&a), det_line(&other));
    }

    #[test]
    fn resume_matches_uninterrupted_run() {
        let baseline = run_train(&TrainArgs {
            iters: 5,
            ..TrainArgs::default()
        })
        .expect("baseline");

        // Run the first 3 iterations into a store, then resume to 5.
        let dir = temp_dir("resume");
        let part = TrainArgs {
            iters: 3,
            dir: Some(dir.clone()),
            ..TrainArgs::default()
        };
        run_train(&part).expect("partial");
        let resumed = run_train(&TrainArgs {
            iters: 5,
            dir: Some(dir),
            resume: true,
            ..TrainArgs::default()
        })
        .expect("resumed");
        assert!(resumed.contains("resumed from generation"), "{resumed}");
        assert_eq!(det_line(&baseline), det_line(&resumed));
    }

    #[test]
    fn resume_without_snapshot_starts_fresh() {
        let dir = temp_dir("fresh");
        let out = run_train(&TrainArgs {
            iters: 2,
            dir: Some(dir),
            resume: true,
            ..TrainArgs::default()
        })
        .expect("run");
        assert!(out.contains("no snapshot found"), "{out}");
        let baseline = run_train(&TrainArgs {
            iters: 2,
            ..TrainArgs::default()
        })
        .expect("baseline");
        assert_eq!(det_line(&baseline), det_line(&out));
    }

    #[test]
    fn argument_validation() {
        let bad = TrainArgs {
            resume: true,
            ..TrainArgs::default()
        };
        assert!(run_train(&bad).unwrap_err().contains("--resume requires"));
        let bad = TrainArgs {
            batch: 0,
            ..TrainArgs::default()
        };
        assert!(run_train(&bad).unwrap_err().contains("--batch"));
        let bad = TrainArgs {
            crash: Some(CrashSpec {
                iteration: 99,
                phase: CrashPhase::MidWrite,
                bytes: 10,
            }),
            dir: Some(temp_dir("badcrash")),
            ..TrainArgs::default()
        };
        assert!(run_train(&bad).unwrap_err().contains("out of range"));
        assert!(CrashPhase::parse("sideways").is_err());
        assert_eq!(
            CrashPhase::parse("mid-write").expect("parse"),
            CrashPhase::MidWrite
        );
    }
}
