//! `zfgan dse` — the design-space exploration service CLI.
//!
//! One invocation serves one named sweep (fig15–fig19) as a query batch
//! through [`zfgan_dse`]: dedup, content-addressed cache lookup, windowed
//! computation of the misses, publication, and the canonical JSONL stream
//! (per-cell results plus the incremental Pareto frontier).
//!
//! With `--shards N` the parent spawns `N` children of the current
//! executable — the same work-unit protocol `zfgan crashtest` uses — each
//! computing and publishing one hash-routed partition of the key space
//! into the shared cache; the parent then serves the whole batch (all
//! hits by construction) and streams it. A child is selected with
//! `--shard-index I --shard-count N`.
//!
//! The stream carries no hit/miss or timing information, so cold, warm
//! and corrupted-then-recomputed runs are byte-identical. Cache traffic
//! is visible through the `dse_*_total` counters instead: pass
//! `--telemetry` for a summary, or scrape them from `zfgan
//! serve-metrics`' shared `/metrics` endpoint.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use zfgan_dse::sweeps::{run_sweep, run_sweep_shard};
use zfgan_dse::{DseConfig, VerifyPolicy};

/// Parsed arguments of one `zfgan dse` invocation.
#[derive(Debug)]
pub struct DseArgs {
    /// The sweep to serve (one of [`zfgan_dse::sweeps::SWEEP_NAMES`]).
    pub sweep: String,
    /// Cache directory; overrides `ZFGAN_DSE_CACHE` when set.
    pub cache: Option<PathBuf>,
    /// Write the canonical stream here instead of stdout.
    pub out: Option<PathBuf>,
    /// Hit-verification policy.
    pub verify: VerifyPolicy,
    /// Bounded in-flight window override.
    pub window: Option<usize>,
    /// Parent mode: spawn this many child shards before serving.
    pub shards: Option<usize>,
    /// Child mode: this process computes shard `shard_index`…
    pub shard_index: Option<usize>,
    /// …of `shard_count` hash-routed partitions.
    pub shard_count: Option<usize>,
}

/// Executes one `zfgan dse` invocation and returns the text to print.
///
/// # Errors
///
/// Returns a descriptive error for an unknown sweep, inconsistent shard
/// flags, sharding without a cache, an unwritable `--out` path, or a
/// failed child shard.
pub fn run_dse(a: &DseArgs) -> Result<String, String> {
    let mut cfg = DseConfig::from_env("dse");
    if let Some(dir) = &a.cache {
        cfg.cache_dir = Some(dir.clone());
    }
    if let Some(w) = a.window {
        cfg.window = w;
    }
    cfg.verify = a.verify;

    // Child mode: compute and publish one partition, nothing else.
    match (a.shard_index, a.shard_count) {
        (Some(index), Some(count)) => {
            if count == 0 || index >= count {
                return Err(format!(
                    "--shard-index {index} out of range for --shard-count {count}"
                ));
            }
            if cfg.cache_dir.is_none() {
                return Err(
                    "a shard needs a cache to publish into (--cache PATH or ZFGAN_DSE_CACHE)"
                        .to_string(),
                );
            }
            let n = run_sweep_shard(&a.sweep, &cfg, index, count)?;
            return Ok(format!(
                "{}: shard {index}/{count} computed and published {n} cells\n",
                a.sweep
            ));
        }
        (None, None) => {}
        _ => return Err("--shard-index and --shard-count go together".to_string()),
    }

    // Parent mode: fan the key space out across child processes first;
    // the shared cache is the rendezvous, so the serving pass below then
    // finds every cell already published.
    if let Some(shards) = a.shards.filter(|&n| n > 1) {
        let dir = cfg.cache_dir.clone().ok_or_else(|| {
            "--shards needs a cache to rendezvous in (--cache PATH or ZFGAN_DSE_CACHE)".to_string()
        })?;
        spawn_shards(&a.sweep, &dir, shards, a.window)?;
    }

    let run = run_sweep(&a.sweep, &cfg)?;
    let mut out = String::new();
    match &a.out {
        Some(path) => {
            std::fs::write(path, &run.stream)
                .map_err(|e| format!("--out {}: {e}", path.display()))?;
            out.push_str(&format!(
                "stream written to {} ({} bytes)\n",
                path.display(),
                run.stream.len()
            ));
        }
        None => out.push_str(&run.stream),
    }
    out.push_str(&format!(
        "{}: {} unique cells ({} duplicates folded), pareto frontier {}\n",
        a.sweep, run.unique, run.duplicates, run.frontier_len
    ));
    Ok(out)
}

/// Spawns the child shards (re-invoking the current executable, like
/// `zfgan crashtest`'s runner) and waits for all of them.
fn spawn_shards(
    sweep: &str,
    dir: &std::path::Path,
    shards: usize,
    window: Option<usize>,
) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut children: Vec<(usize, Child)> = Vec::new();
    for index in 0..shards {
        let mut cmd = Command::new(&exe);
        cmd.arg("dse")
            .arg(sweep)
            .arg("--cache")
            .arg(dir)
            .arg("--shard-index")
            .arg(index.to_string())
            .arg("--shard-count")
            .arg(shards.to_string())
            // Shard summaries would interleave with the parent's stream.
            .stdout(Stdio::null());
        if let Some(w) = window {
            cmd.arg("--window").arg(w.to_string());
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawning shard {index}: {e}"))?;
        children.push((index, child));
    }
    for (index, mut child) in children {
        let status = child
            .wait()
            .map_err(|e| format!("waiting for shard {index}: {e}"))?;
        if !status.success() {
            return Err(format!("dse shard {index}/{shards} failed ({status})"));
        }
    }
    Ok(())
}
