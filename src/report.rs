//! `zfgan report` — per-dataflow cycle-attribution tables from the
//! cycle-accurate executors.
//!
//! One report run drives all nine traced executors (or one architecture's
//! subset) on the shared scaled-down DCGAN layer, folds each run's event
//! trace into an **exact partition** of its engine cycle count via
//! [`zfgan_dataflow::exec::attribute_cycles`] — MAC cycles, DRAM-stall
//! cycles, buffer-only cycles, idle, untraced — and pairs that with the
//! architecture's analytical schedule (PE utilization, operand words,
//! DRAM bytes, roofline position). The components are a partition, so for
//! every executor they sum to the engine's total cycles; the run fails
//! loudly if they ever do not.
//!
//! All quantities are integers derived from seeded integer/cycle state,
//! so the rendered table and the `--out` JSON are byte-identical across
//! same-seed runs — the CI gate diffs two of them. The JSON embeds the
//! canonical [`export::deterministic_section`] of the run's telemetry
//! registry, which `zfgan trace --check` validates with the same code
//! path as trace files.

use std::sync::Arc;

use crate::dataflow::exec::{self, CycleAttribution};
use crate::dataflow::{Dataflow, Nlr, Ost, Wst, Zfost, Zfwst};
use crate::sim::trace::TraceBuffer;
use crate::sim::{ConvKind, ConvShape};
use crate::telemetry::{export, Registry};
use crate::tensor::{ConvGeom, Fmaps, Kernels};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Default trace capacity: large enough that none of the nine executors
/// evicts history on the report phase, so `untraced` stays zero.
pub const DEFAULT_CAPACITY: usize = 1 << 20;
/// Default operand seed, shared with `zfgan trace`.
pub const DEFAULT_SEED: u64 = 2024;

/// One executor's row: the engine-cycle partition plus the architecture's
/// analytical schedule for the same phase.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Executor path as recorded in telemetry, e.g. `zfost/s_conv`.
    pub executor: String,
    /// Engine total cycles (the attribution components sum to this).
    pub cycles: u64,
    /// Exact cycle partition from the event trace.
    pub attr: CycleAttribution,
    /// Schedule-model PE utilization in parts-per-million.
    pub util_ppm: u64,
    /// Schedule-model effectual MACs for the phase.
    pub effectual_macs: u64,
    /// PEs the configuration instantiates (roofline peak MACs/cycle).
    pub n_pes: u64,
    /// On-chip operand words moved (schedule-model buffer accesses).
    pub operand_words: u64,
    /// Off-chip traffic in bytes (schedule model).
    pub dram_bytes: u64,
    /// Achieved MACs per 1000 schedule cycles (roofline position; peak is
    /// `n_pes * 1000`).
    pub macs_per_kcycle: u64,
    /// Roofline verdict: `compute` when utilization ≥ 50 %, else `feed`.
    pub bound: &'static str,
}

/// The full report: rows in presentation order plus the canonical
/// deterministic telemetry section captured while the executors ran.
#[derive(Debug, Clone)]
pub struct Report {
    /// Operand seed the run used.
    pub seed: u64,
    /// Trace capacity per executor.
    pub capacity: usize,
    /// One row per executor, in the paper's architecture order.
    pub rows: Vec<ReportRow>,
    /// `export::deterministic_section` of the run's registry.
    pub deterministic: String,
    /// Collapsed-stack rendering of the run's spans (`--flame-out`).
    pub collapsed: String,
}

/// The report phase every run uses: the scaled-down DCGAN layer
/// (6×6 ↔ 12×12, 4×4 kernel, stride 2) shared with `zfgan trace` and the
/// fault campaigns.
fn report_phase(kind: ConvKind) -> Result<ConvShape, String> {
    let geom = ConvGeom::down(12, 12, 4, 4, 2, 6, 6).map_err(|e| e.to_string())?;
    Ok(ConvShape::new(kind, geom, 5, 3, 12, 12))
}

/// Which executors `--arch` selects. `all` (or `None`) runs all nine.
fn selected_executors(arch: Option<&str>) -> Result<Vec<&'static str>, String> {
    const ALL: [&str; 9] = [
        "nlr/s_conv",
        "wst/s_conv",
        "ost/t_conv",
        "zfost/s_conv",
        "zfost/t_conv",
        "zfwst/s_conv",
        "zfwst/t_conv",
        "zfwst/wgrad_s",
        "zfwst/wgrad_t",
    ];
    match arch.unwrap_or("all") {
        "all" => Ok(ALL.to_vec()),
        a @ ("nlr" | "wst" | "ost" | "zfost" | "zfwst") => Ok(ALL
            .iter()
            .copied()
            .filter(|e| e.starts_with(a) && e.as_bytes()[a.len()] == b'/')
            .collect()),
        other => Err(format!(
            "--arch '{other}' unknown (expected one of: nlr, wst, ost, zfost, zfwst, all)"
        )),
    }
}

/// Runs one executor with tracing and returns `(engine cycles, trace,
/// schedule stats for the same phase)`.
fn run_executor(
    executor: &str,
    seed: u64,
    capacity: usize,
) -> Result<(u64, TraceBuffer, zfgan_sim::PhaseStats), String> {
    // Same seeded operands as `zfgan trace`: a 3-channel 12×12 input, a
    // 5-channel 6×6 small map, 5×3 4×4 kernels.
    let mut rng = SmallRng::seed_from_u64(seed);
    let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let small_x: Fmaps<f64> = Fmaps::random(5, 6, 6, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let err = |e: crate::tensor::ShapeError| e.to_string();

    let zfost = Zfost::new(4, 4, 2);
    let zfwst = Zfwst::new(2, 2, 2);
    let ost = Ost::new(4, 4, 2);
    let wst = Wst::new(4, 4, 2);
    let nlr = Nlr::new(3, 5);

    match executor {
        "nlr/s_conv" => {
            let p = report_phase(ConvKind::S)?;
            let ((out, _), trace) =
                exec::nlr_s_conv_traced(&nlr, &p, &x, &k, capacity).map_err(err)?;
            Ok((out.cycles, trace, nlr.schedule(&p)))
        }
        "wst/s_conv" => {
            let p = report_phase(ConvKind::S)?;
            let ((out, _), trace) =
                exec::wst_s_conv_traced(&wst, &p, &x, &k, capacity).map_err(err)?;
            Ok((out.cycles, trace, wst.schedule(&p)))
        }
        "ost/t_conv" => {
            let p = report_phase(ConvKind::T)?;
            let ((out, _), trace) =
                exec::ost_t_conv_traced(&ost, &p, &small_x, &k, capacity).map_err(err)?;
            Ok((out.cycles, trace, ost.schedule(&p)))
        }
        "zfost/s_conv" => {
            let p = report_phase(ConvKind::S)?;
            let (out, trace) =
                exec::zfost_s_conv_traced(&zfost, &p, &x, &k, capacity).map_err(err)?;
            Ok((out.cycles, trace, zfost.schedule(&p)))
        }
        "zfost/t_conv" => {
            let p = report_phase(ConvKind::T)?;
            let (out, trace) =
                exec::zfost_t_conv_traced(&zfost, &p, &small_x, &k, capacity).map_err(err)?;
            Ok((out.cycles, trace, zfost.schedule(&p)))
        }
        "zfwst/s_conv" => {
            let p = report_phase(ConvKind::S)?;
            let (out, trace) =
                exec::zfwst_s_conv_traced(&zfwst, &p, &x, &k, capacity).map_err(err)?;
            Ok((out.cycles, trace, zfwst.schedule(&p)))
        }
        "zfwst/t_conv" => {
            let p = report_phase(ConvKind::T)?;
            let (out, trace) =
                exec::zfwst_t_conv_traced(&zfwst, &p, &small_x, &k, capacity).map_err(err)?;
            Ok((out.cycles, trace, zfwst.schedule(&p)))
        }
        "zfwst/wgrad_s" => {
            let p = report_phase(ConvKind::WGradS)?;
            let (out, trace) =
                exec::zfwst_wgrad_s_traced(&zfwst, &p, &x, &small_x, capacity).map_err(err)?;
            Ok((out.cycles, trace, zfwst.schedule(&p)))
        }
        "zfwst/wgrad_t" => {
            let p = report_phase(ConvKind::WGradT)?;
            let (out, trace) =
                exec::zfwst_wgrad_t_traced(&zfwst, &p, &small_x, &x, capacity).map_err(err)?;
            Ok((out.cycles, trace, zfwst.schedule(&p)))
        }
        other => Err(format!("internal: unknown executor '{other}'")),
    }
}

/// Builds the full report: run the selected executors under a scoped
/// telemetry registry, attribute their cycles, and capture the
/// deterministic section.
///
/// # Errors
///
/// Returns an error for an unknown `--arch`, a zero capacity, a failing
/// executor, or — the invariant this command exists to watch — an
/// attribution whose components do not sum to the engine's total cycles.
pub fn build_report(arch: Option<&str>, seed: u64, capacity: usize) -> Result<Report, String> {
    if capacity == 0 {
        return Err("--capacity must be non-zero".to_string());
    }
    let executors = selected_executors(arch)?;
    let reg = Arc::new(Registry::new());
    let mut rows = Vec::with_capacity(executors.len());
    {
        let _guard = crate::telemetry::scope(Arc::clone(&reg));
        for executor in executors {
            let (cycles, trace, stats) = run_executor(executor, seed, capacity)?;
            let attr = exec::attribute_cycles(&trace, cycles);
            if attr.total() != cycles {
                return Err(format!(
                    "{executor}: cycle attribution {} does not sum to engine total {cycles}",
                    attr.total()
                ));
            }
            for (component, c) in attr.components() {
                crate::telemetry::count(
                    "report_cycles_total",
                    &[("component", component), ("executor", executor)],
                    c,
                );
            }
            let util_ppm = (stats.utilization() * 1e6) as u64;
            rows.push(ReportRow {
                executor: executor.to_string(),
                cycles,
                attr,
                util_ppm,
                effectual_macs: stats.effectual_macs,
                n_pes: stats.n_pes,
                operand_words: stats.access.total(),
                dram_bytes: stats.dram.total_bytes(),
                macs_per_kcycle: (stats.effectual_macs * 1000)
                    .checked_div(stats.cycles)
                    .unwrap_or(0),
                bound: if stats.utilization() >= 0.5 {
                    "compute"
                } else {
                    "feed"
                },
            });
        }
    }
    Ok(Report {
        seed,
        capacity,
        rows,
        deterministic: export::deterministic_section(&reg),
        collapsed: export::collapsed_stacks(&reg),
    })
}

impl Report {
    /// Renders the human-readable attribution table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "cycle attribution report: seed {}, trace capacity {}/executor\n\
             (engine cycles partition exactly: mac + dram + buffer + idle + untraced = total)\n\n",
            self.seed, self.capacity
        );
        out.push_str(&format!(
            "{:<14} {:>7} {:>6} {:>5} {:>7} {:>6} {:>5}  {:>8} {:>9} {:>6}  bound\n",
            "executor",
            "cycles",
            "mac",
            "dram",
            "buffer",
            "idle",
            "untr",
            "util_ppm",
            "macs/kcyc",
            "words",
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<14} {:>7} {:>6} {:>5} {:>7} {:>6} {:>5}  {:>8} {:>9} {:>6}  {}\n",
                r.executor,
                r.cycles,
                r.attr.mac_cycles,
                r.attr.dram_cycles,
                r.attr.buffer_cycles,
                r.attr.idle_cycles,
                r.attr.untraced_cycles,
                r.util_ppm,
                r.macs_per_kcycle,
                r.operand_words,
                r.bound,
            ));
        }
        out.push_str(&format!(
            "\n{} executors; roofline peak is n_pes×1000 macs/kcyc; \
             'feed' marks utilization below 50%\n",
            self.rows.len()
        ));
        out
    }

    /// Renders the byte-stable JSON document: the attribution rows (all
    /// integer fields, fixed key order) plus the canonical deterministic
    /// telemetry section. Two same-seed runs produce identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"zfgan-report-v1\",\"seed\":{},\"capacity\":{},\"attribution\":[",
            self.seed, self.capacity
        );
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"executor\":\"{}\",\"cycles\":{},\"mac_cycles\":{},\"dram_cycles\":{},\
                 \"buffer_cycles\":{},\"idle_cycles\":{},\"untraced_cycles\":{},\
                 \"util_ppm\":{},\"effectual_macs\":{},\"n_pes\":{},\"operand_words\":{},\
                 \"dram_bytes\":{},\"macs_per_kcycle\":{},\"bound\":\"{}\"}}",
                r.executor,
                r.cycles,
                r.attr.mac_cycles,
                r.attr.dram_cycles,
                r.attr.buffer_cycles,
                r.attr.idle_cycles,
                r.attr.untraced_cycles,
                r.util_ppm,
                r.effectual_macs,
                r.n_pes,
                r.operand_words,
                r.dram_bytes,
                r.macs_per_kcycle,
                r.bound,
            ));
        }
        out.push_str("],\"deterministic\":");
        out.push_str(&self.deterministic);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_executors_partition_exactly() {
        let report = build_report(None, DEFAULT_SEED, DEFAULT_CAPACITY).unwrap();
        assert_eq!(report.rows.len(), 9);
        for r in &report.rows {
            assert_eq!(r.attr.total(), r.cycles, "{}", r.executor);
            assert_eq!(
                r.attr.untraced_cycles, 0,
                "{} evicted at default capacity",
                r.executor
            );
            // WST's trace models operand movement only (no Mac events), so
            // assert traced activity rather than MAC cycles specifically.
            assert!(
                r.attr.mac_cycles + r.attr.buffer_cycles > 0,
                "{} ran no traced cycles",
                r.executor
            );
        }
    }

    #[test]
    fn same_seed_reports_are_byte_identical() {
        let a = build_report(None, 7, DEFAULT_CAPACITY).unwrap();
        let b = build_report(None, 7, DEFAULT_CAPACITY).unwrap();
        assert_eq!(a.render(), b.render());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn arch_filter_selects_the_family() {
        let report = build_report(Some("zfwst"), DEFAULT_SEED, DEFAULT_CAPACITY).unwrap();
        let names: Vec<&str> = report.rows.iter().map(|r| r.executor.as_str()).collect();
        assert_eq!(
            names,
            [
                "zfwst/s_conv",
                "zfwst/t_conv",
                "zfwst/wgrad_s",
                "zfwst/wgrad_t"
            ]
        );
        let one = build_report(Some("nlr"), DEFAULT_SEED, DEFAULT_CAPACITY).unwrap();
        assert_eq!(one.rows.len(), 1);
    }

    #[test]
    fn unknown_arch_and_zero_capacity_error() {
        let err = build_report(Some("systolic"), DEFAULT_SEED, DEFAULT_CAPACITY).unwrap_err();
        assert!(err.contains("--arch 'systolic' unknown"), "{err}");
        let err = build_report(None, DEFAULT_SEED, 0).unwrap_err();
        assert_eq!(err, "--capacity must be non-zero");
    }

    #[test]
    fn json_carries_the_deterministic_section_and_parses() {
        let report = build_report(Some("zfost"), DEFAULT_SEED, DEFAULT_CAPACITY).unwrap();
        let v: serde_json::Value = serde_json::from_str(&report.to_json()).unwrap();
        let obj = v.as_object().unwrap();
        assert!(obj.get("attribution").unwrap().as_array().is_some());
        assert!(obj.get("deterministic").unwrap().as_object().is_some());
        // The report counters land in the deterministic section.
        assert!(
            report.deterministic.contains("report_cycles_total"),
            "{}",
            report.deterministic
        );
        // The executor spans survive into the collapsed-stack rendering.
        assert!(
            report.collapsed.contains("exec;zfost"),
            "{}",
            report.collapsed
        );
    }

    #[test]
    fn tiny_capacity_reports_untraced_cycles_but_still_sums() {
        let report = build_report(None, DEFAULT_SEED, 32).unwrap();
        assert!(report.rows.iter().any(|r| r.attr.untraced_cycles > 0));
        for r in &report.rows {
            assert_eq!(r.attr.total(), r.cycles, "{}", r.executor);
        }
    }
}
