//! `zfgan perf` — the bench-history trajectory: render what
//! `results/bench_history.jsonl` has accumulated and gate the latest run
//! against a noise-aware rolling baseline.
//!
//! The ledger is append-only JSONL written by the `gemm` / `trainstep` /
//! `exec` harnesses via `zfgan_bench::emit_bench`: one object per measured
//! row, stamped with a monotonically increasing `run_id`, the commit sha
//! and a host fingerprint. The loader is schema-tolerant — rows written
//! before the metadata existed (the old `results/BENCH_*.json` shape) load
//! with defaults, and when no ledger exists yet the snapshot files
//! themselves are read as a single-run trajectory.
//!
//! The `--check` gate is **min-based and stddev-tolerant**: for each
//! series the latest run's `min_ns` is compared against the minimum
//! `min_ns` over the previous `--window` runs, and only a slowdown beyond
//! `max(tolerance floor, 4 × cv)` (cv = the latest row's relative
//! standard deviation) fails. The fastest-sample statistic is what
//! survives a noisy shared host; the floor absorbs the residual jitter
//! between separate runs, while real regressions land far above it. The
//! floor defaults to 35 % and is tunable per call site (`--tolerance`):
//! CI's short smoke windows need a wide one, long local windows can
//! tighten it.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde_json::Value;

/// Default relative-slowdown floor (percent) below which a series is
/// never flagged, see `--tolerance`.
pub const DEFAULT_TOLERANCE_PCT: usize = 35;
/// Stddev multiplier widening the tolerance for noisy series.
const TOLERANCE_CV_FACTOR: f64 = 4.0;
/// Default rolling-baseline window (prior runs considered), see `--window`.
pub const DEFAULT_WINDOW: usize = 8;

/// One ledger row (shared schema with `results/BENCH_*.json` snapshots).
#[derive(Debug, Clone)]
struct LedgerRow {
    bench: String,
    id: String,
    run_id: u64,
    git_sha: String,
    mean_ns: f64,
    min_ns: f64,
    stddev_ns: f64,
}

fn field_str(obj: &Value, key: &str, default: &str) -> String {
    obj.as_object()
        .and_then(|o| o.get(key))
        .and_then(Value::as_str)
        .unwrap_or(default)
        .to_string()
}

fn field_f64(obj: &Value, key: &str) -> f64 {
    obj.as_object()
        .and_then(|o| o.get(key))
        .and_then(Value::as_f64)
        .unwrap_or(0.0)
}

fn field_u64(obj: &Value, key: &str) -> u64 {
    obj.as_object()
        .and_then(|o| o.get(key))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

/// Parse one row object; old-schema rows (no bench/run_id/git_sha) get
/// defaults so pre-ledger files stay loadable.
fn parse_row(v: &Value, default_bench: &str, default_run: u64) -> Option<LedgerRow> {
    let id = field_str(v, "id", "");
    if id.is_empty() {
        return None;
    }
    let bench = field_str(v, "bench", default_bench);
    let run_id = match field_u64(v, "run_id") {
        0 => default_run,
        n => n,
    };
    Some(LedgerRow {
        bench,
        id,
        run_id,
        git_sha: field_str(v, "git_sha", "unknown"),
        mean_ns: field_f64(v, "mean_ns"),
        min_ns: field_f64(v, "min_ns"),
        stddev_ns: field_f64(v, "stddev_ns"),
    })
}

/// Mirror of `zfgan_bench`'s results-dir resolution (`ZFGAN_RESULTS_DIR`
/// else `results/`), so `zfgan perf` reads where the harnesses wrote.
fn results_dir() -> PathBuf {
    std::env::var_os("ZFGAN_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Load the ledger, or fall back to the `BENCH_*.json` snapshots as a
/// single-run trajectory. Returns the rows and a description of the
/// source for the report header.
fn load_rows(file: Option<&Path>) -> Result<(Vec<LedgerRow>, String), String> {
    let ledger = file
        .map(Path::to_path_buf)
        .unwrap_or_else(|| results_dir().join("bench_history.jsonl"));
    if let Some(path) = file {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("--file {}: {e}", path.display()))?;
        return Ok((parse_ledger(&text), path.display().to_string()));
    }
    if let Ok(text) = std::fs::read_to_string(&ledger) {
        return Ok((parse_ledger(&text), ledger.display().to_string()));
    }
    // No ledger yet: read the snapshot sidecars (old or new schema).
    let dir = results_dir();
    let mut rows = Vec::new();
    let mut sources = 0usize;
    let entries = std::fs::read_dir(&dir).map_err(|e| {
        format!(
            "no ledger at {} and {}: {e}",
            ledger.display(),
            dir.display()
        )
    })?;
    let mut names: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    names.sort();
    for path in names {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(v) = serde_json::from_str::<Value>(&text) else {
            continue;
        };
        let bench = path
            .file_name()
            .and_then(|n| n.to_str())
            .map(|n| n.trim_start_matches("BENCH_").trim_end_matches(".json"))
            .unwrap_or("bench")
            .to_string();
        if let Some(arr) = v.as_array() {
            sources += 1;
            rows.extend(arr.iter().filter_map(|r| parse_row(r, &bench, 1)));
        }
    }
    if sources == 0 {
        return Err(format!(
            "no ledger at {} and no BENCH_*.json snapshots in {}",
            ledger.display(),
            dir.display()
        ));
    }
    Ok((rows, format!("{} (snapshot fallback)", dir.display())))
}

fn parse_ledger(text: &str) -> Vec<LedgerRow> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|line| serde_json::from_str::<Value>(line).ok())
        .filter_map(|v| parse_row(&v, "bench", 1))
        .collect()
}

/// One series' verdict against its rolling baseline.
#[derive(Debug)]
struct SeriesReport {
    key: String,
    runs: usize,
    best_min_ns: f64,
    latest: LedgerRow,
    /// `None` when there is no prior run to compare against.
    baseline_min_ns: Option<f64>,
    tolerance: f64,
    regressed: bool,
}

fn analyse(rows: &[LedgerRow], window: usize, floor: f64) -> Vec<SeriesReport> {
    let mut series: BTreeMap<String, Vec<&LedgerRow>> = BTreeMap::new();
    for row in rows {
        series
            .entry(format!("{}:{}", row.bench, row.id))
            .or_default()
            .push(row);
    }
    let mut out = Vec::new();
    for (key, mut members) in series {
        members.sort_by_key(|r| r.run_id);
        let latest = (*members.last().expect("non-empty series")).clone();
        let prior: Vec<&&LedgerRow> = members
            .iter()
            .filter(|r| r.run_id < latest.run_id)
            .collect();
        let prior = &prior[prior.len().saturating_sub(window)..];
        let baseline_min_ns = prior
            .iter()
            .map(|r| r.min_ns)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            });
        let cv = if latest.mean_ns > 0.0 {
            latest.stddev_ns / latest.mean_ns
        } else {
            0.0
        };
        let tolerance = floor.max(TOLERANCE_CV_FACTOR * cv);
        let regressed = baseline_min_ns
            .is_some_and(|base| base > 0.0 && latest.min_ns > base * (1.0 + tolerance));
        out.push(SeriesReport {
            key,
            runs: members.len(),
            best_min_ns: members
                .iter()
                .map(|r| r.min_ns)
                .fold(f64::INFINITY, f64::min),
            latest,
            baseline_min_ns,
            tolerance,
            regressed,
        });
    }
    out
}

fn fmt_ns(v: f64) -> String {
    format!("{v:.0}")
}

/// `zfgan perf [--check] [--file PATH] [--window N] [--tolerance PCT]`:
/// render the bench trajectory per series; with `check`, fail on any
/// series whose latest `min_ns` regressed beyond the rolling baseline's
/// tolerance (`max(PCT %, 4 × cv)`).
///
/// # Errors
///
/// Returns an error when neither a ledger nor snapshot files exist, or —
/// under `check` — when at least one series regressed.
pub fn run_perf(
    file: Option<&Path>,
    check: bool,
    window: usize,
    tolerance_pct: usize,
) -> Result<String, String> {
    if window == 0 {
        return Err("--window must be non-zero".to_string());
    }
    if tolerance_pct == 0 {
        return Err("--tolerance must be non-zero".to_string());
    }
    let (rows, source) = load_rows(file)?;
    if rows.is_empty() {
        return Err(format!("{source}: no parseable bench rows"));
    }
    let reports = analyse(&rows, window, tolerance_pct as f64 / 100.0);
    let runs: std::collections::BTreeSet<u64> = rows.iter().map(|r| r.run_id).collect();
    let latest_sha = reports
        .iter()
        .map(|r| r.latest.git_sha.as_str())
        .next_back()
        .unwrap_or("unknown");

    let mut out = format!(
        "perf ledger: {source}\n{} rows, {} series, {} runs; latest sha {}\n\n",
        rows.len(),
        reports.len(),
        runs.len(),
        latest_sha
    );
    let key_w = reports
        .iter()
        .map(|r| r.key.len())
        .max()
        .unwrap_or(6)
        .max("series".len());
    out.push_str(&format!(
        "{:<key_w$}  runs  best(ns)    latest(ns)  vs-baseline\n",
        "series"
    ));
    let mut regressions = Vec::new();
    for r in &reports {
        let verdict = match r.baseline_min_ns {
            None => "n/a (first run)".to_string(),
            Some(base) if base <= 0.0 => "n/a (zero baseline)".to_string(),
            Some(base) => {
                let delta = (r.latest.min_ns - base) / base * 100.0;
                let mark = if r.regressed { "  REGRESSED" } else { "" };
                format!("{delta:+.1}% (tol {:.0}%){mark}", r.tolerance * 100.0)
            }
        };
        out.push_str(&format!(
            "{:<key_w$}  {:>4}  {:>10}  {:>10}  {verdict}\n",
            r.key,
            r.runs,
            fmt_ns(r.best_min_ns),
            fmt_ns(r.latest.min_ns),
        ));
        if r.regressed {
            regressions.push(format!(
                "{}: latest min {} ns vs baseline {} ns (tolerance {:.0}%)",
                r.key,
                fmt_ns(r.latest.min_ns),
                fmt_ns(r.baseline_min_ns.unwrap_or(0.0)),
                r.tolerance * 100.0
            ));
        }
    }
    if check {
        if regressions.is_empty() {
            out.push_str("\nperf check: OK (no series regressed beyond tolerance)\n");
        } else {
            return Err(format!(
                "{out}\nPERF REGRESSIONS DETECTED:\n{}",
                regressions
                    .iter()
                    .map(|r| format!("  - {r}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(bench: &str, id: &str, run_id: u64, min_ns: f64) -> String {
        format!(
            "{{\"bench\":\"{bench}\",\"id\":\"{id}\",\"run_id\":{run_id},\
             \"mean_ns\":{m},\"min_ns\":{min_ns},\"stddev_ns\":1.0,\"iters\":10,\
             \"threads\":1,\"simd\":\"avx2\",\"speedup\":1.0,\
             \"git_sha\":\"abc\",\"host\":\"h/x-y\"}}",
            m = min_ns * 1.1
        )
    }

    fn write_ledger(lines: &[String]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "zfgan-perf-test-{}-{:p}",
            std::process::id(),
            lines.as_ptr()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench_history.jsonl");
        std::fs::write(&path, lines.join("\n")).unwrap();
        path
    }

    #[test]
    fn identical_runs_pass_the_check() {
        let path = write_ledger(&[
            row("gemm", "matmul/naive", 1, 1000.0),
            row("gemm", "matmul/naive", 2, 1000.0),
        ]);
        let out = run_perf(Some(&path), true, DEFAULT_WINDOW, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(out.contains("perf check: OK"), "{out}");
        assert!(out.contains("gemm:matmul/naive"), "{out}");
    }

    #[test]
    fn a_large_slowdown_fails_the_check_but_not_the_render() {
        let path = write_ledger(&[
            row("exec", "exec/zfost_s/engine", 1, 1000.0),
            row("exec", "exec/zfost_s/engine", 2, 2500.0),
        ]);
        let err = run_perf(Some(&path), true, DEFAULT_WINDOW, DEFAULT_TOLERANCE_PCT).unwrap_err();
        assert!(err.contains("PERF REGRESSIONS DETECTED"), "{err}");
        assert!(err.contains("exec:exec/zfost_s/engine"), "{err}");
        // Rendering without --check reports but does not fail.
        let out = run_perf(Some(&path), false, DEFAULT_WINDOW, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(out.contains("REGRESSED"), "{out}");
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let path = write_ledger(&[
            row("gemm", "matmul/blocked", 1, 1000.0),
            row("gemm", "matmul/blocked", 2, 1200.0),
        ]);
        let out = run_perf(Some(&path), true, DEFAULT_WINDOW, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(out.contains("perf check: OK"), "{out}");
    }

    #[test]
    fn a_wide_tolerance_admits_a_slowdown_the_default_rejects() {
        // Short smoke windows (CI) are noisy; `--tolerance 200` lets a
        // 2.5x slowdown pass that the 35 % default flags.
        let path = write_ledger(&[
            row("exec", "exec/nlr_s/engine", 1, 1000.0),
            row("exec", "exec/nlr_s/engine", 2, 2500.0),
        ]);
        let err = run_perf(Some(&path), true, DEFAULT_WINDOW, DEFAULT_TOLERANCE_PCT).unwrap_err();
        assert!(err.contains("PERF REGRESSIONS DETECTED"), "{err}");
        let out = run_perf(Some(&path), true, DEFAULT_WINDOW, 200).unwrap();
        assert!(out.contains("perf check: OK"), "{out}");
        // A zero tolerance is a flag-usage error, not a silent pass.
        let err = run_perf(Some(&path), true, DEFAULT_WINDOW, 0).unwrap_err();
        assert!(err.contains("--tolerance must be non-zero"), "{err}");
    }

    #[test]
    fn first_run_has_no_baseline_and_passes() {
        let path = write_ledger(&[row("gemm", "matmul/naive", 1, 1000.0)]);
        let out = run_perf(Some(&path), true, DEFAULT_WINDOW, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(out.contains("n/a (first run)"), "{out}");
        assert!(out.contains("perf check: OK"), "{out}");
    }

    #[test]
    fn old_schema_rows_load_with_defaults() {
        // Pre-ledger snapshot shape: no bench/run_id/git_sha/host fields.
        let line = "{\"id\":\"matmul/naive\",\"mean_ns\":1100.0,\"min_ns\":1000.0,\
                    \"stddev_ns\":5.0,\"iters\":3,\"threads\":1,\"simd\":\"avx2\",\
                    \"speedup\":1.0}"
            .to_string();
        let path = write_ledger(&[line]);
        let out = run_perf(Some(&path), true, DEFAULT_WINDOW, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(out.contains("bench:matmul/naive"), "{out}");
        assert!(out.contains("perf check: OK"), "{out}");
    }

    #[test]
    fn rolling_window_limits_the_baseline() {
        // An ancient fast run outside the window must not define the
        // baseline: runs 1 (fast) then 2..=9 slow, window 4 → baseline
        // comes from runs 6..=9 and run 10 passes.
        let mut lines = vec![row("gemm", "g/x", 1, 100.0)];
        for run in 2..=9 {
            lines.push(row("gemm", "g/x", run, 1000.0));
        }
        lines.push(row("gemm", "g/x", 10, 1100.0));
        let path = write_ledger(&lines);
        let out = run_perf(Some(&path), true, 4, DEFAULT_TOLERANCE_PCT).unwrap();
        assert!(out.contains("perf check: OK"), "{out}");
        // With a window big enough to reach run 1, the same data fails.
        let err = run_perf(Some(&path), true, 16, DEFAULT_TOLERANCE_PCT).unwrap_err();
        assert!(err.contains("PERF REGRESSIONS DETECTED"), "{err}");
    }
}
