//! The `zfgan` command-line interface — a single entry point over the
//! library for the workflows a user reaches for most often.
//!
//! The heavy lifting lives in [`run`], which is pure (arguments in,
//! rendered text out) and therefore directly testable; `src/main.rs` is a
//! thin shell around it.
//!
//! Argument errors are *targeted*: an unknown flag or a malformed value
//! produces a one-line message naming the flag and the accepted
//! alternatives, not a full usage dump — the dump is reserved for `help`
//! and an empty invocation.

use std::sync::Arc;

use crate::accel::{datasheet, AccelConfig, GanAccelerator, MemoryAnalysis};
use crate::crashtest;
use crate::dataflow::{exec, Nlr, Ost, Wst, Zfost, Zfwst};
use crate::faults::{self, CampaignConfig};
use crate::sim::trace::TraceBuffer;
use crate::sim::{ConvKind, ConvShape};
use crate::telemetry::{export, Registry};
use crate::tensor::{ConvGeom, Fmaps, Kernels};
use crate::train::{CrashPhase, CrashSpec, TrainArgs};
use crate::workloads::GanSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde_json::Value;

/// Executes one CLI invocation and returns the text to print.
///
/// # Errors
///
/// Returns a descriptive error string when the arguments do not name a
/// valid command or carry malformed flags; the caller prints it to stderr
/// and exits non-zero.
pub fn run(args: &[String]) -> Result<String, String> {
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    match argv.split_first() {
        None => Ok(usage()),
        Some((&"help", _)) | Some((&"--help", _)) | Some((&"-h", _)) => Ok(usage()),
        Some((&"list", rest)) => {
            parse_flags(rest, &[])?;
            Ok(list_workloads())
        }
        Some((&"datasheet", rest)) => {
            let (gan, rest) = positional(rest, "datasheet", "<gan>")?;
            let flags = parse_flags(
                rest,
                &[
                    ("--pes", true),
                    ("--telemetry", false),
                    ("--trace-out", true),
                    ("--flame-out", true),
                ],
            )?;
            let pes = flag_num(&flags, "--pes")?;
            with_telemetry(&flags, || datasheet_cmd(gan, pes))
        }
        Some((&"memory", rest)) => {
            let (gan, rest) = positional(rest, "memory", "<gan>")?;
            let flags = parse_flags(rest, &[("--batch", true)])?;
            memory_cmd(gan, flag_num(&flags, "--batch")?.unwrap_or(256))
        }
        Some((&"sweep", rest)) => {
            let (gan, rest) = match rest.split_first() {
                Some((&g, more)) if !g.starts_with("--") => (g, more),
                _ => ("cgan", rest),
            };
            let flags = parse_flags(
                rest,
                &[
                    ("--telemetry", false),
                    ("--trace-out", true),
                    ("--flame-out", true),
                ],
            )?;
            with_telemetry(&flags, || sweep_cmd(gan))
        }
        Some((&"faults", rest)) => {
            let flags = parse_flags(
                rest,
                &[
                    ("--seed", true),
                    ("--smoke", false),
                    ("--full", false),
                    ("--telemetry", false),
                    ("--trace-out", true),
                    ("--flame-out", true),
                ],
            )?;
            faults_cmd(&flags)
        }
        Some((&"train", rest)) => {
            let flags = parse_flags(
                rest,
                &[
                    ("--seed", true),
                    ("--iters", true),
                    ("--batch", true),
                    ("--dir", true),
                    ("--every", true),
                    ("--keep", true),
                    ("--resume", false),
                    ("--crash-iter", true),
                    ("--crash-phase", true),
                    ("--crash-bytes", true),
                    ("--telemetry", false),
                    ("--trace-out", true),
                    ("--flame-out", true),
                ],
            )?;
            with_telemetry(&flags, || train_cmd(&flags))
        }
        Some((&"crashtest", rest)) => {
            let flags = parse_flags(
                rest,
                &[
                    ("--seed", true),
                    ("--iters", true),
                    ("--points", true),
                    ("--trials", true),
                    ("--dir", true),
                    ("--telemetry", false),
                    ("--trace-out", true),
                    ("--flame-out", true),
                ],
            )?;
            with_telemetry(&flags, || crashtest_cmd(&flags))
        }
        Some((&"trace", rest)) => {
            let flags = parse_flags(
                rest,
                &[
                    ("--arch", true),
                    ("--seed", true),
                    ("--capacity", true),
                    ("--out", true),
                    ("--check", true),
                    ("--flame-out", true),
                ],
            )?;
            trace_cmd(&flags)
        }
        Some((&"report", rest)) => {
            let flags = parse_flags(
                rest,
                &[
                    ("--arch", true),
                    ("--seed", true),
                    ("--capacity", true),
                    ("--out", true),
                    ("--flame-out", true),
                ],
            )?;
            report_cmd(&flags)
        }
        Some((&"perf", rest)) => {
            let flags = parse_flags(
                rest,
                &[
                    ("--check", false),
                    ("--file", true),
                    ("--window", true),
                    ("--tolerance", true),
                ],
            )?;
            let file = flag_str(&flags, "--file").map(std::path::Path::new);
            crate::perf::run_perf(
                file,
                flag_set(&flags, "--check"),
                flag_num(&flags, "--window")?.unwrap_or(crate::perf::DEFAULT_WINDOW),
                flag_num(&flags, "--tolerance")?.unwrap_or(crate::perf::DEFAULT_TOLERANCE_PCT),
            )
        }
        Some((&"dse", rest)) => {
            let (sweep, rest) = positional(rest, "dse", "<sweep>")?;
            let flags = parse_flags(
                rest,
                &[
                    ("--cache", true),
                    ("--out", true),
                    ("--verify", true),
                    ("--window", true),
                    ("--shards", true),
                    ("--shard-index", true),
                    ("--shard-count", true),
                    ("--telemetry", false),
                    ("--trace-out", true),
                    ("--flame-out", true),
                ],
            )?;
            let verify = match flag_str(&flags, "--verify") {
                None | Some("trust") => zfgan_dse::VerifyPolicy::Trust,
                Some("all") => zfgan_dse::VerifyPolicy::All,
                Some(other) => return Err(format!("--verify {other}: expected 'trust' or 'all'")),
            };
            let args = crate::dse::DseArgs {
                sweep: sweep.to_string(),
                cache: flag_str(&flags, "--cache").map(std::path::PathBuf::from),
                out: flag_str(&flags, "--out").map(std::path::PathBuf::from),
                verify,
                window: flag_num(&flags, "--window")?,
                shards: flag_num(&flags, "--shards")?,
                shard_index: flag_num(&flags, "--shard-index")?,
                shard_count: flag_num(&flags, "--shard-count")?,
            };
            with_telemetry(&flags, || crate::dse::run_dse(&args))
        }
        Some((&"serve-metrics", rest)) => {
            let flags = parse_flags(
                rest,
                &[
                    ("--addr", true),
                    ("--max-requests", true),
                    ("--scrape", true),
                    ("--path", true),
                ],
            )?;
            serve_cmd(&flags)
        }
        Some((&other, _)) => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn usage() -> String {
    "zfgan — cycle-level reproduction of the HPCA'18 zero-free GAN accelerator\n\
     \n\
     USAGE: zfgan <command> [options]\n\
     \n\
     COMMANDS:\n\
     \x20 list                       the built-in GAN workloads\n\
     \x20 datasheet <gan> [--pes N]  full accelerator summary for a workload\n\
     \x20 memory <gan> [--batch N]   Section III-A buffering analysis\n\
     \x20 sweep [<gan>]              PE-count scaling study\n\
     \x20 faults [--seed N] [--smoke|--full]\n\
     \x20                            fault-injection campaign: rate x site x dataflow\n\
     \x20 trace [--arch A] [--seed N] [--capacity N] [--out PATH]\n\
     \x20                            run the cycle-accurate executors and export a\n\
     \x20                            Chrome-trace / Perfetto JSON timeline\n\
     \x20 trace --check PATH         validate a trace or report file; print its\n\
     \x20                            deterministic section\n\
     \x20 report [--arch A] [--seed N] [--capacity N] [--out PATH]\n\
     \x20                            per-dataflow cycle attribution (MAC / DRAM / buffer /\n\
     \x20                            idle) with PE utilization and roofline position; the\n\
     \x20                            components sum exactly to the engine's total cycles\n\
     \x20 perf [--check] [--file PATH] [--window N] [--tolerance PCT]\n\
     \x20                            render the results/bench_history.jsonl trajectory;\n\
     \x20                            --check fails on regression vs the rolling baseline\n\
     \x20                            beyond max(PCT %, 4 x cv); default tolerance 35 %\n\
     \x20 dse <sweep> [--cache PATH] [--out PATH] [--verify trust|all]\n\
     \x20     [--window N] [--shards N]\n\
     \x20                            serve a figure sweep (fig15..fig19) as a query batch:\n\
     \x20                            dedup, content-addressed result cache (also via\n\
     \x20                            ZFGAN_DSE_CACHE), JSONL cell stream with incremental\n\
     \x20                            Pareto frontier; --shards N fans the key space out\n\
     \x20                            across child processes sharing the cache\n\
     \x20 serve-metrics [--addr A] [--max-requests N]\n\
     \x20                            HTTP endpoint exposing /metrics (Prometheus text\n\
     \x20                            format) and /health; --scrape ADDR [--path P] is the\n\
     \x20                            matching one-shot client\n\
     \x20 train [--seed N] [--iters N] [--batch N] [--dir PATH] [--every N]\n\
     \x20       [--keep K] [--resume]\n\
     \x20                            deterministic supervised training with durable,\n\
     \x20                            crash-consistent checkpoints; --resume continues\n\
     \x20                            bit-identically from the newest valid snapshot\n\
     \x20 crashtest [--seed N] [--iters N] [--points N] [--trials N] [--dir PATH]\n\
     \x20                            crash-injection campaign: kill training children at\n\
     \x20                            seeded points (incl. torn mid-write), corrupt stored\n\
     \x20                            checkpoints, prove resume is byte-identical\n\
     \x20 help                       this text\n\
     \n\
     <gan> is one of: mnist, dcgan, cgan (or a case-insensitive prefix).\n\
     datasheet/sweep/faults/train/crashtest also accept --telemetry (print a\n\
     metrics summary), --trace-out PATH (write a Chrome-trace JSON of the run)\n\
     and --flame-out PATH (write a collapsed-stack flamegraph of the run's\n\
     spans, loadable by inferno / speedscope).\n\
     The full per-figure evaluation lives in `cargo run -p zfgan-bench --bin <figN|tableN|...>`.\n"
        .to_string()
}

/// One parsed flag occurrence: `(name, value)`.
type Flags<'a> = Vec<(&'a str, Option<&'a str>)>;

/// Takes the command's required leading positional argument.
fn positional<'a, 'b>(
    rest: &'b [&'a str],
    cmd: &str,
    what: &str,
) -> Result<(&'a str, &'b [&'a str]), String> {
    match rest.split_first() {
        Some((&first, more)) if !first.starts_with("--") => Ok((first, more)),
        _ => Err(format!("{cmd}: missing {what}\n{}", usage())),
    }
}

/// Parses `rest` against a spec of `(flag, takes_value)` pairs, rejecting
/// anything else with a one-line error naming the alternatives.
fn parse_flags<'a>(rest: &[&'a str], spec: &[(&str, bool)]) -> Result<Flags<'a>, String> {
    let expected = || -> String {
        if spec.is_empty() {
            "this command takes no flags".to_string()
        } else {
            format!(
                "expected one of: {}",
                spec.iter().map(|(f, _)| *f).collect::<Vec<_>>().join(", ")
            )
        }
    };
    let mut out = Flags::new();
    let mut it = rest.iter();
    while let Some(&arg) = it.next() {
        let Some(&(flag, takes_value)) = spec.iter().find(|(f, _)| *f == arg) else {
            return Err(format!("unknown flag '{arg}' ({})", expected()));
        };
        if takes_value {
            let Some(&value) = it.next() else {
                return Err(format!("{flag} needs a value"));
            };
            out.push((arg, Some(value)));
        } else {
            out.push((arg, None));
        }
    }
    Ok(out)
}

/// The last numeric value of `flag`, if present.
fn flag_num(flags: &Flags<'_>, flag: &str) -> Result<Option<usize>, String> {
    match flags.iter().rev().find(|(f, _)| *f == flag) {
        None => Ok(None),
        Some((_, Some(v))) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag}: '{v}' is not a number")),
        Some((_, None)) => Ok(None),
    }
}

fn flag_set(flags: &Flags<'_>, flag: &str) -> bool {
    flags.iter().any(|(f, _)| *f == flag)
}

/// The last string value of `flag`, if present.
fn flag_str<'a>(flags: &Flags<'a>, flag: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(f, _)| *f == flag)
        .and_then(|(_, v)| *v)
}

/// Runs `body` under a fresh scoped telemetry registry when `--telemetry`,
/// `--trace-out` or `--flame-out` is present, then appends the metrics
/// summary and/or writes the Chrome-trace JSON / collapsed-stack
/// flamegraph. Without any of the flags, `body` runs bare.
fn with_telemetry(
    flags: &Flags<'_>,
    body: impl FnOnce() -> Result<String, String>,
) -> Result<String, String> {
    let want_summary = flag_set(flags, "--telemetry");
    let trace_out = flag_str(flags, "--trace-out");
    let flame_out = flag_str(flags, "--flame-out");
    if !want_summary && trace_out.is_none() && flame_out.is_none() {
        return body();
    }
    let reg = Arc::new(Registry::new());
    let result = {
        let _guard = crate::telemetry::scope(Arc::clone(&reg));
        body()
    };
    let mut out = result?;
    if let Some(path) = trace_out {
        let json = export::chrome_trace(&reg, &[]);
        std::fs::write(path, &json).map_err(|e| format!("--trace-out {path}: {e}"))?;
        out.push_str(&format!(
            "\ntrace written to {path} ({} bytes)\n",
            json.len()
        ));
    }
    if let Some(path) = flame_out {
        let folded = export::collapsed_stacks(&reg);
        std::fs::write(path, &folded).map_err(|e| format!("--flame-out {path}: {e}"))?;
        out.push_str(&format!(
            "\nflamegraph (collapsed stacks) written to {path} ({} lines)\n",
            folded.lines().count()
        ));
    }
    if want_summary {
        out.push('\n');
        out.push_str(&export::summary(&reg));
    }
    Ok(out)
}

/// The executor phase every `trace` run uses: the scaled-down DCGAN layer
/// (6×6 → 12×12, 4×4 kernel, stride 2) shared with the fault campaigns.
fn trace_phase(kind: ConvKind) -> Result<ConvShape, String> {
    let geom = ConvGeom::down(12, 12, 4, 4, 2, 6, 6).map_err(|e| e.to_string())?;
    Ok(ConvShape::new(kind, geom, 5, 3, 12, 12))
}

/// Runs one architecture's cycle-accurate executor with event tracing and
/// returns its trace buffer. `seed` fixes the operand data.
fn trace_one(arch: &str, seed: u64, capacity: usize) -> Result<TraceBuffer, String> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
    let small_x: Fmaps<f64> = Fmaps::random(5, 6, 6, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
    let err = |e: crate::tensor::ShapeError| e.to_string();
    match arch {
        "nlr" => {
            let p = trace_phase(ConvKind::S)?;
            Ok(
                exec::nlr_s_conv_traced(&Nlr::new(3, 5), &p, &x, &k, capacity)
                    .map_err(err)?
                    .1,
            )
        }
        "wst" => {
            let p = trace_phase(ConvKind::S)?;
            Ok(
                exec::wst_s_conv_traced(&Wst::new(4, 4, 2), &p, &x, &k, capacity)
                    .map_err(err)?
                    .1,
            )
        }
        "ost" => {
            let p = trace_phase(ConvKind::T)?;
            Ok(
                exec::ost_t_conv_traced(&Ost::new(4, 4, 2), &p, &small_x, &k, capacity)
                    .map_err(err)?
                    .1,
            )
        }
        "zfost" => {
            let p = trace_phase(ConvKind::T)?;
            Ok(
                exec::zfost_t_conv_traced(&Zfost::new(4, 4, 2), &p, &small_x, &k, capacity)
                    .map_err(err)?
                    .1,
            )
        }
        "zfwst" => {
            let p = trace_phase(ConvKind::T)?;
            Ok(
                exec::zfwst_t_conv_traced(&Zfwst::new(2, 2, 2), &p, &small_x, &k, capacity)
                    .map_err(err)?
                    .1,
            )
        }
        other => Err(format!(
            "--arch '{other}' unknown (expected one of: nlr, wst, ost, zfost, zfwst, all)"
        )),
    }
}

/// `zfgan trace`: run the traced executors under a scoped registry and
/// export one Chrome-trace JSON with a cycle-domain track per
/// architecture; `--check PATH` instead validates an existing file.
fn trace_cmd(flags: &Flags<'_>) -> Result<String, String> {
    if let Some(path) = flag_str(flags, "--check") {
        return trace_check(path);
    }
    let seed = flag_num(flags, "--seed")?.unwrap_or(2024) as u64;
    let capacity = flag_num(flags, "--capacity")?.unwrap_or(4096);
    if capacity == 0 {
        return Err("--capacity must be non-zero".to_string());
    }
    let arch = flag_str(flags, "--arch").unwrap_or("all");
    let selected: Vec<&str> = if arch == "all" {
        vec!["nlr", "wst", "ost", "zfost", "zfwst"]
    } else {
        vec![arch]
    };

    let reg = Arc::new(Registry::new());
    let mut tracks: Vec<(String, Vec<(u64, String)>)> = Vec::new();
    let mut out = format!("trace: seed {seed}, capacity {capacity}/arch\n");
    {
        let _guard = crate::telemetry::scope(Arc::clone(&reg));
        for name in &selected {
            let buf = trace_one(name, seed, capacity)?;
            out.push_str(&format!(
                "  {name:<6} {} events retained, {} evicted\n",
                buf.len(),
                buf.evicted()
            ));
            tracks.push((
                (*name).to_string(),
                buf.iter().map(|(c, e)| (c, e.to_string())).collect(),
            ));
        }
    }

    let json = export::chrome_trace(&reg, &tracks);
    match flag_str(flags, "--out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("--out {path}: {e}"))?;
            out.push_str(&format!(
                "trace written to {path} ({} bytes) — open in https://ui.perfetto.dev\n",
                json.len()
            ));
        }
        None => {
            out.push('\n');
            out.push_str(&export::summary(&reg));
        }
    }
    if let Some(path) = flag_str(flags, "--flame-out") {
        let folded = export::collapsed_stacks(&reg);
        std::fs::write(path, &folded).map_err(|e| format!("--flame-out {path}: {e}"))?;
        out.push_str(&format!(
            "flamegraph (collapsed stacks) written to {path} ({} lines)\n",
            folded.lines().count()
        ));
    }
    Ok(out)
}

/// `zfgan trace --check PATH`: the shared artifact validator. Accepts
/// both Chrome-trace files (a `traceEvents` array) and `zfgan report`
/// files (an `attribution` array); either way the file must carry a valid
/// `deterministic` object, which is printed in canonical form — the line
/// the CI gate diffs between two same-seed runs. One code path, one error
/// vocabulary, for both artifact kinds.
fn trace_check(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--check {path}: {e}"))?;
    let v: Value = serde_json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let obj = v
        .as_object()
        .ok_or_else(|| format!("{path}: top level is not a JSON object"))?;
    let (kind, what, n) = if let Some(events) = obj.get("traceEvents").and_then(Value::as_array) {
        ("Chrome trace", "events", events.len())
    } else if let Some(rows) = obj.get("attribution").and_then(Value::as_array) {
        ("attribution report", "executors", rows.len())
    } else {
        return Err(format!(
            "{path}: missing 'traceEvents' (trace) or 'attribution' (report) array"
        ));
    };
    let det = obj
        .get("deterministic")
        .ok_or_else(|| format!("{path}: missing 'deterministic' section"))?;
    if det.as_object().is_none() {
        return Err(format!("{path}: 'deterministic' is not an object"));
    }
    Ok(format!(
        "{path}: valid {kind}, {n} {what}\ndeterministic:{det}\n"
    ))
}

/// `zfgan report`: build the per-dataflow cycle-attribution report and
/// optionally write the byte-stable JSON (`--out`) and the
/// collapsed-stack flamegraph (`--flame-out`).
fn report_cmd(flags: &Flags<'_>) -> Result<String, String> {
    let seed = flag_num(flags, "--seed")?.unwrap_or(crate::report::DEFAULT_SEED as usize) as u64;
    let capacity = flag_num(flags, "--capacity")?.unwrap_or(crate::report::DEFAULT_CAPACITY);
    let report = crate::report::build_report(flag_str(flags, "--arch"), seed, capacity)?;
    let mut out = report.render();
    if let Some(path) = flag_str(flags, "--out") {
        let json = report.to_json();
        std::fs::write(path, &json).map_err(|e| format!("--out {path}: {e}"))?;
        out.push_str(&format!(
            "report written to {path} ({} bytes)\n",
            json.len()
        ));
    }
    if let Some(path) = flag_str(flags, "--flame-out") {
        std::fs::write(path, &report.collapsed).map_err(|e| format!("--flame-out {path}: {e}"))?;
        out.push_str(&format!(
            "flamegraph (collapsed stacks) written to {path} ({} lines)\n",
            report.collapsed.lines().count()
        ));
    }
    Ok(out)
}

/// `zfgan serve-metrics`: either serve the process-global registry over
/// HTTP, or (with `--scrape`) act as the matching one-shot client.
fn serve_cmd(flags: &Flags<'_>) -> Result<String, String> {
    if let Some(addr) = flag_str(flags, "--scrape") {
        let path = flag_str(flags, "--path").unwrap_or("/metrics");
        return crate::serve::scrape(addr, path);
    }
    if flag_str(flags, "--path").is_some() {
        return Err("--path needs --scrape".to_string());
    }
    let addr = flag_str(flags, "--addr").unwrap_or("127.0.0.1:9898");
    let max = flag_num(flags, "--max-requests")?.map(|n| n as u64);
    crate::serve::run_serve(addr, max)
}

fn lookup(gan: &str) -> Result<GanSpec, String> {
    let needle = gan.to_ascii_lowercase();
    GanSpec::all_paper_gans()
        .into_iter()
        .find(|s| s.name().to_ascii_lowercase().starts_with(&needle))
        .ok_or_else(|| format!("unknown GAN '{gan}' (try: mnist, dcgan, cgan)"))
}

fn list_workloads() -> String {
    let mut out = String::from("Built-in workloads (Discriminator ladders, Table IV / Fig. 1):\n");
    for spec in GanSpec::all_paper_gans() {
        let (c, h, w) = spec.image_shape();
        out.push_str(&format!(
            "  {:10} {}x{}x{} image, {} layers, {:.2} GOP per training sample\n",
            spec.name(),
            c,
            h,
            w,
            spec.layers().len(),
            spec.iteration_ops() as f64 / 1e9
        ));
    }
    out
}

fn datasheet_cmd(gan: &str, pes: Option<usize>) -> Result<String, String> {
    let spec = lookup(gan)?;
    let config = match pes {
        Some(n) if n < 32 => return Err(format!("--pes {n} is too small (need ≥ 32)")),
        Some(n) => AccelConfig::with_total_pes(n),
        None => AccelConfig::vcu118(),
    };
    Ok(datasheet(&GanAccelerator::new(config, spec), 64))
}

fn memory_cmd(gan: &str, batch: usize) -> Result<String, String> {
    if batch == 0 {
        return Err("--batch must be non-zero".to_string());
    }
    let spec = lookup(gan)?;
    let m = MemoryAnalysis::analyse(&spec, batch, 2);
    Ok(format!(
        "{} @ batch {batch} (16-bit data):\n\
         \x20 synchronized buffering : {:>12} bytes ({}on chip)\n\
         \x20 deferred buffering     : {:>12} bytes ({}on chip)\n\
         \x20 reduction              : {:.0}x (= 2 x batch)\n",
        spec.name(),
        m.synchronized_bytes,
        if m.synchronized_fits_on_chip {
            "fits "
        } else {
            "does NOT fit "
        },
        m.deferred_bytes,
        if m.deferred_fits_on_chip {
            "fits "
        } else {
            "does NOT fit "
        },
        m.reduction_factor(),
    ))
}

fn sweep_cmd(gan: &str) -> Result<String, String> {
    let spec = lookup(gan)?;
    let mut out = format!(
        "PE sweep on {} (deferred, VCU118 bandwidth):\n",
        spec.name()
    );
    out.push_str("  PEs     cyc/sample      GOPS   bound\n");
    for total in [512usize, 1024, 1680, 2048, 4096] {
        let accel = GanAccelerator::new(AccelConfig::with_total_pes(total), spec.clone());
        let r = accel.iteration_report(8);
        out.push_str(&format!(
            "  {:5}  {:>12}  {:>8.0}   {}\n",
            accel.config().total_pes(),
            accel.iteration_cycles_per_sample(),
            r.gops,
            if accel.is_bandwidth_bound() {
                "DRAM"
            } else {
                "compute"
            }
        ));
    }
    Ok(out)
}

fn faults_cmd(flags: &Flags<'_>) -> Result<String, String> {
    if flag_set(flags, "--smoke") && flag_set(flags, "--full") {
        return Err("--smoke and --full are mutually exclusive".to_string());
    }
    let seed = flag_num(flags, "--seed")?.unwrap_or(2024) as u64;
    let cfg = if flag_set(flags, "--full") {
        CampaignConfig::full(seed)
    } else {
        CampaignConfig::smoke(seed)
    };
    // The campaign always runs under its own scoped registry so the ABFT
    // detection-latency histogram and the supervisor counters are captured
    // even without --telemetry; the flags only control what gets exported.
    let reg = Arc::new(Registry::new());
    let result = {
        let _guard = crate::telemetry::scope(Arc::clone(&reg));
        faults::run_campaign(&cfg).map_err(|e| format!("campaign failed: {e}"))?
    };
    let mut summary = faults::render_summary(&result);
    if let Some(path) = flag_str(flags, "--trace-out") {
        let json = export::chrome_trace(&reg, &[]);
        std::fs::write(path, &json).map_err(|e| format!("--trace-out {path}: {e}"))?;
        summary.push_str(&format!(
            "\ntrace written to {path} ({} bytes)\n",
            json.len()
        ));
    }
    if let Some(path) = flag_str(flags, "--flame-out") {
        let folded = export::collapsed_stacks(&reg);
        std::fs::write(path, &folded).map_err(|e| format!("--flame-out {path}: {e}"))?;
        summary.push_str(&format!(
            "\nflamegraph (collapsed stacks) written to {path} ({} lines)\n",
            folded.lines().count()
        ));
    }
    if flag_set(flags, "--telemetry") {
        summary.push('\n');
        summary.push_str(&export::summary(&reg));
    }
    let violations = faults::smoke_violations(&result);
    if violations.is_empty() {
        Ok(summary)
    } else {
        Err(format!(
            "{summary}\nRESILIENCE INVARIANTS VIOLATED:\n{}",
            violations
                .iter()
                .map(|v| format!("  - {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        ))
    }
}

/// `zfgan train`: parse flags into [`TrainArgs`] and run the durable
/// training loop.
fn train_cmd(flags: &Flags<'_>) -> Result<String, String> {
    let mut args = TrainArgs::default();
    if let Some(seed) = flag_num(flags, "--seed")? {
        args.seed = seed as u64;
    }
    if let Some(iters) = flag_num(flags, "--iters")? {
        args.iters = iters as u64;
    }
    if let Some(batch) = flag_num(flags, "--batch")? {
        args.batch = batch;
    }
    if let Some(every) = flag_num(flags, "--every")? {
        args.every = every as u64;
    }
    if let Some(keep) = flag_num(flags, "--keep")? {
        args.keep = keep;
    }
    args.dir = flag_str(flags, "--dir").map(std::path::PathBuf::from);
    args.resume = flag_set(flags, "--resume");
    if let Some(iter) = flag_num(flags, "--crash-iter")? {
        let phase = match flag_str(flags, "--crash-phase") {
            Some(s) => CrashPhase::parse(s)?,
            None => return Err("--crash-iter needs --crash-phase".to_string()),
        };
        args.crash = Some(CrashSpec {
            iteration: iter as u64,
            phase,
            bytes: flag_num(flags, "--crash-bytes")?.unwrap_or(0),
        });
    } else if flag_str(flags, "--crash-phase").is_some() {
        return Err("--crash-phase needs --crash-iter".to_string());
    }
    crate::train::run_train(&args)
}

/// `zfgan crashtest`: run the crash-injection campaign with real child
/// processes, failing (non-zero exit) when any durability invariant is
/// violated.
fn crashtest_cmd(flags: &Flags<'_>) -> Result<String, String> {
    let seed = flag_num(flags, "--seed")?.unwrap_or(2024) as u64;
    let mut cfg = crashtest::CrashtestConfig::smoke(seed);
    if let Some(iters) = flag_num(flags, "--iters")? {
        cfg.iters = iters as u64;
    }
    if let Some(points) = flag_num(flags, "--points")? {
        cfg.points = points;
    }
    if let Some(trials) = flag_num(flags, "--trials")? {
        cfg.trials = trials;
    }
    let dir = match flag_str(flags, "--dir") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::env::temp_dir().join(format!("zfgan-crashtest-{}", std::process::id())),
    };
    let result = crashtest::run_campaign(&cfg, &crashtest::ExeRunner, &dir)
        .map_err(|e| format!("campaign failed: {e}"))?;
    let summary = crashtest::render_summary(&result);
    let violations = crashtest::violations(&result);
    if violations.is_empty() {
        Ok(summary)
    } else {
        Err(format!(
            "{summary}\nDURABILITY INVARIANTS VIOLATED:\n{}",
            violations
                .iter()
                .map(|v| format!("  - {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_lists_all_commands() {
        let out = run(&args(&["help"])).unwrap();
        for cmd in ["list", "datasheet", "memory", "sweep", "faults"] {
            assert!(out.contains(cmd), "usage missing {cmd}");
        }
        assert_eq!(run(&[]).unwrap(), out);
    }

    #[test]
    fn list_names_the_three_gans() {
        let out = run(&args(&["list"])).unwrap();
        for gan in ["MNIST-GAN", "DCGAN", "cGAN"] {
            assert!(out.contains(gan));
        }
    }

    #[test]
    fn datasheet_resolves_prefixes() {
        let out = run(&args(&["datasheet", "mnist"])).unwrap();
        assert!(out.contains("MNIST-GAN"));
        assert!(out.contains("GOPS"));
    }

    #[test]
    fn datasheet_respects_pes_flag() {
        let out = run(&args(&["datasheet", "cgan", "--pes", "512"])).unwrap();
        assert!(out.contains("cGAN"));
        // 512-PE split: 23 ST channels × 16 PEs.
        assert!(out.contains("4x4x23"), "{out}");
    }

    #[test]
    fn memory_reports_the_126_mb_figure() {
        let out = run(&args(&["memory", "dcgan"])).unwrap();
        assert!(out.contains("125829120"), "{out}");
        assert!(out.contains("512x"));
    }

    #[test]
    fn sweep_runs_and_mentions_bounds() {
        let out = run(&args(&["sweep", "cgan"])).unwrap();
        assert!(out.contains("compute"));
        assert!(out.lines().count() >= 6);
    }

    #[test]
    fn faults_smoke_campaign_passes_its_invariants() {
        let out = run(&args(&["faults", "--seed", "2024"])).unwrap();
        assert!(out.contains("gemm-accumulator"), "{out}");
        assert!(out.contains("Supervised training"), "{out}");
        assert!(out.contains("completed: true"), "{out}");
    }

    #[test]
    fn train_runs_and_prints_a_deterministic_line() {
        let out = run(&args(&["train", "--iters", "2"])).unwrap();
        assert!(out.contains("deterministic:{\"seed\":2024"), "{out}");
        let again = run(&args(&["train", "--iters", "2"])).unwrap();
        assert_eq!(out, again, "same flags must reproduce the same output");
    }

    #[test]
    fn train_flag_validation() {
        let err = run(&args(&["train", "--resume"])).unwrap_err();
        assert_eq!(err, "--resume requires --dir");
        let err = run(&args(&["train", "--crash-iter", "1"])).unwrap_err();
        assert_eq!(err, "--crash-iter needs --crash-phase");
        let err = run(&args(&["train", "--crash-phase", "mid-write"])).unwrap_err();
        assert_eq!(err, "--crash-phase needs --crash-iter");
        let err = run(&args(&[
            "train",
            "--crash-iter",
            "1",
            "--crash-phase",
            "sideways",
        ]))
        .unwrap_err();
        assert!(err.contains("before-publish"), "{err}");
    }

    #[test]
    fn report_is_deterministic_and_names_the_selected_executors() {
        let out = run(&args(&["report", "--arch", "zfost"])).unwrap();
        assert!(out.contains("zfost/s_conv"), "{out}");
        assert!(out.contains("zfost/t_conv"), "{out}");
        let again = run(&args(&["report", "--arch", "zfost"])).unwrap();
        assert_eq!(out, again, "same-seed reports must be byte-identical");
    }

    #[test]
    fn trace_check_validates_report_files_through_the_shared_path() {
        let dir = std::env::temp_dir().join(format!("zfgan-cli-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let p = path.to_str().unwrap();
        run(&args(&["report", "--arch", "nlr", "--out", p])).unwrap();
        let out = run(&args(&["trace", "--check", p])).unwrap();
        assert!(
            out.contains("valid attribution report, 1 executors"),
            "{out}"
        );
        assert!(out.contains("deterministic:{"), "{out}");
        // A file with neither array is rejected with the shared error.
        std::fs::write(&path, "{\"deterministic\":{}}").unwrap();
        let err = run(&args(&["trace", "--check", p])).unwrap_err();
        assert!(
            err.contains("'traceEvents' (trace) or 'attribution' (report)"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn perf_and_serve_flag_validation() {
        let err = run(&args(&["perf", "--file", "/nonexistent/ledger.jsonl"])).unwrap_err();
        assert!(err.contains("--file /nonexistent/ledger.jsonl"), "{err}");
        let err = run(&args(&["perf", "--window", "0"])).unwrap_err();
        assert_eq!(err, "--window must be non-zero");
        let err = run(&args(&["serve-metrics", "--path", "/health"])).unwrap_err();
        assert_eq!(err, "--path needs --scrape");
        let err = run(&args(&["serve-metrics", "--scrape", "127.0.0.1:1"])).unwrap_err();
        assert!(err.contains("connect"), "{err}");
    }

    #[test]
    fn errors_are_informative() {
        assert!(run(&args(&["bogus"]))
            .unwrap_err()
            .contains("unknown command"));
        assert!(run(&args(&["datasheet"])).unwrap_err().contains("missing"));
        assert!(run(&args(&["datasheet", "nope"]))
            .unwrap_err()
            .contains("unknown GAN"));
        assert!(run(&args(&["memory", "dcgan", "--batch", "x"]))
            .unwrap_err()
            .contains("not a number"));
        assert!(run(&args(&["datasheet", "cgan", "--pes", "8"]))
            .unwrap_err()
            .contains("too small"));
    }

    #[test]
    fn flag_errors_are_one_line_and_targeted() {
        // Unknown flag: names the flag and the accepted alternatives —
        // no usage dump.
        let err = run(&args(&["datasheet", "cgan", "--pse", "512"])).unwrap_err();
        assert_eq!(err.lines().count(), 1, "{err}");
        assert!(err.contains("unknown flag '--pse'"), "{err}");
        assert!(err.contains("--pes"), "{err}");

        let err = run(&args(&["memory", "dcgan", "--pes", "4"])).unwrap_err();
        assert_eq!(err.lines().count(), 1, "{err}");
        assert!(err.contains("--batch"), "{err}");

        // Malformed value: names flag and offending token.
        let err = run(&args(&["datasheet", "cgan", "--pes", "many"])).unwrap_err();
        assert_eq!(err, "--pes: 'many' is not a number");

        // Missing value.
        let err = run(&args(&["memory", "dcgan", "--batch"])).unwrap_err();
        assert_eq!(err, "--batch needs a value");

        // Commands without flags reject stray ones.
        let err = run(&args(&["list", "--verbose"])).unwrap_err();
        assert!(err.contains("takes no flags"), "{err}");
        let err = run(&args(&["sweep", "cgan", "--fast"])).unwrap_err();
        assert!(err.contains("unknown flag '--fast'"), "{err}");
        assert!(err.contains("--telemetry"), "{err}");

        // faults: flag validation.
        let err = run(&args(&["faults", "--smoke", "--full"])).unwrap_err();
        assert_eq!(err, "--smoke and --full are mutually exclusive");
        let err = run(&args(&["faults", "--seed", "NaN"])).unwrap_err();
        assert_eq!(err, "--seed: 'NaN' is not a number");
    }

    #[test]
    fn dse_serves_a_sweep_and_validates_flags() {
        // Cacheless serve: canonical stream on stdout plus the summary.
        let out = run(&args(&["dse", "fig16"])).unwrap();
        assert!(out.contains("{\"cell\":\"D (S-CONV)|1200\""), "{out}");
        assert!(out.contains("{\"pareto\":["), "{out}");
        assert!(
            out.contains("fig16: 4 unique cells (0 duplicates folded)"),
            "{out}"
        );

        // Unknown sweep: targeted error naming the alternatives.
        let err = run(&args(&["dse", "fig99"])).unwrap_err();
        assert!(err.contains("unknown sweep 'fig99'"), "{err}");
        assert!(err.contains("fig15"), "{err}");

        // Missing positional.
        let err = run(&args(&["dse"])).unwrap_err();
        assert!(err.contains("dse: missing <sweep>"), "{err}");

        // Verify policy validation.
        let err = run(&args(&["dse", "fig16", "--verify", "maybe"])).unwrap_err();
        assert_eq!(err, "--verify maybe: expected 'trust' or 'all'");

        // Shard flags go together, and a shard needs a cache.
        let err = run(&args(&["dse", "fig16", "--shard-index", "0"])).unwrap_err();
        assert_eq!(err, "--shard-index and --shard-count go together");
        let err = run(&args(&[
            "dse",
            "fig16",
            "--shard-index",
            "3",
            "--shard-count",
            "2",
        ]))
        .unwrap_err();
        assert_eq!(err, "--shard-index 3 out of range for --shard-count 2");
        let err = run(&args(&[
            "dse",
            "fig16",
            "--shard-index",
            "0",
            "--shard-count",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("needs a cache"), "{err}");
    }

    #[test]
    fn dse_cold_then_warm_is_byte_identical_with_hit_counters() {
        let dir = std::env::temp_dir().join(format!("zfgan-cli-dse-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = dir.to_string_lossy().to_string();
        let cold = run(&args(&["dse", "fig16", "--cache", &cache, "--telemetry"])).unwrap();
        assert!(
            cold.contains("dse_cache_misses_total{namespace=\"fig16\"}"),
            "{cold}"
        );
        assert!(cold.contains("dse_published_total"), "{cold}");
        let warm = run(&args(&["dse", "fig16", "--cache", &cache, "--telemetry"])).unwrap();
        assert!(
            warm.contains("dse_cache_hits_total{namespace=\"fig16\"}"),
            "{warm}"
        );
        // The stream part (everything before the telemetry summary) is
        // byte-identical: split at the summary marker.
        let stream_of = |s: &str| s.split("\n    dse_").next().unwrap().to_string();
        assert_eq!(stream_of(&cold), stream_of(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
