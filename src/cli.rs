//! The `zfgan` command-line interface — a single entry point over the
//! library for the workflows a user reaches for most often.
//!
//! The heavy lifting lives in [`run`], which is pure (arguments in,
//! rendered text out) and therefore directly testable; `src/main.rs` is a
//! thin shell around it.

use crate::accel::{datasheet, AccelConfig, GanAccelerator, MemoryAnalysis};
use crate::workloads::GanSpec;

/// Executes one CLI invocation and returns the text to print.
///
/// # Errors
///
/// Returns a usage/description string when the arguments do not name a
/// valid command; the caller prints it to stderr and exits non-zero.
pub fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(usage()),
        Some("list") => Ok(list_workloads()),
        Some("datasheet") => {
            let gan = it
                .next()
                .ok_or_else(|| "datasheet: missing <gan>\n".to_string() + &usage())?;
            let pes = parse_flag(&mut it, "--pes")?;
            datasheet_cmd(gan, pes)
        }
        Some("memory") => {
            let gan = it
                .next()
                .ok_or_else(|| "memory: missing <gan>\n".to_string() + &usage())?;
            let batch = parse_flag(&mut it, "--batch")?.unwrap_or(256);
            memory_cmd(gan, batch)
        }
        Some("sweep") => {
            let gan = it.next().unwrap_or("cgan");
            sweep_cmd(gan)
        }
        Some(other) => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn usage() -> String {
    "zfgan — cycle-level reproduction of the HPCA'18 zero-free GAN accelerator\n\
     \n\
     USAGE: zfgan <command> [options]\n\
     \n\
     COMMANDS:\n\
     \x20 list                       the built-in GAN workloads\n\
     \x20 datasheet <gan> [--pes N]  full accelerator summary for a workload\n\
     \x20 memory <gan> [--batch N]   Section III-A buffering analysis\n\
     \x20 sweep [<gan>]              PE-count scaling study\n\
     \x20 help                       this text\n\
     \n\
     <gan> is one of: mnist, dcgan, cgan (or a case-insensitive prefix).\n\
     The full per-figure evaluation lives in `cargo run -p zfgan-bench --bin <figN|tableN|...>`.\n"
        .to_string()
}

fn lookup(gan: &str) -> Result<GanSpec, String> {
    let needle = gan.to_ascii_lowercase();
    GanSpec::all_paper_gans()
        .into_iter()
        .find(|s| s.name().to_ascii_lowercase().starts_with(&needle))
        .ok_or_else(|| format!("unknown GAN '{gan}' (try: mnist, dcgan, cgan)"))
}

fn parse_flag<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    flag: &str,
) -> Result<Option<usize>, String> {
    match it.next() {
        None => Ok(None),
        Some(f) if f == flag => {
            let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
            v.parse()
                .map(Some)
                .map_err(|_| format!("{flag}: '{v}' is not a number"))
        }
        Some(other) => Err(format!("unexpected argument '{other}'")),
    }
}

fn list_workloads() -> String {
    let mut out = String::from("Built-in workloads (Discriminator ladders, Table IV / Fig. 1):\n");
    for spec in GanSpec::all_paper_gans() {
        let (c, h, w) = spec.image_shape();
        out.push_str(&format!(
            "  {:10} {}x{}x{} image, {} layers, {:.2} GOP per training sample\n",
            spec.name(),
            c,
            h,
            w,
            spec.layers().len(),
            spec.iteration_ops() as f64 / 1e9
        ));
    }
    out
}

fn datasheet_cmd(gan: &str, pes: Option<usize>) -> Result<String, String> {
    let spec = lookup(gan)?;
    let config = match pes {
        Some(n) if n < 32 => return Err(format!("--pes {n} is too small (need ≥ 32)")),
        Some(n) => AccelConfig::with_total_pes(n),
        None => AccelConfig::vcu118(),
    };
    Ok(datasheet(&GanAccelerator::new(config, spec), 64))
}

fn memory_cmd(gan: &str, batch: usize) -> Result<String, String> {
    if batch == 0 {
        return Err("--batch must be non-zero".to_string());
    }
    let spec = lookup(gan)?;
    let m = MemoryAnalysis::analyse(&spec, batch, 2);
    Ok(format!(
        "{} @ batch {batch} (16-bit data):\n\
         \x20 synchronized buffering : {:>12} bytes ({}on chip)\n\
         \x20 deferred buffering     : {:>12} bytes ({}on chip)\n\
         \x20 reduction              : {:.0}x (= 2 x batch)\n",
        spec.name(),
        m.synchronized_bytes,
        if m.synchronized_fits_on_chip {
            "fits "
        } else {
            "does NOT fit "
        },
        m.deferred_bytes,
        if m.deferred_fits_on_chip {
            "fits "
        } else {
            "does NOT fit "
        },
        m.reduction_factor(),
    ))
}

fn sweep_cmd(gan: &str) -> Result<String, String> {
    let spec = lookup(gan)?;
    let mut out = format!(
        "PE sweep on {} (deferred, VCU118 bandwidth):\n",
        spec.name()
    );
    out.push_str("  PEs     cyc/sample      GOPS   bound\n");
    for total in [512usize, 1024, 1680, 2048, 4096] {
        let accel = GanAccelerator::new(AccelConfig::with_total_pes(total), spec.clone());
        let r = accel.iteration_report(8);
        out.push_str(&format!(
            "  {:5}  {:>12}  {:>8.0}   {}\n",
            accel.config().total_pes(),
            accel.iteration_cycles_per_sample(),
            r.gops,
            if accel.is_bandwidth_bound() {
                "DRAM"
            } else {
                "compute"
            }
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_lists_all_commands() {
        let out = run(&args(&["help"])).unwrap();
        for cmd in ["list", "datasheet", "memory", "sweep"] {
            assert!(out.contains(cmd), "usage missing {cmd}");
        }
        assert_eq!(run(&[]).unwrap(), out);
    }

    #[test]
    fn list_names_the_three_gans() {
        let out = run(&args(&["list"])).unwrap();
        for gan in ["MNIST-GAN", "DCGAN", "cGAN"] {
            assert!(out.contains(gan));
        }
    }

    #[test]
    fn datasheet_resolves_prefixes() {
        let out = run(&args(&["datasheet", "mnist"])).unwrap();
        assert!(out.contains("MNIST-GAN"));
        assert!(out.contains("GOPS"));
    }

    #[test]
    fn datasheet_respects_pes_flag() {
        let out = run(&args(&["datasheet", "cgan", "--pes", "512"])).unwrap();
        assert!(out.contains("cGAN"));
        // 512-PE split: 23 ST channels × 16 PEs.
        assert!(out.contains("4x4x23"), "{out}");
    }

    #[test]
    fn memory_reports_the_126_mb_figure() {
        let out = run(&args(&["memory", "dcgan"])).unwrap();
        assert!(out.contains("125829120"), "{out}");
        assert!(out.contains("512x"));
    }

    #[test]
    fn sweep_runs_and_mentions_bounds() {
        let out = run(&args(&["sweep", "cgan"])).unwrap();
        assert!(out.contains("compute"));
        assert!(out.lines().count() >= 6);
    }

    #[test]
    fn errors_are_informative() {
        assert!(run(&args(&["bogus"]))
            .unwrap_err()
            .contains("unknown command"));
        assert!(run(&args(&["datasheet"])).unwrap_err().contains("missing"));
        assert!(run(&args(&["datasheet", "nope"]))
            .unwrap_err()
            .contains("unknown GAN"));
        assert!(run(&args(&["memory", "dcgan", "--batch", "x"]))
            .unwrap_err()
            .contains("not a number"));
        assert!(run(&args(&["datasheet", "cgan", "--pes", "8"]))
            .unwrap_err()
            .contains("too small"));
    }
}
