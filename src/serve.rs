//! `zfgan serve-metrics` — glue over the shared single-threaded HTTP
//! server in [`zfgan_telemetry::http`].
//!
//! The server itself (serving loop, request parsing, the [`scrape`]
//! client and its tests) lives in the telemetry crate so every consumer
//! of the `/metrics` endpoint — the CLI, the DSE engine's cache/shard
//! counters, benches — shares one implementation. This module only binds
//! the CLI-facing address and keeps the historical `crate::serve` paths
//! working.

use std::net::TcpListener;

pub use crate::telemetry::http::{scrape, serve_on};

/// Binds `addr` and serves until `max_requests` requests are handled
/// (forever when `None`). Prints the bound address before serving so a
/// scraper knows where to connect even with `--addr 127.0.0.1:0`.
///
/// # Errors
///
/// Returns an error when the address cannot be bound.
pub fn run_serve(addr: &str, max_requests: Option<u64>) -> Result<String, String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("--addr {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("--addr {addr}: {e}"))?;
    println!("serving metrics on http://{local}/metrics (also /health); ctrl-c to stop");
    serve_on(listener, max_requests)
}
