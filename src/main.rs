//! The `zfgan` binary: a thin shell around [`zfgan::cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match zfgan::cli::run(&args) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{}", message.trim_end_matches('\n'));
            ExitCode::FAILURE
        }
    }
}
