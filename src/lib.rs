//! `zfgan` — a faithful, cycle-level reproduction of *"Towards Efficient
//! Microarchitectural Design for Accelerating Unsupervised GAN-based Deep
//! Learning"* (Song, Zhang, Chen & Li, HPCA 2018).
//!
//! This facade crate re-exports the whole workspace under one name:
//!
//! * [`tensor`] — 4-D tensors, Q8.8 fixed point and the golden-reference
//!   convolutions (`S-CONV`, `T-CONV`, `W-CONV`).
//! * [`nn`] — from-scratch GAN training: layers, WGAN loss, backprop and the
//!   paper's **deferred-synchronization** trainer.
//! * [`sim`] — the microarchitecture substrate: PE arrays, on-chip buffers,
//!   DRAM bandwidth and energy accounting.
//! * [`dataflow`] — schedulers for the baseline architectures (NLR, WST,
//!   OST) and the paper's zero-free designs (**ZFOST**, **ZFWST**).
//! * [`accel`] — the full time-multiplexed accelerator of paper Fig. 14.
//! * [`workloads`] — DCGAN / MNIST-GAN / cGAN network specifications.
//! * [`platforms`] — analytical CPU/GPU models for the Fig. 19 comparison.
//! * [`pool`] — the persistent work-stealing thread pool behind every
//!   parallel execution path (deterministic, panic-safe, zero spawns in
//!   steady state).
//! * [`store`] — the crash-consistent checkpoint store (atomic
//!   checksummed generations) behind `zfgan train --resume` and the
//!   `zfgan crashtest` crash-injection campaign.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, or run
//! `cargo run --release --example quickstart`.

pub mod cli;
pub mod crashtest;
pub mod dse;
pub mod faults;
pub mod perf;
pub mod report;
pub mod serve;
pub mod train;

pub use zfgan_accel as accel;
pub use zfgan_dataflow as dataflow;
pub use zfgan_nn as nn;
pub use zfgan_platforms as platforms;
pub use zfgan_pool as pool;
pub use zfgan_sim as sim;
pub use zfgan_store as store;
pub use zfgan_telemetry as telemetry;
pub use zfgan_tensor as tensor;
pub use zfgan_workloads as workloads;
