//! Fault-injection campaigns: sweep fault rate × site × dataflow over the
//! zero-free convolution pipeline and measure what the detection layers
//! (ABFT checksums, transfer checksums, finite guards) actually catch.
//!
//! A campaign cell pins one `(dataflow, site, rate, bit)` combination and
//! runs `ops_per_cell` seeded transposed convolutions through the
//! instrumented path:
//!
//! * weights cross the modelled DRAM channel ([`zfgan_sim::DramModel::burst`]),
//! * patches are read through the on-chip buffer
//!   ([`zfgan_sim::OnChipBuffer::read_through`]),
//! * every per-phase GEMM runs under ABFT
//!   ([`zfgan_tensor::abft::checked_matmul_with_faults`]).
//!
//! Each effective fault is classified as **detected** (a guard flagged
//! it), **benign** (it fired but the output stayed within the ABFT
//! tolerance — below quantization noise), or **silent** (the output is
//! materially wrong and nothing noticed). The whole campaign is a pure
//! function of its [`CampaignConfig`], so the same seed reproduces the
//! same JSON byte for byte.
//!
//! A final section trains a tiny WGAN under a
//! [`zfgan_nn::SupervisedTrainer`] while a `TrainerStep` plan corrupts
//! critic parameters, demonstrating rollback-and-retry end to end.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::nn::{GanPair, GanTrainer, SupervisedTrainer, SupervisorConfig, TrainerConfig};
use crate::sim::{BufferSpec, DramModel, OnChipBuffer};
use crate::tensor::abft::{self};
use crate::tensor::fault::{FaultKind, FaultLog, FaultPlan, FaultSite};
use crate::tensor::gemm::MatmulKind;
use crate::tensor::im2col::{im2col_t, weights_as_matrix_t, Matrix};
use crate::tensor::zero_free::t_zero_free_gemm_operands;
use crate::tensor::{ConvGeom, Fmaps, Kernels, ShapeError, TensorResult};

/// Upper bucket bounds (accumulator words) of the ABFT detection-latency
/// histogram; a final `+Inf` bucket is implicit. Shared by the local
/// per-cell buckets and the `abft_detection_latency_words` registry
/// histogram so the two views always agree.
pub const DETECTION_LATENCY_BOUNDS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Which lowering feeds the instrumented GEMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dataflow {
    /// Caffe-style dense lowering: inserted zeros are materialised.
    TConvDense,
    /// The paper's zero-free per-phase lowering (ZFOST/ZFWST mirror).
    TConvZeroFree,
}

impl Dataflow {
    /// Stable name for tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Dataflow::TConvDense => "t-conv-dense",
            Dataflow::TConvZeroFree => "t-conv-zero-free",
        }
    }
}

/// Parameters of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Master seed; every cell derives its own sub-seed from it.
    pub seed: u64,
    /// Per-word fault rates to sweep.
    pub rates: Vec<f64>,
    /// Bit positions to flip (bit 30 = top exponent bit: loud; low
    /// mantissa bits: quiet).
    pub bits: Vec<u8>,
    /// Transposed convolutions per cell.
    pub ops_per_cell: usize,
    /// Supervised-training iterations in the resilience section.
    pub trainer_iterations: usize,
    /// Batch size of those iterations.
    pub trainer_batch: usize,
}

impl CampaignConfig {
    /// The CI smoke campaign: one loud rate/bit, a handful of ops —
    /// seconds, not minutes.
    pub fn smoke(seed: u64) -> Self {
        Self {
            seed,
            rates: vec![0.01],
            bits: vec![30],
            ops_per_cell: 6,
            trainer_iterations: 6,
            trainer_batch: 2,
        }
    }

    /// The full sweep: three rates × three bit positions.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            rates: vec![1e-3, 1e-2, 5e-2],
            bits: vec![1, 22, 30],
            ops_per_cell: 10,
            trainer_iterations: 8,
            trainer_batch: 2,
        }
    }
}

/// Outcome counters of one `(dataflow, site, rate, bit)` cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// Lowering under test.
    pub dataflow: String,
    /// Fault site name (see [`FaultSite::name`]).
    pub site: String,
    /// Per-word fault rate.
    pub rate: f64,
    /// Flipped bit position.
    pub bit: u8,
    /// Words exposed to the plan.
    pub attempts: u64,
    /// Faults that fired.
    pub fired: u64,
    /// Fired faults that changed a bit pattern.
    pub effective: u64,
    /// Effective faults a guard flagged.
    pub detected: u64,
    /// Effective faults whose output deviation stayed within the ABFT
    /// tolerance (below quantization noise).
    pub benign: u64,
    /// Effective faults that corrupted the output with no guard firing.
    pub silent: u64,
    /// Mean accumulator words computed between an accumulator fault and
    /// its post-GEMM ABFT check (0 when no accumulator fault detected).
    pub mean_detection_latency_words: f64,
    /// Detection-latency histogram: one count per
    /// [`DETECTION_LATENCY_BOUNDS`] bucket plus a final `+Inf` bucket.
    pub detection_latency_buckets: Vec<u64>,
}

/// Outcome of the supervised-training resilience section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerResilienceResult {
    /// Fault rate of the `TrainerStep` plan.
    pub rate: f64,
    /// Flipped bit position.
    pub bit: u8,
    /// Parameter faults actually injected.
    pub faults_injected: u64,
    /// Health-check failures and panics observed.
    pub anomalies: u64,
    /// Rollbacks to the last good checkpoint.
    pub rollbacks: u64,
    /// Re-executions after rollback.
    pub retries: u64,
    /// Iterations that completed healthily.
    pub completed_iterations: u64,
    /// Whether the whole run finished with finite losses.
    pub completed: bool,
    /// Final critic loss.
    pub final_dis_loss: f64,
    /// Final generator loss.
    pub final_gen_loss: f64,
}

/// Everything one campaign measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The configuration that produced this result.
    pub config: CampaignConfig,
    /// One row per `(dataflow, site, rate, bit)` cell.
    pub cells: Vec<CellResult>,
    /// The end-to-end supervised-training section.
    pub trainer: TrainerResilienceResult,
}

/// The T-CONV geometry every campaign op uses: 6×6 → 12×12, 4×4 kernel,
/// stride 2 — the DCGAN layer shape scaled down to keep cells fast.
fn campaign_geom() -> TensorResult<ConvGeom> {
    ConvGeom::down(12, 12, 4, 4, 2, 6, 6)
}

/// One op's GEMM operand pairs under the chosen dataflow.
fn operand_pairs(
    dataflow: Dataflow,
    input: &Fmaps<f32>,
    k: &Kernels<f32>,
    geom: &ConvGeom,
) -> TensorResult<Vec<(Matrix<f32>, Matrix<f32>)>> {
    match dataflow {
        Dataflow::TConvDense => {
            let lowered = im2col_t(input, geom);
            Ok(vec![(lowered.patches, weights_as_matrix_t(k))])
        }
        Dataflow::TConvZeroFree => t_zero_free_gemm_operands(input, k, geom),
    }
}

/// Drives one cell: `ops_per_cell` seeded T-CONVs through buffer, DRAM
/// and ABFT-checked GEMM, classifying every effective fault.
#[allow(clippy::too_many_lines)]
fn run_cell(
    cfg: &CampaignConfig,
    dataflow: Dataflow,
    site: FaultSite,
    rate: f64,
    bit: u8,
) -> TensorResult<CellResult> {
    let plan = FaultPlan::new(cfg.seed, rate, site, FaultKind::BitFlip { bit })
        .map_err(|e| ShapeError::new(e.to_string()))?;
    let geom = campaign_geom()?;
    let dram = DramModel::vcu118();
    let mut buffer = OnChipBuffer::new(BufferSpec::new("campaign", 1 << 20));

    let mut log = FaultLog::default();
    let mut detected = 0u64;
    let mut benign = 0u64;
    let mut silent = 0u64;
    let mut latency_sum = 0.0f64;
    let mut latency_n = 0u64;
    let mut latency_buckets = vec![0u64; DETECTION_LATENCY_BOUNDS.len() + 1];
    // Per-site word counters: every word of the campaign gets a unique
    // index, so replaying the config replays the exact fault pattern.
    let mut next_word: u64 = 0;

    // Cell sub-seed: decorrelate the problem data across cells without
    // touching the plan's own (seed, site, index) fault stream.
    let cell_salt = (dataflow.name().len() as u64) << 32 | u64::from(bit);

    for op in 0..cfg.ops_per_cell {
        let mut rng = SmallRng::seed_from_u64(
            cfg.seed ^ cell_salt ^ (op as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        let k = Kernels::random(4, 3, 4, 4, 0.5, &mut rng);
        let input = Fmaps::random(4, 6, 6, 1.0, &mut rng);

        for (patches, weights) in operand_pairs(dataflow, &input, &k, &geom)? {
            // Golden product on pristine operands.
            let golden = MatmulKind::Blocked.run(&patches, &weights)?;

            // Transport: weights cross DRAM, patches cross the on-chip
            // buffer. A checksum around each transfer is the detector.
            let mut w_data = weights.as_slice().to_vec();
            let w_before = abft::slice_checksum(&w_data);
            let w_base = next_word;
            next_word += w_data.len() as u64;
            let mut transfer_log = FaultLog::default();
            let _cycles = dram.burst(w_base, &mut w_data, 4, &plan, &mut transfer_log);
            let w_caught = abft::slice_checksum(&w_data).to_bits() != w_before.to_bits();

            let mut p_data = patches.as_slice().to_vec();
            let p_before = abft::slice_checksum(&p_data);
            let p_base = next_word;
            next_word += p_data.len() as u64;
            buffer.read_through(p_base, &mut p_data, &plan, &mut transfer_log);
            let p_caught = abft::slice_checksum(&p_data).to_bits() != p_before.to_bits();

            let transfer_effective: u64 = transfer_log
                .records
                .iter()
                .filter(|r| r.effective())
                .count() as u64;

            let faulty_w = Matrix::from_vec(weights.rows(), weights.cols(), w_data);
            let faulty_p = Matrix::from_vec(patches.rows(), patches.cols(), p_data);

            // Compute: ABFT-guarded GEMM, accumulator faults injected at
            // writeback.
            let gemm_base = next_word;
            let mut gemm_log = FaultLog::default();
            let (product, report) = abft::checked_matmul_with_faults(
                MatmulKind::Blocked,
                &faulty_p,
                &faulty_w,
                &plan,
                gemm_base,
                &mut gemm_log,
            )?;
            let n = product.cols();
            let gemm_words = (product.rows() * n) as u64;
            next_word += gemm_words;

            // How far the output actually strayed from the golden product
            // (operand corruption propagates here too).
            let max_dev = golden
                .as_slice()
                .iter()
                .zip(product.as_slice())
                .map(|(&g, &c)| {
                    if c.is_finite() {
                        (f64::from(g) - f64::from(c)).abs()
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0f64, f64::max);
            let tol = abft::tolerance(&faulty_p, &faulty_w);
            let material = max_dev > tol;
            let guard_fired =
                !report.clean() || abft::first_non_finite(product.as_slice()).is_some();

            // Accumulator faults: attribute each record to its output
            // coordinate and ask the ABFT report whether it was localised.
            for rec in gemm_log.records.iter().filter(|r| r.effective()) {
                let rel = rec.index - gemm_base;
                let (row, col) = ((rel / n as u64) as usize, (rel % n as u64) as usize);
                if report.implicates(row, col) {
                    detected += 1;
                    let latency = (gemm_words - rel) as f64;
                    latency_sum += latency;
                    latency_n += 1;
                    let bucket = DETECTION_LATENCY_BOUNDS
                        .iter()
                        .position(|b| latency <= *b)
                        .unwrap_or(DETECTION_LATENCY_BOUNDS.len());
                    latency_buckets[bucket] += 1;
                    crate::telemetry::observe(
                        "abft_detection_latency_words",
                        &[("dataflow", dataflow.name())],
                        &DETECTION_LATENCY_BOUNDS,
                        latency,
                    );
                } else if material {
                    silent += 1;
                } else {
                    benign += 1;
                }
            }

            // Operand faults: the transfer checksum is the detector; the
            // ABFT check may *also* notice the product of corrupted
            // operands drifting, but the checksum alone decides.
            if transfer_effective > 0 {
                let caught = w_caught || p_caught;
                if caught {
                    detected += transfer_effective;
                } else if material && !guard_fired {
                    silent += transfer_effective;
                } else {
                    benign += transfer_effective;
                }
            }

            log.absorb(&transfer_log);
            log.absorb(&gemm_log);
        }
    }

    Ok(CellResult {
        dataflow: dataflow.name().to_string(),
        site: site.name().to_string(),
        rate,
        bit,
        attempts: log.attempts,
        fired: log.fired,
        effective: log.effective,
        detected,
        benign,
        silent,
        mean_detection_latency_words: if latency_n > 0 {
            latency_sum / latency_n as f64
        } else {
            0.0
        },
        detection_latency_buckets: latency_buckets,
    })
}

/// The end-to-end section: a tiny WGAN trains under supervision while a
/// `TrainerStep` plan flips critic parameter bits.
fn run_trainer_section(cfg: &CampaignConfig) -> TensorResult<TrainerResilienceResult> {
    let rate = 0.65;
    let bit = 30u8;
    let plan = FaultPlan::new(
        cfg.seed ^ 0x7472_6169_6e00_0000,
        rate,
        FaultSite::TrainerStep,
        FaultKind::BitFlip { bit },
    )
    .map_err(|e| ShapeError::new(e.to_string()))?;

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x6761_6e00);
    let trainer = GanTrainer::try_new(
        GanPair::tiny(&mut rng),
        TrainerConfig {
            n_critic: 1,
            ..TrainerConfig::default()
        },
    )
    .map_err(|e| ShapeError::new(e.to_string()))?;
    let mut sup = SupervisedTrainer::new(
        trainer,
        SupervisorConfig {
            fault: Some(plan),
            ..SupervisorConfig::default()
        },
    )
    .map_err(|e| ShapeError::new(e.to_string()))?;

    let mut step_rng = SmallRng::seed_from_u64(cfg.seed ^ 0x7374_6570);
    let mut final_dis = f64::NAN;
    let mut final_gen = f64::NAN;
    for _ in 0..cfg.trainer_iterations {
        // On Err (retries exhausted) the supervisor has already rolled
        // back to the last good state, so the run continues — the fault
        // stream has advanced, so the retry pattern differs on the next
        // iteration.
        if let Ok((d, g)) = sup.train_iteration(cfg.trainer_batch, &mut step_rng) {
            final_dis = d.dis_loss;
            final_gen = g.gen_loss;
        }
    }
    let stats = *sup.stats();
    // Completion means the run ended on healthy parameters with at least
    // one finite-loss iteration — precisely what an unsupervised trainer
    // under the same fault stream cannot deliver.
    let completed = stats.iterations > 0 && final_dis.is_finite() && final_gen.is_finite();
    Ok(TrainerResilienceResult {
        rate,
        bit,
        faults_injected: stats.faults_injected,
        anomalies: stats.anomalies,
        rollbacks: stats.rollbacks,
        retries: stats.retries,
        completed_iterations: stats.iterations,
        completed,
        final_dis_loss: final_dis,
        final_gen_loss: final_gen,
    })
}

/// Runs a full campaign: every `(dataflow, site, rate, bit)` cell plus
/// the supervised-training section.
///
/// # Errors
///
/// Returns an error only on internal shape violations (a campaign bug,
/// not a fault effect — injected faults are data, never structure).
pub fn run_campaign(cfg: &CampaignConfig) -> TensorResult<CampaignResult> {
    let mut cells = Vec::new();
    for dataflow in [Dataflow::TConvDense, Dataflow::TConvZeroFree] {
        for site in [
            FaultSite::GemmAccumulator,
            FaultSite::BufferRead,
            FaultSite::DramBurst,
        ] {
            for &rate in &cfg.rates {
                for &bit in &cfg.bits {
                    cells.push(run_cell(cfg, dataflow, site, rate, bit)?);
                }
            }
        }
    }
    let trainer = run_trainer_section(cfg)?;
    Ok(CampaignResult {
        config: cfg.clone(),
        cells,
        trainer,
    })
}

/// Renders the campaign as an aligned text table plus the trainer
/// section, for the CLI and the bench binary.
pub fn render_summary(result: &CampaignResult) -> String {
    let mut out = String::from(
        "Fault-injection campaign (bit-flip faults, ABFT + checksum + finite guards):\n\n",
    );
    out.push_str(&format!(
        "{:<18} {:<17} {:>7} {:>4} {:>9} {:>6} {:>9} {:>9} {:>7} {:>7} {:>12}\n",
        "dataflow",
        "site",
        "rate",
        "bit",
        "attempts",
        "fired",
        "effective",
        "detected",
        "benign",
        "silent",
        "latency(wd)"
    ));
    for c in &result.cells {
        out.push_str(&format!(
            "{:<18} {:<17} {:>7} {:>4} {:>9} {:>6} {:>9} {:>9} {:>7} {:>7} {:>12.1}\n",
            c.dataflow,
            c.site,
            c.rate,
            c.bit,
            c.attempts,
            c.fired,
            c.effective,
            c.detected,
            c.benign,
            c.silent,
            c.mean_detection_latency_words,
        ));
    }
    // Detection-latency histogram, aggregated per dataflow across cells.
    let mut per_dataflow: Vec<(String, Vec<u64>)> = Vec::new();
    for c in &result.cells {
        if c.detection_latency_buckets.iter().all(|&b| b == 0) {
            continue;
        }
        match per_dataflow.iter_mut().find(|(d, _)| *d == c.dataflow) {
            Some((_, acc)) => {
                for (a, b) in acc.iter_mut().zip(&c.detection_latency_buckets) {
                    *a += b;
                }
            }
            None => per_dataflow.push((c.dataflow.clone(), c.detection_latency_buckets.clone())),
        }
    }
    if !per_dataflow.is_empty() {
        out.push_str("\nABFT detection latency (accumulator words between fault and check):\n");
        let mut header = format!("{:<18}", "dataflow");
        for b in DETECTION_LATENCY_BOUNDS {
            header.push_str(&format!(" {:>6}", format!("<={b}")));
        }
        header.push_str(&format!(" {:>6}\n", "+Inf"));
        out.push_str(&header);
        for (dataflow, buckets) in &per_dataflow {
            out.push_str(&format!("{dataflow:<18}"));
            for b in buckets {
                out.push_str(&format!(" {b:>6}"));
            }
            out.push('\n');
        }
    }
    let t = &result.trainer;
    out.push_str(&format!(
        "\nSupervised training under trainer-step faults (rate {}, bit {}):\n\
         \x20 injected {}  anomalies {}  rollbacks {}  retries {}  healthy iterations {}\n\
         \x20 completed: {}  final losses: D {:.4}  G {:.4}\n",
        t.rate,
        t.bit,
        t.faults_injected,
        t.anomalies,
        t.rollbacks,
        t.retries,
        t.completed_iterations,
        t.completed,
        t.final_dis_loss,
        t.final_gen_loss,
    ));
    out
}

/// Checks the invariants the CI smoke campaign enforces. An empty vector
/// means the run is healthy.
pub fn smoke_violations(result: &CampaignResult) -> Vec<String> {
    let mut v = Vec::new();
    let total_detected: u64 = result.cells.iter().map(|c| c.detected).sum();
    if total_detected == 0 {
        v.push("no faults were detected anywhere in the campaign".to_string());
    }
    let total_fired: u64 = result.cells.iter().map(|c| c.fired).sum();
    if total_fired == 0 {
        v.push("no faults fired — the plan rates are too low for the cell size".to_string());
    }
    for c in &result.cells {
        if c.site == FaultSite::GemmAccumulator.name() && c.silent > 0 {
            v.push(format!(
                "{} @ {} rate {} bit {}: {} silent corruption(s) escaped the ABFT check",
                c.dataflow, c.site, c.rate, c.bit, c.silent
            ));
        }
    }
    let t = &result.trainer;
    if !t.completed {
        v.push("supervised training did not complete with finite losses".to_string());
    }
    if t.faults_injected > 0 && t.rollbacks == 0 {
        v.push("trainer faults were injected but no rollback ever happened".to_string());
    }
    v
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_is_deterministic_and_clean() {
        let cfg = CampaignConfig::smoke(2024);
        let a = run_campaign(&cfg).unwrap();
        let b = run_campaign(&cfg).unwrap();
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb, "same config must reproduce byte-identical JSON");
        assert!(
            smoke_violations(&a).is_empty(),
            "{:?}",
            smoke_violations(&a)
        );
    }

    #[test]
    fn accumulator_cells_detect_every_material_fault() {
        let cfg = CampaignConfig::smoke(7);
        let result = run_campaign(&cfg).unwrap();
        let acc_cells: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.site == "gemm-accumulator")
            .collect();
        assert!(!acc_cells.is_empty());
        let fired: u64 = acc_cells.iter().map(|c| c.fired).sum();
        assert!(fired > 0, "smoke rate must fire at this cell size");
        for c in acc_cells {
            assert_eq!(c.silent, 0, "{c:?}");
        }
    }

    #[test]
    fn trainer_section_rolls_back_and_completes() {
        let cfg = CampaignConfig::smoke(11);
        let t = run_trainer_section(&cfg).unwrap();
        assert!(t.completed, "{t:?}");
        assert!(t.faults_injected > 0, "{t:?}");
        assert!(t.rollbacks > 0, "{t:?}");
        assert!(t.final_dis_loss.is_finite() && t.final_gen_loss.is_finite());
    }

    #[test]
    fn different_seeds_draw_different_fault_patterns() {
        let a = run_campaign(&CampaignConfig::smoke(1)).unwrap();
        let b = run_campaign(&CampaignConfig::smoke(2)).unwrap();
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn summary_renders_every_cell() {
        let result = run_campaign(&CampaignConfig::smoke(3)).unwrap();
        let text = render_summary(&result);
        assert!(text.contains("gemm-accumulator"));
        assert!(text.contains("t-conv-zero-free"));
        assert!(text.contains("Supervised training"));
    }
}
