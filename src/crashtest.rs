//! `zfgan crashtest` — the deterministic crash-injection campaign that
//! *proves* the durability layer's contract end to end.
//!
//! The campaign runs real child processes (re-invoking the current
//! executable's `train` command), kills them at seeded points — including
//! mid-write, with only a torn prefix of the checkpoint envelope on disk
//! — resumes from the surviving store, and asserts the resumed run's
//! `deterministic:` line is **byte-identical** to an uninterrupted
//! baseline. A second section corrupts published checkpoint files
//! directly (seeded bit-flips and truncations chosen by the
//! [`FaultSite::CheckpointWrite`] plan) and asserts every corruption is
//! detected and survived by falling back to an older generation — never
//! silently loaded.
//!
//! Everything derives from one seed: the kill points, the corruption
//! bytes, the training trajectories. The same seed reproduces the same
//! campaign byte for byte.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;
use std::process::Command;

use serde::{Deserialize, Serialize};

use crate::nn::durable::run_config_hash;
use crate::nn::{DurableCheckpointer, TrainerConfig};
use crate::tensor::fault::{FaultKind, FaultPlan, FaultSite};

/// Splitmix64 — the campaign's only entropy source, so every kill point
/// and corruption choice is a pure function of the seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Parameters of one crash-injection campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashtestConfig {
    /// Master seed: kill points, corruption choices and the training
    /// trajectory all derive from it.
    pub seed: u64,
    /// Iterations of every training run.
    pub iters: u64,
    /// Batch size of every training run.
    pub batch: usize,
    /// Crash/resume points to inject (phases cycle through
    /// before-publish, mid-write, after-publish).
    pub points: usize,
    /// Corruption trials against a completed store (bit-flips and
    /// truncations alternate).
    pub trials: usize,
}

impl CrashtestConfig {
    /// The CI campaign: every phase at least once, a handful of
    /// corruption trials — seconds, not minutes.
    pub fn smoke(seed: u64) -> Self {
        Self {
            seed,
            iters: 5,
            batch: 2,
            points: 3,
            trials: 4,
        }
    }
}

/// How one injected crash point went.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashPointResult {
    /// Point index within the campaign.
    pub point: usize,
    /// The iteration the crash fired at.
    pub iteration: u64,
    /// The crash phase spelling (`before-publish` | `mid-write` |
    /// `after-publish`).
    pub phase: String,
    /// For mid-write: envelope bytes on disk before the simulated power
    /// loss.
    pub bytes: usize,
    /// Whether the crashed child exited abnormally (it must — the crash
    /// is a `process::abort`).
    pub crashed: bool,
    /// Whether the resume child exited successfully.
    pub resumed: bool,
    /// Whether the resume run's `deterministic:` line matched the
    /// uninterrupted baseline byte for byte.
    pub bit_identical: bool,
}

/// How one corruption trial went.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorruptionTrialResult {
    /// Trial index within the campaign.
    pub trial: usize,
    /// What was done to the newest generation file (`bit-flip` |
    /// `truncate`).
    pub kind: String,
    /// Corrupted byte offset (bit-flip) or truncated length (truncate).
    pub at: usize,
    /// Whether the parent-side load detected the corruption and fell
    /// back to an older generation.
    pub detected_and_recovered: bool,
    /// Whether a resume child run from the corrupted store still matched
    /// the baseline byte for byte.
    pub bit_identical: bool,
}

/// Everything one campaign measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashtestResult {
    /// The configuration that produced this result.
    pub config: CrashtestConfig,
    /// The uninterrupted baseline's `deterministic:` line.
    pub baseline: String,
    /// One row per injected crash point.
    pub points: Vec<CrashPointResult>,
    /// One row per corruption trial.
    pub trials: Vec<CorruptionTrialResult>,
}

/// Runs `train` invocations as child processes. The indirection exists so
/// the campaign logic stays a pure function of `(config, runner)` — tests
/// exercise the derivation and verdict code without forking.
pub trait ChildRunner {
    /// Runs the current executable with `args`, returning
    /// `(exited_normally, stdout)`.
    ///
    /// # Errors
    ///
    /// Returns an error only when the child could not be *spawned* — an
    /// abnormal exit is a normal, reportable outcome.
    fn run(&self, args: &[String]) -> Result<(bool, String), String>;
}

/// The real runner: re-invokes [`std::env::current_exe`]. Both the
/// `zfgan` binary and the bench `crashtest` binary route a leading
/// `train` argument to the same CLI, so children behave identically no
/// matter which binary hosts the campaign.
#[derive(Debug, Default)]
pub struct ExeRunner;

impl ChildRunner for ExeRunner {
    fn run(&self, args: &[String]) -> Result<(bool, String), String> {
        let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
        let output = Command::new(&exe)
            .args(args)
            .output()
            .map_err(|e| format!("spawning {}: {e}", exe.display()))?;
        Ok((
            output.status.success(),
            String::from_utf8_lossy(&output.stdout).into_owned(),
        ))
    }
}

/// The `deterministic:` line of a train run's stdout, if present.
fn det_line(stdout: &str) -> Option<&str> {
    stdout.lines().find(|l| l.starts_with("deterministic:"))
}

fn train_args(cfg: &CrashtestConfig, extra: &[String]) -> Vec<String> {
    let mut args = vec![
        "train".to_string(),
        "--seed".to_string(),
        cfg.seed.to_string(),
        "--iters".to_string(),
        cfg.iters.to_string(),
        "--batch".to_string(),
        cfg.batch.to_string(),
    ];
    args.extend_from_slice(extra);
    args
}

/// Derives crash point `p`: iteration in `1..=iters`, phase cycling
/// through the three spellings, torn-write length within the envelope of
/// a realistic snapshot.
fn derive_point(cfg: &CrashtestConfig, p: usize) -> (u64, &'static str, usize) {
    let h = splitmix64(cfg.seed ^ (p as u64).wrapping_mul(0x0fc9_4e3b_de1f_5cd5));
    // Crash strictly before the final iteration so the resume has work
    // left to do (a resume with nothing to replay would vacuously pass).
    let iteration = 1 + h % cfg.iters.saturating_sub(1).max(1);
    let phase = ["before-publish", "mid-write", "after-publish"][p % 3];
    // Torn prefixes from 0 bytes (nothing landed) through the 32-byte
    // header into the payload.
    let bytes = (splitmix64(h) % 200) as usize;
    (iteration, phase, bytes)
}

/// Runs one crash point: crash child, resume child, verdict.
fn run_point(
    cfg: &CrashtestConfig,
    runner: &dyn ChildRunner,
    dir: &Path,
    baseline: &str,
    p: usize,
) -> Result<CrashPointResult, String> {
    let (iteration, phase, bytes) = derive_point(cfg, p);
    let point_dir = dir.join(format!("point-{p}"));
    let point_dir_s = point_dir.to_string_lossy().into_owned();

    let mut crash_extra = vec![
        "--dir".to_string(),
        point_dir_s.clone(),
        "--crash-iter".to_string(),
        iteration.to_string(),
        "--crash-phase".to_string(),
        phase.to_string(),
    ];
    if phase == "mid-write" {
        crash_extra.push("--crash-bytes".to_string());
        crash_extra.push(bytes.to_string());
    }
    let (crash_ok, _) = runner.run(&train_args(cfg, &crash_extra))?;

    let resume_extra = vec!["--dir".to_string(), point_dir_s, "--resume".to_string()];
    let (resume_ok, resume_out) = runner.run(&train_args(cfg, &resume_extra))?;
    let bit_identical = det_line(&resume_out) == Some(baseline);
    Ok(CrashPointResult {
        point: p,
        iteration,
        phase: phase.to_string(),
        bytes: if phase == "mid-write" { bytes } else { 0 },
        crashed: !crash_ok,
        resumed: resume_ok,
        bit_identical,
    })
}

/// Runs one corruption trial against the completed store in `dir`:
/// corrupt the newest generation file in place (choice seeded through the
/// [`FaultSite::CheckpointWrite`] plan), verify the parent-side load
/// detects it and falls back, verify a child resume still reproduces the
/// baseline, then restore the original bytes.
fn run_trial(
    cfg: &CrashtestConfig,
    runner: &dyn ChildRunner,
    dir: &Path,
    baseline: &str,
    t: usize,
) -> Result<CorruptionTrialResult, String> {
    let plan = FaultPlan::new(
        cfg.seed,
        1.0,
        FaultSite::CheckpointWrite,
        FaultKind::BitFlip { bit: 0 },
    )
    .map_err(|e| e.to_string())?;
    let config_hash = run_config_hash(
        &TrainerConfig {
            n_critic: 1,
            ..TrainerConfig::default()
        },
        cfg.seed,
        cfg.batch,
    );
    let mut cp = DurableCheckpointer::open_dir(dir, "train", config_hash, 1, 4)
        .map_err(|e| e.to_string())?;

    let generations = cp
        .store_mut()
        .generations("train")
        .map_err(|e| e.to_string())?;
    let &newest = generations
        .last()
        .ok_or_else(|| "corruption trial: store has no generations".to_string())?;
    let path = cp.store_mut().generation_path("train", newest);
    let pristine = std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;

    // Seeded corruption choice: even trials flip one bit, odd trials
    // truncate. `pick` derives byte/bit/length from (seed, trial).
    let idx = t as u64;
    let (kind, at) = if t.is_multiple_of(2) {
        let byte = plan.pick(idx, 0x62_79_74_65, pristine.len());
        let bit = plan.pick(idx, 0x62_69_74_73, 8) as u8;
        let mut bad = pristine.clone();
        bad[byte] ^= 1 << bit;
        std::fs::write(&path, &bad).map_err(|e| format!("{}: {e}", path.display()))?;
        ("bit-flip", byte)
    } else {
        let len = plan.pick(idx, 0x74_72_75_6e, pristine.len());
        std::fs::write(&path, &pristine[..len]).map_err(|e| format!("{}: {e}", path.display()))?;
        ("truncate", len)
    };

    // Parent-side load: must detect the corrupt newest generation and
    // fall back to an older one (populating the store's telemetry
    // counters along the way).
    let detected_and_recovered = match cp.load_latest() {
        Ok(Some((generation, _, skipped))) => generation < newest && !skipped.is_empty(),
        _ => false,
    };

    // Child resume from the corrupted store: the fallback generation is
    // an earlier iteration of the same trajectory, so the resumed run
    // must still land on the baseline.
    let resume_extra = vec![
        "--dir".to_string(),
        dir.to_string_lossy().into_owned(),
        "--resume".to_string(),
    ];
    let (resume_ok, resume_out) = runner.run(&train_args(cfg, &resume_extra))?;
    let bit_identical = resume_ok && det_line(&resume_out) == Some(baseline);

    std::fs::write(&path, &pristine).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(CorruptionTrialResult {
        trial: t,
        kind: kind.to_string(),
        at,
        detected_and_recovered,
        bit_identical,
    })
}

/// Runs the whole campaign under `dir` (created if needed; every run gets
/// its own subdirectory).
///
/// # Errors
///
/// Returns an error when a child cannot be spawned, the baseline run
/// fails, or the store cannot be read — not when an invariant is
/// violated; violations are data (see [`violations`]).
pub fn run_campaign(
    cfg: &CrashtestConfig,
    runner: &dyn ChildRunner,
    dir: &Path,
) -> Result<CrashtestResult, String> {
    if cfg.iters < 2 || cfg.batch == 0 {
        return Err("crashtest needs --iters >= 2 and a non-zero batch".to_string());
    }
    let (baseline_ok, baseline_out) = runner.run(&train_args(cfg, &[]))?;
    if !baseline_ok {
        return Err(format!("baseline run failed:\n{baseline_out}"));
    }
    let baseline = det_line(&baseline_out)
        .ok_or_else(|| "baseline run printed no deterministic line".to_string())?
        .to_string();

    let mut points = Vec::new();
    for p in 0..cfg.points {
        points.push(run_point(cfg, runner, dir, &baseline, p)?);
    }

    let mut trials = Vec::new();
    if cfg.trials > 0 {
        // One completed run seeds the store the corruption trials attack.
        let trial_dir = dir.join("corruption");
        let extra = vec![
            "--dir".to_string(),
            trial_dir.to_string_lossy().into_owned(),
        ];
        let (seed_ok, seed_out) = runner.run(&train_args(cfg, &extra))?;
        if !seed_ok {
            return Err(format!("store-seeding run failed:\n{seed_out}"));
        }
        for t in 0..cfg.trials {
            trials.push(run_trial(cfg, runner, &trial_dir, &baseline, t)?);
        }
    }

    Ok(CrashtestResult {
        config: cfg.clone(),
        baseline,
        points,
        trials,
    })
}

/// The invariants the campaign enforces. An empty vector means the
/// durability layer held up.
pub fn violations(result: &CrashtestResult) -> Vec<String> {
    let mut v = Vec::new();
    for p in &result.points {
        if !p.crashed {
            v.push(format!(
                "point {}: injected crash at iteration {} ({}) did not kill the child",
                p.point, p.iteration, p.phase
            ));
        }
        if !p.resumed {
            v.push(format!(
                "point {}: resume after {} crash at iteration {} failed",
                p.point, p.phase, p.iteration
            ));
        }
        if !p.bit_identical {
            v.push(format!(
                "point {}: resumed run diverged from the uninterrupted baseline ({} crash at iteration {})",
                p.point, p.phase, p.iteration
            ));
        }
    }
    for t in &result.trials {
        if !t.detected_and_recovered {
            v.push(format!(
                "trial {}: {} at {} was not detected with fallback — a corrupt checkpoint could load silently",
                t.trial, t.kind, t.at
            ));
        }
        if !t.bit_identical {
            v.push(format!(
                "trial {}: resume from corrupted store diverged from the baseline ({} at {})",
                t.trial, t.kind, t.at
            ));
        }
    }
    v
}

/// Renders the campaign as aligned text tables, for the CLI and the
/// bench binary.
pub fn render_summary(result: &CrashtestResult) -> String {
    let mut out = String::from(
        "Crash-injection campaign (seeded kills + checkpoint corruption, child processes):\n\n",
    );
    out.push_str(&format!(
        "{:<6} {:>9} {:<15} {:>6} {:>8} {:>8} {:>14}\n",
        "point", "iteration", "phase", "bytes", "crashed", "resumed", "bit-identical"
    ));
    for p in &result.points {
        out.push_str(&format!(
            "{:<6} {:>9} {:<15} {:>6} {:>8} {:>8} {:>14}\n",
            p.point, p.iteration, p.phase, p.bytes, p.crashed, p.resumed, p.bit_identical
        ));
    }
    if !result.trials.is_empty() {
        out.push_str(&format!(
            "\n{:<6} {:<9} {:>6} {:>20} {:>14}\n",
            "trial", "kind", "at", "detected+recovered", "bit-identical"
        ));
        for t in &result.trials {
            out.push_str(&format!(
                "{:<6} {:<9} {:>6} {:>20} {:>14}\n",
                t.trial, t.kind, t.at, t.detected_and_recovered, t.bit_identical
            ));
        }
    }
    out.push_str(&format!(
        "\nbaseline {}\n",
        &result.baseline[..result.baseline.len().min(72)]
    ));
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn derived_points_cover_every_phase_and_stay_in_range() {
        let cfg = CrashtestConfig::smoke(2024);
        let mut phases = std::collections::BTreeSet::new();
        for p in 0..cfg.points {
            let (iteration, phase, _bytes) = derive_point(&cfg, p);
            assert!((1..cfg.iters).contains(&iteration), "iteration {iteration}");
            phases.insert(phase);
            // Determinism: the same (seed, p) derives the same point.
            assert_eq!(derive_point(&cfg, p), derive_point(&cfg, p));
        }
        assert_eq!(
            phases.len(),
            3.min(cfg.points),
            "phases must cycle: {phases:?}"
        );
    }

    #[test]
    fn violations_flag_every_failure_mode() {
        let good = CrashtestResult {
            config: CrashtestConfig::smoke(1),
            baseline: "deterministic:{}".to_string(),
            points: vec![CrashPointResult {
                point: 0,
                iteration: 2,
                phase: "mid-write".to_string(),
                bytes: 17,
                crashed: true,
                resumed: true,
                bit_identical: true,
            }],
            trials: vec![CorruptionTrialResult {
                trial: 0,
                kind: "bit-flip".to_string(),
                at: 40,
                detected_and_recovered: true,
                bit_identical: true,
            }],
        };
        assert!(violations(&good).is_empty());

        let mut bad = good.clone();
        bad.points[0].crashed = false;
        bad.points[0].bit_identical = false;
        bad.trials[0].detected_and_recovered = false;
        let v = violations(&bad);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().any(|m| m.contains("did not kill")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("diverged")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("load silently")), "{v:?}");
    }

    #[test]
    fn summary_renders_points_and_trials() {
        let result = CrashtestResult {
            config: CrashtestConfig::smoke(1),
            baseline: "deterministic:{\"seed\":1}".to_string(),
            points: vec![CrashPointResult {
                point: 0,
                iteration: 3,
                phase: "before-publish".to_string(),
                bytes: 0,
                crashed: true,
                resumed: true,
                bit_identical: true,
            }],
            trials: vec![CorruptionTrialResult {
                trial: 1,
                kind: "truncate".to_string(),
                at: 12,
                detected_and_recovered: true,
                bit_identical: true,
            }],
        };
        let text = render_summary(&result);
        assert!(text.contains("before-publish"));
        assert!(text.contains("truncate"));
        assert!(text.contains("bit-identical"));
    }

    /// A scripted runner standing in for real child processes: the
    /// campaign's control flow and verdicts are exercised without forks.
    struct ScriptedRunner;

    impl ChildRunner for ScriptedRunner {
        fn run(&self, args: &[String]) -> Result<(bool, String), String> {
            assert_eq!(args[0], "train");
            if args.iter().any(|a| a == "--crash-iter") {
                // Crash children die without a deterministic line.
                return Ok((false, String::new()));
            }
            // Baseline, store-seeding and resume children all land on
            // the same trajectory.
            Ok((true, "train: ...\ndeterministic:{\"seed\":9}\n".to_string()))
        }
    }

    #[test]
    fn campaign_with_scripted_runner_passes_point_invariants() {
        let cfg = CrashtestConfig {
            trials: 0, // corruption trials need a real on-disk store
            ..CrashtestConfig::smoke(9)
        };
        let dir =
            std::env::temp_dir().join(format!("zfgan-crashtest-scripted-{}", std::process::id()));
        let result = run_campaign(&cfg, &ScriptedRunner, &dir).unwrap();
        assert_eq!(result.points.len(), cfg.points);
        assert!(violations(&result).is_empty(), "{:?}", violations(&result));
        assert_eq!(result.baseline, "deterministic:{\"seed\":9}");
    }
}
