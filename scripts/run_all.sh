#!/usr/bin/env bash
# Regenerates every experiment of the paper plus the extensions, then the
# Markdown digest. Run from the repository root.
set -euo pipefail

BINS=(table3 table4 table5 fig15 fig16 fig17 fig18 fig19 memory zeros \
      timeline ablation related_work quantization energy report)

cargo build --release -p zfgan-bench --bins

for bin in "${BINS[@]}"; do
    echo "=== $bin ==="
    "./target/release/$bin"
done

echo "All experiments regenerated; digest at results/RESULTS.md"
