#!/usr/bin/env bash
# The repository's CI gate: formatting, lints (warnings are errors), the
# release build, and the full test suite. Run from the repository root.
set -euo pipefail

echo "=== cargo fmt --check ==="
cargo fmt --all --check

echo "=== cargo clippy (deny warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo build --release ==="
cargo build --release

echo "=== cargo test ==="
cargo test -q

echo "CI gate passed."
