#!/usr/bin/env bash
# The repository's CI gate: formatting, lints (warnings are errors), the
# release build, and the full test suite. Run from the repository root.
set -euo pipefail

echo "=== cargo fmt --check ==="
cargo fmt --all --check

echo "=== cargo clippy (deny warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo build --release ==="
cargo build --release

echo "=== cargo test ==="
cargo test -q

echo "=== tensor suite under ZFGAN_NO_SIMD=1 ==="
# The portable scalar kernels must pass the same suite as the runtime-
# detected SIMD kernels — the microkernel dispatch table's fallback
# contract.
ZFGAN_NO_SIMD=1 cargo test -q -p zfgan-tensor

echo "=== fault-injection smoke campaign ==="
# Fixed seed; the binary exits non-zero if any resilience invariant is
# violated (no detections, silent accumulator corruptions, training
# failing to complete under rollback).
ZFGAN_FAULTS_SEED=2024 cargo run -q --release -p zfgan-bench --bin faults

echo "=== telemetry smoke gate ==="
# Two separate same-seed processes must produce (a) trace files that
# parse as Chrome-trace JSON (trace --check re-parses them) and (b)
# byte-identical deterministic sections — the observability layer's
# reproducibility contract.
tdir="$(mktemp -d)"
trap 'rm -rf "$tdir"' EXIT
cargo run -q --release -p zfgan -- trace --seed 2024 --out "$tdir/t1.json" > /dev/null
cargo run -q --release -p zfgan -- trace --seed 2024 --out "$tdir/t2.json" > /dev/null
cargo run -q --release -p zfgan -- trace --check "$tdir/t1.json" | grep '^deterministic:' > "$tdir/d1"
cargo run -q --release -p zfgan -- trace --check "$tdir/t2.json" | grep '^deterministic:' > "$tdir/d2"
diff "$tdir/d1" "$tdir/d2"
cargo run -q --release -p zfgan -- sweep cgan --trace-out "$tdir/s1.json" > /dev/null
cargo run -q --release -p zfgan -- sweep cgan --trace-out "$tdir/s2.json" > /dev/null
cargo run -q --release -p zfgan -- trace --check "$tdir/s1.json" | grep '^deterministic:' > "$tdir/sd1"
cargo run -q --release -p zfgan -- trace --check "$tdir/s2.json" | grep '^deterministic:' > "$tdir/sd2"
diff "$tdir/sd1" "$tdir/sd2"
echo "telemetry deterministic sections are byte-identical"

echo "=== Q8.8 SIMD byte-identity sweep ==="
# The vectorized fixed-point microkernel must reproduce the scalar Fx
# semantics bit-for-bit: the deterministic Q8.8 conv sweep's transcript
# (digests of every result's raw i16 payload) is diffed between a
# SIMD-dispatched run and a ZFGAN_NO_SIMD=1 run.
cargo run -q --release -p zfgan-bench --bin fxsweep > "$tdir/fx_simd.txt"
ZFGAN_NO_SIMD=1 cargo run -q --release -p zfgan-bench --bin fxsweep > "$tdir/fx_scalar.txt"
diff "$tdir/fx_simd.txt" "$tdir/fx_scalar.txt"
echo "Q8.8 sweep transcripts are byte-identical"

echo "=== forced-kernel dispatch sweep ==="
# Every GEMM dispatch path must uphold both bit-equality families on its
# own: pin each engine via ZFGAN_FORCE_KERNEL, run the tensor suite on the
# scalar kernels (the broadest portable surface), and byte-diff the Q8.8
# sweep transcript against the dispatched run above.
for path in packed ikj smallm; do
    ZFGAN_NO_SIMD=1 ZFGAN_FORCE_KERNEL="$path" cargo test -q -p zfgan-tensor
    ZFGAN_FORCE_KERNEL="$path" cargo run -q --release -p zfgan-bench --bin fxsweep \
        > "$tdir/fx_$path.txt"
    diff "$tdir/fx_simd.txt" "$tdir/fx_$path.txt"
    echo "forced $path: tensor suite + Q8.8 transcript OK"
done

echo "=== bench smoke (pool + workspace + microkernel regression gates) ==="
# Short measurement windows; each harness asserts its own gate (packed
# GEMM >= 4x vs naive, packed train step >= 2x vs the reference engine,
# exec engine >= 3x headline / >= 1.5x wgrad vs the scalar oracle).
# ZFGAN_RESULTS_DIR keeps the quick numbers out of the tracked results/
# sidecars. Two full rounds: every run also appends its rows to the
# bench-history ledger, and the perf gate below compares round 2 against
# round 1's rolling baseline.
#
# The gates are min-based, but on the one-core CI host whole processes
# still shift by ~30% (allocation-address luck aliases the baselines'
# entire distribution, not single samples — a paired in-process probe
# shows forced-vs-dispatched within 1.3%), so a harness gets up to three
# attempts before its gate counts as a regression; a real regression
# fails every fresh process the same way. Every attempt's transcript is
# kept: the ledger gate below sums the "[appended N rows" lines across
# all attempts, failed ones included (rows are appended before the gates
# assert).
bench_smoke() {
    bench="$1" ms="$2" out_prefix="$3"
    for try in 1 2 3; do
        if ZFGAN_BENCH_MS="$ms" ZFGAN_RESULTS_DIR="$tdir/results" \
            cargo bench -q -p zfgan-bench --bench "$bench" \
            > "${out_prefix}_try$try.txt" 2>&1; then
            return 0
        fi
        echo "bench $bench attempt $try failed a gate; retrying" >&2
        # Noise episodes span minutes, not samples; give one a chance to
        # pass instead of burning the remaining attempts inside it.
        sleep 20
    done
    cat "${out_prefix}_try3.txt" >&2
    return 1
}
for round in 1 2; do
    bench_smoke gemm 100 "$tdir/bench_gemm_$round"
    bench_smoke trainstep 25 "$tdir/bench_trainstep_$round"
    # Exec engine smoke: asserts the fast engine holds >= 3x over the
    # scalar oracle on the headline forward/transposed executors.
    bench_smoke exec 50 "$tdir/bench_exec_$round"
    # DSE engine smoke: asserts a warm-cache fig15 sweep is >= 10x faster
    # than cold with a byte-identical stream.
    bench_smoke dse 25 "$tdir/bench_dse_$round"
    echo "bench gates passed (round $round)"
done

echo "=== perf ledger + regression gate ==="
# Every harness prints "[appended N rows to ...]" after writing its ledger
# rows; the ledger must hold exactly the sum of what the harnesses said
# they appended (no dropped or duplicated rows). Deriving the expectation
# from the output keeps this gate honest when a bench adds or removes a
# measured series.
expected="$(sed -n 's/^\[appended \([0-9][0-9]*\) rows to .*/\1/p' "$tdir"/bench_*.txt \
    | awk '{ sum += $1 } END { print sum }')"
rows="$(wc -l < "$tdir/results/bench_history.jsonl")"
if [ -z "$expected" ] || [ "$expected" -eq 0 ]; then
    echo "no '[appended N rows' lines found in bench output" >&2
    exit 1
fi
if [ "$rows" -ne "$expected" ]; then
    echo "bench_history.jsonl has $rows rows, harnesses reported $expected" >&2
    exit 1
fi
# Smoke windows are tiny (25-50 ms), so run-to-run noise well exceeds the
# 35 % default; widen the floor like the other bench gates' 3-4x margins.
ZFGAN_RESULTS_DIR="$tdir/results" cargo run -q --release -p zfgan -- perf --check --tolerance 120
echo "perf ledger accumulated $rows rows; --check passed on identical runs"

echo "=== report byte-identity gate ==="
# Two same-seed attribution reports must be byte-identical end to end
# (all quantities are integers derived from seeded cycle state), and the
# shared trace/report validator must accept the report JSON and print the
# same deterministic section for both.
cargo run -q --release -p zfgan -- report --seed 2024 --out "$tdir/r1.json" \
    | grep -v '^report written to ' > "$tdir/rout1.txt"
cargo run -q --release -p zfgan -- report --seed 2024 --out "$tdir/r2.json" \
    | grep -v '^report written to ' > "$tdir/rout2.txt"
diff "$tdir/r1.json" "$tdir/r2.json"
diff "$tdir/rout1.txt" "$tdir/rout2.txt"
cargo run -q --release -p zfgan -- trace --check "$tdir/r1.json" | grep '^deterministic:' > "$tdir/rd1"
cargo run -q --release -p zfgan -- trace --check "$tdir/r2.json" | grep '^deterministic:' > "$tdir/rd2"
diff "$tdir/rd1" "$tdir/rd2"
echo "attribution reports are byte-identical"

echo "=== serve-metrics smoke ==="
# Start the scrape endpoint on an ephemeral port, scrape /metrics with
# the built-in TcpStream client, assert the self-metric counter line,
# and let the --max-requests bound shut the server down cleanly.
cargo run -q --release -p zfgan -- serve-metrics --addr 127.0.0.1:0 --max-requests 1 \
    > "$tdir/serve.log" &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q 'serving metrics' "$tdir/serve.log" && break
    sleep 0.1
done
addr="$(sed -n 's|.*http://\([0-9.:]*\)/metrics.*|\1|p' "$tdir/serve.log")"
cargo run -q --release -p zfgan -- serve-metrics --scrape "$addr" > "$tdir/scrape.txt"
grep -q 'serve_requests_total{path="/metrics"} 1' "$tdir/scrape.txt"
wait "$serve_pid"
echo "serve-metrics scrape round-trip passed"

echo "=== executor trace byte-identity across pool widths ==="
# A traced ZFOST execution's deterministic telemetry section must be
# byte-identical whether the engine's channel-group fan-out runs inline
# or across four pool workers.
ZFGAN_THREADS=1 cargo run -q --release -p zfgan -- trace --arch zfost --seed 2024 \
    --out "$tdir/x1.json" > /dev/null
ZFGAN_THREADS=4 cargo run -q --release -p zfgan -- trace --arch zfost --seed 2024 \
    --out "$tdir/x4.json" > /dev/null
cargo run -q --release -p zfgan -- trace --check "$tdir/x1.json" | grep '^deterministic:' > "$tdir/xd1"
cargo run -q --release -p zfgan -- trace --check "$tdir/x4.json" | grep '^deterministic:' > "$tdir/xd4"
diff "$tdir/xd1" "$tdir/xd4"
echo "executor trace is byte-identical across pool widths"

echo "=== pooled sweep byte-identity ==="
# The same seed must produce byte-identical sweep output no matter how
# the persistent pool schedules the fan-out (order-preserving merge).
ZFGAN_THREADS=4 cargo run -q --release -p zfgan -- sweep cgan > "$tdir/p1"
ZFGAN_THREADS=2 cargo run -q --release -p zfgan -- sweep cgan > "$tdir/p2"
diff "$tdir/p1" "$tdir/p2"
echo "sweep output is byte-identical across pool widths"

echo "=== crash-resume gate ==="
# The deterministic crash-injection campaign: kill train children at
# seeded points (before-publish, torn mid-write, after-publish), resume
# from the surviving store, byte-diff the resumed deterministic section
# against an uninterrupted baseline; then corrupt stored checkpoint
# generations and assert detection + fallback. Exits non-zero on any
# violated durability invariant.
cargo run -q --release -p zfgan -- crashtest --seed 2024 --dir "$tdir/crashtest" > /dev/null
echo "crash-resume campaign passed"

echo "=== corrupted-store smoke ==="
# Train into a store, flip one byte of the newest generation, resume:
# the corruption must be detected (fallback note printed) and the
# resumed run must still match the uninterrupted baseline byte for byte.
cargo run -q --release -p zfgan -- train --seed 2024 --iters 4 > "$tdir/base.txt"
cargo run -q --release -p zfgan -- train --seed 2024 --iters 4 --dir "$tdir/cstore" > /dev/null
newest="$(ls "$tdir/cstore/train" | sort | tail -1)"
printf '\x01' | dd of="$tdir/cstore/train/$newest" bs=1 seek=40 count=1 conv=notrunc status=none
cargo run -q --release -p zfgan -- train --seed 2024 --iters 4 --dir "$tdir/cstore" --resume > "$tdir/resume.txt"
grep -q 'fallback: generation' "$tdir/resume.txt"
diff <(grep '^deterministic:' "$tdir/base.txt") <(grep '^deterministic:' "$tdir/resume.txt")
echo "corrupted store detected, fell back, resumed byte-identically"

echo "=== DSE service gate (cold shards -> warm -> corrupted cell) ==="
# Cold: two spawned shard children compute and publish the fig15 key
# space through the work-unit protocol; the parent then serves the whole
# batch out of the shared cache (pure hits by construction). Warm: a
# single-threaded rerun hits every cell. Corrupted: one flipped byte in a
# stored generation is detected, recomputed and republished. All three
# canonical streams must be byte-identical, and the dse_* counters must
# tell the true cache story each time.
dse_counter() { # file counter -> value (0 when the series is absent)
    sed -n "s/.*$2{namespace=\"fig15\"} *\([0-9][0-9]*\).*/\1/p" "$1" \
        | grep . || echo 0
}
ZFGAN_THREADS=4 cargo run -q --release -p zfgan -- dse fig15 \
    --cache "$tdir/dsecache" --shards 2 --out "$tdir/dse_cold.jsonl" \
    --telemetry > "$tdir/dse_cold.txt"
ZFGAN_THREADS=1 cargo run -q --release -p zfgan -- dse fig15 \
    --cache "$tdir/dsecache" --out "$tdir/dse_warm.jsonl" \
    --telemetry > "$tdir/dse_warm.txt"
cells="$(dse_counter "$tdir/dse_cold.txt" dse_cells_total)"
[ "$cells" -gt 0 ]
# The sharded cold parent and the warm rerun both serve pure hits.
for run in dse_cold dse_warm; do
    [ "$(dse_counter "$tdir/$run.txt" dse_cache_hits_total)" -eq "$cells" ]
    [ "$(dse_counter "$tdir/$run.txt" dse_cache_misses_total)" -eq 0 ]
done
# Flip one byte inside one cell's stored generation and rerun: exactly
# one miss, one republish, and the stream must not change.
victim="$(find "$tdir/dsecache" -name '*.zfc' -path '*fig15-*' | sort | head -1)"
printf '\x01' | dd of="$victim" bs=1 seek=60 count=1 conv=notrunc status=none
cargo run -q --release -p zfgan -- dse fig15 \
    --cache "$tdir/dsecache" --out "$tdir/dse_corrupt.jsonl" \
    --telemetry > "$tdir/dse_corrupt.txt"
[ "$(dse_counter "$tdir/dse_corrupt.txt" dse_cache_misses_total)" -eq 1 ]
[ "$(dse_counter "$tdir/dse_corrupt.txt" dse_published_total)" -eq 1 ]
diff "$tdir/dse_cold.jsonl" "$tdir/dse_warm.jsonl"
diff "$tdir/dse_cold.jsonl" "$tdir/dse_corrupt.jsonl"
echo "dse streams are byte-identical (cold shards, warm, corrupted cell)"

echo "CI gate passed."
