#!/usr/bin/env bash
# The repository's CI gate: formatting, lints (warnings are errors), the
# release build, and the full test suite. Run from the repository root.
set -euo pipefail

echo "=== cargo fmt --check ==="
cargo fmt --all --check

echo "=== cargo clippy (deny warnings) ==="
cargo clippy --workspace --all-targets -- -D warnings

echo "=== cargo build --release ==="
cargo build --release

echo "=== cargo test ==="
cargo test -q

echo "=== fault-injection smoke campaign ==="
# Fixed seed; the binary exits non-zero if any resilience invariant is
# violated (no detections, silent accumulator corruptions, training
# failing to complete under rollback).
ZFGAN_FAULTS_SEED=2024 cargo run -q --release -p zfgan-bench --bin faults

echo "CI gate passed."
