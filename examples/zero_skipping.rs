//! Watch the zero-free dataflows compute *real numbers*: the functional
//! executors walk the ZFOST/ZFWST schedules tile by tile, and their outputs
//! are compared against the golden-reference convolutions while their
//! enumerated cycle counts are compared against the closed-form models.
//!
//! Run with `cargo run --release --example zero_skipping`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::dataflow::exec::{zfost_s_conv, zfost_t_conv, zfwst_wgrad_s, zfwst_wgrad_t};
use zfgan::dataflow::{Dataflow, Ost, Zfost, Zfwst};
use zfgan::sim::{ConvKind, ConvShape};
use zfgan::tensor::{
    s_conv, t_conv, w_conv_for_s_layer, w_conv_for_t_layer, ConvGeom, Fmaps, Kernels,
};

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);
    let geom = ConvGeom::down(16, 16, 4, 4, 2, 8, 8).expect("static geometry");
    let (small_c, large_c) = (8usize, 3usize);
    let phase = ConvShape::new(ConvKind::S, geom, small_c, large_c, 16, 16);
    let big: Fmaps<f32> = Fmaps::random(large_c, 16, 16, 1.0, &mut rng);
    let small: Fmaps<f32> = Fmaps::random(small_c, 8, 8, 1.0, &mut rng);
    let k: Kernels<f32> = Kernels::random(small_c, large_c, 4, 4, 0.25, &mut rng);
    let zfost = Zfost::new(4, 4, 8);
    let zfwst = Zfwst::new(4, 4, 8);
    let ost = Ost::new(4, 4, 8);

    println!("Functional execution of the zero-free dataflows (16×16 layer, 8↔3 maps)\n");

    // S-CONV on ZFOST.
    let out = zfost_s_conv(&zfost, &phase, &big, &k).expect("operands match phase");
    let reference = s_conv(&big, &k, &geom).expect("operands match");
    println!(
        "S-CONV  on ZFOST : {:>6} cycles (closed form {:>6}), max |Δ| vs reference = {:.2e}",
        out.cycles,
        zfost.schedule(&phase).cycles,
        out.output.max_abs_diff(&reference)
    );

    // T-CONV on ZFOST vs OST.
    let t_phase = phase.with_kind(ConvKind::T);
    let out = zfost_t_conv(&zfost, &t_phase, &small, &k).expect("operands match phase");
    let reference = t_conv(&small, &k, &geom).expect("operands match");
    println!(
        "T-CONV  on ZFOST : {:>6} cycles (closed form {:>6}), max |Δ| vs reference = {:.2e}",
        out.cycles,
        zfost.schedule(&t_phase).cycles,
        out.output.max_abs_diff(&reference)
    );
    println!(
        "T-CONV  on OST   : {:>6} cycles — the inserted zeros cost {:.1}×",
        ost.schedule(&t_phase).cycles,
        ost.schedule(&t_phase).cycles as f64 / out.cycles as f64
    );

    // W-CONV (D̄w) on ZFWST.
    let w_phase = phase.with_kind(ConvKind::WGradS);
    let out = zfwst_wgrad_s(&zfwst, &w_phase, &big, &small).expect("operands match phase");
    let reference = w_conv_for_s_layer(&big, &small, &geom).expect("operands match");
    println!(
        "D̄w     on ZFWST : {:>6} cycles (closed form {:>6}), max |Δ| vs reference = {:.2e}",
        out.cycles,
        zfwst.schedule(&w_phase).cycles,
        out.output.max_abs_diff(&reference)
    );

    // W-CONV (Ḡw) on ZFWST.
    let gw_phase = phase.with_kind(ConvKind::WGradT);
    let out = zfwst_wgrad_t(&zfwst, &gw_phase, &small, &big).expect("operands match phase");
    let reference = w_conv_for_t_layer(&small, &big, &geom).expect("operands match");
    println!(
        "Ḡw     on ZFWST : {:>6} cycles (closed form {:>6}), max |Δ| vs reference = {:.2e}",
        out.cycles,
        zfwst.schedule(&gw_phase).cycles,
        out.output.max_abs_diff(&reference)
    );

    println!("\nEvery dataflow computed the exact same numbers as the textbook loop nest —");
    println!("the cycle counts in the paper's figures belong to *executable* schedules.");
}
