//! Deploy the accelerator on a GAN the paper never evaluated: a 128×128
//! DCGAN-style network built with [`GanSpec::ladder`], sized with the
//! Eq. 7/8 machinery, and sanity-checked against the platform limits.
//!
//! Shows the full "hardware engineer" workflow: define the workload, print
//! the datasheet, check the roofline, and decide whether the VCU118-class
//! part still cuts it.
//!
//! Run with `cargo run --release --example custom_gan`.

use zfgan::accel::{datasheet, AccelConfig, GanAccelerator, MemoryAnalysis};
use zfgan::workloads::GanSpec;

fn main() {
    // A 128×128 RGB GAN: one more ladder rung than the paper's DCGAN.
    let spec = GanSpec::ladder("DCGAN-128", 128, 3, 128, 64, 4);
    println!(
        "Workload: {} — {} discriminator layers, {:.1} GOP per training sample\n",
        spec.name(),
        spec.layers().len(),
        spec.iteration_ops() as f64 / 1e9
    );

    // The paper's platform, unchanged.
    let accel = GanAccelerator::new(AccelConfig::vcu118(), spec.clone());
    println!("{}", datasheet(&accel, 32));

    // Does deferred synchronization still save the day at this scale?
    let mem = MemoryAnalysis::analyse(&spec, 256, 2);
    println!(
        "Intermediates @ batch 256: synchronized {:.1} MB vs deferred {:.1} KB ({}x)",
        mem.synchronized_bytes as f64 / 1e6,
        mem.deferred_bytes as f64 / 1e3,
        mem.reduction_factor()
    );
    println!(
        "Deferred fits on chip: {}; synchronized: {}",
        mem.deferred_fits_on_chip, mem.synchronized_fits_on_chip
    );

    // Would doubling the PE budget help, or does DRAM take over?
    println!("\nScaling study at 128×128:");
    for total in [1680usize, 3360, 6720] {
        let cfg = AccelConfig::with_total_pes(total);
        let a = GanAccelerator::new(cfg, spec.clone());
        let bound = if a.is_bandwidth_bound() {
            "DRAM-bound"
        } else {
            "compute-bound"
        };
        println!(
            "  {total:>5} PEs: {:>8} cyc/sample ({bound}) — {:.0} GOPS",
            a.iteration_cycles_per_sample(),
            a.iteration_report(8).gops
        );
    }
}
