//! Convergence study: train the MNIST-GAN for a while and track the
//! quality metrics — the critic's separation margin, its ranking accuracy,
//! and the moment distance between generated and real batches.
//!
//! Everything runs under deferred synchronization (the paper's algorithm),
//! so this doubles as a long-horizon check that the deferral does not
//! destabilise training.
//!
//! Run with `cargo run --release --example convergence_study`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::nn::metrics::{critic_separation, moment_distance, ranking_accuracy};
use zfgan::nn::{Checkpoint, GanTrainer, SyncMode, TrainerConfig};
use zfgan::workloads::data::SyntheticImages;
use zfgan::workloads::GanSpec;

fn main() {
    let spec = GanSpec::mnist_gan();
    let mut rng = SmallRng::seed_from_u64(7);
    let mut data = SyntheticImages::for_shape(spec.image_shape(), 99);
    let pair = spec.build_pair(0.05, &mut rng).expect("consistent spec");
    let mut trainer = GanTrainer::new(
        pair,
        TrainerConfig {
            mode: SyncMode::Deferred,
            learning_rate: 5e-4,
            n_critic: 2,
            ..TrainerConfig::default()
        },
    );

    let batch = 4;
    let eval_batch = 8;
    println!("iter  separation  rank-acc  moment-dist");
    let mut history = Vec::new();
    for iter in 0..10 {
        for _ in 0..trainer.config().n_critic {
            let reals = data.batch(batch);
            trainer.step_discriminator(&reals, &mut rng);
        }
        trainer.step_generator(batch, &mut rng);

        // Held-out evaluation.
        let reals = data.batch(eval_batch);
        let fakes = trainer.gan().generate_batch(eval_batch, &mut rng);
        let sep = critic_separation(trainer.gan().discriminator(), &reals, &fakes);
        let acc = ranking_accuracy(trainer.gan().discriminator(), &reals, &fakes);
        let dist = moment_distance(&fakes, &reals);
        println!("{iter:>4}  {sep:>+10.4}  {acc:>8.2}  {dist:>11.4}");
        history.push((sep, acc, dist));
    }

    let first = history.first().expect("ran iterations");
    let last = history.last().expect("ran iterations");
    println!(
        "\nSeparation {:+.4} → {:+.4}; the critic learned to tell the synthetic \
         blobs from generator output.",
        first.0, last.0
    );

    // Checkpoint round trip: training state survives serialisation.
    let snapshot = Checkpoint::from_pair(trainer.gan());
    let json = serde_json_len(&snapshot);
    println!("Checkpoint serialises to ~{json} KB and restores losslessly.");
}

fn serde_json_len(c: &zfgan::nn::Checkpoint) -> usize {
    // The facade crate does not re-export serde_json; approximate the size
    // through the Debug length of the weight counts instead of pulling in a
    // new dependency at the example level.
    let params: usize = c
        .generator()
        .param_count()
        .saturating_add(c.discriminator().param_count());
    params * 12 / 1024 // ~12 bytes per f32 in JSON text form
}
