//! Quickstart: a five-minute tour of `zfgan`.
//!
//! 1. Train a tiny WGAN with the paper's deferred-synchronization trainer.
//! 2. Schedule a transposed convolution on a traditional OST array and on
//!    the paper's zero-free ZFOST — same PEs, ~4× fewer cycles.
//! 3. Ask the full accelerator model for its throughput on the cGAN
//!    workload.
//!
//! Run with `cargo run --release --example quickstart`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::accel::{AccelConfig, GanAccelerator};
use zfgan::dataflow::{Dataflow, Ost, Zfost};
use zfgan::nn::{GanPair, GanTrainer, SyncMode, TrainerConfig};
use zfgan::sim::{ConvKind, ConvShape};
use zfgan::tensor::ConvGeom;
use zfgan::workloads::GanSpec;

fn main() {
    // --- 1. Train a tiny GAN with deferred synchronization. -------------
    let mut rng = SmallRng::seed_from_u64(7);
    let pair = GanPair::tiny(&mut rng);
    let mut trainer = GanTrainer::new(
        pair,
        TrainerConfig {
            mode: SyncMode::Deferred,
            learning_rate: 1e-3,
            n_critic: 1,
            ..TrainerConfig::default()
        },
    );
    println!("Training a tiny 8×8 WGAN (deferred synchronization):");
    for step in 0..10 {
        let reals = trainer.gan().sample_real_batch(8, &mut rng);
        let report = trainer.step_discriminator(&reals, &mut rng);
        if step % 3 == 0 {
            println!(
                "  step {step:2}: Wasserstein estimate {:+.4}, buffered traces at peak: {}",
                report.wasserstein_estimate, report.peak_live_traces
            );
        }
    }

    // --- 2. Zero-free scheduling: OST vs ZFOST on a T-CONV. -------------
    let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).expect("static geometry");
    let phase = ConvShape::new(ConvKind::T, geom, 64, 3, 64, 64);
    let ost = Ost::new(4, 4, 75);
    let zfost = Zfost::new(4, 4, 75);
    let c_ost = ost.schedule(&phase).cycles;
    let c_zf = zfost.schedule(&phase).cycles;
    println!("\nGenerator T-CONV (64 maps → 3×64×64), 1200 PEs each:");
    println!("  OST   : {c_ost:>7} cycles (multiplies the inserted zeros)");
    println!(
        "  ZFOST : {c_zf:>7} cycles ({:.1}× faster)",
        c_ost as f64 / c_zf as f64
    );

    // --- 3. The full accelerator on the cGAN workload. ------------------
    let accel = GanAccelerator::new(AccelConfig::vcu118(), GanSpec::cgan());
    let report = accel.iteration_report(64);
    println!("\nFull accelerator (ZFOST×75 + ZFWST×30 @ 200 MHz) on cGAN:");
    println!(
        "  {:.0} GOPS sustained, {:.1} W, {:.1} GOPS/W",
        report.gops, report.watts, report.gops_per_watt
    );
    println!(
        "  {:.2} ms per 64-sample training iteration",
        report.seconds_per_iteration * 1e3
    );
}
