//! Train the paper's MNIST-GAN (Table IV) end to end on synthetic data.
//!
//! Demonstrates the full algorithm side of the reproduction:
//!
//! * the MNIST-GAN Discriminator/Generator pair built from its `GanSpec`,
//! * WGAN training (RMSProp, weight clipping, n_critic) under **deferred
//!   synchronization**,
//! * the bit-exact equivalence of the deferred and synchronized updates,
//! * the memory high-water marks of both modes.
//!
//! Run with `cargo run --release --example train_mnist_gan`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::nn::{GanTrainer, SyncMode, TrainerConfig};
use zfgan::workloads::data::SyntheticImages;
use zfgan::workloads::GanSpec;

fn main() {
    let spec = GanSpec::mnist_gan();
    let mut rng = SmallRng::seed_from_u64(2024);
    {
        let mut preview_rng = SmallRng::seed_from_u64(0);
        let preview = spec
            .build_pair(0.05, &mut preview_rng)
            .expect("spec is consistent");
        println!("Discriminator:\n{}", preview.discriminator().summary());
        println!("Generator:\n{}", preview.generator().summary());
    }

    // Equivalence check first: one update in both modes from identical
    // weights must produce identical losses.
    let batch = 4;
    let mut data = SyntheticImages::for_shape(spec.image_shape(), 1);
    let reals = data.batch(batch);
    let mut reports = Vec::new();
    for mode in [SyncMode::Synchronized, SyncMode::Deferred] {
        let mut seed_rng = SmallRng::seed_from_u64(5);
        let pair = spec
            .build_pair(0.05, &mut seed_rng)
            .expect("spec is consistent");
        let mut t = GanTrainer::new(
            pair,
            TrainerConfig {
                mode,
                ..TrainerConfig::default()
            },
        );
        let mut step_rng = SmallRng::seed_from_u64(6);
        reports.push(t.step_discriminator(&reals, &mut step_rng));
    }
    assert_eq!(
        reports[0].dis_loss, reports[1].dis_loss,
        "modes must agree exactly"
    );
    println!(
        "\nDeferred == synchronized: dis_loss {:+.6} in both modes;\n\
         peak buffering {} traces (sync) vs {} trace (deferred), {}x fewer elements.",
        reports[0].dis_loss,
        reports[0].peak_live_traces,
        reports[1].peak_live_traces,
        reports[0].peak_buffered_elems / reports[1].peak_buffered_elems.max(1),
    );

    // Then train for real with the deferred trainer.
    let mut seed_rng = SmallRng::seed_from_u64(5);
    let pair = spec
        .build_pair(0.05, &mut seed_rng)
        .expect("spec is consistent");
    let mut trainer = GanTrainer::new(
        pair,
        TrainerConfig {
            mode: SyncMode::Deferred,
            learning_rate: 5e-4,
            n_critic: 2,
            ..TrainerConfig::default()
        },
    );
    println!("\nTraining (deferred, batch {batch}, n_critic 2):");
    for iter in 0..6 {
        let mut last_w = 0.0;
        for _ in 0..trainer.config().n_critic {
            let reals = data.batch(batch);
            let rep = trainer.step_discriminator(&reals, &mut rng);
            last_w = rep.wasserstein_estimate;
        }
        let gen = trainer.step_generator(batch, &mut rng);
        println!(
            "  iter {iter}: Wasserstein {last_w:+.4}, generator loss {:+.4}",
            gen.gen_loss
        );
    }
    println!("\nDone — the critic's separation margin should have grown.");
}
