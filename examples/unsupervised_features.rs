//! The paper's motivation, end to end: "GAN can autonomously learn
//! interpretable, useful feature representation from raw big data."
//!
//! We train the MNIST-GAN critic on **unlabeled** synthetic digits, then —
//! using labels the training never saw — measure whether the critic's
//! internal features cluster by class. The metric is the between-class /
//! within-class distance ratio of the penultimate-layer activations
//! (higher = better-separated classes).
//!
//! Run with `cargo run --release --example unsupervised_features`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::nn::{ConvNet, GanTrainer, SyncMode, TrainerConfig};
use zfgan::workloads::data::SyntheticDigits;
use zfgan::workloads::GanSpec;

/// Flattened penultimate-layer activations of the critic for one image.
fn features(critic: &ConvNet, img: &zfgan::tensor::Fmaps<f32>) -> Vec<f32> {
    let trace = critic.forward(img).expect("image shape");
    let n = critic.layers().len();
    trace.post(n.saturating_sub(2)).as_slice().to_vec()
}

/// Between-class / within-class mean-distance ratio over a labeled set.
fn separation_ratio(feats: &[(usize, Vec<f32>)]) -> f64 {
    let dist = |a: &[f32], b: &[f32]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| f64::from(x - y).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    let (mut within, mut wn, mut between, mut bn) = (0.0f64, 0u64, 0.0f64, 0u64);
    for i in 0..feats.len() {
        for j in (i + 1)..feats.len() {
            let d = dist(&feats[i].1, &feats[j].1);
            if feats[i].0 == feats[j].0 {
                within += d;
                wn += 1;
            } else {
                between += d;
                bn += 1;
            }
        }
    }
    (between / bn.max(1) as f64) / (within / wn.max(1) as f64).max(1e-12)
}

fn main() {
    let spec = GanSpec::mnist_gan();
    let mut rng = SmallRng::seed_from_u64(17);
    let mut data = SyntheticDigits::new(1, 28, 28, 100);

    // Labeled evaluation set — labels withheld from training.
    let mut eval = SyntheticDigits::new(1, 28, 28, 200);
    let labeled: Vec<(usize, zfgan::tensor::Fmaps<f32>)> = (0..30)
        .map(|_| eval.sample())
        .map(|(img, c)| (c, img))
        .collect();

    let mut build_rng = SmallRng::seed_from_u64(3);
    let pair = spec
        .build_pair(0.05, &mut build_rng)
        .expect("consistent spec");

    let measure = |critic: &ConvNet| -> f64 {
        let feats: Vec<(usize, Vec<f32>)> = labeled
            .iter()
            .map(|(c, img)| (*c, features(critic, img)))
            .collect();
        separation_ratio(&feats)
    };

    let before = measure(pair.discriminator());
    println!("class-separation ratio of critic features, untrained: {before:.3}");

    let mut trainer = GanTrainer::new(
        pair,
        TrainerConfig {
            mode: SyncMode::Deferred,
            learning_rate: 5e-4,
            n_critic: 2,
            ..TrainerConfig::default()
        },
    );
    for iter in 0..8 {
        for _ in 0..trainer.config().n_critic {
            let reals = data.batch_unlabeled(4); // labels never enter training
            trainer.step_discriminator(&reals, &mut rng);
        }
        trainer.step_generator(4, &mut rng);
        let ratio = measure(trainer.gan().discriminator());
        println!("after iteration {iter}: {ratio:.3}");
    }
    let after = measure(trainer.gan().discriminator());
    println!(
        "\nTrained on raw unlabeled digits, the critic's features separate the\n\
         ten (never-seen) classes {}x better than at initialisation ({before:.3} → {after:.3}).",
        (after / before).max(0.0) as f32
    );
}
