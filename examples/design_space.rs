//! Design-space exploration beyond the paper: sweep the PE budget and the
//! off-chip bandwidth and watch Eq. 7/8 re-derive the accelerator.
//!
//! The paper fixes one design point (192 Gbit/s, 200 MHz, 1680 PEs); this
//! example shows how the model answers "what if" questions a deployment
//! engineer would ask — e.g. how much bandwidth a 2× larger array needs
//! before ZFWST starves.
//!
//! Run with `cargo run --release --example design_space`.

use zfgan::accel::{AccelConfig, GanAccelerator};
use zfgan::workloads::{GanSpec, PhaseSeq};

fn main() {
    let spec = GanSpec::cgan();

    println!("Bandwidth sweep at 200 MHz (Eq. 7 derives W_Pof, Eq. 8 ST_Pof):");
    println!(
        "{:>10}  {:>6}  {:>7}  {:>9}  {:>8}  {:>8}",
        "Gbit/s", "W_Pof", "ST_Pof", "total PEs", "GOPS", "GOPS/W"
    );
    for bw in [48.0, 96.0, 192.0, 384.0] {
        let cfg = AccelConfig::from_platform(200.0, bw, 16);
        let accel = GanAccelerator::new(cfg, spec.clone());
        let r = accel.iteration_report(16);
        println!(
            "{:>10}  {:>6}  {:>7}  {:>9}  {:>8.0}  {:>8.1}",
            bw,
            cfg.w_pof(),
            cfg.st_pof(),
            cfg.total_pes(),
            r.gops,
            r.gops_per_watt
        );
    }

    println!("\nPE sweep at fixed VCU118 bandwidth (2.5:1 split per Eq. 8):");
    println!(
        "{:>9}  {:>7}  {:>6}  {:>10}  {:>8}",
        "total PEs", "ST_Pof", "W_Pof", "cyc/sample", "GOPS"
    );
    for total in [512usize, 1024, 1680, 2048, 4096] {
        let cfg = AccelConfig::with_total_pes(total);
        let accel = GanAccelerator::new(cfg, spec.clone());
        let r = accel.iteration_report(16);
        println!(
            "{:>9}  {:>7}  {:>6}  {:>10}  {:>8.0}",
            cfg.total_pes(),
            cfg.st_pof(),
            cfg.w_pof(),
            r.cycles_per_sample,
            r.gops
        );
    }

    println!("\nWhere does W-ARCH starve? (D-update W/ST cycle ratio per workload)");
    for spec in GanSpec::all_paper_gans() {
        let accel = GanAccelerator::new(AccelConfig::vcu118(), spec.clone());
        let (st, w) = accel.update_stats(PhaseSeq::DisUpdate);
        println!(
            "  {:10}: ST {:>8} cycles, W {:>8} cycles (ratio {:.2} — ≤1 means ZFWST keeps up)",
            spec.name(),
            st.cycles,
            w.cycles,
            w.cycles as f64 / st.cycles as f64
        );
    }
}
