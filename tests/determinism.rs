//! Run-to-run determinism: every simulator-side result in this repository
//! must be a pure function of its inputs — re-running any evaluation
//! produces identical numbers (this is what makes the JSON sidecars
//! diffable and the parallel implementations trustworthy).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::accel::{AccelConfig, Design, GanAccelerator, SyncPolicy};
use zfgan::dataflow::{ArchKind, Dataflow, PhaseTuned, UnrollChoice};
use zfgan::nn::{GanPair, GanTrainer, TrainerConfig};
use zfgan::sim::ConvKind;
use zfgan::tensor::{ConvBackend, Fmaps};
use zfgan::workloads::{GanSpec, PhaseSeq};

#[test]
fn unroll_search_is_deterministic_despite_parallelism() {
    // The search scores candidates on worker threads; the ordered argmin
    // must make the result identical across invocations.
    let phases = GanSpec::cgan().phase_set(ConvKind::T);
    let first = UnrollChoice::search(ArchKind::Zfost, 1200, &phases);
    for _ in 0..5 {
        assert_eq!(UnrollChoice::search(ArchKind::Zfost, 1200, &phases), first);
    }
}

#[test]
fn design_evaluation_is_reproducible() {
    let spec = GanSpec::dcgan();
    let combo = Design::Combo {
        st: ArchKind::Zfost,
        w: ArchKind::Zfwst,
    };
    let a = combo.evaluate(&spec, PhaseSeq::DisUpdate, SyncPolicy::Deferred, 1680);
    let b = combo.evaluate(&spec, PhaseSeq::DisUpdate, SyncPolicy::Deferred, 1680);
    assert_eq!(a, b);
}

#[test]
fn accelerator_reports_are_reproducible() {
    let accel = GanAccelerator::new(AccelConfig::vcu118(), GanSpec::mnist_gan());
    let a = accel.iteration_report(32);
    let b = accel.iteration_report(32);
    assert_eq!(a, b);
}

#[test]
fn training_trajectory_is_backend_invariant() {
    // Two WGAN iterations from identical seeds must land on bit-identical
    // weights within each kernel family: the scalar-reference backend
    // reproduces the golden nests exactly, and every packed-microkernel
    // backend (single-threaded, pooled, dense- or zero-free-lowered)
    // lands on one identical trajectory of its own — the packed f32
    // kernel's fused accumulation order is deterministic, not an
    // approximation knob.
    let run = |backend: ConvBackend| -> Fmaps<f32> {
        let mut pair = GanPair::tiny(&mut SmallRng::seed_from_u64(40));
        pair.set_backend(backend);
        let config = TrainerConfig {
            n_critic: 1,
            ..TrainerConfig::default()
        };
        let mut trainer = GanTrainer::new(pair, config);
        let mut rng = SmallRng::seed_from_u64(41);
        for _ in 0..2 {
            trainer.train_iteration(2, &mut rng);
        }
        let z = trainer
            .gan()
            .sample_z_batch(1, &mut SmallRng::seed_from_u64(42));
        trainer.gan().generate(&z[0])
    };
    let golden = run(ConvBackend::GoldenDirect);
    assert_eq!(
        golden,
        run(ConvBackend::ScalarRef),
        "ScalarRef diverged from golden"
    );
    let packed = run(ConvBackend::LoweredZeroFree);
    // Sanity: packed stays in the golden trajectory's neighbourhood (it
    // differs only by fused-vs-separate rounding per accumulation step).
    assert!(
        golden.max_abs_diff(&packed) < 1e-3,
        "packed trajectory strayed {} from golden",
        golden.max_abs_diff(&packed)
    );
    for backend in [ConvBackend::LoweredGemm, ConvBackend::Parallel(3)] {
        assert_eq!(
            packed,
            run(backend),
            "{backend:?} diverged from the packed trajectory"
        );
    }
}

#[test]
fn tuned_schedules_are_reproducible() {
    let phases = GanSpec::cgan().iteration_phases();
    let t1 = PhaseTuned::tune(ArchKind::Zfwst, 480, &phases);
    let t2 = PhaseTuned::tune(ArchKind::Zfwst, 480, &phases);
    for p in &phases {
        assert_eq!(t1.schedule(p), t2.schedule(p));
    }
}
