//! Run-to-run determinism: every simulator-side result in this repository
//! must be a pure function of its inputs — re-running any evaluation
//! produces identical numbers (this is what makes the JSON sidecars
//! diffable and the parallel implementations trustworthy).

use zfgan::accel::{AccelConfig, Design, GanAccelerator, SyncPolicy};
use zfgan::dataflow::{ArchKind, Dataflow, PhaseTuned, UnrollChoice};
use zfgan::sim::ConvKind;
use zfgan::workloads::{GanSpec, PhaseSeq};

#[test]
fn unroll_search_is_deterministic_despite_parallelism() {
    // The search scores candidates on worker threads; the ordered argmin
    // must make the result identical across invocations.
    let phases = GanSpec::cgan().phase_set(ConvKind::T);
    let first = UnrollChoice::search(ArchKind::Zfost, 1200, &phases);
    for _ in 0..5 {
        assert_eq!(UnrollChoice::search(ArchKind::Zfost, 1200, &phases), first);
    }
}

#[test]
fn design_evaluation_is_reproducible() {
    let spec = GanSpec::dcgan();
    let combo = Design::Combo {
        st: ArchKind::Zfost,
        w: ArchKind::Zfwst,
    };
    let a = combo.evaluate(&spec, PhaseSeq::DisUpdate, SyncPolicy::Deferred, 1680);
    let b = combo.evaluate(&spec, PhaseSeq::DisUpdate, SyncPolicy::Deferred, 1680);
    assert_eq!(a, b);
}

#[test]
fn accelerator_reports_are_reproducible() {
    let accel = GanAccelerator::new(AccelConfig::vcu118(), GanSpec::mnist_gan());
    let a = accel.iteration_report(32);
    let b = accel.iteration_report(32);
    assert_eq!(a, b);
}

#[test]
fn tuned_schedules_are_reproducible() {
    let phases = GanSpec::cgan().iteration_phases();
    let t1 = PhaseTuned::tune(ArchKind::Zfwst, 480, &phases);
    let t2 = PhaseTuned::tune(ArchKind::Zfwst, 480, &phases);
    for p in &phases {
        assert_eq!(t1.schedule(p), t2.schedule(p));
    }
}
