//! Cross-crate pool and workspace properties: everything that runs on the
//! persistent pool or draws scratch from a [`ConvWorkspace`] must be
//! **bit-identical** to its sequential / allocating counterpart, and pool
//! panics must surface as the typed errors the degradation ladder expects.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::nn::{Activation, ConvLayer, Direction};
use zfgan::pool::{parallel_map, PoolError};
use zfgan::tensor::gemm::MatmulKind;
use zfgan::tensor::im2col::Matrix;
use zfgan::tensor::{ConvGeom, ConvWorkspace, Fmaps, Kernels};

/// A random matmul shape (both operands post-ReLU sparse like real
/// activations) plus a thread count and seed.
fn arb_matmul() -> impl Strategy<Value = (usize, usize, usize, usize, u64)> {
    (
        1usize..=24,
        1usize..=16,
        1usize..=20,
        1usize..=6,
        any::<u64>(),
    )
}

fn sparse_matrix(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix<f32> {
    let f = Fmaps::random(1, rows, cols, 1.0, rng).map(|v| if v > 0.0 { v } else { 0.0 });
    Matrix::from_vec(rows, cols, f.as_slice().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pooled parallel GEMM equals the single-threaded packed kernel bit
    /// for bit over random shapes and thread counts (same fused
    /// accumulation order regardless of how rows are partitioned).
    #[test]
    fn pooled_matmul_is_bit_identical((m, k, n, threads, seed) in arb_matmul()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = sparse_matrix(m, k, &mut rng);
        let b = sparse_matrix(k, n, &mut rng);
        let seq = MatmulKind::Blocked.run(&a, &b).unwrap();
        let par = MatmulKind::Parallel(threads).run(&a, &b).unwrap();
        prop_assert_eq!(seq, par);
    }

    /// Pooled `parallel_map` preserves order and values exactly.
    #[test]
    fn parallel_map_matches_sequential_map(n in 0usize..200, seed in any::<u64>()) {
        let xs: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(seed | 1)).collect();
        let seq: Vec<u64> = xs.iter().map(|x| x.rotate_left(7) ^ 0xabcd).collect();
        let par = parallel_map(xs.len(), |i| xs[i].rotate_left(7) ^ 0xabcd).unwrap();
        prop_assert_eq!(seq, par);
    }
}

/// A random layer (direction, geometry, channels) for the workspace
/// round-trip property.
fn arb_layer() -> impl Strategy<Value = (bool, usize, usize, usize, usize, u64)> {
    (
        any::<bool>(),
        1usize..=3, // stride selector
        1usize..=3, // small-side channels
        1usize..=3, // large-side channels
        2usize..=4, // small-side spatial half-size
        any::<u64>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A layer's workspace-fed forward/backward equals the allocating pair
    /// bit for bit over random directions and geometries, through one
    /// workspace reused (dirty) across all cases of the run.
    #[test]
    fn workspace_layer_passes_are_bit_identical(
        (up, stride, small_c, large_c, half, seed) in arb_layer()
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let k = (stride + 2).min(4);
        let small_hw = half * 2;
        let large_hw = small_hw * stride;
        let geom = ConvGeom::down(large_hw, large_hw, k, k, stride, small_hw, small_hw)
            .expect("constructed to be valid");
        let (dir, in_shape) = if up {
            (Direction::Up, (small_c, small_hw, small_hw))
        } else {
            (Direction::Down, (large_c, large_hw, large_hw))
        };
        let weights = Kernels::random(small_c, large_c, k, k, 0.5, &mut rng);
        let layer = ConvLayer::new(
            dir,
            geom,
            weights,
            Activation::LeakyRelu { alpha: 0.2 },
            in_shape,
        )
        .expect("consistent construction");
        let x = Fmaps::random(in_shape.0, in_shape.1, in_shape.2, 1.0, &mut rng);

        let mut ws: ConvWorkspace<f32> = ConvWorkspace::new();
        // Round 2 runs on recycled buffers — the dirty-reuse state.
        for round in 0..2 {
            let (pre, post) = layer.forward(&x).unwrap();
            let (pre_w, post_w) = layer.forward_ws(&x, &mut ws).unwrap();
            prop_assert_eq!(&pre, &pre_w, "pre r{}", round);
            prop_assert_eq!(&post, &post_w, "post r{}", round);

            let delta = post.map(|v| v * 0.5 - 0.1);
            let (dx, grads) = layer.backward(&delta, &pre, &x).unwrap();
            let (dx_w, grads_w) = layer.backward_ws(&delta, &pre, &x, &mut ws).unwrap();
            prop_assert_eq!(&dx, &dx_w, "dx r{}", round);
            prop_assert_eq!(&grads.weights, &grads_w.weights, "dw r{}", round);
            prop_assert_eq!(&grads.bias, &grads_w.bias, "db r{}", round);

            ws.give_fmaps(pre_w);
            ws.give_fmaps(post_w);
            ws.give_fmaps(dx_w);
            grads_w.recycle(&mut ws);
        }
    }
}

/// A worker panic inside a pool batch surfaces as the typed
/// [`PoolError::TaskPanicked`] — with the failure count — and does not
/// poison the pool for later batches.
#[test]
fn pool_panics_become_typed_errors() {
    let err = parallel_map(8, |i| {
        assert!(i != 3 && i != 5, "injected failure");
        i * 2
    })
    .unwrap_err();
    match err {
        PoolError::TaskPanicked { failed, total } => {
            assert_eq!(failed, 2);
            assert_eq!(total, 8);
        }
    }
    assert!(err.to_string().contains("pool tasks panicked"));
    // The pool keeps working after a panicked batch.
    let ok = parallel_map(16, |i| i + 1).unwrap();
    assert_eq!(ok, (1..=16).collect::<Vec<_>>());
}

/// The nn parallel helper maps pool panics onto its own typed
/// [`ParallelError::WorkerPanicked`] ladder (pinned in-crate too; this
/// checks the cross-crate wiring end to end).
#[test]
fn nn_parallel_error_ladder_survives_the_pool() {
    use zfgan::nn::parallel::ParallelError;
    let mut rng = SmallRng::seed_from_u64(40);
    let pair = zfgan::nn::GanPair::tiny(&mut rng);
    // Wrong image shape → forward panics inside the workers.
    let bad = vec![Fmaps::<f32>::zeros(1, 4, 4); 2];
    let err = zfgan::nn::parallel::try_parallel_dis_grads_with(pair.discriminator(), &bad, &bad, 2)
        .unwrap_err();
    match err {
        ParallelError::WorkerPanicked { failed, spawned } => {
            assert!(failed >= 1 && failed <= spawned);
        }
    }
}
