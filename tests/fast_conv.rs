//! Bit-identity contracts of the fast convolution backends, split by
//! kernel family (see `zfgan_tensor::gemm` module docs):
//!
//! * **Scalar family** — [`ConvBackend::ScalarRef`] reproduces the golden
//!   loop nests *bit for bit*, for every family the layers dispatch
//!   (S-CONV, T-CONV, both input-gradient passes, both W-CONVs).
//! * **Packed family** — every packed-microkernel backend (dense- or
//!   zero-free-lowered, single-threaded or pooled at any thread count)
//!   produces *one* identical result: the packed f32 kernel's fused
//!   accumulation order is deterministic, and it stays within the fused
//!   accumulation-error bound of the golden nests.
//! * **Fixed point** — with [`Fx`] (Q8.8) operands the packed kernel is
//!   bit-identical to the scalar semantics, so *every* backend matches
//!   golden exactly.
//!
//! This is the contract that lets training default to the zero-free path
//! while the golden nests stay the validation oracle.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use zfgan::tensor::gemm::{matmul_parallel, MatmulKind};
use zfgan::tensor::im2col::Matrix;
use zfgan::tensor::{ConvBackend, ConvGeom, Fmaps, Fx, Kernels};

/// The packed-microkernel backends: mutually bit-identical for every
/// element type, and bit-identical to golden for `Fx`.
const PACKED: [ConvBackend; 4] = [
    ConvBackend::LoweredGemm,
    ConvBackend::LoweredZeroFree,
    ConvBackend::Parallel(2),
    ConvBackend::Parallel(7),
];

/// Allowed f32 drift between the packed fused accumulation order and the
/// golden nests on these tiny layers (reductions of at most a few hundred
/// unit-scale terms; the worst observed drift is orders below this).
const ACC_BOUND: f64 = 1e-4;

/// A randomly drawn layer: geometry plus channel counts, with the input
/// size chosen as an exact multiple of the stride so both directions of
/// the geometry are exercised (the same construction the dataflow
/// property tests use).
#[derive(Debug, Clone)]
struct ArbLayer {
    geom: ConvGeom,
    in_hw: usize,
    out_hw: usize,
    small_c: usize,
    large_c: usize,
    seed: u64,
}

fn arb_layer() -> impl Strategy<Value = ArbLayer> {
    (
        1usize..=3,
        1usize..=5,
        2usize..=5,
        1usize..=3,
        1usize..=4,
        any::<u64>(),
    )
        .prop_map(|(stride, k, out, small_c, large_c, seed)| {
            let k = k.max(stride);
            let in_hw = stride * out;
            let geom = ConvGeom::down(in_hw, in_hw, k, k, stride, out, out)
                .expect("constructed to be valid");
            ArbLayer {
                geom,
                in_hw,
                out_hw: out,
                small_c,
                large_c,
                seed,
            }
        })
}

/// Post-ReLU-like operand: roughly half exact zeros, so the zero-skipping
/// paths actually take their skip branches.
fn sparse(c: usize, h: usize, w: usize, rng: &mut SmallRng) -> Fmaps<f32> {
    Fmaps::random(c, h, w, 1.0, rng).map(|v| if v > 0.0 { v } else { 0.0 })
}

/// The six convolution passes the layers dispatch, evaluated on one
/// backend, as a uniform list for family-wise comparison.
fn six_passes<T: zfgan::tensor::Num>(
    b: ConvBackend,
    x: &Fmaps<T>,
    z: &Fmaps<T>,
    k: &Kernels<T>,
    g: &ConvGeom,
    in_hw: usize,
) -> (Vec<Fmaps<T>>, Vec<Kernels<T>>) {
    let y = b.s_conv(x, k, g).unwrap();
    let up = b.t_conv(z, k, g).unwrap();
    let sig = b.s_conv_input_grad(&y, k, g, in_hw, in_hw).unwrap();
    let tig = b.t_conv_input_grad(&up, k, g).unwrap();
    let ws = b.w_conv_for_s_layer(x, &y, g).unwrap();
    let wt = b.w_conv_for_t_layer(z, &up, g).unwrap();
    (vec![y, up, sig, tig], vec![ws, wt])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Family-wise backend contract on all six dispatched convolution
    /// passes: ScalarRef is bit-identical to golden; the packed backends
    /// are bit-identical to each other and within the accumulation bound
    /// of golden.
    #[test]
    fn backends_are_bit_identical_within_their_family(layer in arb_layer()) {
        let mut rng = SmallRng::seed_from_u64(layer.seed);
        let g = &layer.geom;
        let x = sparse(layer.large_c, layer.in_hw, layer.in_hw, &mut rng);
        let z = sparse(layer.small_c, layer.out_hw, layer.out_hw, &mut rng);
        let k = Kernels::random(layer.small_c, layer.large_c, g.kh(), g.kw(), 0.5, &mut rng);

        let (gf, gk) = six_passes(ConvBackend::GoldenDirect, &x, &z, &k, g, layer.in_hw);

        // Scalar family: exact golden reproduction.
        let (sf, sk) = six_passes(ConvBackend::ScalarRef, &x, &z, &k, g, layer.in_hw);
        prop_assert_eq!(&gf, &sf, "ScalarRef fmaps passes diverged from golden");
        prop_assert_eq!(&gk, &sk, "ScalarRef w-conv passes diverged from golden");

        // Packed family: one deterministic result, near golden.
        let (pf, pk) = six_passes(PACKED[0], &x, &z, &k, g, layer.in_hw);
        for (gold, packed) in gf.iter().zip(&pf) {
            prop_assert!(gold.max_abs_diff(packed) <= ACC_BOUND, "packed fmaps pass drifted");
        }
        for (gold, packed) in gk.iter().zip(&pk) {
            prop_assert!(gold.max_abs_diff(packed) <= ACC_BOUND, "packed w-conv pass drifted");
        }
        for b in &PACKED[1..] {
            let (bf, bk) = six_passes(*b, &x, &z, &k, g, layer.in_hw);
            prop_assert_eq!(&pf, &bf, "{:?} fmaps passes diverged from packed family", b);
            prop_assert_eq!(&pk, &bk, "{:?} w-conv passes diverged from packed family", b);
        }
    }

    /// With Q8.8 fixed-point operands the packed kernel replicates the
    /// scalar saturating chain exactly, so every backend — scalar or
    /// packed, any thread count — is bit-identical to golden.
    #[test]
    fn fx_backends_are_bit_identical_to_golden(layer in arb_layer()) {
        let mut rng = SmallRng::seed_from_u64(layer.seed ^ 0x5eed);
        let g = &layer.geom;
        let x = sparse(layer.large_c, layer.in_hw, layer.in_hw, &mut rng).map(Fx::from_f32);
        let z = sparse(layer.small_c, layer.out_hw, layer.out_hw, &mut rng).map(Fx::from_f32);
        let k = Kernels::random(layer.small_c, layer.large_c, g.kh(), g.kw(), 0.5, &mut rng)
            .map(Fx::from_f32);

        let golden = six_passes(ConvBackend::GoldenDirect, &x, &z, &k, g, layer.in_hw);
        let backends = [ConvBackend::ScalarRef, PACKED[0], PACKED[1], PACKED[2], PACKED[3]];
        for b in backends {
            let got = six_passes(b, &x, &z, &k, g, layer.in_hw);
            prop_assert_eq!(&golden, &got, "{:?} diverged from golden on Fx", b);
        }
    }

    /// GEMM kernel contracts, for any shape, sparsity and thread count:
    /// the retained scalar kernel matches the naive triple loop bit for
    /// bit; the packed blocked and parallel kernels match *each other*
    /// bit for bit and stay within the fused accumulation-error bound of
    /// naive; Q8.8 is bit-identical across all kernels.
    #[test]
    fn gemm_kernels_honor_their_family_contracts(
        m in 1usize..=40,
        kk in 1usize..=48,
        n in 1usize..=70,
        threads in 0usize..=9,
        zero_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut draw = |rows: usize, cols: usize| {
            let data = (0..rows * cols)
                .map(|_| {
                    if rng.gen_range(0.0..1.0) < zero_frac {
                        0.0
                    } else {
                        rng.gen_range(-1.0f32..1.0)
                    }
                })
                .collect();
            Matrix::from_vec(rows, cols, data)
        };
        let a = draw(m, kk);
        let b = draw(kk, n);
        let naive = MatmulKind::Naive.run(&a, &b).unwrap();
        prop_assert_eq!(&naive, &MatmulKind::BlockedScalar.run(&a, &b).unwrap());

        let blocked = MatmulKind::Blocked.run(&a, &b).unwrap();
        prop_assert_eq!(&blocked, &matmul_parallel(&a, &b, threads).unwrap());
        // Operands are in [-1, 1], so each output element is a reduction
        // of kk unit-scale terms: |fused - naive| <= 2 * kk^2 * eps.
        let bound = f64::from(2.0 * (kk * kk) as f32 * f32::EPSILON).max(1e-6);
        for (nv, bv) in naive.as_slice().iter().zip(blocked.as_slice()) {
            prop_assert!(
                (f64::from(*nv) - f64::from(*bv)).abs() <= bound,
                "packed f32 strayed beyond the accumulation bound"
            );
        }

        let afx = Matrix::from_vec(m, kk, a.as_slice().iter().map(|v| Fx::from_f32(*v)).collect());
        let bfx = Matrix::from_vec(kk, n, b.as_slice().iter().map(|v| Fx::from_f32(*v)).collect());
        let naive_fx = MatmulKind::Naive.run(&afx, &bfx).unwrap();
        prop_assert_eq!(&naive_fx, &MatmulKind::BlockedScalar.run(&afx, &bfx).unwrap());
        prop_assert_eq!(&naive_fx, &MatmulKind::Blocked.run(&afx, &bfx).unwrap());
        prop_assert_eq!(&naive_fx, &matmul_parallel(&afx, &bfx, threads).unwrap());
    }

    /// The three dispatch engines (packed panel, broadcast-FMA `ikj`,
    /// small-`m` streaming) all compute one k-ascending fused chain per
    /// output element, so forcing any engine at any SIMD level must
    /// reproduce the dispatched result *bit for bit* — including the
    /// degenerate shapes the dispatcher exists for (`m = 1`, all-zero
    /// rows, `n` below one register tile).
    #[test]
    fn f32_dispatch_paths_are_bit_identical(
        m in 1usize..=19,
        kk in 1usize..=48,
        n in 1usize..=70,
        zero_frac in 0.0f64..1.0,
        zero_rows in 0usize..=3,
        seed in any::<u64>(),
    ) {
        use zfgan::tensor::microkernel::{
            matmul_f32_at, matmul_f32_path, simd_level, GemmPath, PackScratch, SimdLevel,
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut a: Vec<f32> = (0..m * kk)
            .map(|_| {
                if rng.gen_range(0.0..1.0) < zero_frac {
                    0.0
                } else {
                    rng.gen_range(-1.0f32..1.0)
                }
            })
            .collect();
        // Whole zero rows so the element- and panel-skip branches engage.
        for r in 0..zero_rows.min(m) {
            a[r * kk..(r + 1) * kk].fill(0.0);
        }
        let b: Vec<f32> = (0..kk * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        let mut scratch = PackScratch::new();
        let mut dispatched = vec![0.0f32; m * n];
        matmul_f32_at(simd_level(), &a, &b, &mut dispatched, m, kk, n, &mut scratch);
        let want: Vec<u32> = dispatched.iter().map(|v| v.to_bits()).collect();
        for level in [simd_level(), SimdLevel::Scalar] {
            for path in [GemmPath::Packed, GemmPath::Ikj, GemmPath::SmallM] {
                let mut out = vec![0.0f32; m * n];
                matmul_f32_path(level, path, &a, &b, &mut out, m, kk, n, &mut scratch);
                let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&want, &got, "path {:?} at {:?} diverged bitwise", path, level);
            }
        }
    }
}

/// The generator's latent projection: a T-CONV whose input map is `1×1`.
/// The workspace driver collapses it to a single `1 × n_of` GEMM against
/// the kernel tensor read zero-copy; the allocating driver keeps the
/// classic phase lowering. Pins the collapsed path bit-identical to the
/// classic one for both element families — including a padded geometry
/// whose scatter crops boundary taps — and every Fx backend to golden
/// exactly. The scalar-reference backend must keep the specification cost
/// model, so it lands on the classic route too (checked against golden).
#[test]
fn one_by_one_t_conv_collapses_bit_identically() {
    use zfgan::tensor::ConvWorkspace;
    let mut rng = SmallRng::seed_from_u64(4242);
    let geoms = [
        // The MNIST-GAN projection: 1×1 → 7×7 through a 7×7 kernel.
        ConvGeom::down(7, 7, 7, 7, 7, 1, 1).unwrap(),
        // Padded: some taps map outside the 1×1-up output and are cropped.
        ConvGeom::down(2, 2, 3, 3, 2, 1, 1).unwrap(),
        // Degenerate 1×1 kernel.
        ConvGeom::down(1, 1, 1, 1, 1, 1, 1).unwrap(),
    ];
    for g in &geoms {
        for small_c in [1usize, 3, 100] {
            let z = sparse(small_c, 1, 1, &mut rng);
            let k = Kernels::random(small_c, 5, g.kh(), g.kw(), 0.5, &mut rng);
            let zq = z.map(Fx::from_f32);
            let kq = k.map(Fx::from_f32);
            let golden_fx = ConvBackend::GoldenDirect.t_conv(&zq, &kq, g).unwrap();
            for b in PACKED {
                let classic = b.t_conv(&z, &k, g).unwrap();
                let mut ws = ConvWorkspace::new();
                let mut ws_fx = ConvWorkspace::new();
                // Twice: once cold, once with a warm workspace.
                for round in 0..2 {
                    let fast = b.t_conv_ws(&z, &k, g, &mut ws).unwrap();
                    assert_eq!(
                        classic.as_slice(),
                        fast.as_slice(),
                        "collapsed 1×1 f32 T-CONV diverged from classic \
                         ({b:?}, round {round})"
                    );
                    let fast_fx = b.t_conv_ws(&zq, &kq, g, &mut ws_fx).unwrap();
                    assert_eq!(
                        golden_fx.as_slice(),
                        fast_fx.as_slice(),
                        "collapsed 1×1 Fx T-CONV diverged from golden \
                         ({b:?}, round {round})"
                    );
                    ws.give_fmaps(fast);
                    ws_fx.give_fmaps(fast_fx);
                }
            }
            let mut ws = ConvWorkspace::new();
            let scalar = ConvBackend::ScalarRef
                .t_conv_ws(&z, &k, g, &mut ws)
                .unwrap();
            let golden = ConvBackend::GoldenDirect.t_conv(&z, &k, g).unwrap();
            assert_eq!(
                golden.as_slice(),
                scalar.as_slice(),
                "ScalarRef 1×1 T-CONV diverged from golden"
            );
        }
    }
}
