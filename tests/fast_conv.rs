//! Bit-identity of the fast convolution backends: over randomly drawn
//! geometries and operands, every [`ConvBackend`] must produce *exactly*
//! the same bits as the golden loop nests, for every family the layers
//! dispatch (S-CONV, T-CONV, both input-gradient passes, both W-CONVs),
//! and the parallel GEMM must be bit-identical for every thread count.
//!
//! This is the contract that lets training default to the zero-free path
//! while the golden nests stay the validation oracle.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use zfgan::tensor::gemm::{matmul_parallel, MatmulKind};
use zfgan::tensor::im2col::Matrix;
use zfgan::tensor::{ConvBackend, ConvGeom, Fmaps, Kernels};

const BACKENDS: [ConvBackend; 5] = [
    ConvBackend::GoldenDirect,
    ConvBackend::LoweredGemm,
    ConvBackend::LoweredZeroFree,
    ConvBackend::Parallel(2),
    ConvBackend::Parallel(7),
];

/// A randomly drawn layer: geometry plus channel counts, with the input
/// size chosen as an exact multiple of the stride so both directions of
/// the geometry are exercised (the same construction the dataflow
/// property tests use).
#[derive(Debug, Clone)]
struct ArbLayer {
    geom: ConvGeom,
    in_hw: usize,
    out_hw: usize,
    small_c: usize,
    large_c: usize,
    seed: u64,
}

fn arb_layer() -> impl Strategy<Value = ArbLayer> {
    (
        1usize..=3,
        1usize..=5,
        2usize..=5,
        1usize..=3,
        1usize..=4,
        any::<u64>(),
    )
        .prop_map(|(stride, k, out, small_c, large_c, seed)| {
            let k = k.max(stride);
            let in_hw = stride * out;
            let geom = ConvGeom::down(in_hw, in_hw, k, k, stride, out, out)
                .expect("constructed to be valid");
            ArbLayer {
                geom,
                in_hw,
                out_hw: out,
                small_c,
                large_c,
                seed,
            }
        })
}

/// Post-ReLU-like operand: roughly half exact zeros, so the zero-skipping
/// paths actually take their skip branches.
fn sparse(c: usize, h: usize, w: usize, rng: &mut SmallRng) -> Fmaps<f32> {
    Fmaps::random(c, h, w, 1.0, rng).map(|v| if v > 0.0 { v } else { 0.0 })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every backend reproduces the golden nests bit for bit on all six
    /// dispatched convolution passes.
    #[test]
    fn backends_are_bit_identical_to_golden(layer in arb_layer()) {
        let mut rng = SmallRng::seed_from_u64(layer.seed);
        let g = &layer.geom;
        let x = sparse(layer.large_c, layer.in_hw, layer.in_hw, &mut rng);
        let z = sparse(layer.small_c, layer.out_hw, layer.out_hw, &mut rng);
        let k = Kernels::random(layer.small_c, layer.large_c, g.kh(), g.kw(), 0.5, &mut rng);

        let golden = ConvBackend::GoldenDirect;
        let y = golden.s_conv(&x, &k, g).unwrap();
        let up = golden.t_conv(&z, &k, g).unwrap();
        let sig = golden.s_conv_input_grad(&y, &k, g, layer.in_hw, layer.in_hw).unwrap();
        let tig = golden.t_conv_input_grad(&up, &k, g).unwrap();
        let ws = golden.w_conv_for_s_layer(&x, &y, g).unwrap();
        let wt = golden.w_conv_for_t_layer(&z, &up, g).unwrap();

        for b in BACKENDS {
            prop_assert_eq!(&y, &b.s_conv(&x, &k, g).unwrap(), "{:?} s_conv", b);
            prop_assert_eq!(&up, &b.t_conv(&z, &k, g).unwrap(), "{:?} t_conv", b);
            prop_assert_eq!(
                &sig,
                &b.s_conv_input_grad(&y, &k, g, layer.in_hw, layer.in_hw).unwrap(),
                "{:?} s_conv_input_grad", b
            );
            prop_assert_eq!(
                &tig,
                &b.t_conv_input_grad(&up, &k, g).unwrap(),
                "{:?} t_conv_input_grad", b
            );
            prop_assert_eq!(
                &ws,
                &b.w_conv_for_s_layer(&x, &y, g).unwrap(),
                "{:?} w_conv_for_s_layer", b
            );
            prop_assert_eq!(
                &wt,
                &b.w_conv_for_t_layer(&z, &up, g).unwrap(),
                "{:?} w_conv_for_t_layer", b
            );
        }
    }

    /// The blocked and parallel GEMM kernels match the naive triple loop
    /// bit for bit, for any shape, sparsity and thread count.
    #[test]
    fn gemm_kernels_are_bit_identical(
        m in 1usize..=40,
        kk in 1usize..=48,
        n in 1usize..=70,
        threads in 0usize..=9,
        zero_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut draw = |rows: usize, cols: usize| {
            let data = (0..rows * cols)
                .map(|_| {
                    if rng.gen_range(0.0..1.0) < zero_frac {
                        0.0
                    } else {
                        rng.gen_range(-1.0f32..1.0)
                    }
                })
                .collect();
            Matrix::from_vec(rows, cols, data)
        };
        let a = draw(m, kk);
        let b = draw(kk, n);
        let naive = MatmulKind::Naive.run(&a, &b).unwrap();
        prop_assert_eq!(&naive, &MatmulKind::Blocked.run(&a, &b).unwrap());
        prop_assert_eq!(&naive, &matmul_parallel(&a, &b, threads).unwrap());
    }
}
