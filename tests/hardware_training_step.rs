//! The whole point of the paper, executed: one Discriminator update where
//! **every computing phase runs on the simulated hardware dataflows** —
//! `D̄` forward on ZFOST (S-CONV), `D̄` backward on ZFOST (T-CONV, the
//! paper's Table I assignment), and `D̄w` on ZFWST (W-CONV) — and the
//! resulting weight gradients match the software training library's
//! backward pass on the same network.
//!
//! This is paper Fig. 8 as an executable composition: the ST-ARCH and
//! W-ARCH phases chained through the Data/Error buffer contents, validated
//! end to end against `zfgan-nn`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::dataflow::exec::{zfost_s_conv, zfost_t_conv, zfwst_wgrad_s};
use zfgan::dataflow::{Zfost, Zfwst};
use zfgan::nn::{wgan, Activation, ConvLayer, ConvNet, Direction};
use zfgan::sim::{ConvKind, ConvShape};
use zfgan::tensor::{ConvGeom, Fmaps, Kernels};

#[test]
fn discriminator_update_on_the_simulated_hardware_matches_the_library() {
    let mut rng = SmallRng::seed_from_u64(2018);

    // A two-layer critic: 1×8×8 → 4×4×4 → 1×1×1, identity activations so
    // the inter-phase handoff is exactly the paper's convolution chain.
    let body = ConvGeom::down(8, 8, 4, 4, 2, 4, 4).expect("static geometry");
    let head = ConvGeom::down(4, 4, 4, 4, 1, 1, 1).expect("static geometry");
    let w1: Kernels<f32> = Kernels::random(4, 1, 4, 4, 0.4, &mut rng);
    let w2: Kernels<f32> = Kernels::random(1, 4, 4, 4, 0.4, &mut rng);
    let x: Fmaps<f32> = Fmaps::random(1, 8, 8, 1.0, &mut rng);

    // --- Software reference: the training library's backward pass. -------
    let critic = ConvNet::new(vec![
        ConvLayer::new(
            Direction::Down,
            body,
            w1.clone(),
            Activation::Identity,
            (1, 8, 8),
        )
        .expect("consistent"),
        ConvLayer::new(
            Direction::Down,
            head,
            w2.clone(),
            Activation::Identity,
            (4, 4, 4),
        )
        .expect("consistent"),
    ])
    .expect("consistent stack");
    let trace = critic.forward(&x).expect("matching input");
    let m = 4; // batch size for the 1/m scaling of Eq. 6
    let delta_out = wgan::scalar_error(wgan::dis_output_error_real(m));
    let (ref_grads, _) = critic.backward(&trace, &delta_out).expect("trace matches");

    // --- Hardware: the same step, phase by phase on the arrays. ----------
    let st = Zfost::new(4, 4, 4);
    let w_arch = Zfwst::new(4, 4, 4);

    // D̄ forward, layer 1 (S-CONV on ST-ARCH).
    let l1_phase = ConvShape::new(ConvKind::S, body, 4, 1, 8, 8);
    let a1 = zfost_s_conv(&st, &l1_phase, &x, &w1)
        .expect("operands match")
        .output;
    // D̄ forward, layer 2.
    let l2_phase = ConvShape::new(ConvKind::S, head, 1, 4, 4, 4);
    let score = zfost_s_conv(&st, &l2_phase, &a1, &w2)
        .expect("operands match")
        .output;
    // Forward outputs land in the Data buffer; check they match the trace.
    assert!(a1.max_abs_diff(trace.post(0)) < 1e-4);
    assert!(score.max_abs_diff(trace.output()) < 1e-4);

    // Loss error at the output layer (Eq. 6): δ² = −1/m.
    let delta2 = wgan::scalar_error(wgan::dis_output_error_real(m));

    // D̄ backward, layer 2 → layer 1 error (T-CONV on ST-ARCH — the
    // paper's "backward error pass of Discriminator uses T-CONV").
    let delta1 = zfost_t_conv(&st, &l2_phase.with_kind(ConvKind::T), &delta2, &w2)
        .expect("operands match")
        .output;

    // D̄w on W-ARCH: ∇W for both layers from the Data/Error buffers.
    let grad2 = zfwst_wgrad_s(&w_arch, &l2_phase.with_kind(ConvKind::WGradS), &a1, &delta2)
        .expect("operands match")
        .output;
    let grad1 = zfwst_wgrad_s(&w_arch, &l1_phase.with_kind(ConvKind::WGradS), &x, &delta1)
        .expect("operands match")
        .output;

    // --- The hardware's gradients are the library's gradients. -----------
    assert!(
        grad2.max_abs_diff(&ref_grads[1].weights) < 1e-4,
        "layer-2 ∇W diverged: {}",
        grad2.max_abs_diff(&ref_grads[1].weights)
    );
    assert!(
        grad1.max_abs_diff(&ref_grads[0].weights) < 1e-4,
        "layer-1 ∇W diverged: {}",
        grad1.max_abs_diff(&ref_grads[0].weights)
    );
}

#[test]
fn generator_update_error_path_on_the_hardware_matches_the_library() {
    let mut rng = SmallRng::seed_from_u64(2019);

    // Generator layer (T-CONV, `Ḡ`): 4×4×4 → 1×8×8, identity activation.
    let body = ConvGeom::down(8, 8, 4, 4, 2, 4, 4).expect("static geometry");
    let wg: Kernels<f32> = Kernels::random(4, 1, 4, 4, 0.4, &mut rng);
    let z: Fmaps<f32> = Fmaps::random(4, 4, 4, 1.0, &mut rng);

    let g_layer = ConvLayer::new(
        Direction::Up,
        body,
        wg.clone(),
        Activation::Identity,
        (4, 4, 4),
    )
    .expect("consistent");
    let (pre, post) = g_layer.forward(&z).expect("matching input");

    // Ḡ forward on ZFOST (T-CONV).
    let st = Zfost::new(4, 4, 2);
    let phase = ConvShape::new(ConvKind::T, body, 4, 1, 8, 8);
    let hw_out = zfost_t_conv(&st, &phase, &z, &wg)
        .expect("operands match")
        .output;
    assert!(hw_out.max_abs_diff(&post) < 1e-4);

    // A downstream error arrives at the Generator output; Ḡ backward is an
    // S-CONV (paper Table I) — run it on ZFOST-S and compare with the
    // library's backward.
    let delta_out: Fmaps<f32> = Fmaps::random(1, 8, 8, 0.5, &mut rng);
    let (dx_ref, grads_ref) = g_layer
        .backward(&delta_out, &pre, &z)
        .expect("trace matches");
    let dx_hw = zfost_s_conv(&st, &phase.with_kind(ConvKind::S), &delta_out, &wg)
        .expect("operands match")
        .output;
    assert!(dx_hw.max_abs_diff(&dx_ref) < 1e-4, "Ḡ backward diverged");

    // Ḡw on ZFWST (W-CONV with zero-inserted input).
    let w_arch = Zfwst::new(4, 4, 2);
    let grad_hw = zfgan::dataflow::exec::zfwst_wgrad_t(
        &w_arch,
        &phase.with_kind(ConvKind::WGradT),
        &z,
        &delta_out,
    )
    .expect("operands match")
    .output;
    assert!(
        grad_hw.max_abs_diff(&grads_ref.weights) < 1e-4,
        "Ḡw diverged: {}",
        grad_hw.max_abs_diff(&grads_ref.weights)
    );
}
