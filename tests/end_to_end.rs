//! End-to-end integration tests spanning every crate: workload specs →
//! trainable networks → dataflow schedules → functional execution →
//! accelerator reports.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::accel::{AccelConfig, BufferPlan, GanAccelerator};
use zfgan::dataflow::exec::{zfost_s_conv, zfost_t_conv};
use zfgan::dataflow::{ArchKind, Dataflow, PhaseTuned, Zfost};
use zfgan::nn::{Activation, ConvLayer, Direction, GanTrainer, SyncMode, TrainerConfig};
use zfgan::sim::{ConvKind, ConvShape, EnergyModel};
use zfgan::tensor::{ConvGeom, Fmaps, Kernels};
use zfgan::workloads::data::SyntheticImages;
use zfgan::workloads::{GanSpec, PhaseSeq};

/// A full MNIST-GAN training step runs and both sync modes agree exactly.
#[test]
fn mnist_gan_trains_identically_in_both_modes() {
    let spec = GanSpec::mnist_gan();
    let mut data = SyntheticImages::for_shape(spec.image_shape(), 3);
    let reals = data.batch(2);
    let mut losses = Vec::new();
    for mode in [SyncMode::Synchronized, SyncMode::Deferred] {
        let mut wrng = SmallRng::seed_from_u64(10);
        let pair = spec.build_pair(0.05, &mut wrng).expect("consistent spec");
        let mut trainer = GanTrainer::new(
            pair,
            TrainerConfig {
                mode,
                ..TrainerConfig::default()
            },
        );
        let mut srng = SmallRng::seed_from_u64(11);
        let d = trainer.step_discriminator(&reals, &mut srng);
        let g = trainer.step_generator(2, &mut srng);
        losses.push((d.dis_loss, g.gen_loss));
    }
    assert_eq!(losses[0], losses[1]);
}

/// The ZFOST functional executor computes the same numbers as an `nn`
/// layer's forward pass when driven by the same weights — the simulator and
/// the training library agree on what a convolution *is*.
#[test]
fn simulator_matches_the_training_library() {
    let mut rng = SmallRng::seed_from_u64(21);
    let geom = ConvGeom::down(12, 12, 4, 4, 2, 6, 6).expect("static geometry");
    let weights: Kernels<f32> = Kernels::random(6, 2, 4, 4, 0.3, &mut rng);
    let x: Fmaps<f32> = Fmaps::random(2, 12, 12, 1.0, &mut rng);

    // nn view: a Down layer with identity activation and zero bias.
    let layer = ConvLayer::new(
        Direction::Down,
        geom,
        weights.clone(),
        Activation::Identity,
        (2, 12, 12),
    )
    .expect("consistent layer");
    let (pre, _) = layer.forward(&x).expect("matching input");

    // simulator view: ZFOST executing the equivalent S phase.
    let phase = ConvShape::new(ConvKind::S, geom, 6, 2, 12, 12);
    let zf = Zfost::new(3, 3, 4);
    let out = zfost_s_conv(&zf, &phase, &x, &weights).expect("matching operands");
    assert!(
        out.output.max_abs_diff(&pre) < 1e-4,
        "diff {}",
        out.output.max_abs_diff(&pre)
    );

    // And the Up direction against the generator-layer forward.
    let up_layer = ConvLayer::new(
        Direction::Up,
        geom,
        weights.clone(),
        Activation::Identity,
        (6, 6, 6),
    )
    .expect("consistent layer");
    let z: Fmaps<f32> = Fmaps::random(6, 6, 6, 1.0, &mut rng);
    let (pre_up, _) = up_layer.forward(&z).expect("matching input");
    let t_phase = phase.with_kind(ConvKind::T);
    let out = zfost_t_conv(&zf, &t_phase, &z, &weights).expect("matching operands");
    assert!(out.output.max_abs_diff(&pre_up) < 1e-4);
}

/// Every paper workload schedules on every architecture, and the zero-free
/// designs never lose to their traditional counterparts on any phase.
#[test]
fn zero_free_designs_dominate_their_baselines() {
    for spec in GanSpec::all_paper_gans() {
        for (kind, budget) in [
            (ConvKind::S, 1200usize),
            (ConvKind::T, 1200),
            (ConvKind::WGradS, 480),
            (ConvKind::WGradT, 480),
        ] {
            let phases = spec.phase_set(kind);
            let ost = PhaseTuned::tune(ArchKind::Ost, budget, &phases).schedule_all(&phases);
            let zfost = PhaseTuned::tune(ArchKind::Zfost, budget, &phases).schedule_all(&phases);
            let wst = PhaseTuned::tune(ArchKind::Wst, budget, &phases).schedule_all(&phases);
            let zfwst = PhaseTuned::tune(ArchKind::Zfwst, budget, &phases).schedule_all(&phases);
            assert!(
                zfost.cycles <= ost.cycles,
                "{} {kind:?}: ZFOST {} > OST {}",
                spec.name(),
                zfost.cycles,
                ost.cycles
            );
            assert!(
                zfwst.cycles <= wst.cycles,
                "{} {kind:?}: ZFWST {} > WST {}",
                spec.name(),
                zfwst.cycles,
                wst.cycles
            );
        }
    }
}

/// The accelerator's energy accounting is dominated by DRAM (as every
/// accelerator paper finds) and its buffer plan fits the device for all
/// three workloads.
#[test]
fn accelerator_energy_and_buffers_are_sane() {
    for spec in GanSpec::all_paper_gans() {
        let accel = GanAccelerator::new(AccelConfig::vcu118(), spec.clone());
        let report = accel.iteration_report(8);
        assert!(
            report.energy.dram_pj > report.energy.compute_pj,
            "{}",
            spec.name()
        );
        let plan = BufferPlan::for_spec(&spec, accel.config());
        assert!(plan.fits(zfgan::accel::BufferPlan::for_spec(&spec, accel.config()).total_bytes()));
        assert!(
            plan.total_bytes() < 10_000_000,
            "{}: {}",
            spec.name(),
            plan.total_bytes()
        );
    }
    // Per-event energy model ordering survives aggregation.
    let m = EnergyModel::default();
    assert!(m.dram_pj_per_access > m.sram_pj);
}

/// The whole evaluation flow of Fig. 17 runs for one workload: all five
/// designs, both policies, monotone improvements from deferral.
#[test]
fn fig17_flow_runs_for_mnist_gan() {
    use zfgan::accel::{Design, SyncPolicy};
    let spec = GanSpec::mnist_gan();
    for design in Design::paper_designs() {
        let sync = design.evaluate(&spec, PhaseSeq::DisUpdate, SyncPolicy::Synchronized, 1680);
        let deferred = design.evaluate(&spec, PhaseSeq::DisUpdate, SyncPolicy::Deferred, 1680);
        assert!(
            deferred.total_cycles <= sync.total_cycles,
            "{}",
            design.name()
        );
        assert!(sync.total_cycles > 0);
    }
}
