//! Paired measurement of the shape-dispatch win: alternate forced-packed
//! and dispatched train iterations on the *same* trainer, so slow host
//! drift cancels out of the ratio (each arm's iterations are adjacent in
//! time and run from identical warm state). This is the ground-truth
//! probe behind the `trainstep` bench's dispatch gate; ignored by default
//! because it is a measurement, not an assertion.
//!
//! `cargo test -q --release --test dispatch_pair_probe -- --ignored --nocapture`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;
use zfgan::nn::{GanTrainer, TrainerConfig};
use zfgan::tensor::microkernel::{set_forced_path, GemmPath};
use zfgan::tensor::ConvBackend;
use zfgan::workloads::GanSpec;

#[test]
#[ignore]
fn paired_dispatch_ratio() {
    let spec = GanSpec::mnist_gan();
    let config = TrainerConfig {
        n_critic: 1,
        ..TrainerConfig::default()
    };
    let mut rng = SmallRng::seed_from_u64(29);
    let mut pair = spec.build_pair(0.05, &mut rng).unwrap();
    pair.set_backend(ConvBackend::Parallel(2));
    let mut trainer = GanTrainer::new(pair, config);
    trainer.set_workspace_reuse(true);
    // warmup
    for _ in 0..3 {
        trainer.train_iteration(2, &mut rng);
    }
    let mut packed_min = f64::INFINITY;
    let mut disp_min = f64::INFINITY;
    for _ in 0..12 {
        set_forced_path(Some(GemmPath::Packed));
        let t = Instant::now();
        trainer.train_iteration(2, &mut rng);
        packed_min = packed_min.min(t.elapsed().as_secs_f64());
        set_forced_path(None);
        let t = Instant::now();
        trainer.train_iteration(2, &mut rng);
        disp_min = disp_min.min(t.elapsed().as_secs_f64());
    }
    println!(
        "paired: packed_min={:.1}ms dispatch_min={:.1}ms ratio={:.3}",
        packed_min * 1e3,
        disp_min * 1e3,
        packed_min / disp_min
    );
}
