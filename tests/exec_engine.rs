//! The fast executor engine against its scalar oracle, adversarially.
//!
//! Every one of the nine cycle-accurate executors in
//! `zfgan::dataflow::exec` is the fast twin of a deliberately simple
//! scalar loop in `zfgan::dataflow::exec::scalar`. The engine's claim is
//! not "numerically close" — it is **bit-identical**: same output tensor
//! bytes, same cycle count, same access counters, and the same expanded
//! trace event stream. These proptests drive both implementations over
//! adversarial geometries — stride 1 and 2, asymmetric SAME-style
//! padding, 1×1 / 4×4 / 5×5 kernels, unrolling factors that leave partial
//! edge tiles in both spatial dimensions, and `p_of` larger than the
//! channel count (fold > 1) — and require exact equality everywhere.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::dataflow::exec::{self, scalar};
use zfgan::dataflow::{Nlr, Ost, Wst, Zfost, Zfwst};
use zfgan::sim::trace::{TraceBuffer, TraceEvent};
use zfgan::sim::{ConvKind, ConvShape};
use zfgan::tensor::{ConvGeom, Fmaps, Kernels};

/// Retain everything: large enough that no adversarial geometry here ever
/// evicts, so stream comparison covers the full execution.
const CAP: usize = 1 << 22;

/// One adversarial setup: geometry, channel counts, unroll factors, seed.
#[derive(Debug, Clone)]
struct Setup {
    geom: ConvGeom,
    small: usize,
    large: usize,
    lh: usize,
    lw: usize,
    f: (usize, usize, usize),
    seed: u64,
}

fn arb_setup() -> impl Strategy<Value = Setup> {
    (
        // kernel selector (1×1, 4×4, 5×5), stride, out_h, out_w
        // (out_h ≠ out_w → partial edge tiles in both dimensions)
        (0usize..=2, 1usize..=2, 3usize..=7, 3usize..=7),
        // total pad y/x, clamped below the kernel — odd totals split
        // asymmetrically (SAME-style: extra unit on the bottom/right)
        (0usize..=4, 0usize..=4),
        // small/large channel counts
        (1usize..=3, 1usize..=3),
        // unroll factors (p_of > channels → fold > 1)
        (1usize..=5, 1usize..=5, 1usize..=5),
        any::<u64>(),
    )
        .prop_map(|((ksel, s, oh, ow), (py, px), (small, large), f, seed)| {
            let k = [1usize, 4, 5][ksel];
            let (py, px) = (py.min(k - 1), px.min(k - 1));
            let lh = (oh - 1) * s + k - py;
            let lw = (ow - 1) * s + k - px;
            let geom = ConvGeom::down(lh, lw, k, k, s, oh, ow).expect("padding below kernel");
            Setup {
                geom,
                small,
                large,
                lh,
                lw,
                f,
                seed,
            }
        })
}

fn events(t: &TraceBuffer) -> Vec<(u64, TraceEvent)> {
    t.iter().collect()
}

/// S-side operands: `large`-channel input on the large side plus kernels.
fn s_operands(su: &Setup) -> (Fmaps<f64>, Kernels<f64>) {
    let mut rng = SmallRng::seed_from_u64(su.seed);
    let x = Fmaps::random(su.large, su.lh, su.lw, 1.0, &mut rng);
    let k = Kernels::random(
        su.small,
        su.large,
        su.geom.kh(),
        su.geom.kw(),
        1.0,
        &mut rng,
    );
    (x, k)
}

/// T-side operands: `small`-channel input on the small side plus kernels.
fn t_operands(su: &Setup) -> (Fmaps<f64>, Kernels<f64>) {
    let mut rng = SmallRng::seed_from_u64(su.seed);
    let (sh, sw) = su.geom.down_out(su.lh, su.lw);
    let x = Fmaps::random(su.small, sh, sw, 1.0, &mut rng);
    let k = Kernels::random(
        su.small,
        su.large,
        su.geom.kh(),
        su.geom.kw(),
        1.0,
        &mut rng,
    );
    (x, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn zfost_s_is_bit_identical(su in arb_setup()) {
        let phase = ConvShape::new(ConvKind::S, su.geom, su.small, su.large, su.lh, su.lw);
        let (x, k) = s_operands(&su);
        let zf = Zfost::new(su.f.0, su.f.1, su.f.2);
        let (fast, ft) = exec::zfost_s_conv_traced(&zf, &phase, &x, &k, CAP).unwrap();
        let (slow, st) = scalar::zfost_s_conv_traced(&zf, &phase, &x, &k, CAP).unwrap();
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(events(&ft), events(&st));
    }

    #[test]
    fn zfost_t_is_bit_identical(su in arb_setup()) {
        let phase = ConvShape::new(ConvKind::T, su.geom, su.small, su.large, su.lh, su.lw);
        let (x, k) = t_operands(&su);
        let zf = Zfost::new(su.f.0, su.f.1, su.f.2);
        let (fast, ft) = exec::zfost_t_conv_traced(&zf, &phase, &x, &k, CAP).unwrap();
        let (slow, st) = scalar::zfost_t_conv_traced(&zf, &phase, &x, &k, CAP).unwrap();
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(events(&ft), events(&st));
    }

    #[test]
    fn zfwst_wgrad_s_is_bit_identical(su in arb_setup()) {
        let phase = ConvShape::new(ConvKind::WGradS, su.geom, su.small, su.large, su.lh, su.lw);
        let mut rng = SmallRng::seed_from_u64(su.seed);
        let (sh, sw) = su.geom.down_out(su.lh, su.lw);
        let data: Fmaps<f64> = Fmaps::random(su.large, su.lh, su.lw, 1.0, &mut rng);
        let err: Fmaps<f64> = Fmaps::random(su.small, sh, sw, 1.0, &mut rng);
        let zf = Zfwst::new(su.f.0, su.f.1, su.f.2);
        let (fast, ft) = exec::zfwst_wgrad_s_traced(&zf, &phase, &data, &err, CAP).unwrap();
        let (slow, st) = scalar::zfwst_wgrad_s_traced(&zf, &phase, &data, &err, CAP).unwrap();
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(events(&ft), events(&st));
    }

    #[test]
    fn zfwst_wgrad_t_is_bit_identical(su in arb_setup()) {
        let phase = ConvShape::new(ConvKind::WGradT, su.geom, su.small, su.large, su.lh, su.lw);
        let mut rng = SmallRng::seed_from_u64(su.seed);
        let (sh, sw) = su.geom.down_out(su.lh, su.lw);
        let data: Fmaps<f64> = Fmaps::random(su.small, sh, sw, 1.0, &mut rng);
        let err: Fmaps<f64> = Fmaps::random(su.large, su.lh, su.lw, 1.0, &mut rng);
        let zf = Zfwst::new(su.f.0, su.f.1, su.f.2);
        let (fast, ft) = exec::zfwst_wgrad_t_traced(&zf, &phase, &data, &err, CAP).unwrap();
        let (slow, st) = scalar::zfwst_wgrad_t_traced(&zf, &phase, &data, &err, CAP).unwrap();
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(events(&ft), events(&st));
    }

    #[test]
    fn ost_t_is_bit_identical(su in arb_setup()) {
        let phase = ConvShape::new(ConvKind::T, su.geom, su.small, su.large, su.lh, su.lw);
        let (x, k) = t_operands(&su);
        let ost = Ost::new(su.f.0, su.f.1, su.f.2);
        let ((fast, fc), ft) = exec::ost_t_conv_traced(&ost, &phase, &x, &k, CAP).unwrap();
        let ((slow, sc), st) = scalar::ost_t_conv_traced(&ost, &phase, &x, &k, CAP).unwrap();
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(fc, sc, "effectual/ineffectual census diverged");
        prop_assert_eq!(events(&ft), events(&st));
    }

    #[test]
    fn wst_s_is_bit_identical(su in arb_setup()) {
        let phase = ConvShape::new(ConvKind::S, su.geom, su.small, su.large, su.lh, su.lw);
        let (x, k) = s_operands(&su);
        let wst = Wst::new(su.f.0, su.f.1, su.f.2);
        let ((fast, fc), ft) = exec::wst_s_conv_traced(&wst, &phase, &x, &k, CAP).unwrap();
        let ((slow, sc), st) = scalar::wst_s_conv_traced(&wst, &phase, &x, &k, CAP).unwrap();
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(fc, sc, "psum read/write census diverged");
        prop_assert_eq!(events(&ft), events(&st));
    }

    #[test]
    fn nlr_s_is_bit_identical(su in arb_setup()) {
        let phase = ConvShape::new(ConvKind::S, su.geom, su.small, su.large, su.lh, su.lw);
        let (x, k) = s_operands(&su);
        let nlr = Nlr::new(su.f.0, su.f.2);
        let ((fast, fc), ft) = exec::nlr_s_conv_traced(&nlr, &phase, &x, &k, CAP).unwrap();
        let ((slow, sc), st) = scalar::nlr_s_conv_traced(&nlr, &phase, &x, &k, CAP).unwrap();
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(fc, sc, "weight-fetch census diverged");
        prop_assert_eq!(events(&ft), events(&st));
    }

    #[test]
    fn zfwst_s_is_bit_identical(su in arb_setup()) {
        let phase = ConvShape::new(ConvKind::S, su.geom, su.small, su.large, su.lh, su.lw);
        let (x, k) = s_operands(&su);
        let zf = Zfwst::new(su.f.0, su.f.1, su.f.2);
        let (fast, ft) = exec::zfwst_s_conv_traced(&zf, &phase, &x, &k, CAP).unwrap();
        let (slow, st) = scalar::zfwst_s_conv_traced(&zf, &phase, &x, &k, CAP).unwrap();
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(events(&ft), events(&st));
    }

    #[test]
    fn zfwst_t_is_bit_identical(su in arb_setup()) {
        let phase = ConvShape::new(ConvKind::T, su.geom, su.small, su.large, su.lh, su.lw);
        let (x, k) = t_operands(&su);
        let zf = Zfwst::new(su.f.0, su.f.1, su.f.2);
        let (fast, ft) = exec::zfwst_t_conv_traced(&zf, &phase, &x, &k, CAP).unwrap();
        let (slow, st) = scalar::zfwst_t_conv_traced(&zf, &phase, &x, &k, CAP).unwrap();
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(events(&ft), events(&st));
    }
}
