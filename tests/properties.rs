//! Cross-crate property-based tests: for randomly drawn layer geometries,
//! the functional dataflow executors must equal the golden-reference
//! convolutions numerically AND their enumerated cycle counts must equal
//! the closed-form schedules; the deferred trainer must match the
//! synchronized one bit for bit.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::dataflow::exec::{zfost_s_conv, zfost_t_conv, zfwst_wgrad_s, zfwst_wgrad_t};
use zfgan::dataflow::{Dataflow, Zfost, Zfwst};
use zfgan::nn::{GanPair, GanTrainer, SyncMode, TrainerConfig};
use zfgan::sim::{ConvKind, ConvShape};
use zfgan::tensor::{
    s_conv, t_conv, t_conv_via_zero_insert, w_conv_for_s_layer, w_conv_for_t_layer, ConvGeom,
    Fmaps, Kernels,
};

/// A random but valid down-sampling geometry plus channel counts and a
/// random ZFOST/ZFWST configuration.
fn arb_setup() -> impl Strategy<Value = (ConvGeom, usize, usize, (usize, usize, usize), u64)> {
    (
        2usize..=5,
        1usize..=3,
        1usize..=6,
        1usize..=4,
        1usize..=4,
        1usize..=6,
        any::<u64>(),
    )
        .prop_map(|(half, stride_sel, small, p_y, p_x, p_of, seed)| {
            let stride = stride_sel; // 1, 2 or 3
            let in_hw = half * 2 * stride.max(1);
            // Kernel ≥ stride so padding can close the geometry.
            let k = (3 + (half % 2)).max(stride);
            let out = in_hw / stride;
            let geom = ConvGeom::down(in_hw, in_hw, k, k, stride, out, out)
                .expect("constructed to be valid");
            let large = 1 + half % 3;
            (geom, small + 1, large, (p_y, p_x, p_of), seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// T-CONV computed directly equals T-CONV via explicit zero-inserting.
    #[test]
    fn t_conv_equals_zero_insert_path((geom, small, large, _, seed) in arb_setup()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (sh, sw) = geom.down_out(8, 8); // only used when divisible; use real dims below
        let _ = (sh, sw);
        let in_hw = geom.up_out(1, 1).0; // kernel-sized floor; recompute real dims:
        let _ = in_hw;
        // Derive the small side from an arbitrary large side consistent
        // with the geometry.
        let lh = geom.stride() * 4;
        let (oh, ow) = geom.down_out(lh, lh);
        let x: Fmaps<f64> = Fmaps::random(small, oh, ow, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(small, large, geom.kh(), geom.kw(), 1.0, &mut rng);
        let a = t_conv(&x, &k, &geom).unwrap();
        let b = t_conv_via_zero_insert(&x, &k, &geom).unwrap();
        prop_assert!(a.max_abs_diff(&b) < 1e-9);
    }

    /// ZFOST S-CONV executor: numerics == reference, cycles == closed form.
    #[test]
    fn zfost_s_executor_is_faithful((geom, small, large, (py, px, pof), seed) in arb_setup()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let lh = geom.stride() * 6;
        let phase = ConvShape::new(ConvKind::S, geom, small, large, lh, lh);
        let x: Fmaps<f64> = Fmaps::random(large, lh, lh, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(small, large, geom.kh(), geom.kw(), 1.0, &mut rng);
        let zf = Zfost::new(py, px, pof);
        let out = zfost_s_conv(&zf, &phase, &x, &k).unwrap();
        let reference = s_conv(&x, &k, &geom).unwrap();
        prop_assert!(out.output.max_abs_diff(&reference) < 1e-9);
        prop_assert_eq!(out.cycles, zf.schedule(&phase).cycles);
    }

    /// ZFOST T-CONV executor: numerics == reference, cycles == closed form.
    #[test]
    fn zfost_t_executor_is_faithful((geom, small, large, (py, px, pof), seed) in arb_setup()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let lh = geom.stride() * 6;
        let (oh, ow) = geom.down_out(lh, lh);
        let phase = ConvShape::new(ConvKind::T, geom, small, large, lh, lh);
        let x: Fmaps<f64> = Fmaps::random(small, oh, ow, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(small, large, geom.kh(), geom.kw(), 1.0, &mut rng);
        let zf = Zfost::new(py, px, pof);
        let out = zfost_t_conv(&zf, &phase, &x, &k).unwrap();
        let reference = t_conv(&x, &k, &geom).unwrap();
        prop_assert!(out.output.max_abs_diff(&reference) < 1e-9);
        prop_assert_eq!(out.cycles, zf.schedule(&phase).cycles);
    }

    /// ZFWST weight-gradient executors: numerics == reference, cycles ==
    /// closed form, for both W-CONV variants.
    #[test]
    fn zfwst_executors_are_faithful((geom, small, large, (py, px, pof), seed) in arb_setup()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let lh = geom.stride() * 6;
        let (oh, ow) = geom.down_out(lh, lh);
        let data_big: Fmaps<f64> = Fmaps::random(large, lh, lh, 1.0, &mut rng);
        let err_small: Fmaps<f64> = Fmaps::random(small, oh, ow, 1.0, &mut rng);
        let zf = Zfwst::new(py, px, pof);

        let phase_s = ConvShape::new(ConvKind::WGradS, geom, small, large, lh, lh);
        let out = zfwst_wgrad_s(&zf, &phase_s, &data_big, &err_small).unwrap();
        let reference = w_conv_for_s_layer(&data_big, &err_small, &geom).unwrap();
        prop_assert!(out.output.max_abs_diff(&reference) < 1e-9);
        prop_assert_eq!(out.cycles, zf.schedule(&phase_s).cycles);

        let data_small: Fmaps<f64> = Fmaps::random(small, oh, ow, 1.0, &mut rng);
        let err_big: Fmaps<f64> = Fmaps::random(large, lh, lh, 1.0, &mut rng);
        let phase_t = ConvShape::new(ConvKind::WGradT, geom, small, large, lh, lh);
        let out = zfwst_wgrad_t(&zf, &phase_t, &data_small, &err_big).unwrap();
        let reference = w_conv_for_t_layer(&data_small, &err_big, &geom).unwrap();
        prop_assert!(out.output.max_abs_diff(&reference) < 1e-9);
        prop_assert_eq!(out.cycles, zf.schedule(&phase_t).cycles);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Deferred and synchronized training produce identical updates for any
    /// batch size and seed (the paper's Section IV-A equivalence).
    #[test]
    fn deferred_equals_synchronized(batch in 1usize..=6, seed in any::<u64>()) {
        let make = |mode| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let pair = GanPair::tiny(&mut rng);
            GanTrainer::new(pair, TrainerConfig { mode, ..TrainerConfig::default() })
        };
        let mut t_sync = make(SyncMode::Synchronized);
        let mut t_def = make(SyncMode::Deferred);
        let mut data_rng = SmallRng::seed_from_u64(seed ^ 0xD5);
        let reals = t_sync.gan().sample_real_batch(batch, &mut data_rng);
        let mut ra = SmallRng::seed_from_u64(seed ^ 1);
        let mut rb = SmallRng::seed_from_u64(seed ^ 1);
        let a = t_sync.step_discriminator(&reals, &mut ra);
        let b = t_def.step_discriminator(&reals, &mut rb);
        prop_assert_eq!(a.dis_loss, b.dis_loss);
        for (ls, ld) in t_sync
            .gan()
            .discriminator()
            .layers()
            .iter()
            .zip(t_def.gan().discriminator().layers())
        {
            prop_assert_eq!(ls.weights().max_abs_diff(ld.weights()), 0.0);
        }
    }
}
