//! Proof of the zero-allocation training hot path: once a
//! [`ConvWorkspace`] has warmed up, steady-state `forward_ws` /
//! `backward_ws` passes through both conv directions perform **zero** heap
//! allocations. Measured with a counting `#[global_allocator]`, which is
//! why this test lives in its own binary with a single `#[test]` — no
//! other test threads can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::nn::{Activation, ConvLayer, Direction};
use zfgan::tensor::{ConvBackend, ConvGeom, ConvWorkspace, Fmaps, Kernels};

/// Counts every allocation event (alloc, alloc_zeroed, realloc) and
/// otherwise defers to the system allocator.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// One full forward + backward through both layers, recycling every
/// buffer back into the workspace. Returns the allocation-event delta.
fn round_trip(layers: &[(ConvLayer, Fmaps<f32>, Fmaps<f32>)], ws: &mut ConvWorkspace<f32>) -> u64 {
    let before = alloc_events();
    for (layer, x, delta) in layers {
        let (pre, post) = layer.forward_ws(x, ws).expect("shapes fixed at build time");
        let (dx, grads) = layer
            .backward_ws(delta, &pre, x, ws)
            .expect("shapes fixed at build time");
        ws.give_fmaps(pre);
        ws.give_fmaps(post);
        ws.give_fmaps(dx);
        grads.recycle(ws);
    }
    alloc_events() - before
}

#[test]
fn warm_workspace_passes_allocate_nothing() {
    let mut rng = SmallRng::seed_from_u64(41);
    // MNIST-GAN layer-2 geometry (14×14 ↔ 7×7, k=5, s=2): one layer per
    // conv direction so the steady-state claim covers S-, T- and both
    // W-CONV lowerings on the default zero-free backend.
    let geom = ConvGeom::down(14, 14, 5, 5, 2, 7, 7).expect("static geometry");
    let mut layers = Vec::new();
    for (dir, in_shape, w) in [
        (
            Direction::Down,
            (3usize, 14usize, 14usize),
            Kernels::random(5, 3, 5, 5, 0.25, &mut rng),
        ),
        (
            Direction::Up,
            (5, 7, 7),
            Kernels::random(5, 3, 5, 5, 0.25, &mut rng),
        ),
    ] {
        let mut layer =
            ConvLayer::new(dir, geom, w, Activation::LeakyRelu { alpha: 0.2 }, in_shape)
                .expect("consistent construction");
        layer.set_backend(ConvBackend::LoweredZeroFree);
        let x = Fmaps::random(in_shape.0, in_shape.1, in_shape.2, 1.0, &mut rng);
        let (_, out_h, out_w) = layer.out_shape();
        let delta = Fmaps::random(layer.out_shape().0, out_h, out_w, 1.0, &mut rng);
        layers.push((layer, x, delta));
    }

    let mut ws: ConvWorkspace<f32> = ConvWorkspace::new();
    // Warm-up: grows every scratch buffer to its steady-state size and
    // fills the T-phase cache.
    for _ in 0..2 {
        round_trip(&layers, &mut ws);
    }

    for step in 0..5 {
        let delta = round_trip(&layers, &mut ws);
        assert_eq!(
            delta, 0,
            "steady-state pass {step} allocated {delta} times; the conv hot \
             path must be allocation-free once the workspace is warm"
        );
    }

    // Sanity check that the counter actually works: the same passes with
    // reuse disabled (the honest allocating baseline) must allocate.
    ws.set_reuse(false);
    let delta = round_trip(&layers, &mut ws);
    assert!(
        delta > 0,
        "allocating baseline reported zero allocations — counter broken?"
    );
}
