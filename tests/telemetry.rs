//! Telemetry acceptance tests: the `zfgan trace` subcommand emits valid
//! Chrome-trace JSON whose deterministic section is byte-identical across
//! same-seed runs, and `sweep --trace-out` produces a parseable trace.

use serde_json::Value;
use zfgan::cli::run;

fn args(s: &[&str]) -> Vec<String> {
    s.iter().map(|s| s.to_string()).collect()
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "zfgan-telemetry-test-{}-{name}",
        std::process::id()
    ));
    p.to_string_lossy().into_owned()
}

/// Parses a trace file and returns its canonical deterministic section.
fn deterministic_of(path: &str) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    let v: Value = serde_json::from_str(&text).unwrap();
    let obj = v.as_object().unwrap();
    assert!(
        obj.get("traceEvents").and_then(Value::as_array).is_some(),
        "{path}: no traceEvents array"
    );
    obj.get("deterministic")
        .expect("deterministic section present")
        .to_string()
}

#[test]
fn trace_subcommand_is_byte_deterministic_across_runs() {
    let (p1, p2) = (tmp("trace-1.json"), tmp("trace-2.json"));
    run(&args(&["trace", "--seed", "7", "--out", &p1])).unwrap();
    run(&args(&["trace", "--seed", "7", "--out", &p2])).unwrap();
    let (d1, d2) = (deterministic_of(&p1), deterministic_of(&p2));
    assert!(!d1.is_empty());
    assert_eq!(d1, d2, "same-seed runs must agree byte-for-byte");
    // A different seed changes the operands but not the cycle counts of
    // these dense executors, so the deterministic sections still agree —
    // the zero-skipping GEMM counters would differ only via sparsity.
    assert!(d1.contains("exec_cycles_total"), "{d1}");
    assert!(d1.contains("\"spans\""), "{d1}");
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
}

#[test]
fn trace_check_validates_and_rejects() {
    let p = tmp("trace-check.json");
    run(&args(&["trace", "--arch", "zfost", "--out", &p])).unwrap();
    let out = run(&args(&["trace", "--check", &p])).unwrap();
    assert!(out.contains("valid Chrome trace"), "{out}");
    assert!(out.contains("deterministic:{"), "{out}");

    std::fs::write(&p, "{not json").unwrap();
    let err = run(&args(&["trace", "--check", &p])).unwrap_err();
    assert!(err.contains("invalid JSON"), "{err}");

    std::fs::write(&p, "{\"traceEvents\":[]}").unwrap();
    let err = run(&args(&["trace", "--check", &p])).unwrap_err();
    assert!(err.contains("deterministic"), "{err}");
    let _ = std::fs::remove_file(&p);
}

#[test]
fn sweep_trace_out_is_valid_perfetto_loadable_json() {
    let p = tmp("sweep.json");
    let out = run(&args(&["sweep", "cgan", "--trace-out", &p])).unwrap();
    assert!(out.contains("trace written"), "{out}");
    let text = std::fs::read_to_string(&p).unwrap();
    let v: Value = serde_json::from_str(&text).unwrap();
    let obj = v.as_object().unwrap();
    // The two invariants Perfetto needs: an object with a traceEvents
    // array (extra top-level keys are ignored by the viewer).
    let events = obj.get("traceEvents").and_then(Value::as_array).unwrap();
    assert!(!events.is_empty());
    // Every event is an object with the mandatory "ph" field.
    for e in events {
        assert!(e.as_object().and_then(|m| m.get("ph")).is_some(), "{e}");
    }
    // The schedule spans of the sweep landed in the trace.
    assert!(text.contains("schedule/"), "no schedule spans in trace");
    let _ = std::fs::remove_file(&p);
}

#[test]
fn faults_telemetry_reports_detection_latency_histogram() {
    let out = run(&args(&["faults", "--seed", "2024", "--telemetry"])).unwrap();
    assert!(out.contains("ABFT detection latency"), "{out}");
    assert!(out.contains("abft_detection_latency_words"), "{out}");
    assert!(out.contains("supervisor_rollbacks_total"), "{out}");
}
