//! Proof of the zero-allocation executor hot path: once an
//! [`ExecWorkspace`] has warmed up, steady-state **untraced** `*_ws`
//! passes through all nine cycle-accurate executors perform **zero** heap
//! allocations — the output arena, the parity/tap/range scratch, and the
//! pool's task fan-out are all recycled. Measured with a counting
//! `#[global_allocator]`, which is why this test lives in its own binary
//! with a single `#[test]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::dataflow::exec::{
    nlr_s_conv_ws, ost_t_conv_ws, wst_s_conv_ws, zfost_s_conv_ws, zfost_t_conv_ws, zfwst_s_conv_ws,
    zfwst_t_conv_ws, zfwst_wgrad_s_ws, zfwst_wgrad_t_ws,
};
use zfgan::dataflow::{ExecWorkspace, Nlr, Ost, Wst, Zfost, Zfwst};
use zfgan::sim::{ConvKind, ConvShape};
use zfgan::tensor::{ConvGeom, Fmaps, Kernels};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// One untraced pass through all nine executors, recycling every output
/// back into the workspace. Returns the allocation-event delta.
#[allow(clippy::too_many_arguments)]
fn full_sweep(
    s_phase: &ConvShape,
    t_phase: &ConvShape,
    ws_phase: &ConvShape,
    wt_phase: &ConvShape,
    big: &Fmaps<f32>,
    smallx: &Fmaps<f32>,
    k: &Kernels<f32>,
    ws: &mut ExecWorkspace<f32>,
) -> u64 {
    let zfost = Zfost::new(4, 4, 2);
    let zfwst = Zfwst::new(2, 2, 2);
    let ost = Ost::new(4, 4, 2);
    let wst = Wst::new(2, 2, 2);
    let nlr = Nlr::new(2, 2);
    let before = alloc_events();

    let out = zfost_s_conv_ws(&zfost, s_phase, big, k, ws).unwrap();
    ws.give_fmaps(out.output);
    let out = zfost_t_conv_ws(&zfost, t_phase, smallx, k, ws).unwrap();
    ws.give_fmaps(out.output);
    let grad = zfwst_wgrad_s_ws(&zfwst, ws_phase, big, smallx, ws).unwrap();
    ws.give_kernels(grad.output);
    let grad = zfwst_wgrad_t_ws(&zfwst, wt_phase, smallx, big, ws).unwrap();
    ws.give_kernels(grad.output);
    let (out, _census) = ost_t_conv_ws(&ost, t_phase, smallx, k, ws).unwrap();
    ws.give_fmaps(out.output);
    let (out, _psums) = wst_s_conv_ws(&wst, s_phase, big, k, ws).unwrap();
    ws.give_fmaps(out.output);
    let (out, _fetches) = nlr_s_conv_ws(&nlr, s_phase, big, k, ws).unwrap();
    ws.give_fmaps(out.output);
    let out = zfwst_s_conv_ws(&zfwst, s_phase, big, k, ws).unwrap();
    ws.give_fmaps(out.output);
    let out = zfwst_t_conv_ws(&zfwst, t_phase, smallx, k, ws).unwrap();
    ws.give_fmaps(out.output);

    alloc_events() - before
}

#[test]
fn warm_executor_passes_allocate_nothing() {
    let mut rng = SmallRng::seed_from_u64(77);
    // MNIST-GAN layer-2 geometry (14×14 ↔ 7×7, k=5, s=2) with asymmetric
    // padding, exercising edge tiles on every side.
    let geom = ConvGeom::down(14, 14, 5, 5, 2, 7, 7).expect("static geometry");
    let (small, large) = (5usize, 3usize);
    let s_phase = ConvShape::new(ConvKind::S, geom, small, large, 14, 14);
    let t_phase = ConvShape::new(ConvKind::T, geom, small, large, 14, 14);
    let ws_phase = ConvShape::new(ConvKind::WGradS, geom, small, large, 14, 14);
    let wt_phase = ConvShape::new(ConvKind::WGradT, geom, small, large, 14, 14);
    let big = Fmaps::random(large, 14, 14, 1.0, &mut rng);
    let smallx = Fmaps::random(small, 7, 7, 1.0, &mut rng);
    let k = Kernels::random(small, large, 5, 5, 0.25, &mut rng);

    let mut ws: ExecWorkspace<f32> = ExecWorkspace::new();
    // Warm-up: grows the arena and geometry scratch to steady-state size
    // (two rounds so best-fit reuse settles).
    for _ in 0..2 {
        full_sweep(
            &s_phase, &t_phase, &ws_phase, &wt_phase, &big, &smallx, &k, &mut ws,
        );
    }

    for step in 0..5 {
        let delta = full_sweep(
            &s_phase, &t_phase, &ws_phase, &wt_phase, &big, &smallx, &k, &mut ws,
        );
        assert_eq!(
            delta, 0,
            "steady-state executor sweep {step} allocated {delta} times; the \
             untraced fast path must be allocation-free once the workspace is \
             warm"
        );
    }

    // Sanity check that the counter actually works: a cold workspace (and
    // the traced variant's buffer) must allocate.
    let before = alloc_events();
    let mut cold: ExecWorkspace<f32> = ExecWorkspace::new();
    let out = zfost_s_conv_ws(&Zfost::new(4, 4, 2), &s_phase, &big, &k, &mut cold).unwrap();
    drop(out);
    assert!(
        alloc_events() - before > 0,
        "cold-workspace pass reported zero allocations — counter broken?"
    );
}
