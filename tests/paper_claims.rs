//! Integration tests pinning the paper's headline claims to this
//! reproduction. Each test names the claim it checks; tolerances are wide
//! enough to absorb modelling differences but tight enough that a broken
//! model fails.

use zfgan::accel::{AccelConfig, Design, GanAccelerator, MemoryAnalysis, SyncPolicy};
use zfgan::dataflow::ArchKind;
use zfgan::platforms::Platform;
use zfgan::sim::ConvKind;
use zfgan::workloads::{GanSpec, PhaseSeq};

/// Abstract: "our proposed design achieves the best performance (average
/// 4.3X) with the same computing resource" over traditional accelerators.
#[test]
fn headline_average_speedup_over_traditional_designs() {
    let winner = Design::Combo {
        st: ArchKind::Zfost,
        w: ArchKind::Zfwst,
    };
    let traditional = [
        Design::Unique(ArchKind::Ost),
        Design::Combo {
            st: ArchKind::Nlr,
            w: ArchKind::Ost,
        },
    ];
    let mut speedups = Vec::new();
    for spec in GanSpec::all_paper_gans() {
        for seq in [PhaseSeq::DisUpdate, PhaseSeq::GenUpdate] {
            let w = winner.evaluate(&spec, seq, SyncPolicy::Deferred, 1680);
            for t in traditional {
                let r = t.evaluate(&spec, seq, SyncPolicy::Synchronized, 1680);
                speedups.push(r.total_cycles as f64 / w.total_cycles as f64);
            }
        }
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    // Paper: 4.3×. Accept the 2.5×–7× band.
    assert!((2.5..=7.0).contains(&avg), "average speedup {avg}");
    // And the winner never loses to a traditional design.
    assert!(speedups.iter().all(|&s| s >= 1.0), "speedups {speedups:?}");
}

/// Abstract: "an average of 8.3X speedup over CPU".
#[test]
fn headline_cpu_speedup() {
    let cpu = Platform::cpu_i7_6850k();
    let mut ratios = Vec::new();
    for spec in GanSpec::all_paper_gans() {
        let accel = GanAccelerator::new(AccelConfig::vcu118(), spec.clone());
        let fpga = accel.iteration_report(64).gops;
        let cpu_gops = cpu.run(&spec.iteration_phases()).gops;
        ratios.push(fpga / cpu_gops);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    // Paper: 8.3×. Accept 5×–13×.
    assert!((5.0..=13.0).contains(&avg), "CPU speedup {avg}");
}

/// Abstract: "6.2X energy-efficiency over NVIDIA GPU" (5.2× Titan X,
/// 7.1× K20 in Section VI-C).
#[test]
fn headline_gpu_energy_efficiency() {
    let mut fpga_eff = Vec::new();
    let mut k20_eff = Vec::new();
    let mut titan_eff = Vec::new();
    for spec in GanSpec::all_paper_gans() {
        let accel = GanAccelerator::new(AccelConfig::vcu118(), spec.clone());
        fpga_eff.push(accel.iteration_report(64).gops_per_watt);
        let phases = spec.iteration_phases();
        k20_eff.push(Platform::gpu_k20().run(&phases).gops_per_watt);
        titan_eff.push(Platform::gpu_titan_x().run(&phases).gops_per_watt);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let vs_k20 = avg(&fpga_eff) / avg(&k20_eff);
    let vs_titan = avg(&fpga_eff) / avg(&titan_eff);
    // Paper: 7.1× / 5.2×. Accept 4×–11× / 3×–8×.
    assert!((4.0..=11.0).contains(&vs_k20), "vs K20: {vs_k20}");
    assert!((3.0..=8.0).contains(&vs_titan), "vs Titan X: {vs_titan}");
    // The GPUs must still beat the CPU on energy, preserving the ordering.
    let cpu = Platform::cpu_i7_6850k().run(&GanSpec::cgan().iteration_phases());
    assert!(avg(&titan_eff) > cpu.gops_per_watt);
}

/// Section III-A: "DCGAN needs a ~126M-byte buffer when the batch size is
/// 256", reduced to one sample by deferred synchronization.
#[test]
fn memory_claim_126_mb() {
    let m = MemoryAnalysis::analyse(&GanSpec::dcgan(), 256, 2);
    let mb = m.synchronized_bytes as f64 / 1e6;
    assert!((120.0..=132.0).contains(&mb), "{mb} MB");
    assert_eq!(m.reduction_factor(), 512.0);
    assert!(!m.synchronized_fits_on_chip);
    assert!(m.deferred_fits_on_chip);
}

/// Section III-C: "These ineffectual operations account for about 64% and
/// 75% of total multiplications in Ḡ/Ḡw and D̄w respectively."
#[test]
fn ineffectual_fraction_claim() {
    for spec in GanSpec::all_paper_gans() {
        for kind in [ConvKind::T, ConvKind::WGradS, ConvKind::WGradT] {
            let (mut naive, mut eff) = (0u64, 0u64);
            for p in spec.phase_set(kind) {
                naive += p.naive_muls();
                eff += p.effectual_macs();
            }
            let frac = 1.0 - eff as f64 / naive as f64;
            // Paper: 64–75%; our ladders (which exclude the zero-free
            // projection head) land at 71–79%.
            assert!(
                (0.60..=0.82).contains(&frac),
                "{} {kind:?}: {frac}",
                spec.name()
            );
        }
    }
}

/// Section V-C: "W_Pof is 30 and ST_Pof is 75" at 192 Gbit/s, 200 MHz,
/// 16-bit data — Eqs. 7 and 8.
#[test]
fn unrolling_derivation_claim() {
    let cfg = AccelConfig::vcu118();
    assert_eq!(cfg.w_pof(), 30);
    assert_eq!(cfg.st_pof(), 75);
    assert_eq!(cfg.total_pes(), 1680);
}

/// Section IV-B: naive per-phase pipelining leaves W-ARCH at 66.7% (D) and
/// 50% (G) utilization; time multiplexing with the Eq. 8 ratio removes the
/// Discriminator-update bubbles entirely.
#[test]
fn pipeline_utilization_claim() {
    use zfgan::accel::timeline::{naive_pipeline, time_multiplexed_pipeline};
    let spec = GanSpec::dcgan();
    let naive_d = naive_pipeline(&spec, PhaseSeq::DisUpdate, |_| 1);
    let w = naive_d
        .lanes
        .iter()
        .find(|l| l.name == "W-ARCH")
        .expect("lane exists");
    assert!((w.utilization - 2.0 / 3.0).abs() < 1e-9);
    let naive_g = naive_pipeline(&spec, PhaseSeq::GenUpdate, |_| 1);
    let w = naive_g
        .lanes
        .iter()
        .find(|l| l.name == "W-ARCH")
        .expect("lane exists");
    assert!((w.utilization - 0.5).abs() < 1e-9);
    let tm = time_multiplexed_pipeline(&spec, PhaseSeq::DisUpdate, |_| 1, 2.5);
    assert!(tm.bubble_fraction() < 1e-9);
}

/// Fig. 18's observation: with 512 PEs, ZFOST-ZFWST reaches the
/// neighbourhood of NLR-OST at 1024 PEs.
#[test]
fn half_the_pes_of_the_traditional_combo() {
    let spec = GanSpec::dcgan();
    let zf = Design::Combo {
        st: ArchKind::Zfost,
        w: ArchKind::Zfwst,
    }
    .iteration_cycles(&spec, SyncPolicy::Deferred, 512);
    let trad = Design::Combo {
        st: ArchKind::Nlr,
        w: ArchKind::Ost,
    }
    .iteration_cycles(&spec, SyncPolicy::Deferred, 1024);
    let ratio = trad as f64 / zf as f64;
    assert!(
        ratio > 0.9,
        "ZFOST-ZFWST@512 should ≈ NLR-OST@1024, ratio {ratio}"
    );
}
