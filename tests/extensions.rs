//! Integration tests for the beyond-the-paper extensions: the RTL models,
//! the im2col lowering, parallel training, the fit driver, and the
//! datasheet/roofline machinery.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::accel::gantt::BatchSchedule;
use zfgan::accel::{datasheet, AccelConfig, GanAccelerator};
use zfgan::dataflow::rtl::{reorder_load_comparison, rtl_s_conv};
use zfgan::dataflow::{Dataflow, RowStationary, Zfost, Zfwst};
use zfgan::nn::parallel::parallel_dis_grads_with;
use zfgan::nn::{fit, GanPair, GanTrainer, SyncMode, TrainerConfig};
use zfgan::sim::{ConvKind, ConvShape};
use zfgan::tensor::im2col::{im2col_t, s_conv_via_gemm, t_conv_via_gemm};
use zfgan::tensor::{s_conv, t_conv, ConvGeom, Fmaps, Kernels};
use zfgan::workloads::{GanSpec, PhaseSeq};

/// The RTL register-lattice machine, the functional executor, the GEMM
/// lowering and the plain loop nest all compute the same convolution.
#[test]
fn four_independent_implementations_agree() {
    let mut rng = SmallRng::seed_from_u64(42);
    let geom = ConvGeom::down(16, 16, 4, 4, 2, 8, 8).expect("static geometry");
    let phase = ConvShape::new(ConvKind::S, geom, 6, 3, 16, 16);
    let x: Fmaps<f64> = Fmaps::random(3, 16, 16, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(6, 3, 4, 4, 0.5, &mut rng);

    let direct = s_conv(&x, &k, &geom).expect("operands match");
    let gemm = s_conv_via_gemm(&x, &k, &geom).expect("operands match");
    let exec = zfgan::dataflow::exec::zfost_s_conv(&Zfost::new(4, 4, 3), &phase, &x, &k)
        .expect("operands match");
    let rtl = rtl_s_conv(&Zfost::new(4, 4, 3), &phase, &x, &k, true).expect("operands match");

    assert!(direct.max_abs_diff(&gemm) < 1e-9);
    assert!(direct.max_abs_diff(&exec.output) < 1e-9);
    assert!(direct.max_abs_diff(&rtl.output) < 1e-9);
}

/// The im2col patch matrix for T-CONV carries the ineffectual-operand
/// fraction the platform models charge Caffe for.
#[test]
fn caffe_lowering_materialises_the_zeros() {
    let mut rng = SmallRng::seed_from_u64(1);
    let geom = ConvGeom::down(16, 16, 4, 4, 2, 8, 8).expect("static geometry");
    let x: Fmaps<f64> = Fmaps::random(4, 8, 8, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(4, 2, 4, 4, 0.5, &mut rng);
    let lowered = im2col_t(&x, &geom);
    assert!(
        lowered.zero_fraction() > 0.6,
        "fraction {}",
        lowered.zero_fraction()
    );
    // And the lowering still computes the right answer.
    let direct = t_conv(&x, &k, &geom).expect("operands match");
    let gemm = t_conv_via_gemm(&x, &k, &geom).expect("operands match");
    assert!(direct.max_abs_diff(&gemm) < 1e-9);
}

/// RTL measurement backs the access models: raster feed loads ≥1.5× more
/// than the parity-reordered feed on a strided layer.
#[test]
fn rtl_confirms_the_reorder_claim() {
    let mut rng = SmallRng::seed_from_u64(2);
    let geom = ConvGeom::down(24, 24, 4, 4, 2, 12, 12).expect("static geometry");
    let phase = ConvShape::new(ConvKind::S, geom, 8, 2, 24, 24);
    let x: Fmaps<f64> = Fmaps::random(2, 24, 24, 1.0, &mut rng);
    let k: Kernels<f64> = Kernels::random(8, 2, 4, 4, 0.5, &mut rng);
    let (reordered, raster) =
        reorder_load_comparison(&Zfost::new(4, 4, 4), &phase, &x, &k).expect("operands match");
    assert!(
        raster as f64 > 1.5 * reordered as f64,
        "raster {raster} reordered {reordered}"
    );
}

/// Parallel gradient computation is bit-identical across thread counts and
/// matches what a sequential synchronized trainer would apply.
#[test]
fn parallel_training_is_deterministic() {
    let mut rng = SmallRng::seed_from_u64(3);
    let pair = GanPair::tiny(&mut rng);
    let reals = pair.sample_real_batch(5, &mut rng);
    let fakes = pair.sample_real_batch(5, &mut rng);
    let (g1, s1, f1) = parallel_dis_grads_with(pair.discriminator(), &reals, &fakes, 1);
    let (g4, s4, f4) = parallel_dis_grads_with(pair.discriminator(), &reals, &fakes, 4);
    assert_eq!(s1, s4);
    assert_eq!(f1, f4);
    for (a, b) in g1.iter().zip(&g4) {
        assert_eq!(a.max_abs_diff(b), 0.0);
    }
}

/// The fit driver trains the tiny GAN to a separating critic under the
/// deferred algorithm.
#[test]
fn fit_driver_reaches_a_separating_critic() {
    let mut rng = SmallRng::seed_from_u64(4);
    let pair = GanPair::tiny(&mut rng);
    let mut trainer = GanTrainer::new(
        pair,
        TrainerConfig {
            mode: SyncMode::Deferred,
            learning_rate: 2e-3,
            weight_clip: Some(0.05),
            n_critic: 1,
            ..TrainerConfig::default()
        },
    );
    let history = fit(
        &mut trainer,
        10,
        6,
        8,
        |n, rng| GanPair::tiny(&mut SmallRng::seed_from_u64(9)).sample_real_batch(n, rng),
        &mut rng,
    );
    assert!(history.separation_improved());
}

/// The datasheet, the gantt simulation and the design evaluation agree on
/// the same per-sample cycle numbers.
#[test]
fn datasheet_gantt_and_design_agree() {
    let spec = GanSpec::cgan();
    let accel = GanAccelerator::new(AccelConfig::vcu118(), spec.clone());
    let (st, w) = accel.update_stats(PhaseSeq::DisUpdate);
    // Gantt steady state == the accelerator's deferred model.
    let sched = BatchSchedule::deferred(st.cycles, w.cycles, 16);
    let expected = 16 * st.cycles.max(w.cycles) + st.cycles.min(w.cycles);
    assert_eq!(sched.makespan, expected);
    assert_eq!(
        accel.update_cycles(PhaseSeq::DisUpdate),
        st.cycles.max(w.cycles)
    );
    // The datasheet repeats those numbers.
    let sheet = datasheet(&accel, 16);
    assert!(sheet.contains(&st.cycles.to_string()));
    assert!(sheet.contains(&w.cycles.to_string()));
}

/// Row-stationary gates zeros: same MAC count visible as low utilization
/// where the zero-free designs reclaim cycles.
#[test]
fn gating_vs_skipping_across_all_workloads() {
    for spec in GanSpec::all_paper_gans() {
        let t_phases = spec.phase_set(ConvKind::T);
        let rs = RowStationary::new(4, 4, 75).schedule_all(&t_phases);
        let zf = Zfost::new(4, 4, 75).schedule_all(&t_phases);
        assert!(rs.cycles > 3 * zf.cycles, "{}", spec.name());
        let w_phases = spec.phase_set(ConvKind::WGradT);
        let rs_w = RowStationary::new(4, 4, 30).schedule_all(&w_phases);
        let zf_w = Zfwst::new(4, 4, 30).schedule_all(&w_phases);
        assert!(rs_w.cycles > 3 * zf_w.cycles, "{}", spec.name());
    }
}
