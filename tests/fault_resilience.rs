//! End-to-end resilience acceptance tests: campaign determinism, ABFT
//! coverage of accumulator faults, and supervised-training rollback.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::faults::{run_campaign, smoke_violations, CampaignConfig};
use zfgan::nn::{GanPair, GanTrainer, SupervisedTrainer, SupervisorConfig, TrainerConfig};
use zfgan::tensor::fault::{FaultKind, FaultPlan, FaultSite};

/// Same seed → byte-identical campaign JSON (the `results/faults.json`
/// reproducibility contract).
#[test]
fn campaign_json_is_byte_deterministic() {
    let cfg = CampaignConfig::smoke(2024);
    let a = serde_json::to_string(&run_campaign(&cfg).unwrap()).unwrap();
    let b = serde_json::to_string(&run_campaign(&cfg).unwrap()).unwrap();
    assert_eq!(a, b);
}

/// The ABFT-checked GEMM detects every injected accumulator fault above
/// quantization noise: zero silent corruptions at that site, nonzero
/// detections overall.
#[test]
fn abft_catches_all_accumulator_faults_in_the_smoke_campaign() {
    let result = run_campaign(&CampaignConfig::smoke(2024)).unwrap();
    let mut detected_at_accumulator = 0u64;
    for cell in result.cells.iter().filter(|c| c.site == "gemm-accumulator") {
        assert_eq!(cell.silent, 0, "silent corruption escaped ABFT: {cell:?}");
        detected_at_accumulator += cell.detected;
    }
    assert!(detected_at_accumulator > 0, "campaign injected nothing");
    assert!(
        smoke_violations(&result).is_empty(),
        "{:?}",
        smoke_violations(&result)
    );
}

/// The supervisor's telemetry counters mirror its own `SupervisorStats`
/// exactly when an injected-fault scenario runs under a scoped registry:
/// one observability channel, no drift between the two books.
#[test]
fn supervisor_telemetry_counters_match_injected_fault_stats() {
    let plan = FaultPlan::new(
        99,
        0.5,
        FaultSite::TrainerStep,
        FaultKind::BitFlip { bit: 30 },
    )
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(100);
    let trainer = GanTrainer::try_new(
        GanPair::tiny(&mut rng),
        TrainerConfig {
            n_critic: 1,
            ..TrainerConfig::default()
        },
    )
    .unwrap();
    let mut sup = SupervisedTrainer::new(
        trainer,
        SupervisorConfig {
            fault: Some(plan),
            max_retries: 8,
            ..SupervisorConfig::default()
        },
    )
    .unwrap();

    let reg = std::sync::Arc::new(zfgan::telemetry::Registry::new());
    let mut step_rng = SmallRng::seed_from_u64(101);
    {
        let _guard = zfgan::telemetry::scope(std::sync::Arc::clone(&reg));
        for _ in 0..5 {
            sup.train_iteration(2, &mut step_rng).unwrap();
        }
    }

    let stats = *sup.stats();
    assert!(stats.faults_injected > 0, "{stats:?}");
    assert!(stats.rollbacks > 0, "{stats:?}");

    let snap = reg.snapshot();
    let counter = |name: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|(k, _, _)| k.name == name)
            .map(|(_, _, v)| *v)
            .sum()
    };
    assert_eq!(counter("supervisor_iterations_total"), stats.iterations);
    assert_eq!(
        counter("supervisor_faults_injected_total"),
        stats.faults_injected
    );
    assert_eq!(counter("supervisor_anomalies_total"), stats.anomalies);
    assert_eq!(counter("supervisor_rollbacks_total"), stats.rollbacks);
    assert_eq!(counter("supervisor_retries_total"), stats.retries);
    assert_eq!(counter("supervisor_degradations_total"), stats.degradations);
    // Every rollback restored a snapshot; one more snapshot per healthy
    // iteration was taken as the new last-good state.
    assert_eq!(counter("trainer_restores_total"), stats.rollbacks);
    assert_eq!(counter("trainer_snapshots_total"), stats.iterations);
    // The anomaly counter is labelled by kind; the label values must be
    // real anomaly names, not free text.
    for (k, _, _) in snap
        .counters
        .iter()
        .filter(|(k, _, _)| k.name == "supervisor_anomalies_total")
    {
        assert_eq!(k.labels.len(), 1, "{k:?}");
        assert_eq!(k.labels[0].0, "kind");
    }
}

/// An injected NaN during training triggers rollback + retry and the run
/// still completes with finite losses.
#[test]
fn nan_injection_rolls_back_and_training_finishes_finite() {
    // Sign-and-exponent havoc: bit 30 flips on clipped weights always
    // produce magnitudes around 1e36 — instantly unhealthy.
    let plan = FaultPlan::new(
        99,
        0.5,
        FaultSite::TrainerStep,
        FaultKind::BitFlip { bit: 30 },
    )
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(100);
    let trainer = GanTrainer::try_new(
        GanPair::tiny(&mut rng),
        TrainerConfig {
            n_critic: 1,
            ..TrainerConfig::default()
        },
    )
    .unwrap();
    let mut sup = SupervisedTrainer::new(
        trainer,
        SupervisorConfig {
            fault: Some(plan),
            max_retries: 8,
            ..SupervisorConfig::default()
        },
    )
    .unwrap();

    let mut step_rng = SmallRng::seed_from_u64(101);
    let mut last = None;
    for _ in 0..5 {
        last = Some(sup.train_iteration(2, &mut step_rng).unwrap());
    }
    let (d, g) = last.unwrap();
    assert!(d.dis_loss.is_finite());
    assert!(g.gen_loss.is_finite());
    let stats = sup.stats();
    assert!(stats.faults_injected > 0, "{stats:?}");
    assert!(stats.rollbacks > 0, "{stats:?}");
    assert_eq!(stats.iterations, 5, "{stats:?}");
    // Every parameter the run ends with is healthy.
    for net in [
        sup.trainer().gan().generator(),
        sup.trainer().gan().discriminator(),
    ] {
        for layer in net.layers() {
            assert!(layer.weights().as_slice().iter().all(|w| w.is_finite()));
            assert!(layer.bias().iter().all(|b| b.is_finite()));
        }
    }
}
