//! End-to-end resilience acceptance tests: campaign determinism, ABFT
//! coverage of accumulator faults, and supervised-training rollback.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan::faults::{run_campaign, smoke_violations, CampaignConfig};
use zfgan::nn::{GanPair, GanTrainer, SupervisedTrainer, SupervisorConfig, TrainerConfig};
use zfgan::tensor::fault::{FaultKind, FaultPlan, FaultSite};

/// Same seed → byte-identical campaign JSON (the `results/faults.json`
/// reproducibility contract).
#[test]
fn campaign_json_is_byte_deterministic() {
    let cfg = CampaignConfig::smoke(2024);
    let a = serde_json::to_string(&run_campaign(&cfg).unwrap()).unwrap();
    let b = serde_json::to_string(&run_campaign(&cfg).unwrap()).unwrap();
    assert_eq!(a, b);
}

/// The ABFT-checked GEMM detects every injected accumulator fault above
/// quantization noise: zero silent corruptions at that site, nonzero
/// detections overall.
#[test]
fn abft_catches_all_accumulator_faults_in_the_smoke_campaign() {
    let result = run_campaign(&CampaignConfig::smoke(2024)).unwrap();
    let mut detected_at_accumulator = 0u64;
    for cell in result.cells.iter().filter(|c| c.site == "gemm-accumulator") {
        assert_eq!(cell.silent, 0, "silent corruption escaped ABFT: {cell:?}");
        detected_at_accumulator += cell.detected;
    }
    assert!(detected_at_accumulator > 0, "campaign injected nothing");
    assert!(
        smoke_violations(&result).is_empty(),
        "{:?}",
        smoke_violations(&result)
    );
}

/// The supervisor's telemetry counters mirror its own `SupervisorStats`
/// exactly when an injected-fault scenario runs under a scoped registry:
/// one observability channel, no drift between the two books.
#[test]
fn supervisor_telemetry_counters_match_injected_fault_stats() {
    let plan = FaultPlan::new(
        99,
        0.5,
        FaultSite::TrainerStep,
        FaultKind::BitFlip { bit: 30 },
    )
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(100);
    let trainer = GanTrainer::try_new(
        GanPair::tiny(&mut rng),
        TrainerConfig {
            n_critic: 1,
            ..TrainerConfig::default()
        },
    )
    .unwrap();
    let mut sup = SupervisedTrainer::new(
        trainer,
        SupervisorConfig {
            fault: Some(plan),
            max_retries: 8,
            ..SupervisorConfig::default()
        },
    )
    .unwrap();

    let reg = std::sync::Arc::new(zfgan::telemetry::Registry::new());
    let mut step_rng = SmallRng::seed_from_u64(101);
    {
        let _guard = zfgan::telemetry::scope(std::sync::Arc::clone(&reg));
        for _ in 0..5 {
            sup.train_iteration(2, &mut step_rng).unwrap();
        }
    }

    let stats = *sup.stats();
    assert!(stats.faults_injected > 0, "{stats:?}");
    assert!(stats.rollbacks > 0, "{stats:?}");

    let snap = reg.snapshot();
    let counter = |name: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|(k, _, _)| k.name == name)
            .map(|(_, _, v)| *v)
            .sum()
    };
    assert_eq!(counter("supervisor_iterations_total"), stats.iterations);
    assert_eq!(
        counter("supervisor_faults_injected_total"),
        stats.faults_injected
    );
    assert_eq!(counter("supervisor_anomalies_total"), stats.anomalies);
    assert_eq!(counter("supervisor_rollbacks_total"), stats.rollbacks);
    assert_eq!(counter("supervisor_retries_total"), stats.retries);
    assert_eq!(counter("supervisor_degradations_total"), stats.degradations);
    // Every rollback restored a snapshot; one more snapshot per healthy
    // iteration was taken as the new last-good state.
    assert_eq!(counter("trainer_restores_total"), stats.rollbacks);
    assert_eq!(counter("trainer_snapshots_total"), stats.iterations);
    // The anomaly counter is labelled by kind; the label values must be
    // real anomaly names, not free text.
    for (k, _, _) in snap
        .counters
        .iter()
        .filter(|(k, _, _)| k.name == "supervisor_anomalies_total")
    {
        assert_eq!(k.labels.len(), 1, "{k:?}");
        assert_eq!(k.labels[0].0, "kind");
    }
}

/// An injected NaN during training triggers rollback + retry and the run
/// still completes with finite losses.
#[test]
fn nan_injection_rolls_back_and_training_finishes_finite() {
    // Sign-and-exponent havoc: bit 30 flips on clipped weights always
    // produce magnitudes around 1e36 — instantly unhealthy.
    let plan = FaultPlan::new(
        99,
        0.5,
        FaultSite::TrainerStep,
        FaultKind::BitFlip { bit: 30 },
    )
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(100);
    let trainer = GanTrainer::try_new(
        GanPair::tiny(&mut rng),
        TrainerConfig {
            n_critic: 1,
            ..TrainerConfig::default()
        },
    )
    .unwrap();
    let mut sup = SupervisedTrainer::new(
        trainer,
        SupervisorConfig {
            fault: Some(plan),
            max_retries: 8,
            ..SupervisorConfig::default()
        },
    )
    .unwrap();

    let mut step_rng = SmallRng::seed_from_u64(101);
    let mut last = None;
    for _ in 0..5 {
        last = Some(sup.train_iteration(2, &mut step_rng).unwrap());
    }
    let (d, g) = last.unwrap();
    assert!(d.dis_loss.is_finite());
    assert!(g.gen_loss.is_finite());
    let stats = sup.stats();
    assert!(stats.faults_injected > 0, "{stats:?}");
    assert!(stats.rollbacks > 0, "{stats:?}");
    assert_eq!(stats.iterations, 5, "{stats:?}");
    // Every parameter the run ends with is healthy.
    for net in [
        sup.trainer().gan().generator(),
        sup.trainer().gan().discriminator(),
    ] {
        for layer in net.layers() {
            assert!(layer.weights().as_slice().iter().all(|w| w.is_finite()));
            assert!(layer.bias().iter().all(|b| b.is_finite()));
        }
    }
}

/// Store round-trip + resume preserves the RNG stream bit-for-bit: the
/// resumed trainer, optimizers and step RNG continue the exact trajectory
/// of the uninterrupted run.
#[test]
fn store_round_trip_resume_preserves_rng_streams_bit_for_bit() {
    use zfgan::nn::durable::run_config_hash;
    use zfgan::nn::{DurableCheckpointer, DurableSnapshot, TrainRecord};

    let dir = std::env::temp_dir().join(format!("zfgan-resilience-rng-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = TrainerConfig {
        n_critic: 1,
        ..TrainerConfig::default()
    };
    let mut init_rng = SmallRng::seed_from_u64(77);
    let mut trainer = GanTrainer::new(GanPair::tiny(&mut init_rng), config);
    let mut rng = SmallRng::seed_from_u64(78);

    // Train 3 iterations, snapshot through the store, train 3 more.
    let mut records = Vec::new();
    for i in 1..=3u64 {
        let (d, g) = trainer.train_iteration(2, &mut rng);
        records.push(TrainRecord {
            iteration: i,
            dis_loss: d.dis_loss,
            gen_loss: g.gen_loss,
            wasserstein: d.wasserstein_estimate,
        });
    }
    let hash = run_config_hash(trainer.config(), 77, 2);
    let mut cp = DurableCheckpointer::open_dir(&dir, "rng", hash, 1, 4).unwrap();
    let snap = DurableSnapshot::capture(&trainer.snapshot(), trainer.config(), &rng, 3, &records);
    cp.publish(&snap).unwrap();

    // Resume from disk into a *fresh* trainer/RNG.
    let (_, loaded, skipped) = cp.load_latest().unwrap().unwrap();
    assert!(skipped.is_empty());
    let (mut resumed, mut resumed_rng, iter, _) = loaded.resume().unwrap();
    assert_eq!(iter, 3);
    assert_eq!(
        rng.state(),
        resumed_rng.state(),
        "restored RNG must carry the exact xoshiro state words"
    );

    // Both trajectories must stay bit-identical — losses AND RNG words.
    for _ in 0..3 {
        let (d1, g1) = trainer.train_iteration(2, &mut rng);
        let (d2, g2) = resumed.train_iteration(2, &mut resumed_rng);
        assert_eq!(d1, d2);
        assert_eq!(g1, g2);
        assert_eq!(rng.state(), resumed_rng.state(), "RNG streams diverged");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The supervisor's periodic durable publish persists exactly its
/// last-good state: what `maybe_publish` wrote equals what `capture` on
/// the live state produces, and corrupting the newest generation falls
/// back to the previous publish instead of loading garbage.
#[test]
fn supervisor_durable_publish_persists_last_good_state() {
    use zfgan::nn::durable::run_config_hash;
    use zfgan::nn::{DurableCheckpointer, DurableSnapshot, TrainRecord};

    let dir = std::env::temp_dir().join(format!("zfgan-resilience-publish-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = TrainerConfig {
        n_critic: 1,
        ..TrainerConfig::default()
    };
    let mut init_rng = SmallRng::seed_from_u64(90);
    let trainer = GanTrainer::new(GanPair::tiny(&mut init_rng), config);
    let hash = run_config_hash(&config, 90, 2);
    let mut sup = SupervisedTrainer::new(trainer, SupervisorConfig::default()).unwrap();
    sup.set_checkpointer(DurableCheckpointer::open_dir(&dir, "train", hash, 1, 4).unwrap());

    let mut rng = SmallRng::seed_from_u64(91);
    let mut records: Vec<TrainRecord> = Vec::new();
    let mut generations = Vec::new();
    for i in 1..=3u64 {
        let (d, g) = sup.train_iteration(2, &mut rng).unwrap();
        records.push(TrainRecord {
            iteration: i,
            dis_loss: d.dis_loss,
            gen_loss: g.gen_loss,
            wasserstein: d.wasserstein_estimate,
        });
        generations.push(sup.maybe_publish(i, &rng, &records).unwrap().unwrap());
    }
    assert_eq!(generations, vec![1, 2, 3]);

    // What landed on disk is exactly the live last-good state.
    let expected = DurableSnapshot::capture(
        &sup.trainer().snapshot(),
        sup.trainer().config(),
        &rng,
        3,
        &records,
    );
    let cp = sup.checkpointer_mut().unwrap();
    let (generation, loaded, _) = cp.load_latest().unwrap().unwrap();
    assert_eq!(generation, 3);
    assert_eq!(loaded.to_json(), expected.to_json());

    // Flip one byte of the newest generation: load must fall back to
    // generation 2 — iteration 2's state — never load the corrupt bytes.
    let path = cp.store_mut().generation_path("train", 3);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let (generation, fallback, skipped) = cp.load_latest().unwrap().unwrap();
    assert_eq!(generation, 2);
    assert_eq!(fallback.iteration, 2);
    assert!(
        !skipped.is_empty(),
        "the skipped corrupt generation must be reported"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
