//! `zfgan-pool` — a persistent, lazily-initialized, process-global worker
//! pool for the data-parallel hot paths (`matmul_parallel`, `par_map`,
//! `parallel_dis_grads`).
//!
//! Before this crate existed every parallel call site spawned and joined
//! fresh OS threads, which made the parallel GEMM variants *slower* than the
//! naive loop at layer-sized shapes. The pool spawns `pool_threads() - 1`
//! workers once, on first use, and keeps them parked on a condvar between
//! batches, so dispatch cost is a few mutex operations instead of a
//! `clone`+`spawn`+`join` round trip per call.
//!
//! # Execution model
//!
//! A batch is `n` index-tasks over a caller-provided `Fn(usize) + Sync`
//! closure. Tasks are distributed round-robin over per-worker deques; idle
//! workers pop their own queue front-first and steal from other queues
//! back-first. The submitting thread never blocks idly while its batch is in
//! flight: it *helps*, draining queued tasks (preferring its own batch) until
//! every task of its batch has finished. This makes nested submission safe —
//! a pooled `parallel_dis_grads` job whose conv layers use the pooled GEMM
//! backend cannot deadlock, because every blocked submitter is also a worker.
//!
//! # Determinism contract
//!
//! The pool assigns each index to exactly one executor; callers partition
//! output buffers so each element is written once, with the same per-element
//! reduction order as the sequential reference. Scheduling affects only
//! *which thread* computes an element, never the arithmetic — so pooled
//! results are bit-identical to sequential ones and the fig15–fig19 sweeps
//! stay byte-stable. Pool telemetry (tasks, batches, steals, queue depth) is
//! scheduling-dependent and therefore emitted via the wall-clock metric
//! class, which the deterministic export section excludes.
//!
//! # Panic semantics
//!
//! Each task runs under `catch_unwind`; a panicking task is counted and the
//! batch completes the remaining work, returning
//! [`PoolError::TaskPanicked`] so callers can surface typed errors
//! (`zfgan_nn::ParallelError`) instead of crashing the trainer. The
//! sequential fallback (one hardware thread, one task, or an uninitialized
//! pool) uses the same per-index `catch_unwind`, so error semantics do not
//! depend on where the batch ran.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Error returned when one or more tasks of a batch panicked. The batch
/// still ran to completion (every non-panicking task finished), mirroring
/// the semantics callers need to degrade gracefully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// `failed` of `total` tasks panicked.
    TaskPanicked {
        /// Number of tasks whose closure panicked.
        failed: usize,
        /// Total number of tasks in the batch.
        total: usize,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::TaskPanicked { failed, total } => {
                write!(f, "{failed} of {total} pool tasks panicked")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Parses a `ZFGAN_THREADS`-style override, falling back to the detected
/// hardware parallelism. Factored out of [`pool_threads`] so the parse rules
/// are unit-testable despite the process-wide `OnceLock` cache.
fn threads_from(env: Option<&str>, fallback: usize) -> usize {
    match env.and_then(|s| s.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => fallback.max(1),
    }
}

/// The process-wide thread budget: `ZFGAN_THREADS` if set to a positive
/// integer, else `std::thread::available_parallelism()`. Computed once per
/// process and cached — call sites must never re-query the OS per call.
pub fn pool_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let fallback = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        threads_from(std::env::var("ZFGAN_THREADS").ok().as_deref(), fallback)
    })
}

/// Header of an in-flight batch. Lives on the submitter's stack; the
/// completion protocol below guarantees no task (or worker) touches it after
/// the submitter returns.
struct BatchHeader {
    /// Monomorphized trampoline: calls the `Fn(usize)` behind `ctx`.
    run: unsafe fn(*const (), usize),
    /// Type-erased pointer to the caller's closure (`&F`, `F: Sync`).
    ctx: *const (),
    /// Tasks not yet finished. The executor of the last task performs the
    /// `done` handoff.
    remaining: AtomicUsize,
    /// Tasks whose closure panicked.
    panicked: AtomicUsize,
    /// Completion flag. Set to `true` — and signalled — *while holding the
    /// mutex* by whichever thread finishes the last task; the submitter only
    /// returns after observing `true` under the same mutex. This handoff is
    /// what makes the stack-resident header sound: `remaining == 0` alone
    /// would let the submitter free the header while the finishing worker is
    /// still about to signal it.
    done: Mutex<bool>,
    done_cv: Condvar,
}

/// One unit of work: an index into some batch.
#[derive(Clone, Copy)]
struct Task {
    header: *const BatchHeader,
    index: usize,
}

// SAFETY: the raw header pointer is only dereferenced while the batch is in
// flight; the submitter keeps the header alive until the `done` handoff
// (see `BatchHeader::done`), after which no `Task` for it exists anywhere.
unsafe impl Send for Task {}

/// Shared pool state: one deque per worker, a version counter + condvar for
/// idle parking, and a round-robin cursor for task placement.
struct Shared {
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks currently queued (approximate; used only for the depth gauge).
    pending: AtomicUsize,
    /// Bumped on every submission; parked workers wake when it changes.
    version: Mutex<u64>,
    work_cv: Condvar,
    /// Rotates the starting queue between submissions to spread load.
    rr: AtomicUsize,
}

impl Shared {
    fn new(n_queues: usize) -> Self {
        Shared {
            queues: (0..n_queues).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            version: Mutex::new(0),
            work_cv: Condvar::new(),
            rr: AtomicUsize::new(0),
        }
    }
}

/// Executes one task: catch the panic, count it, and perform the completion
/// handoff if this was the batch's last task.
fn run_task(t: Task) {
    // SAFETY: the batch is in flight (this Task was just popped), so the
    // header is alive; `run`/`ctx` were built from a `&F` with `F: Sync`.
    let header = unsafe { &*t.header };
    let ok = catch_unwind(AssertUnwindSafe(|| unsafe {
        (header.run)(header.ctx, t.index)
    }))
    .is_ok();
    if !ok {
        header.panicked.fetch_add(1, Ordering::SeqCst);
    }
    if header.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
        // Last task: flip `done` and signal while still holding the lock —
        // after the guard drops the submitter may free the header, so no
        // header access is allowed past this block.
        let mut d = header.done.lock().unwrap();
        *d = true;
        header.done_cv.notify_all();
    }
}

/// Pops a queued task for a helping submitter: prefer a task of its own
/// batch (front of any queue), else any task. `None` means every queue was
/// empty at scan time.
fn pop_any(shared: &Shared, own: *const BatchHeader) -> Option<Task> {
    let mut fallback = None;
    for (i, qm) in shared.queues.iter().enumerate() {
        let mut q = qm.lock().unwrap();
        match q.front() {
            Some(t) if std::ptr::eq(t.header, own) => return q.pop_front(),
            Some(_) if fallback.is_none() => fallback = Some(i),
            _ => {}
        }
    }
    fallback.and_then(|i| shared.queues[i].lock().unwrap().pop_front())
}

/// Steals a task from any queue other than `me` (back-first, so owners and
/// thieves contend on opposite ends).
fn steal(shared: &Shared, me: usize) -> Option<Task> {
    for (i, qm) in shared.queues.iter().enumerate() {
        if i == me {
            continue;
        }
        if let Some(t) = qm.lock().unwrap().pop_back() {
            zfgan_telemetry::count_wall("pool_steals_total", &[], 1);
            return Some(t);
        }
    }
    None
}

fn worker_loop(shared: &'static Shared, me: usize) {
    let mut seen_version = 0u64;
    loop {
        let task = shared.queues[me]
            .lock()
            .unwrap()
            .pop_front()
            .or_else(|| steal(shared, me));
        if let Some(t) = task {
            shared.pending.fetch_sub(1, Ordering::Relaxed);
            run_task(t);
            continue;
        }
        let v = shared.version.lock().unwrap();
        if *v != seen_version {
            seen_version = *v;
            continue;
        }
        // Timeout is belt-and-suspenders against a missed wakeup; the
        // version counter is the real signal.
        let (v, _) = shared
            .work_cv
            .wait_timeout(v, Duration::from_millis(50))
            .unwrap();
        seen_version = *v;
    }
}

/// The lazily-created global pool. `None` when the thread budget is 1 —
/// every batch then runs inline. Worker spawn failures are tolerated: the
/// submitting thread's help loop drains the queues regardless, so a pool
/// with zero live workers still completes every batch (just sequentially).
fn pool() -> Option<&'static Shared> {
    static POOL: OnceLock<Option<&'static Shared>> = OnceLock::new();
    *POOL.get_or_init(|| {
        let threads = pool_threads();
        if threads <= 1 {
            return None;
        }
        let shared: &'static Shared = Box::leak(Box::new(Shared::new(threads - 1)));
        for i in 0..threads - 1 {
            let _ = std::thread::Builder::new()
                .name(format!("zfgan-pool-{i}"))
                .spawn(move || worker_loop(shared, i));
        }
        Some(shared)
    })
}

/// Runs `n` tasks inline on the calling thread with pooled panic semantics.
fn run_inline<F: Fn(usize) + Sync>(n: usize, f: &F) -> Result<(), PoolError> {
    let mut failed = 0;
    for i in 0..n {
        if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
            failed += 1;
        }
    }
    if failed > 0 {
        Err(PoolError::TaskPanicked { failed, total: n })
    } else {
        Ok(())
    }
}

/// Runs `f(0..n)` as a batch on the global pool, returning once every index
/// has executed exactly once. Falls back to an inline sequential loop when
/// the thread budget is 1 or the batch is trivial. See the crate docs for
/// the determinism and panic contracts.
pub fn run_batch<F: Fn(usize) + Sync>(n: usize, f: &F) -> Result<(), PoolError> {
    if n == 0 {
        return Ok(());
    }
    zfgan_telemetry::count_wall("pool_batches_total", &[], 1);
    zfgan_telemetry::count_wall("pool_tasks_total", &[], n as u64);
    let shared = if n > 1 { pool() } else { None };
    let Some(shared) = shared else {
        return run_inline(n, f);
    };

    /// Monomorphized trampoline; `ctx` is a `&F` in disguise.
    unsafe fn call<F: Fn(usize) + Sync>(ctx: *const (), index: usize) {
        let f = &*(ctx as *const F);
        f(index);
    }

    let header = BatchHeader {
        run: call::<F>,
        ctx: f as *const F as *const (),
        remaining: AtomicUsize::new(n),
        panicked: AtomicUsize::new(0),
        done: Mutex::new(false),
        done_cv: Condvar::new(),
    };
    let hp: *const BatchHeader = &header;

    let nq = shared.queues.len();
    let start = shared.rr.fetch_add(1, Ordering::Relaxed);
    for i in 0..n {
        shared.queues[(start + i) % nq]
            .lock()
            .unwrap()
            .push_back(Task {
                header: hp,
                index: i,
            });
    }
    let depth = shared.pending.fetch_add(n, Ordering::Relaxed) + n;
    zfgan_telemetry::gauge_wall("pool_queue_depth", &[], depth as f64);
    {
        let mut v = shared.version.lock().unwrap();
        *v = v.wrapping_add(1);
        shared.work_cv.notify_all();
    }

    // Help until our batch completes: drain queued tasks (ours first), and
    // only park — briefly — when every queue is empty, which means our
    // remaining tasks are executing on workers right now. The short timeout
    // also lets us resume helping if new (possibly our own, stolen-back)
    // work appears while we wait.
    loop {
        if *header.done.lock().unwrap() {
            break;
        }
        if let Some(t) = pop_any(shared, hp) {
            shared.pending.fetch_sub(1, Ordering::Relaxed);
            run_task(t);
            continue;
        }
        let d = header.done.lock().unwrap();
        if *d {
            break;
        }
        let (d, _) = header
            .done_cv
            .wait_timeout(d, Duration::from_millis(1))
            .unwrap();
        if *d {
            break;
        }
    }

    let failed = header.panicked.load(Ordering::SeqCst);
    if failed > 0 {
        Err(PoolError::TaskPanicked { failed, total: n })
    } else {
        Ok(())
    }
}

/// Scoped parallel for: `f(i)` for every `i in 0..n`, each exactly once.
pub fn parallel_for<F: Fn(usize) + Sync>(n: usize, f: F) -> Result<(), PoolError> {
    run_batch(n, &f)
}

/// Raw-pointer wrapper for handing disjoint output slots to pool tasks.
#[derive(Debug)]
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Offsets the base pointer. A method (rather than field access) so
    /// closures capture the whole `Sync` wrapper, not the raw `.0` field —
    /// edition-2021 precise capture would otherwise grab the bare pointer
    /// and un-`Sync` the closure.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds of the allocation behind the base pointer.
    unsafe fn add(self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

// SAFETY: every use partitions the pointee so each task touches a disjoint
// element/range; the buffer outlives the batch (it is owned by the caller
// of run_batch, which blocks until completion).
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Maps `f` over `0..n` on the pool and returns the results in index order.
/// If any task panics the surviving results are dropped and the typed error
/// is returned.
pub fn parallel_map<R, F>(n: usize, f: F) -> Result<Vec<R>, PoolError>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let out = SendPtr(slots.as_mut_ptr());
    run_batch(n, &|i| {
        let r = f(i);
        // SAFETY: each index writes only its own slot; `slots` outlives the
        // batch because run_batch blocks until completion.
        unsafe { *out.add(i) = Some(r) };
    })?;
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every pool task fills its slot"))
        .collect())
}

/// Splits `data` into consecutive chunks of `chunk_len` (the last may be
/// shorter), runs `f(chunk_index, chunk)` for each on the pool, and returns
/// the per-chunk results in chunk order. The chunking is identical to
/// `data.chunks_mut(chunk_len)`, so callers can keep their sequential
/// partitioning (and hence their reduction order) unchanged.
///
/// # Panics
///
/// Panics if `chunk_len == 0` and `data` is non-empty.
pub fn parallel_chunks_mut<T, R, F>(
    data: &mut [T],
    chunk_len: usize,
    f: F,
) -> Result<Vec<R>, PoolError>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    if data.is_empty() {
        return Ok(Vec::new());
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = data.len();
    let n = len.div_ceil(chunk_len);
    let base = SendPtr(data.as_mut_ptr());
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let out = SendPtr(slots.as_mut_ptr());
    run_batch(n, &|i| {
        let start = i * chunk_len;
        let end = (start + chunk_len).min(len);
        // SAFETY: chunks [start, end) are pairwise disjoint across indices
        // and in bounds; `data` outlives the batch.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.add(start), end - start) };
        let r = f(i, chunk);
        // SAFETY: as in parallel_map — one slot per index.
        unsafe { *out.add(i) = Some(r) };
    })?;
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every pool task fills its slot"))
        .collect())
}

/// [`parallel_chunks_mut`] without result collection: runs
/// `f(chunk_index, chunk)` for each chunk and returns nothing, so the call
/// itself performs **no heap allocation** — the primitive the
/// zero-allocation executor hot path in `zfgan-dataflow` fans out on.
/// Tasks that need to report back do so through caller-owned state
/// (disjoint chunk writes, or commutative atomics).
///
/// # Panics
///
/// Panics if `chunk_len == 0` and `data` is non-empty.
pub fn parallel_chunks_for<T, F>(data: &mut [T], chunk_len: usize, f: F) -> Result<(), PoolError>
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return Ok(());
    }
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = data.len();
    let n = len.div_ceil(chunk_len);
    let base = SendPtr(data.as_mut_ptr());
    run_batch(n, &|i| {
        let start = i * chunk_len;
        let end = (start + chunk_len).min(len);
        // SAFETY: chunks [start, end) are pairwise disjoint across indices
        // and in bounds; `data` outlives the batch.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.add(start), end - start) };
        f(i, chunk);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn threads_from_parses_override() {
        assert_eq!(threads_from(Some("3"), 8), 3);
        assert_eq!(threads_from(Some(" 2 "), 8), 2);
        assert_eq!(threads_from(Some("0"), 8), 8);
        assert_eq!(threads_from(Some("nope"), 8), 8);
        assert_eq!(threads_from(None, 8), 8);
        assert_eq!(threads_from(None, 0), 1);
    }

    #[test]
    fn pool_threads_is_stable() {
        assert_eq!(pool_threads(), pool_threads());
        assert!(pool_threads() >= 1);
    }

    #[test]
    fn parallel_for_runs_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, |i| i * i).unwrap();
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert!(parallel_map(0, |i| i).unwrap().is_empty());
    }

    #[test]
    fn chunks_mut_partitions_like_chunks_mut() {
        let mut data: Vec<u64> = (0..103).collect();
        let sums = parallel_chunks_mut(&mut data, 10, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v += 1;
            }
            (ci, chunk.len())
        })
        .unwrap();
        assert_eq!(data, (1..104).collect::<Vec<u64>>());
        assert_eq!(sums.len(), 11);
        assert_eq!(sums[10], (10, 3));
        assert!(sums[..10].iter().all(|&(_, l)| l == 10));
        let mut empty: Vec<u64> = Vec::new();
        assert!(parallel_chunks_mut(&mut empty, 4, |_, _| 0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn chunks_for_visits_every_chunk_once() {
        let mut data: Vec<u64> = vec![0; 103];
        let visits = AtomicU64::new(0);
        parallel_chunks_for(&mut data, 10, |ci, chunk| {
            visits.fetch_add(1, Ordering::SeqCst);
            for v in chunk.iter_mut() {
                *v = ci as u64 + 1;
            }
        })
        .unwrap();
        assert_eq!(visits.load(Ordering::SeqCst), 11);
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / 10) as u64 + 1, "element {i} missed its chunk");
        }
        let mut empty: Vec<u64> = Vec::new();
        parallel_chunks_for(&mut empty, 4, |_, _| unreachable!()).unwrap();
    }

    #[test]
    fn panics_become_typed_errors_and_batch_completes() {
        let done = AtomicU64::new(0);
        let err = parallel_for(16, |i| {
            if i % 4 == 0 {
                panic!("task {i} exploded");
            }
            done.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap_err();
        assert_eq!(
            err,
            PoolError::TaskPanicked {
                failed: 4,
                total: 16
            }
        );
        assert_eq!(done.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let total = AtomicU64::new(0);
        parallel_for(8, |_| {
            let inner = parallel_map(8, |j| j as u64).unwrap();
            total.fetch_add(inner.iter().sum::<u64>(), Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(total.load(Ordering::SeqCst), 8 * 28);
    }

    #[test]
    fn single_task_runs_inline() {
        let mut x = 0u64;
        let xp = &mut x as *mut u64 as usize;
        parallel_for(1, |_| {
            // SAFETY: n == 1, runs inline on this thread.
            unsafe { *(xp as *mut u64) += 7 };
        })
        .unwrap();
        assert_eq!(x, 7);
    }
}
