//! Exporter edge cases: Prometheus label-value escaping, `+Inf` bucket
//! emission, empty-registry output, and a property-based round-trip for
//! the collapsed-stack (flamegraph) exporter — every span contributes its
//! self-time to exactly one output line.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use zfgan_telemetry::export::{collapsed_stacks, prometheus};
use zfgan_telemetry::{Class, Registry, Span};

#[test]
fn prometheus_escapes_label_values() {
    let reg = Registry::new();
    reg.add(
        Class::Deterministic,
        "escapes_total",
        &[("path", "a\"b\\c\nd")],
        3,
    );
    let text = prometheus(&reg.snapshot());
    assert!(
        text.contains("escapes_total{path=\"a\\\"b\\\\c\\nd\"} 3"),
        "{text}"
    );
    // The escaped value must contain no raw newline inside the quotes: the
    // exposition format is line-oriented, so every series stays one line.
    let series_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.starts_with("escapes_total"))
        .collect();
    assert_eq!(series_lines.len(), 1, "{text}");
}

#[test]
fn prometheus_escapes_histogram_and_gauge_labels() {
    let reg = Registry::new();
    reg.set_gauge(Class::WallClock, "g", &[("q", "say \"hi\"")], 1.5);
    reg.observe(
        Class::WallClock,
        "lat",
        &[("who", "back\\slash")],
        &[1.0],
        0.5,
    );
    let text = prometheus(&reg.snapshot());
    assert!(text.contains("g{q=\"say \\\"hi\\\"\"} 1.5"), "{text}");
    assert!(
        text.contains("lat_bucket{who=\"back\\\\slash\",le=\"1\"} 1"),
        "{text}"
    );
    assert!(
        text.contains("lat_sum{who=\"back\\\\slash\"} 0.5"),
        "{text}"
    );
    assert!(
        text.contains("lat_count{who=\"back\\\\slash\"} 1"),
        "{text}"
    );
}

#[test]
fn prometheus_emits_the_inf_bucket_even_when_empty() {
    let reg = Registry::new();
    reg.observe(Class::Deterministic, "h", &[], &[1.0, 8.0], 0.5);
    let text = prometheus(&reg.snapshot());
    assert!(text.contains("h_bucket{le=\"1\"} 1"), "{text}");
    assert!(text.contains("h_bucket{le=\"8\"} 1"), "{text}");
    // The +Inf bucket is always present and cumulative == count.
    assert!(text.contains("h_bucket{le=\"+Inf\"} 1"), "{text}");
    assert!(text.contains("h_count 1"), "{text}");
}

#[test]
fn prometheus_of_an_empty_registry_is_empty() {
    let reg = Registry::new();
    assert_eq!(prometheus(&reg.snapshot()), "");
}

#[test]
fn collapsed_stacks_of_an_empty_registry_is_empty() {
    let reg = Registry::new();
    assert_eq!(collapsed_stacks(&reg), "");
}

#[test]
fn collapsed_stacks_subtracts_direct_children() {
    let reg = Arc::new(Registry::new());
    {
        let _scope = zfgan_telemetry::scope(Arc::clone(&reg));
        let _root = Span::enter("root");
        {
            let _a = Span::enter("a");
            let _leaf = Span::enter("leaf");
        }
        let _b = Span::enter("b");
    }
    let out = collapsed_stacks(&reg);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 4, "{out}");
    for prefix in ["root ", "root;a ", "root;a;leaf ", "root;b "] {
        assert!(
            lines.iter().any(|l| l.starts_with(prefix)),
            "missing {prefix:?} in {out}"
        );
    }
    // Self-times are consistent: every line parses, and the root line's
    // weight is its duration minus its direct children's.
    let weight = |p: &str| -> u64 {
        lines
            .iter()
            .find(|l| l.rsplit_once(' ').is_some_and(|(path, _)| path == p))
            .and_then(|l| l.rsplit_once(' '))
            .and_then(|(_, w)| w.parse().ok())
            .expect("line present and numeric")
    };
    let spans = reg.spans();
    let dur = |p: &str| spans.iter().find(|s| s.path == p).unwrap().dur_ns;
    assert_eq!(
        weight("root"),
        dur("root").saturating_sub(dur("root/a") + dur("root/b"))
    );
    assert_eq!(
        weight("root;a"),
        dur("root/a").saturating_sub(dur("root/a/leaf"))
    );
}

/// Build a random span tree (unique node names, so each span owns one
/// collapsed path) and return the registry holding it.
fn random_tree(seed: u64, n: usize) -> Arc<Registry> {
    let reg = Arc::new(Registry::new());
    let _scope = zfgan_telemetry::scope(Arc::clone(&reg));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut next_id = 0usize;
    // A stack of live guards: each step either opens a child under the
    // current innermost span or closes one level.
    let mut guards: Vec<Span> = Vec::new();
    for _ in 0..n {
        let open = guards.is_empty() || (guards.len() < 6 && rng.gen_range(0..3) > 0);
        if open {
            guards.push(Span::enter(format!("n{next_id}")));
            next_id += 1;
        } else {
            guards.pop();
        }
    }
    drop(guards);
    reg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-trip: every recorded span appears on exactly one collapsed
    /// line, and each line's weight equals that span's duration minus the
    /// total duration of its direct children (self-time).
    #[test]
    fn collapsed_stacks_round_trip(seed in 0u64..1024, n in 1usize..40) {
        let reg = random_tree(seed, n);
        let spans = reg.spans();
        let out = collapsed_stacks(&reg);
        let mut lines: Vec<(&str, u64)> = Vec::new();
        for line in out.lines() {
            let (path, w) = line.rsplit_once(' ').expect("path weight");
            lines.push((path, w.parse().expect("numeric weight")));
        }
        prop_assert_eq!(lines.len(), spans.len(), "one line per unique-path span");
        for s in &spans {
            let collapsed = s.path.replace('/', ";");
            let matched: Vec<&(&str, u64)> =
                lines.iter().filter(|(p, _)| *p == collapsed).collect();
            prop_assert_eq!(matched.len(), 1, "span {} appears once", s.path);
            // Direct children: unique paths make prefix+depth matching exact.
            let child_prefix = format!("{}/", s.path);
            let child_dur: u64 = spans
                .iter()
                .filter(|c| c.depth == s.depth + 1 && c.path.starts_with(&child_prefix))
                .map(|c| c.dur_ns)
                .sum();
            prop_assert_eq!(
                matched[0].1,
                s.dur_ns.saturating_sub(child_dur),
                "self-time of {}",
                s.path
            );
        }
    }
}
