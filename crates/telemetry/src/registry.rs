//! Metric registry: named counters, gauges and fixed-bucket histograms with
//! label support, cheap atomic updates, and a deterministic / wall-clock
//! classification that drives the exporters.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::span::SpanRecord;

/// Classification of a metric or span attribute.
///
/// `Deterministic` quantities (cycles, accesses, bytes, retries) are part of
/// the byte-stability contract: two runs with the same seed must produce
/// identical values, and CI diffs them byte-for-byte. `WallClock` quantities
/// (step latency, export duration) vary run to run and are excluded from the
/// deterministic export section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// Byte-stable across same-seed runs.
    Deterministic,
    /// Host timing; varies run to run.
    WallClock,
}

/// Identity of a metric: a name plus sorted `(key, value)` label pairs, so
/// `gemm_blocks{backend="zero_free"}` and `gemm_blocks{backend="blocked"}`
/// are distinct time series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, e.g. `gemm_blocks`.
    pub name: String,
    /// Label pairs, sorted by key then value.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key from a name and unsorted label slice.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Render as `name` or `name{k="v",...}` (Prometheus style).
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

struct CounterCell {
    class: Class,
    value: AtomicU64,
}

struct GaugeCell {
    class: Class,
    bits: AtomicU64,
}

struct HistogramCell {
    class: Class,
    bounds: Vec<f64>,
    /// One bucket per bound plus a final `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl HistogramCell {
    fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS loop: atomic f64 accumulate over the bit pattern.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = f64::to_bits(f64::from_bits(cur) + value);
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

enum Metric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds (a final implicit `+Inf` bucket follows).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `buckets.len() == bounds.len() + 1`.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// Point-in-time copy of every metric in a registry, sorted by key.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: Vec<(MetricKey, Class, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(MetricKey, Class, f64)>,
    /// Fixed-bucket histograms.
    pub histograms: Vec<(MetricKey, Class, HistogramSnapshot)>,
}

/// A process- or scope-wide collection of metrics and finished spans.
///
/// Updates are lock-then-atomic: the registry lock only guards the key map,
/// so repeated updates to a hot counter contend on one atomic, not the map.
pub struct Registry {
    t0: Instant,
    seq: AtomicU64,
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// Create an empty registry; `t0` for span timestamps is `now`.
    pub fn new() -> Self {
        Registry {
            t0: Instant::now(),
            seq: AtomicU64::new(0),
            metrics: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Nanoseconds since the registry was created (span clock).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Next span sequence number (creation order).
    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    fn counter_cell(&self, class: Class, key: MetricKey) -> Option<Arc<CounterCell>> {
        let mut map = lock(&self.metrics);
        match map.entry(key).or_insert_with(|| {
            Metric::Counter(Arc::new(CounterCell {
                class,
                value: AtomicU64::new(0),
            }))
        }) {
            Metric::Counter(c) => Some(Arc::clone(c)),
            _ => None, // name reused with a different type: drop the update
        }
    }

    /// Add `delta` to the counter `name{labels}` (created on first use).
    pub fn add(&self, class: Class, name: &str, labels: &[(&str, &str)], delta: u64) {
        if let Some(cell) = self.counter_cell(class, MetricKey::new(name, labels)) {
            cell.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Set the gauge `name{labels}` to `value` (created on first use).
    pub fn set_gauge(&self, class: Class, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = MetricKey::new(name, labels);
        let mut map = lock(&self.metrics);
        let entry = map.entry(key).or_insert_with(|| {
            Metric::Gauge(Arc::new(GaugeCell {
                class,
                bits: AtomicU64::new(0),
            }))
        });
        if let Metric::Gauge(g) = entry {
            g.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Record `value` into the histogram `name{labels}`.
    ///
    /// `bounds` (upper bucket edges, ascending; a `+Inf` bucket is implicit)
    /// are fixed by the first call; later calls reuse the existing buckets.
    pub fn observe(
        &self,
        class: Class,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        let key = MetricKey::new(name, labels);
        let cell = {
            let mut map = lock(&self.metrics);
            match map.entry(key).or_insert_with(|| {
                Metric::Histogram(Arc::new(HistogramCell {
                    class,
                    bounds: bounds.to_vec(),
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum_bits: AtomicU64::new(0),
                }))
            }) {
                Metric::Histogram(h) => Arc::clone(h),
                _ => return,
            }
        };
        cell.observe(value);
    }

    /// Append a finished span (called by the [`crate::Span`] guard on drop).
    pub fn record_span(&self, rec: SpanRecord) {
        lock(&self.spans).push(rec);
    }

    /// All finished spans, in recording order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        lock(&self.spans).clone()
    }

    /// Copy every metric out, sorted by key (BTreeMap order), so exporters
    /// produce byte-stable output for deterministic values.
    pub fn snapshot(&self) -> Snapshot {
        let map = lock(&self.metrics);
        let mut snap = Snapshot::default();
        for (key, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters
                        .push((key.clone(), c.class, c.value.load(Ordering::Relaxed)));
                }
                Metric::Gauge(g) => {
                    snap.gauges.push((
                        key.clone(),
                        g.class,
                        f64::from_bits(g.bits.load(Ordering::Relaxed)),
                    ));
                }
                Metric::Histogram(h) => {
                    snap.histograms.push((
                        key.clone(),
                        h.class,
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            buckets: h
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            count: h.count.load(Ordering::Relaxed),
                            sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                        },
                    ));
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_sorted_and_rendered() {
        let k = MetricKey::new("m", &[("z", "1"), ("a", "2")]);
        assert_eq!(k.render(), "m{a=\"2\",z=\"1\"}");
        assert_eq!(MetricKey::new("m", &[]).render(), "m");
        // Label order at the call site does not split the series.
        assert_eq!(k, MetricKey::new("m", &[("a", "2"), ("z", "1")]));
    }

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = Registry::new();
        r.add(Class::Deterministic, "c", &[("b", "x")], 2);
        r.add(Class::Deterministic, "c", &[("b", "x")], 3);
        r.add(Class::Deterministic, "c", &[("b", "y")], 7);
        let snap = r.snapshot();
        let vals: Vec<u64> = snap.counters.iter().map(|(_, _, v)| *v).collect();
        assert_eq!(vals, vec![5, 7]);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let r = Registry::new();
        for v in [0.5, 1.0, 3.0, 100.0] {
            r.observe(Class::Deterministic, "h", &[], &[1.0, 2.0, 4.0], v);
        }
        let snap = r.snapshot();
        let (_, _, h) = &snap.histograms[0];
        assert_eq!(h.buckets, vec![2, 0, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 104.5).abs() < 1e-9);
    }

    #[test]
    fn type_mismatch_is_dropped_not_panicked() {
        let r = Registry::new();
        r.add(Class::Deterministic, "m", &[], 1);
        r.observe(Class::Deterministic, "m", &[], &[1.0], 0.5);
        r.set_gauge(Class::Deterministic, "m", &[], 9.0);
        let snap = r.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.counters[0].2, 1);
        assert!(snap.histograms.is_empty());
        assert!(snap.gauges.is_empty());
    }
}
