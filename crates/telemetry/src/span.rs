//! Hierarchical timed spans.
//!
//! A [`Span`] is an RAII guard: entering pushes a path segment onto a
//! thread-local stack (so nested spans get `parent/child` paths), dropping
//! records a [`SpanRecord`] into the active registry. Wall-clock duration is
//! always captured; deterministic quantities (cycles, accesses, bytes) are
//! attached explicitly via [`Span::record`] and exported separately.

use std::cell::RefCell;

use crate::Target;

/// A finished span as stored in the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// `/`-joined path of enclosing span names, e.g. `fig15/zfost/conv3`.
    pub path: String,
    /// Nesting depth (0 for a root span).
    pub depth: u32,
    /// Creation order within the registry.
    pub seq: u64,
    /// Start, nanoseconds since registry creation (wall clock).
    pub start_ns: u64,
    /// Duration in nanoseconds (wall clock).
    pub dur_ns: u64,
    /// Deterministic attributes, in `record` order: cycles, bytes, …
    pub attrs: Vec<(String, u64)>,
}

thread_local! {
    static PATH: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

struct Inner {
    target: Target,
    path: String,
    depth: u32,
    seq: u64,
    start_ns: u64,
    attrs: Vec<(String, u64)>,
}

/// RAII span guard; create with [`Span::enter`] or the [`crate::span!`] macro.
///
/// When telemetry is disabled the guard is inert: no allocation beyond the
/// name, no registry traffic.
pub struct Span {
    inner: Option<Inner>,
}

impl Span {
    /// Open a span named `name` under the current thread's span stack.
    /// Returns an inert guard when no registry is active.
    pub fn enter(name: impl Into<String>) -> Span {
        let Some(target) = crate::target() else {
            return Span { inner: None };
        };
        let (path, depth) = PATH.with(|p| {
            let mut p = p.borrow_mut();
            p.push(name.into());
            (p.join("/"), p.len() as u32 - 1)
        });
        let reg = target.registry();
        let seq = reg.next_seq();
        let start_ns = reg.elapsed_ns();
        Span {
            inner: Some(Inner {
                target,
                path,
                depth,
                seq,
                start_ns,
                attrs: Vec::new(),
            }),
        }
    }

    /// An inert guard (used by the `span!` macro's disabled arm).
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// Attach a deterministic attribute (cycles, accesses, bytes, retries).
    pub fn record(&mut self, key: &str, value: u64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.attrs.push((key.to_string(), value));
        }
    }

    /// Whether this guard is live (a registry was active at `enter`).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        PATH.with(|p| {
            p.borrow_mut().pop();
        });
        let reg = inner.target.registry();
        let dur_ns = reg.elapsed_ns().saturating_sub(inner.start_ns);
        reg.record_span(SpanRecord {
            path: inner.path,
            depth: inner.depth,
            seq: inner.seq,
            start_ns: inner.start_ns,
            dur_ns,
            attrs: inner.attrs,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use std::sync::Arc;

    #[test]
    fn nested_spans_join_paths_and_record_attrs() {
        let reg = Arc::new(Registry::new());
        let _scope = crate::scope(Arc::clone(&reg));
        {
            let mut outer = Span::enter("outer");
            outer.record("cycles", 10);
            {
                let _inner = Span::enter("inner");
            }
        }
        let spans = reg.spans();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        assert_eq!(spans[0].path, "outer/inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].path, "outer");
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[1].attrs, vec![("cycles".to_string(), 10)]);
    }

    #[test]
    fn disabled_span_is_inert() {
        let s = Span::enter("nobody-listening");
        assert!(!s.is_active());
    }
}
