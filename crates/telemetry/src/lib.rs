//! `zfgan-telemetry` — the unified observability layer every zfgan subsystem
//! feeds: labelled counters / gauges / fixed-bucket histograms, hierarchical
//! timed spans, and three exporters (Chrome-trace/Perfetto JSON, Prometheus
//! text exposition, human summary table).
//!
//! # Determinism contract
//!
//! Every metric and span attribute carries a [`Class`]:
//! [`Class::Deterministic`] quantities (cycles, accesses, bytes, retries)
//! must be byte-stable across two runs with the same seed, and
//! [`export::deterministic_section`] serialises exactly those — sorted,
//! canonical — so CI can `diff` them byte-for-byte. Wall-clock timings
//! (span durations, latency histograms) live next to them but are exported
//! separately and never mix into the deterministic section.
//!
//! # Activation model
//!
//! Instrumentation is off by default and free-ish when off (one thread-local
//! + one atomic check). Two ways to turn it on:
//!
//! - [`set_enabled`]`(true)` routes events to the process-wide [`global`]
//!   registry — what CLI flags and bench bins use.
//! - [`scope`] pushes a private [`Registry`] onto a thread-local stack; the
//!   innermost scope wins over the global. Tests use this so parallel cargo
//!   test threads never share counters.
//!
//! ```
//! use std::sync::Arc;
//! let reg = Arc::new(zfgan_telemetry::Registry::new());
//! let _guard = zfgan_telemetry::scope(Arc::clone(&reg));
//! {
//!     let mut span = zfgan_telemetry::span!("fig15/zfost/conv3");
//!     span.record("cycles", 1234);
//!     zfgan_telemetry::count("gemm_blocks", &[("backend", "zero_free")], 8);
//! }
//! assert_eq!(reg.snapshot().counters[0].2, 8);
//! ```

#![deny(missing_docs)]

mod registry;
mod span;

pub mod export;
pub mod http;

pub use registry::{Class, HistogramSnapshot, MetricKey, Registry, Snapshot};
pub use span::{Span, SpanRecord};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Registry> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static SCOPE: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide registry (created on first touch, lives forever).
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Route instrumentation to the [`global`] registry (CLI `--telemetry`,
/// bench bins). A thread-local [`scope`] still takes precedence.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether any registry is currently receiving events on this thread.
pub fn enabled() -> bool {
    SCOPE.with(|s| !s.borrow().is_empty()) || ENABLED.load(Ordering::Relaxed)
}

/// Where an event goes: the innermost thread-local scope, else the global
/// registry when enabled.
pub(crate) enum Target {
    Global(&'static Registry),
    Scoped(Arc<Registry>),
}

impl Target {
    pub(crate) fn registry(&self) -> &Registry {
        match self {
            Target::Global(r) => r,
            Target::Scoped(r) => r,
        }
    }
}

pub(crate) fn target() -> Option<Target> {
    if let Some(reg) = SCOPE.with(|s| s.borrow().last().cloned()) {
        return Some(Target::Scoped(reg));
    }
    if ENABLED.load(Ordering::Relaxed) {
        return Some(Target::Global(global()));
    }
    None
}

/// RAII guard returned by [`scope`]; pops the registry on drop.
pub struct ScopeGuard {
    _priv: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Route this thread's instrumentation to `reg` until the guard drops.
/// Scopes nest; the innermost wins. This is how tests stay hermetic under
/// cargo's parallel test threads.
pub fn scope(reg: Arc<Registry>) -> ScopeGuard {
    SCOPE.with(|s| s.borrow_mut().push(reg));
    ScopeGuard { _priv: () }
}

/// Add `delta` to the deterministic counter `name{labels}` (no-op when
/// telemetry is off).
pub fn count(name: &str, labels: &[(&str, &str)], delta: u64) {
    if let Some(t) = target() {
        t.registry().add(Class::Deterministic, name, labels, delta);
    }
}

/// Set the deterministic gauge `name{labels}` (no-op when telemetry is off).
pub fn gauge(name: &str, labels: &[(&str, &str)], value: f64) {
    if let Some(t) = target() {
        t.registry()
            .set_gauge(Class::Deterministic, name, labels, value);
    }
}

/// Add `delta` to the wall-clock counter `name{labels}` — excluded from the
/// deterministic export section (no-op when telemetry is off). For
/// scheduling-dependent quantities (work steals, queue churn) that must
/// never enter the byte-diffed section.
pub fn count_wall(name: &str, labels: &[(&str, &str)], delta: u64) {
    if let Some(t) = target() {
        t.registry().add(Class::WallClock, name, labels, delta);
    }
}

/// Set the wall-clock gauge `name{labels}` — excluded from the deterministic
/// export section (no-op when telemetry is off).
pub fn gauge_wall(name: &str, labels: &[(&str, &str)], value: f64) {
    if let Some(t) = target() {
        t.registry()
            .set_gauge(Class::WallClock, name, labels, value);
    }
}

/// Observe into the deterministic histogram `name{labels}` with fixed
/// `bounds` (no-op when telemetry is off).
pub fn observe(name: &str, labels: &[(&str, &str)], bounds: &[f64], value: f64) {
    if let Some(t) = target() {
        t.registry()
            .observe(Class::Deterministic, name, labels, bounds, value);
    }
}

/// Observe into a wall-clock histogram — excluded from the deterministic
/// export section (no-op when telemetry is off).
pub fn observe_wall(name: &str, labels: &[(&str, &str)], bounds: &[f64], value: f64) {
    if let Some(t) = target() {
        t.registry()
            .observe(Class::WallClock, name, labels, bounds, value);
    }
}

/// Open a hierarchical timed span: `span!("fig15/zfost/conv3")` or with
/// `format!`-style arguments (`span!("schedule/{arch}/{phase}")`). Returns a
/// [`Span`] guard; attach deterministic attributes with [`Span::record`].
/// Inert (no allocation, no registry traffic) when telemetry is off.
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        if $crate::enabled() {
            $crate::Span::enter(::std::format!($($arg)*))
        } else {
            $crate::Span::disabled()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_means_no_target_and_inert_spans() {
        // Scoped stack empty on this thread and we never set_enabled here.
        assert!(SCOPE.with(|s| s.borrow().is_empty()));
        let s = span!("ignored/{}", 1);
        assert!(!s.is_active());
        count("nothing", &[], 1); // must not create the global registry series
    }

    #[test]
    fn innermost_scope_wins() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        let _a = scope(Arc::clone(&outer));
        {
            let _b = scope(Arc::clone(&inner));
            count("c", &[], 1);
        }
        count("c", &[], 10);
        assert_eq!(inner.snapshot().counters[0].2, 1);
        assert_eq!(outer.snapshot().counters[0].2, 10);
    }

    #[test]
    fn wall_helpers_stay_out_of_deterministic_section() {
        let reg = Arc::new(Registry::new());
        let _g = scope(Arc::clone(&reg));
        count_wall("pool_steals_total", &[], 2);
        gauge_wall("pool_queue_depth", &[], 3.0);
        count("det_counter", &[], 1);
        let sec = export::deterministic_section(&reg);
        assert!(sec.contains("det_counter"));
        assert!(!sec.contains("pool_steals_total"));
        assert!(!sec.contains("pool_queue_depth"));
    }

    #[test]
    fn scoped_threads_do_not_leak_across() {
        let reg = Arc::new(Registry::new());
        let _g = scope(Arc::clone(&reg));
        let handle = std::thread::spawn(enabled);
        // A fresh thread has no scope; unless the global flag is set by a
        // parallel test it sees telemetry off.
        let _ = handle.join();
        count("c", &[], 3);
        assert_eq!(reg.snapshot().counters[0].2, 3);
    }
}
