//! Exporters: Chrome-trace/Perfetto JSON, Prometheus text exposition, a
//! human-readable summary table, and the canonical deterministic section.
//!
//! All JSON here is hand-rolled (the crate is dependency-free) and, for the
//! deterministic section, canonical: metrics sorted by key, spans sorted by
//! creation order, integers only or Rust's shortest-roundtrip float display.
//! That is what lets CI diff two runs byte-for-byte.

use crate::registry::{Class, Registry, Snapshot};
use crate::span::SpanRecord;

/// Escape a string for inclusion inside a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Shortest-roundtrip float display; integral values print without `.0`
/// noise beyond Rust's default (`1` stays `1`, `1.5` stays `1.5`).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Format nanoseconds as fractional microseconds (Chrome-trace `ts`/`dur`).
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn span_attr_args(rec: &SpanRecord) -> String {
    let body: Vec<String> = rec
        .attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// The canonical byte-stable JSON object holding every deterministic
/// quantity in the registry: deterministic-class counters, gauges and
/// histograms (bucket counts), plus each span's path and deterministic
/// attributes. Wall-clock values never appear here.
pub fn deterministic_section(reg: &Registry) -> String {
    let snap = reg.snapshot();
    let mut out = String::from("{\"counters\":{");
    let counters: Vec<String> = snap
        .counters
        .iter()
        .filter(|(_, class, _)| *class == Class::Deterministic)
        .map(|(key, _, v)| format!("\"{}\":{v}", escape(&key.render())))
        .collect();
    out.push_str(&counters.join(","));
    out.push_str("},\"gauges\":{");
    let gauges: Vec<String> = snap
        .gauges
        .iter()
        .filter(|(_, class, _)| *class == Class::Deterministic)
        .map(|(key, _, v)| format!("\"{}\":{}", escape(&key.render()), fmt_f64(*v)))
        .collect();
    out.push_str(&gauges.join(","));
    out.push_str("},\"histograms\":{");
    let hists: Vec<String> = snap
        .histograms
        .iter()
        .filter(|(_, class, _)| *class == Class::Deterministic)
        .map(|(key, _, h)| {
            let bounds: Vec<String> = h.bounds.iter().map(|b| fmt_f64(*b)).collect();
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            format!(
                "\"{}\":{{\"bounds\":[{}],\"buckets\":[{}],\"count\":{}}}",
                escape(&key.render()),
                bounds.join(","),
                buckets.join(","),
                h.count
            )
        })
        .collect();
    out.push_str(&hists.join(","));
    out.push_str("},\"spans\":[");
    let mut spans = reg.spans();
    spans.sort_by_key(|s| s.seq);
    let span_objs: Vec<String> = spans
        .iter()
        .map(|s| {
            format!(
                "{{\"path\":\"{}\",\"attrs\":{}}}",
                escape(&s.path),
                span_attr_args(s)
            )
        })
        .collect();
    out.push_str(&span_objs.join(","));
    out.push_str("]}");
    out
}

/// Chrome trace event format (object form), loadable in Perfetto /
/// `chrome://tracing`.
///
/// - pid 1: wall-clock spans as `"X"` complete events (`ts`/`dur` in µs).
/// - pid 2: cycle-domain instant events, one thread per entry of
///   `cycle_tracks` (`ts` is the simulated cycle, not a real time).
/// - The top-level `"deterministic"` key embeds [`deterministic_section`];
///   trace viewers ignore unknown keys.
pub fn chrome_trace(reg: &Registry, cycle_tracks: &[(String, Vec<(u64, String)>)]) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"wall-clock spans\"}}"
            .to_string(),
    );
    let mut spans = reg.spans();
    spans.sort_by_key(|s| s.seq);
    for s in &spans {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":0,\"args\":{}}}",
            escape(&s.path),
            fmt_us(s.start_ns),
            fmt_us(s.dur_ns),
            span_attr_args(s)
        ));
    }
    if !cycle_tracks.is_empty() {
        events.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
             \"args\":{\"name\":\"cycle domain\"}}"
                .to_string(),
        );
    }
    for (tid, (track, points)) in cycle_tracks.iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(track)
        ));
        for (cycle, label) in points {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"cycle\",\"ph\":\"i\",\"ts\":{cycle},\
                 \"pid\":2,\"tid\":{tid},\"s\":\"t\"}}",
                escape(label)
            ));
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n],\n\"deterministic\":{}}}\n",
        events.join(",\n"),
        deterministic_section(reg)
    )
}

/// Escape a Prometheus label *value*: the text exposition format requires
/// `\` → `\\`, `"` → `\"` and newline → `\n` inside the double-quoted
/// value (label names and metric names never need escaping).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render `name{k="v",...}` with escaped label values; `extra` label pairs
/// (e.g. `le`) are appended after the key's own sorted labels.
fn prom_series(name: &str, labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{name}{{{}}}", body.join(","))
}

/// Prometheus text exposition format (`# TYPE` lines, `_bucket`/`_sum`/
/// `_count` histogram series with `le` labels). Label values are escaped
/// per the exposition-format rules (backslash, quote, newline).
pub fn prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (key, _, v) in &snap.counters {
        out.push_str(&format!(
            "# TYPE {} counter\n{} {v}\n",
            key.name,
            prom_series(&key.name, &key.labels, &[])
        ));
    }
    for (key, _, v) in &snap.gauges {
        out.push_str(&format!(
            "# TYPE {} gauge\n{} {}\n",
            key.name,
            prom_series(&key.name, &key.labels, &[]),
            fmt_f64(*v)
        ));
    }
    for (key, _, h) in &snap.histograms {
        out.push_str(&format!("# TYPE {} histogram\n", key.name));
        let bucket_name = format!("{}_bucket", key.name);
        let mut cumulative = 0u64;
        for (i, bucket) in h.buckets.iter().enumerate() {
            cumulative += bucket;
            let le = if i < h.bounds.len() {
                fmt_f64(h.bounds[i])
            } else {
                "+Inf".to_string()
            };
            out.push_str(&format!(
                "{} {cumulative}\n",
                prom_series(&bucket_name, &key.labels, &[("le", &le)])
            ));
        }
        out.push_str(&format!(
            "{} {}\n",
            prom_series(&format!("{}_sum", key.name), &key.labels, &[]),
            fmt_f64(h.sum)
        ));
        out.push_str(&format!(
            "{} {}\n",
            prom_series(&format!("{}_count", key.name), &key.labels, &[]),
            h.count
        ));
    }
    out
}

/// Collapsed-stack export of the span tree (`inferno` / speedscope /
/// `flamegraph.pl` input): one line per distinct span path, semicolons
/// joining the ancestry, the weight being the path's total *self* time in
/// nanoseconds (duration minus the durations of direct children).
///
/// The tree is reconstructed from `(seq, depth)`: spans are creation-
/// ordered, so a span's parent is the nearest earlier span one level
/// shallower — exact for the single-threaded span stacks the CLI flows
/// produce (a thread-local [`crate::scope`] never captures worker-thread
/// spans). Lines are sorted by path, so the output is stable for a fixed
/// span tree; weights are wall-clock and belong next to the other
/// wall-clock exports, never in the deterministic section.
pub fn collapsed_stacks(reg: &Registry) -> String {
    let mut spans = reg.spans();
    spans.sort_by_key(|s| s.seq);
    // child_sum[i]: total duration of span i's direct children.
    let mut child_sum = vec![0u64; spans.len()];
    let mut stack: Vec<usize> = Vec::new();
    for i in 0..spans.len() {
        while stack
            .last()
            .is_some_and(|&top| spans[top].depth >= spans[i].depth)
        {
            stack.pop();
        }
        if let Some(&parent) = stack.last() {
            child_sum[parent] += spans[i].dur_ns;
        }
        stack.push(i);
    }
    let mut weights: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for (i, s) in spans.iter().enumerate() {
        let self_ns = s.dur_ns.saturating_sub(child_sum[i]);
        *weights.entry(s.path.replace('/', ";")).or_insert(0) += self_ns;
    }
    let mut out = String::new();
    for (path, w) in &weights {
        out.push_str(&format!("{path} {w}\n"));
    }
    out
}

/// Human-readable summary table: counters, gauges, histograms, then the
/// span tree with wall-clock durations and deterministic attributes.
pub fn summary(reg: &Registry) -> String {
    let snap = reg.snapshot();
    let mut out = String::from("telemetry summary\n");
    if !snap.counters.is_empty() {
        out.push_str("  counters:\n");
        let width = snap
            .counters
            .iter()
            .map(|(k, _, _)| k.render().len())
            .max()
            .unwrap_or(0);
        for (key, class, v) in &snap.counters {
            out.push_str(&format!(
                "    {:<width$}  {v}{}\n",
                key.render(),
                class_tag(*class),
            ));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("  gauges:\n");
        for (key, class, v) in &snap.gauges {
            out.push_str(&format!(
                "    {}  {}{}\n",
                key.render(),
                fmt_f64(*v),
                class_tag(*class)
            ));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("  histograms:\n");
        for (key, class, h) in &snap.histograms {
            let buckets: Vec<String> = h
                .bounds
                .iter()
                .map(|b| fmt_f64(*b))
                .chain(std::iter::once("+Inf".to_string()))
                .zip(h.buckets.iter())
                .map(|(le, n)| format!("le {le}: {n}"))
                .collect();
            out.push_str(&format!(
                "    {}  count={} sum={}{}\n      [{}]\n",
                key.render(),
                h.count,
                fmt_f64(h.sum),
                class_tag(*class),
                buckets.join(", ")
            ));
        }
    }
    let mut spans = reg.spans();
    spans.sort_by_key(|s| s.seq);
    if !spans.is_empty() {
        out.push_str("  spans:\n");
        for s in &spans {
            let attrs: Vec<String> = s.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let attrs = if attrs.is_empty() {
                String::new()
            } else {
                format!("  [{}]", attrs.join(" "))
            };
            out.push_str(&format!(
                "    {:indent$}{}  {:.3} ms{attrs}\n",
                "",
                s.path,
                s.dur_ns as f64 / 1e6,
                indent = 2 * s.depth as usize,
            ));
        }
    }
    out
}

fn class_tag(class: Class) -> &'static str {
    match class {
        Class::Deterministic => "",
        Class::WallClock => "  (wall)",
    }
}

/// Sum of every wall-clock-class counter whose metric name is `name`
/// (across all label sets). Zero when the counter never fired — handy
/// for asserting store/cache activity without parsing an export.
pub fn counter_total(reg: &Registry, name: &str) -> u64 {
    reg.snapshot()
        .counters
        .iter()
        .filter(|(key, _, _)| key.name == name)
        .map(|(_, _, v)| *v)
        .sum()
}

/// Machine-readable JSON for bench bins (`results/telemetry_*.json`):
/// the deterministic section plus a `wallclock` object with counters,
/// span timings and wall-class histograms for cross-PR perf trajectory.
pub fn telemetry_json(reg: &Registry) -> String {
    let snap = reg.snapshot();
    let mut spans = reg.spans();
    spans.sort_by_key(|s| s.seq);
    let span_objs: Vec<String> = spans
        .iter()
        .map(|s| {
            format!(
                "{{\"path\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
                escape(&s.path),
                s.start_ns,
                s.dur_ns
            )
        })
        .collect();
    let wall_hists: Vec<String> = snap
        .histograms
        .iter()
        .filter(|(_, class, _)| *class == Class::WallClock)
        .map(|(key, _, h)| {
            format!(
                "\"{}\":{{\"count\":{},\"sum\":{}}}",
                escape(&key.render()),
                h.count,
                fmt_f64(h.sum)
            )
        })
        .collect();
    let wall_counters: Vec<String> = snap
        .counters
        .iter()
        .filter(|(_, class, _)| *class == Class::WallClock)
        .map(|(key, _, v)| format!("\"{}\":{}", escape(&key.render()), v))
        .collect();
    format!(
        "{{\"deterministic\":{},\n\"wallclock\":{{\"counters\":{{{}}},\"spans\":[{}],\"histograms\":{{{}}}}}}}\n",
        deterministic_section(reg),
        wall_counters.join(","),
        span_objs.join(","),
        wall_hists.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample() -> Arc<Registry> {
        let reg = Arc::new(Registry::new());
        let _scope = crate::scope(Arc::clone(&reg));
        reg.add(
            Class::Deterministic,
            "cycles_total",
            &[("arch", "zfost")],
            42,
        );
        reg.add(Class::WallClock, "export_runs", &[], 1);
        reg.observe(Class::Deterministic, "latency_words", &[], &[1.0, 8.0], 3.0);
        {
            let mut s = crate::Span::enter("phase");
            s.record("cycles", 42);
        }
        reg
    }

    #[test]
    fn deterministic_section_excludes_wall_clock_and_is_stable() {
        let reg = sample();
        let det = deterministic_section(&reg);
        assert!(det.contains("\"cycles_total{arch=\\\"zfost\\\"}\":42"));
        assert!(!det.contains("export_runs"));
        assert!(det.contains("\"buckets\":[0,1,0]"));
        assert!(det.contains("{\"path\":\"phase\",\"attrs\":{\"cycles\":42}}"));
        assert_eq!(det, deterministic_section(&reg));
    }

    #[test]
    fn chrome_trace_has_events_and_embedded_det_section() {
        let reg = sample();
        let tracks = vec![(
            "zfost".to_string(),
            vec![(0, "phase".to_string()), (7, "mac".to_string())],
        )];
        let json = chrome_trace(&reg, &tracks);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\",\"ts\":7"));
        assert!(json.contains("\"deterministic\":{\"counters\""));
    }

    #[test]
    fn prometheus_histogram_series_are_cumulative() {
        let reg = sample();
        let text = prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE latency_words histogram"));
        assert!(text.contains("latency_words_bucket{le=\"1\"} 0"));
        assert!(text.contains("latency_words_bucket{le=\"8\"} 1"));
        assert!(text.contains("latency_words_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("latency_words_count 1"));
        assert!(text.contains("cycles_total{arch=\"zfost\"} 42"));
    }

    #[test]
    fn summary_renders_all_sections() {
        let reg = sample();
        let s = summary(&reg);
        assert!(s.contains("counters:"));
        assert!(s.contains("histograms:"));
        assert!(s.contains("spans:"));
        assert!(s.contains("phase"));
    }
}
