//! A dependency-free, single-threaded HTTP endpoint exposing the
//! process-global registry in Prometheus text exposition format — the
//! shared server behind `zfgan serve-metrics` and the DSE engine's
//! cache/shard counters (anything recorded into [`crate::global`] rides
//! the same `/metrics` page).
//!
//! The server is deliberately minimal: one `std::net::TcpListener`, one
//! request per connection, `GET /metrics` (the [`export::prometheus`]
//! rendering of a live snapshot), `GET /health`, 404 for anything else.
//! It serves its own observability too — every scrape increments
//! `serve_requests_total{path=...}` *before* the snapshot is taken (so
//! the scrape you are reading includes itself) and the previous request's
//! handling latency lands in the `serve_request_seconds` histogram.
//!
//! A bounded request budget (`max_requests`) lets the serving loop exit
//! cleanly, which is what the CI smoke uses: start the server, hit it
//! with the built-in [`scrape`] client over a plain `TcpStream`, and let
//! it stop on its own.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use crate::export;

/// Histogram bounds for request-handling latency, in seconds.
const LATENCY_BOUNDS: [f64; 4] = [1e-4, 1e-3, 1e-2, 1e-1];

/// The serving loop over an already-bound listener (callers bind the
/// address themselves, so tests and the CLI can both use ephemeral
/// ports).
///
/// # Errors
///
/// Never errors today; the `Result` keeps the CLI signature uniform.
pub fn serve_on(listener: TcpListener, max_requests: Option<u64>) -> Result<String, String> {
    // The global registry must be live for the self-metrics (and for
    // anything else the process records while serving).
    crate::set_enabled(true);
    let mut served = 0u64;
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let started = Instant::now();
        handle(stream);
        crate::observe_wall(
            "serve_request_seconds",
            &[],
            &LATENCY_BOUNDS,
            started.elapsed().as_secs_f64(),
        );
        served += 1;
        if max_requests.is_some_and(|max| served >= max) {
            break;
        }
    }
    Ok(format!("served {served} requests\n"))
}

/// Parses the request line and writes the matching response.
fn handle(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let Some(path) = read_request_path(&stream) else {
        respond(&mut stream, "400 Bad Request", "bad request\n");
        return;
    };
    crate::count_wall("serve_requests_total", &[("path", &path)], 1);
    match path.as_str() {
        "/metrics" => {
            let body = export::prometheus(&crate::global().snapshot());
            respond(&mut stream, "200 OK", &body);
        }
        "/health" => respond(&mut stream, "200 OK", "ok\n"),
        _ => respond(
            &mut stream,
            "404 Not Found",
            "not found (try /metrics or /health)\n",
        ),
    }
}

/// Reads the HTTP request head and returns the request path of a GET.
fn read_request_path(stream: &TcpStream) -> Option<String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next()?, parts.next()?);
    if method != "GET" {
        return None;
    }
    // Drain the headers so the client sees a clean close (bounded: a
    // scraper's head is tiny; give up after 8 KiB either way).
    let mut drained = 0usize;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(n) => {
                drained += n;
                if header == "\r\n" || header == "\n" || drained > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    Some(path.to_string())
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// One-shot scrape client over a plain `TcpStream`: fetches `path` from
/// `addr` and returns the response body. This is what the CI smoke runs
/// against a backgrounded `serve-metrics`.
///
/// # Errors
///
/// Returns an error when the connection fails, the response is not HTTP,
/// or the status is not 200.
pub fn scrape(addr: &str, path: &str) -> Result<String, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("--scrape {addr}: connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("--scrape {addr}: write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("--scrape {addr}: read: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("--scrape {addr}: malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or_default();
    if !status.starts_with("HTTP/1.1 200") {
        return Err(format!("--scrape {addr}{path}: {status}"));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_server(max: u64) -> (String, std::thread::JoinHandle<Result<String, String>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || serve_on(listener, Some(max)));
        (addr, handle)
    }

    #[test]
    fn metrics_health_and_404_round_trip() {
        let (addr, handle) = spawn_server(4);

        let body = scrape(&addr, "/health").unwrap();
        assert_eq!(body, "ok\n");

        // The scrape counter is incremented before the snapshot, so the
        // very first /metrics scrape already exposes itself.
        let body = scrape(&addr, "/metrics").unwrap();
        assert!(
            body.contains("serve_requests_total{path=\"/metrics\"} 1"),
            "{body}"
        );
        assert!(
            body.contains("serve_requests_total{path=\"/health\"} 1"),
            "{body}"
        );

        let err = scrape(&addr, "/nope").unwrap_err();
        assert!(err.contains("404"), "{err}");

        // The latency histogram appears once at least one earlier request
        // finished.
        let body = scrape(&addr, "/metrics").unwrap();
        assert!(body.contains("serve_request_seconds_bucket"), "{body}");
        assert!(body.contains("le=\"+Inf\""), "{body}");

        let summary = handle.join().unwrap().unwrap();
        assert_eq!(summary, "served 4 requests\n");
    }

    #[test]
    fn scrape_rejects_unreachable_addresses() {
        // A port nothing listens on: connect must fail with context.
        let err = scrape("127.0.0.1:1", "/metrics").unwrap_err();
        assert!(err.contains("connect"), "{err}");
    }
}
