//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented directly on `proc_macro` token
//! streams (no `syn`/`quote` — the container has no registry access).
//!
//! Supported shapes — exactly what this workspace declares:
//! - structs with named fields, optionally generic (`struct Fmaps<T> {…}`);
//! - enums with unit, newtype, tuple, and struct variants.
//!
//! The serialised form matches serde's externally-tagged default:
//! structs → objects keyed by field name; unit variants → the variant
//! name as a string; data-carrying variants → `{"Variant": payload}`.
//! `#[serde(...)]` attributes are not supported (none exist in-tree) and
//! produce a compile error rather than being silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What one parsed `enum` variant carries.
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Generic parameter names, e.g. `["T"]` for `Fmaps<T>`.
    generics: Vec<String>,
    body: Body,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives the compat `serde::Serialize` (a `to_value` tree builder).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the compat `serde::Deserialize` (a `from_value` reader).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skips `#[...]` / `#![...]` attribute sequences; rejects
    /// `#[serde(...)]`, which the shim cannot honour.
    fn skip_attrs(&mut self) -> Result<(), String> {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            if let Some(TokenTree::Punct(p)) = self.peek() {
                if p.as_char() == '!' {
                    self.next();
                }
            }
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let body = g.stream().to_string();
                    if body.starts_with("serde") {
                        return Err(
                            "compat serde_derive does not support #[serde(...)] attributes"
                                .to_string(),
                        );
                    }
                }
                _ => return Err("malformed attribute".to_string()),
            }
        }
        Ok(())
    }

    /// Skips `pub`, `pub(crate)`, `pub(in …)`.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Parses `<...>` generics if present, returning type-parameter names.
    fn parse_generics(&mut self) -> Result<Vec<String>, String> {
        let mut params = Vec::new();
        match self.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
            _ => return Ok(params),
        }
        self.next(); // consume '<'
        let mut depth = 1usize;
        let mut expecting_param = true;
        let mut prev_was_quote = false;
        while depth > 0 {
            let t = self.next().ok_or_else(|| "unclosed generics".to_string())?;
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    expecting_param = true;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' => {
                    prev_was_quote = true;
                    continue;
                }
                TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                    expecting_param = false;
                }
                TokenTree::Ident(id) if depth == 1 && expecting_param && !prev_was_quote => {
                    let name = id.to_string();
                    if name == "const" {
                        return Err(
                            "compat serde_derive does not support const generics".to_string()
                        );
                    }
                    params.push(name);
                    expecting_param = false;
                }
                _ => {}
            }
            prev_was_quote = false;
        }
        Ok(params)
    }
}

/// Parses the named fields inside a brace group: `vis name: Type, …`.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    while !c.at_end() {
        c.skip_attrs()?;
        if c.at_end() {
            break;
        }
        c.skip_vis();
        let name = c.expect_ident()?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected ':' after field `{name}`, found {other:?}"
                ))
            }
        }
        fields.push(name);
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0usize;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    c.next();
                    break;
                }
                _ => {}
            }
            c.next();
        }
    }
    Ok(fields)
}

/// Counts the elements of a tuple-variant payload (top-level commas + 1).
fn count_tuple_fields(group: TokenStream) -> usize {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0usize;
    let mut count = 1usize;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs()?;
        if c.at_end() {
            break;
        }
        let name = c.expect_ident()?;
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                if n == 1 {
                    VariantKind::Tuple(1)
                } else {
                    VariantKind::Tuple(n)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip an optional discriminant and the separating comma.
        let mut depth = 0usize;
        while let Some(t) = c.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    c.next();
                    break;
                }
                _ => {}
            }
            c.next();
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs()?;
    c.skip_vis();
    let kw = c.expect_ident()?;
    let is_enum = match kw.as_str() {
        "struct" => false,
        "enum" => true,
        other => {
            return Err(format!(
                "compat serde_derive supports structs and enums, not `{other}`"
            ))
        }
    };
    let name = c.expect_ident()?;
    let generics = c.parse_generics()?;
    // Skip a possible `where` clause: scan to the body brace group.
    let body_group = loop {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err("compat serde_derive supports named-field structs only".to_string())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("compat serde_derive supports named-field structs only".to_string())
            }
            Some(_) => continue,
            None => return Err(format!("no body found for `{name}`")),
        }
    };
    let body = if is_enum {
        Body::Enum(parse_variants(body_group)?)
    } else {
        Body::Struct(parse_named_fields(body_group)?)
    };
    Ok(Item {
        name,
        generics,
        body,
    })
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<T: ::serde::Trait> ::serde::Trait for Name<T>` header pieces.
fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {name}", name = item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let plain = item.generics.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{plain}>",
            bounded.join(", "),
            item.name
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let header = impl_header(item, "Serialize");
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\", ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Body::Enum(variants) => {
            let name = &item.name;
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => {{ let mut m = ::serde::Map::new(); \
                         m.insert(\"{vn}\", ::serde::Serialize::to_value(x0)); \
                         ::serde::Value::Object(m) }}\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{ let mut m = ::serde::Map::new(); \
                             m.insert(\"{vn}\", ::serde::Value::Array(vec![{elems}])); \
                             ::serde::Value::Object(m) }}\n",
                            binds = binds.join(", "),
                            elems = elems.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let pats = fields.join(", ");
                        let mut inner = String::from("let mut fm = ::serde::Map::new(); ");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(\"{f}\", ::serde::Serialize::to_value({f})); "
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pats} }} => {{ {inner}\
                             let mut m = ::serde::Map::new(); \
                             m.insert(\"{vn}\", ::serde::Value::Object(fm)); \
                             ::serde::Value::Object(m) }}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!("{header} {{\n fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}")
}

fn gen_deserialize(item: &Item) -> String {
    let header = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let mut s = format!(
                "let m = v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for `{name}`\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(m.get(\"{f}\")\
                     .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let arr = inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for `{name}::{vn}`\"))?; \
                             if arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"wrong tuple arity for `{name}::{vn}`\")); }} \
                             ::std::result::Result::Ok({name}::{vn}({elems})) }}\n",
                            elems = elems.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: ::serde::Deserialize::from_value(fm.get(\"{f}\")\
                                 .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let fm = inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for `{name}::{vn}`\"))?; \
                             ::std::result::Result::Ok({name}::{vn} {{ {inits} }}) }}\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (k, inner) = m.iter().next().expect(\"len checked\");\n\
                 let _ = inner;\n\
                 match k.as_str() {{\n\
                 {data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected a `{name}` variant\")),\n\
                 }}"
            )
        }
    };
    format!(
        "{header} {{\n fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
}
