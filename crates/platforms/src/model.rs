//! Roofline platform models.

use serde::{Deserialize, Serialize};
use zfgan_sim::{ConvKind, ConvShape};

/// A compute platform characterised by peak throughput, power and per-phase
/// efficiency.
///
/// Efficiency factors are the fraction of peak FLOPS a Caffe-style
/// `im2col + GEMM` implementation sustains on each convolution family.
/// `T-CONV`/`W-CONV` factors are lower because era-typical libraries
/// materialised the inserted zeros and multiplied through them.
///
/// # Example
///
/// ```
/// use zfgan_platforms::Platform;
/// use zfgan_workloads::GanSpec;
///
/// let cpu = Platform::cpu_i7_6850k();
/// let report = cpu.run(&GanSpec::cgan().iteration_phases());
/// assert!(report.gops > 0.0 && report.gops < cpu.peak_gops());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    name: String,
    peak_gops: f64,
    power_watts: f64,
    eff_s: f64,
    eff_t: f64,
    eff_w: f64,
}

/// Throughput/energy summary of running a phase list on a [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformReport {
    /// Total effectual operations (2 per MAC).
    pub ops: u64,
    /// Execution time in seconds.
    pub seconds: f64,
    /// Sustained throughput in GOPS (the Fig. 19 left axis).
    pub gops: f64,
    /// Energy in joules.
    pub joules: f64,
    /// Energy efficiency in GOPS/W (the Fig. 19 right axis).
    pub gops_per_watt: f64,
}

impl Platform {
    /// Creates a platform model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or an efficiency exceeds 1.
    pub fn new(
        name: impl Into<String>,
        peak_gops: f64,
        power_watts: f64,
        eff_s: f64,
        eff_t: f64,
        eff_w: f64,
    ) -> Self {
        assert!(
            peak_gops > 0.0 && power_watts > 0.0,
            "peak and power must be positive"
        );
        for e in [eff_s, eff_t, eff_w] {
            assert!(
                (0.0..=1.0).contains(&e) && e > 0.0,
                "efficiency must be in (0, 1]"
            );
        }
        Self {
            name: name.into(),
            peak_gops,
            power_watts,
            eff_s,
            eff_t,
            eff_w,
        }
    }

    /// Intel i7-6850K (Broadwell-E): 6 cores × 3.6 GHz × 2 AVX2 FMA units ×
    /// 8 f32 lanes × 2 ops ≈ 690 GFLOPS peak, 140 W TDP. Caffe's CPU path
    /// sustains ~10% of peak on dense convolution and less on the
    /// zero-inserted families.
    pub fn cpu_i7_6850k() -> Self {
        Self::new("CPU (i7-6850K)", 690.0, 140.0, 0.12, 0.068, 0.075)
    }

    /// NVIDIA Tesla K20 (Kepler): 3.52 TFLOPS f32 peak, 225 W. cuDNN-era
    /// dense conv sustains ~30%; deconvolution paths considerably less.
    pub fn gpu_k20() -> Self {
        Self::new("GPU (K20)", 3520.0, 225.0, 0.43, 0.185, 0.20)
    }

    /// NVIDIA Titan X (Maxwell): 6.14 TFLOPS f32 peak, 250 W.
    pub fn gpu_titan_x() -> Self {
        Self::new("GPU (Titan X)", 6140.0, 250.0, 0.36, 0.163, 0.175)
    }

    /// The paper's three comparison platforms.
    pub fn all_paper_platforms() -> Vec<Platform> {
        vec![Self::cpu_i7_6850k(), Self::gpu_k20(), Self::gpu_titan_x()]
    }

    /// The platform's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Peak throughput in GOPS.
    pub fn peak_gops(&self) -> f64 {
        self.peak_gops
    }

    /// Sustained board power in watts.
    pub fn power_watts(&self) -> f64 {
        self.power_watts
    }

    /// Efficiency factor for one convolution family.
    pub fn efficiency(&self, kind: ConvKind) -> f64 {
        match kind {
            ConvKind::S => self.eff_s,
            ConvKind::T => self.eff_t,
            ConvKind::WGradS | ConvKind::WGradT => self.eff_w,
        }
    }

    /// Time in seconds to execute one phase.
    pub fn phase_seconds(&self, phase: &ConvShape) -> f64 {
        let ops = 2.0 * phase.effectual_macs() as f64;
        ops / (self.peak_gops * 1e9 * self.efficiency(phase.kind()))
    }

    /// Runs a phase list, returning the throughput/energy summary.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn run(&self, phases: &[ConvShape]) -> PlatformReport {
        assert!(!phases.is_empty(), "need at least one phase");
        let ops: u64 = phases.iter().map(|p| 2 * p.effectual_macs()).sum();
        let seconds: f64 = phases.iter().map(|p| self.phase_seconds(p)).sum();
        let gops = ops as f64 / seconds / 1e9;
        let joules = seconds * self.power_watts;
        PlatformReport {
            ops,
            seconds,
            gops,
            joules,
            gops_per_watt: gops / self.power_watts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zfgan_tensor::ConvGeom;

    fn phases() -> Vec<ConvShape> {
        let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        vec![
            ConvShape::new(ConvKind::S, geom, 64, 3, 64, 64),
            ConvShape::new(ConvKind::T, geom, 64, 3, 64, 64),
            ConvShape::new(ConvKind::WGradS, geom, 64, 3, 64, 64),
        ]
    }

    #[test]
    fn sustained_is_below_peak() {
        for p in Platform::all_paper_platforms() {
            let r = p.run(&phases());
            assert!(r.gops < p.peak_gops(), "{}: {} ≥ peak", p.name(), r.gops);
            assert!(r.gops > 0.01 * p.peak_gops());
            assert!(r.joules > 0.0);
        }
    }

    #[test]
    fn gpu_outruns_cpu_but_burns_power() {
        let cpu = Platform::cpu_i7_6850k().run(&phases());
        let titan = Platform::gpu_titan_x().run(&phases());
        assert!(titan.gops > 5.0 * cpu.gops);
        assert!(titan.joules < cpu.joules); // faster enough to win on energy
    }

    #[test]
    fn t_conv_is_the_slow_family() {
        let p = Platform::gpu_k20();
        let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        let s = ConvShape::new(ConvKind::S, geom, 64, 64, 64, 64);
        let t = s.with_kind(ConvKind::T);
        // Similar MAC counts, but the T phase takes longer per op.
        let per_op_s = p.phase_seconds(&s) / s.effectual_macs() as f64;
        let per_op_t = p.phase_seconds(&t) / t.effectual_macs() as f64;
        assert!(per_op_t > 1.5 * per_op_s);
    }

    #[test]
    fn efficiency_accessors() {
        let p = Platform::cpu_i7_6850k();
        assert_eq!(
            p.efficiency(ConvKind::WGradS),
            p.efficiency(ConvKind::WGradT)
        );
        assert!(p.efficiency(ConvKind::S) > p.efficiency(ConvKind::T));
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_bad_efficiency() {
        let _ = Platform::new("x", 100.0, 100.0, 1.5, 0.5, 0.5);
    }
}
