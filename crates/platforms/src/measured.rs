//! A real (measured) CPU data point.
//!
//! The analytical models in [`crate::Platform`] are calibrated from
//! published device constants; this module grounds the CPU side by actually
//! executing the golden-reference convolutions single-threaded and timing
//! them. It is used by the `fig19` bench binary to report a "measured Rust
//! CPU" row alongside the analytical Caffe-CPU row.

use std::time::Instant;

use zfgan_sim::{ConvKind, ConvShape};
use zfgan_tensor::{s_conv, t_conv, w_conv_for_s_layer, w_conv_for_t_layer, Fmaps, Kernels};

/// Outcome of a measured reference execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Effectual operations performed (2 per MAC).
    pub ops: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Sustained GOPS.
    pub gops: f64,
}

/// Executes one phase with the golden-reference loop nest on the current
/// thread and measures sustained throughput.
///
/// Operand values are deterministic pseudo-data; the timing is
/// data-independent.
///
/// # Panics
///
/// Panics only on internal shape inconsistencies (a bug, not input).
pub fn measure_phase(phase: &ConvShape) -> Measurement {
    let geom = *phase.geom();
    let (small, large) = (phase.small(), phase.large());
    let (sh, sw) = phase.small_hw();
    let (lh, lw) = phase.large_hw();
    let fill = |n: usize| -> Vec<f32> { (0..n).map(|i| ((i % 17) as f32 - 8.0) / 8.0).collect() };
    let kernels = Kernels::from_vec(
        small,
        large,
        geom.kh(),
        geom.kw(),
        fill(small * large * geom.kh() * geom.kw()),
    );
    let start = Instant::now();
    match phase.kind() {
        ConvKind::S => {
            let x = Fmaps::from_vec(large, lh, lw, fill(large * lh * lw));
            let y = s_conv(&x, &kernels, &geom).expect("phase-consistent operands");
            std::hint::black_box(y);
        }
        ConvKind::T => {
            let x = Fmaps::from_vec(small, sh, sw, fill(small * sh * sw));
            let y = t_conv(&x, &kernels, &geom).expect("phase-consistent operands");
            std::hint::black_box(y);
        }
        ConvKind::WGradS => {
            let x = Fmaps::from_vec(large, lh, lw, fill(large * lh * lw));
            let e = Fmaps::from_vec(small, sh, sw, fill(small * sh * sw));
            let g = w_conv_for_s_layer(&x, &e, &geom).expect("phase-consistent operands");
            std::hint::black_box(g);
        }
        ConvKind::WGradT => {
            let x = Fmaps::from_vec(small, sh, sw, fill(small * sh * sw));
            let e = Fmaps::from_vec(large, lh, lw, fill(large * lh * lw));
            let g = w_conv_for_t_layer(&x, &e, &geom).expect("phase-consistent operands");
            std::hint::black_box(g);
        }
    }
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    let ops = 2 * phase.effectual_macs();
    Measurement {
        ops,
        seconds,
        gops: ops as f64 / seconds / 1e9,
    }
}

/// Measures a list of phases back-to-back.
///
/// # Panics
///
/// Panics if `phases` is empty.
pub fn measure_phases(phases: &[ConvShape]) -> Measurement {
    assert!(!phases.is_empty(), "need at least one phase");
    let mut ops = 0u64;
    let mut seconds = 0.0f64;
    for p in phases {
        let m = measure_phase(p);
        ops += m.ops;
        seconds += m.seconds;
    }
    Measurement {
        ops,
        seconds,
        gops: ops as f64 / seconds / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zfgan_tensor::ConvGeom;

    #[test]
    fn measures_all_phase_kinds() {
        let geom = ConvGeom::down(16, 16, 4, 4, 2, 8, 8).unwrap();
        for kind in [ConvKind::S, ConvKind::T, ConvKind::WGradS, ConvKind::WGradT] {
            let phase = ConvShape::new(kind, geom, 8, 4, 16, 16);
            let m = measure_phase(&phase);
            assert_eq!(m.ops, 2 * phase.effectual_macs(), "{kind:?}");
            assert!(m.seconds > 0.0 && m.gops > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn aggregate_sums_ops() {
        let geom = ConvGeom::down(8, 8, 4, 4, 2, 4, 4).unwrap();
        let p = ConvShape::new(ConvKind::S, geom, 4, 2, 8, 8);
        let m = measure_phases(&[p, p]);
        assert_eq!(m.ops, 4 * p.effectual_macs());
    }
}
