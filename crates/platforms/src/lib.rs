//! Analytical CPU/GPU platform models for the paper's Fig. 19 comparison.
//!
//! The paper measures Caffe-based GAN training on an Intel i7-6850K, an
//! NVIDIA Tesla K20 and an NVIDIA Titan X, with wall power from a WattsUp
//! meter. Without that hardware, this crate substitutes **roofline-style
//! analytical models**: published peak throughput and TDP per device, scaled
//! by per-convolution-family efficiency factors that capture how well
//! `im2col + GEMM` style libraries (Caffe's implementation) exploit each
//! convolution type — in particular the zero-inserting overhead of
//! transposed convolutions, which libraries of the paper's era executed
//! *without* skipping the inserted zeros.
//!
//! The [`measured`] module complements the analytical models with a real
//! single-threaded execution of the golden-reference convolutions, so one
//! data point on the CPU side is grounded in an actual measurement.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod measured;
mod model;

pub use model::{Platform, PlatformReport};
