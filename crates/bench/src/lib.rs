//! Shared plumbing for the evaluation harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §4 for the index). They print an aligned text table to
//! stdout — the same rows/series the paper reports — and drop a
//! machine-readable JSON copy under `results/` so `EXPERIMENTS.md` can be
//! regenerated and diffed.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::fs;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

/// A simple aligned-column text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let sep = widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ");
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Where sidecars land: `results/` unless `ZFGAN_RESULTS_DIR` redirects
/// it (CI smoke runs point it at a temp dir so short measurement windows
/// never clobber the tracked numbers).
fn results_dir() -> PathBuf {
    std::env::var_os("ZFGAN_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// The append-only perf ledger next to the snapshot sidecars: one JSON
/// object per line, one line per measured row, accumulated across runs
/// (`zfgan perf` renders and gates the trajectory).
pub fn history_path() -> PathBuf {
    results_dir().join("bench_history.jsonl")
}

/// One measured benchmark row in the shared snapshot/ledger schema:
/// the criterion statistics plus the run metadata that makes trajectories
/// comparable across machines and commits. `results/BENCH_*.json` holds
/// the latest run's rows; `results/bench_history.jsonl` accumulates every
/// run's.
#[derive(Debug, Clone, Serialize)]
pub struct BenchRow {
    /// Harness this row came from (`gemm`, `trainstep`, `exec`).
    pub bench: String,
    /// Benchmark id, e.g. `matmul/blocked`.
    pub id: String,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds (the stable signal on a noisy host).
    pub min_ns: f64,
    /// Sample standard deviation, nanoseconds.
    pub stddev_ns: f64,
    /// Iterations measured.
    pub iters: u64,
    /// Worker threads the variant runs on.
    pub threads: usize,
    /// Active SIMD kernel: `"avx2"` or `"scalar"` (`ZFGAN_NO_SIMD=1`).
    pub simd: String,
    /// Speedup over the harness's baseline for this row (1.0 = baseline).
    pub speedup: f64,
    /// Commit the run measured (`ZFGAN_GIT_SHA`, else `git rev-parse`).
    pub git_sha: String,
    /// Host fingerprint: `hostname/arch-os`.
    pub host: String,
    /// Monotonically increasing per-ledger run number (one per append).
    pub run_id: u64,
}

/// The commit under measurement: `ZFGAN_GIT_SHA` when the caller pins it
/// (CI), else `git rev-parse HEAD`, else `"unknown"`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("ZFGAN_GIT_SHA") {
        let sha = sha.trim().to_string();
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Host fingerprint for ledger rows: `hostname/arch-os`.
pub fn host_fingerprint() -> String {
    let hostname = fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .unwrap_or_else(|| "unknown-host".to_string());
    format!(
        "{hostname}/{}-{}",
        std::env::consts::ARCH,
        std::env::consts::OS
    )
}

/// The next run id: one past the largest `run_id` already in the ledger
/// (1 for a fresh ledger). Malformed lines are skipped, so a truncated
/// append never wedges future runs.
pub fn next_run_id() -> u64 {
    let Ok(text) = fs::read_to_string(history_path()) else {
        return 1;
    };
    text.lines()
        .filter_map(|line| serde_json::from_str::<serde_json::Value>(line).ok())
        .filter_map(|v| {
            v.as_object()
                .and_then(|o| o.get("run_id"))
                .and_then(serde_json::Value::as_u64)
        })
        .max()
        .map_or(1, |max| max + 1)
}

/// [`emit`] plus the perf ledger: stamps every row with the commit sha,
/// host fingerprint and the next run id, writes the `results/<name>.json`
/// snapshot, and **appends** the rows to `results/bench_history.jsonl`
/// (one JSON object per line) so the trajectory accumulates across runs.
/// Ledger I/O is best effort, like the snapshot.
pub fn emit_bench(name: &str, title: &str, table: &TextTable, rows: &mut [BenchRow]) {
    let sha = git_sha();
    let host = host_fingerprint();
    let run_id = next_run_id();
    for row in rows.iter_mut() {
        row.git_sha = sha.clone();
        row.host = host.clone();
        row.run_id = run_id;
    }
    emit(name, title, table, &rows.to_vec());
    let mut lines = String::new();
    for row in rows.iter() {
        match serde_json::to_string(row) {
            Ok(json) => {
                lines.push_str(&json);
                lines.push('\n');
            }
            Err(err) => eprintln!("warning: could not serialise ledger row {}: {err}", row.id),
        }
    }
    let path = history_path();
    let append = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, lines.as_bytes()));
    match append {
        Ok(()) => println!("[appended {} rows to {}]", rows.len(), path.display()),
        Err(err) => eprintln!("warning: could not append to {}: {err}", path.display()),
    }
}

/// Prints a figure/table banner, the rendered table, and writes the JSON
/// sidecar under `results/<name>.json` (best effort — the harness still
/// succeeds if the directory is read-only).
pub fn emit<T: Serialize>(name: &str, title: &str, table: &TextTable, data: &T) {
    println!("== {title} ==");
    println!("{}", table.render());
    let dir = results_dir();
    let _ = fs::create_dir_all(&dir);
    match serde_json::to_string_pretty(data) {
        Ok(json) => {
            let path = dir.join(format!("{name}.json"));
            if fs::write(&path, json).is_ok() {
                println!("[wrote {}]", path.display());
            }
        }
        Err(err) => eprintln!("warning: could not serialise {name}: {err}"),
    }
    println!();
}

/// Turns the process-global telemetry registry on and returns a closure
/// that dumps it as `results/telemetry_<name>.json` (best effort, like
/// [`emit`]). Bench binaries call this first thing in `main` and invoke
/// the closure last, so every figure run leaves a metrics sidecar:
///
/// ```no_run
/// let telemetry = zfgan_bench::telemetry_sidecar("fig15");
/// // ... the sweep ...
/// telemetry();
/// ```
///
/// The global registry (not a thread-local scope) is the right sink here
/// because [`par_map`] fans work out to worker threads.
pub fn telemetry_sidecar(name: &str) -> impl FnOnce() {
    zfgan_telemetry::set_enabled(true);
    let dir = results_dir();
    let path = dir.join(format!("telemetry_{name}.json"));
    move || {
        let _ = fs::create_dir_all(&dir);
        let json = zfgan_telemetry::export::telemetry_json(zfgan_telemetry::global());
        if fs::write(&path, json).is_ok() {
            println!("[wrote {}]", path.display());
        }
    }
}

/// Maps `f` over `items` on the persistent `zfgan-pool` workers and
/// returns the results **in input order** — the deterministic merge that
/// keeps the figure sweeps byte-identical to their sequential form.
///
/// Each item is computed by exactly one executor into its own slot, so the
/// output is independent of pool scheduling. With one hardware thread (or
/// `ZFGAN_THREADS=1`) this degenerates to a plain sequential map.
///
/// # Panics
///
/// Panics if a worker panics.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    zfgan_pool::parallel_map(items.len(), |i| f(&items[i])).expect("par_map worker panicked")
}

/// Like [`par_map`], but served through the design-space exploration
/// engine ([`zfgan_dse::run_batch`]): the batch is deduped by canonical
/// key, and when `ZFGAN_DSE_CACHE` names a directory every unique cell is
/// published there in a checksummed `zfgan-store` envelope together with
/// its deterministic telemetry section, so a rerun (or a killed sweep)
/// serves hits instead of recomputing.
///
/// The output is **byte-identical** to an uncached run: every result —
/// hit or fresh — is reconstructed from the cell's canonical JSON (the
/// serde shim serialises floats bit-exactly) and merged in input order.
/// Cache hit/miss/verify counters are wall-clock-class telemetry
/// (`dse_*_total`), excluded from the deterministic sections the CI
/// byte-diffs.
///
/// Any store failure (corrupt generation, truncation, foreign-version
/// cell, unwritable directory) only ever costs recomputation; the cache
/// can never change results or fail a sweep.
///
/// # Panics
///
/// Panics if a worker panics or a cell fails to serialise.
pub fn par_map_cached<T, R, F>(
    cache_name: &str,
    items: &[T],
    key_of: impl Fn(&T) -> String,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send + Serialize + Deserialize,
    F: Fn(&T) -> R + Sync,
{
    zfgan_dse::run_batch(
        &zfgan_dse::DseConfig::from_env(cache_name),
        items,
        key_of,
        f,
    )
    .results
}

/// Formats a ratio with two decimals and an `x` suffix.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a byte count with an SI suffix.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KB", "MB", "GB"];
    let mut v = b as f64;
    let mut i = 0;
    while v >= 1000.0 && i < UNITS.len() - 1 {
        v /= 1000.0;
        i += 1;
    }
    if i == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(125_829_120), "125.8 MB");
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_x(4.3), "4.30x");
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        let out = par_map(&items, |&i| i * 3);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        let empty: Vec<usize> = Vec::new();
        assert!(par_map(&empty, |&i: &usize| i).is_empty());
    }
}
