//! Fault-injection campaign: rate × site × dataflow sweep of the
//! detection layers (ABFT, transfer checksums, finite guards) plus the
//! supervised-training rollback demonstration. Writes
//! `results/faults.json`.
//!
//! Run `ZFGAN_FAULTS_FULL=1 cargo run -p zfgan-bench --release --bin
//! faults` for the full sweep; the default is the CI smoke campaign.

use zfgan::faults::{run_campaign, smoke_violations, CampaignConfig};
use zfgan_bench::{emit, TextTable};

fn main() {
    let telemetry = zfgan_bench::telemetry_sidecar("faults");
    let full = std::env::var_os("ZFGAN_FAULTS_FULL").is_some();
    let seed = std::env::var("ZFGAN_FAULTS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024u64);
    let cfg = if full {
        CampaignConfig::full(seed)
    } else {
        CampaignConfig::smoke(seed)
    };

    let result = match run_campaign(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    };

    let mut table = TextTable::new([
        "Dataflow",
        "Site",
        "Rate",
        "Bit",
        "Attempts",
        "Fired",
        "Effective",
        "Detected",
        "Benign",
        "Silent",
        "Latency (words)",
    ]);
    for c in &result.cells {
        table.row([
            c.dataflow.clone(),
            c.site.clone(),
            format!("{}", c.rate),
            format!("{}", c.bit),
            format!("{}", c.attempts),
            format!("{}", c.fired),
            format!("{}", c.effective),
            format!("{}", c.detected),
            format!("{}", c.benign),
            format!("{}", c.silent),
            format!("{:.1}", c.mean_detection_latency_words),
        ]);
    }
    emit(
        "faults",
        "Fault injection: detection coverage by site and dataflow",
        &table,
        &result,
    );

    let t = &result.trainer;
    println!(
        "Supervised training under trainer-step faults (rate {}, bit {}):\n\
         \x20 injected {}  anomalies {}  rollbacks {}  retries {}  healthy iterations {}\n\
         \x20 completed: {}  final losses: D {:.4}  G {:.4}\n",
        t.rate,
        t.bit,
        t.faults_injected,
        t.anomalies,
        t.rollbacks,
        t.retries,
        t.completed_iterations,
        t.completed,
        t.final_dis_loss,
        t.final_gen_loss,
    );

    telemetry();
    let violations = smoke_violations(&result);
    if !violations.is_empty() {
        eprintln!("RESILIENCE INVARIANTS VIOLATED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
