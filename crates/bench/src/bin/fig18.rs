//! Fig. 18 — performance variation of the top three designs (NLR-OST,
//! ZFOST, ZFOST-ZFWST, all with deferred synchronization) as the PE count
//! sweeps 512 → 2048, on a full DCGAN training iteration.
//!
//! The sweep is served by the DSE engine ([`zfgan_dse::sweeps::fig18`]);
//! this bin renders the rows and the paper's observation.

use zfgan_bench::{emit, fmt_x, TextTable};
use zfgan_dse::sweeps::fig18::{self, Row};
use zfgan_dse::DseConfig;

fn main() {
    let rows: Vec<Row> = fig18::rows(&DseConfig::from_env(fig18::NAME));
    let mut table = TextTable::new(["Design", "PEs", "Cycles/sample", "Perf vs NLR-OST@512"]);
    for r in &rows {
        table.row([
            r.design.clone(),
            r.pes.to_string(),
            r.cycles_per_sample.to_string(),
            fmt_x(r.perf_vs_512_nlr_ost),
        ]);
    }
    emit(
        "fig18",
        "Fig. 18: performance variation with various PE counts (DCGAN)",
        &table,
        &rows,
    );

    // The paper's observation: ZFOST-ZFWST at 512 PEs ≈ the others at 1024.
    let zf512 = rows
        .iter()
        .find(|r| r.design == "ZFOST-ZFWST" && r.pes == 512)
        .expect("present");
    for other in ["NLR-OST", "ZFOST"] {
        let o1024 = rows
            .iter()
            .find(|r| r.design == other && r.pes == 1024)
            .expect("present");
        println!(
            "ZFOST-ZFWST@512 vs {other}@1024: {}",
            fmt_x(o1024.cycles_per_sample as f64 / zf512.cycles_per_sample as f64)
        );
    }
}
