//! Fig. 18 — performance variation of the top three designs (NLR-OST,
//! ZFOST, ZFOST-ZFWST, all with deferred synchronization) as the PE count
//! sweeps 512 → 2048, on a full DCGAN training iteration.

use serde::{Deserialize, Serialize};
use zfgan_accel::{Design, SyncPolicy};
use zfgan_bench::{emit, fmt_x, par_map_cached, TextTable};
use zfgan_dataflow::ArchKind;
use zfgan_workloads::GanSpec;

#[derive(Serialize, Deserialize)]
struct Row {
    design: String,
    pes: usize,
    cycles_per_sample: u64,
    perf_vs_512_nlr_ost: f64,
}

fn main() {
    let spec = GanSpec::dcgan();
    let designs = [
        Design::Combo {
            st: ArchKind::Nlr,
            w: ArchKind::Ost,
        },
        Design::Unique(ArchKind::Zfost),
        Design::Combo {
            st: ArchKind::Zfost,
            w: ArchKind::Zfwst,
        },
    ];
    let sweep = [512usize, 1024, 1680, 2048];
    let baseline = designs[0].iteration_cycles(&spec, SyncPolicy::Deferred, sweep[0]) as f64;
    // Each (design, PE count) point evaluates independently; the ordered
    // merge reproduces the sequential row order exactly.
    let mut points = Vec::new();
    for design in &designs {
        for pes in sweep {
            points.push((design, pes));
        }
    }
    let rows: Vec<Row> = par_map_cached(
        "fig18",
        &points,
        |(design, pes)| format!("{}|{pes}", design.name()),
        |&(design, pes)| {
            let cycles = design.iteration_cycles(&spec, SyncPolicy::Deferred, pes);
            Row {
                design: design.name(),
                pes,
                cycles_per_sample: cycles,
                perf_vs_512_nlr_ost: baseline / cycles as f64,
            }
        },
    );
    let mut table = TextTable::new(["Design", "PEs", "Cycles/sample", "Perf vs NLR-OST@512"]);
    for r in &rows {
        table.row([
            r.design.clone(),
            r.pes.to_string(),
            r.cycles_per_sample.to_string(),
            fmt_x(r.perf_vs_512_nlr_ost),
        ]);
    }
    emit(
        "fig18",
        "Fig. 18: performance variation with various PE counts (DCGAN)",
        &table,
        &rows,
    );

    // The paper's observation: ZFOST-ZFWST at 512 PEs ≈ the others at 1024.
    let zf512 = rows
        .iter()
        .find(|r| r.design == "ZFOST-ZFWST" && r.pes == 512)
        .expect("present");
    for other in ["NLR-OST", "ZFOST"] {
        let o1024 = rows
            .iter()
            .find(|r| r.design == other && r.pes == 1024)
            .expect("present");
        println!(
            "ZFOST-ZFWST@512 vs {other}@1024: {}",
            fmt_x(o1024.cycles_per_sample as f64 / zf512.cycles_per_sample as f64)
        );
    }
}
