//! Fig. 17 — overall performance of the five designs on Discriminator and
//! Generator updates, with and without deferred synchronization, at 1680
//! PEs. Normalized to unique OST under synchronization (the leftmost
//! traditional bar).
//!
//! The sweep is served by the DSE engine ([`zfgan_dse::sweeps::fig17`]);
//! this bin renders the rows and the headline average.

use zfgan_bench::{emit, fmt_x, TextTable};
use zfgan_dse::sweeps::fig17::{self, Row};
use zfgan_dse::DseConfig;

fn main() {
    let rows: Vec<Row> = fig17::rows(&DseConfig::from_env(fig17::NAME));
    let mut table = TextTable::new([
        "GAN",
        "Update",
        "Design",
        "Policy",
        "Cycles",
        "Speedup vs OST(sync)",
    ]);
    for r in &rows {
        table.row([
            r.gan.clone(),
            r.update.to_string(),
            r.design.clone(),
            r.policy.to_string(),
            r.cycles.to_string(),
            fmt_x(r.speedup_vs_ost_sync),
        ]);
    }
    emit(
        "fig17",
        "Fig. 17: overall performance comparison (1680 PEs)",
        &table,
        &rows,
    );

    // Headline: average speedup of deferred ZFOST-ZFWST over the
    // traditional designs (the paper's "average 4.3X").
    let winner: Vec<&Row> = rows
        .iter()
        .filter(|r| r.design == "ZFOST-ZFWST" && r.policy == "deferred")
        .collect();
    let mut ratios = Vec::new();
    for w in &winner {
        for t in rows.iter().filter(|r| {
            (r.design == "OST" || r.design == "NLR-OST")
                && r.policy == "sync"
                && r.gan == w.gan
                && r.update == w.update
        }) {
            ratios.push(t.cycles as f64 / w.cycles as f64);
        }
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "Average speedup of deferred ZFOST-ZFWST over traditional designs: {} (paper: 4.3x)",
        fmt_x(avg)
    );
}
