//! Fig. 17 — overall performance of the five designs on Discriminator and
//! Generator updates, with and without deferred synchronization, at 1680
//! PEs. Normalized to unique OST under synchronization (the leftmost
//! traditional bar).

use serde::{Deserialize, Serialize};
use zfgan_accel::{Design, SyncPolicy};
use zfgan_bench::{emit, fmt_x, par_map_cached, TextTable};
use zfgan_workloads::{GanSpec, PhaseSeq};

const PES: usize = 1680;

#[derive(Serialize, Deserialize)]
struct Row {
    gan: String,
    update: &'static str,
    design: String,
    policy: &'static str,
    cycles: u64,
    speedup_vs_ost_sync: f64,
}

fn main() {
    // One sweep point per (GAN, update pass); rows merge in input order so
    // the output matches the sequential sweep byte for byte.
    let mut points = Vec::new();
    for spec in GanSpec::all_paper_gans() {
        for (update, seq) in [("D", PhaseSeq::DisUpdate), ("G", PhaseSeq::GenUpdate)] {
            points.push((spec.clone(), update, seq));
        }
    }
    let rows: Vec<Row> = par_map_cached(
        "fig17",
        &points,
        |(spec, update, _)| format!("{}|{update}|{PES}", spec.name()),
        |(spec, update, seq)| {
            let baseline = Design::paper_designs()[0]
                .evaluate(spec, *seq, SyncPolicy::Synchronized, PES)
                .total_cycles;
            let mut out = Vec::new();
            for design in Design::paper_designs() {
                for (pname, policy) in [
                    ("sync", SyncPolicy::Synchronized),
                    ("deferred", SyncPolicy::Deferred),
                ] {
                    let r = design.evaluate(spec, *seq, policy, PES);
                    out.push(Row {
                        gan: spec.name().to_string(),
                        update,
                        design: design.name(),
                        policy: pname,
                        cycles: r.total_cycles,
                        speedup_vs_ost_sync: baseline as f64 / r.total_cycles as f64,
                    });
                }
            }
            out
        },
    )
    .into_iter()
    .flatten()
    .collect();
    let mut table = TextTable::new([
        "GAN",
        "Update",
        "Design",
        "Policy",
        "Cycles",
        "Speedup vs OST(sync)",
    ]);
    for r in &rows {
        table.row([
            r.gan.clone(),
            r.update.to_string(),
            r.design.clone(),
            r.policy.to_string(),
            r.cycles.to_string(),
            fmt_x(r.speedup_vs_ost_sync),
        ]);
    }
    emit(
        "fig17",
        "Fig. 17: overall performance comparison (1680 PEs)",
        &table,
        &rows,
    );

    // Headline: average speedup of deferred ZFOST-ZFWST over the
    // traditional designs (the paper's "average 4.3X").
    let winner: Vec<&Row> = rows
        .iter()
        .filter(|r| r.design == "ZFOST-ZFWST" && r.policy == "deferred")
        .collect();
    let mut ratios = Vec::new();
    for w in &winner {
        for t in rows.iter().filter(|r| {
            (r.design == "OST" || r.design == "NLR-OST")
                && r.policy == "sync"
                && r.gan == w.gan
                && r.update == w.update
        }) {
            ratios.push(t.cycles as f64 / w.cycles as f64);
        }
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "Average speedup of deferred ZFOST-ZFWST over traditional designs: {} (paper: 4.3x)",
        fmt_x(avg)
    );
}
