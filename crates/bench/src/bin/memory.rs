//! Section III-A — intermediate-data buffering: synchronized (2×batch)
//! vs deferred (1 sample), analytically for the paper networks and
//! measured live on a trainable GAN.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use zfgan_accel::MemoryAnalysis;
use zfgan_bench::{emit, fmt_bytes, fmt_x, TextTable};
use zfgan_nn::{GanPair, GanTrainer, SyncMode, TrainerConfig};
use zfgan_workloads::GanSpec;

#[derive(Serialize)]
struct Row {
    gan: String,
    batch: usize,
    sync_bytes: u64,
    deferred_bytes: u64,
    reduction: f64,
    sync_fits_on_chip: bool,
    deferred_fits_on_chip: bool,
}

fn main() {
    let mut rows = Vec::new();
    for spec in GanSpec::all_paper_gans() {
        for batch in [64usize, 256] {
            let m = MemoryAnalysis::analyse(&spec, batch, 2);
            rows.push(Row {
                gan: spec.name().to_string(),
                batch,
                sync_bytes: m.synchronized_bytes,
                deferred_bytes: m.deferred_bytes,
                reduction: m.reduction_factor(),
                sync_fits_on_chip: m.synchronized_fits_on_chip,
                deferred_fits_on_chip: m.deferred_fits_on_chip,
            });
        }
    }
    let mut table = TextTable::new([
        "GAN",
        "Batch",
        "Synchronized",
        "Deferred",
        "Reduction",
        "Sync fits BRAM",
        "Deferred fits BRAM",
    ]);
    for r in &rows {
        table.row([
            r.gan.clone(),
            r.batch.to_string(),
            fmt_bytes(r.sync_bytes),
            fmt_bytes(r.deferred_bytes),
            fmt_x(r.reduction),
            r.sync_fits_on_chip.to_string(),
            r.deferred_fits_on_chip.to_string(),
        ]);
    }
    emit(
        "memory",
        "Section III-A: intermediate-data buffering",
        &table,
        &rows,
    );

    // Live measurement: run both trainers on a small GAN and report the
    // actual buffered-trace high-water marks.
    let mut rng = SmallRng::seed_from_u64(0);
    let batch = 8;
    let reals = {
        let pair = GanPair::tiny(&mut rng);
        pair.sample_real_batch(batch, &mut rng)
    };
    let mut measured = TextTable::new(["Trainer", "Peak live traces", "Peak buffered elems"]);
    for (name, mode) in [
        ("synchronized", SyncMode::Synchronized),
        ("deferred", SyncMode::Deferred),
    ] {
        let mut rng_w = SmallRng::seed_from_u64(1);
        let pair = GanPair::tiny(&mut rng_w);
        let mut trainer = GanTrainer::new(
            pair,
            TrainerConfig {
                mode,
                ..TrainerConfig::default()
            },
        );
        let mut rng_step = SmallRng::seed_from_u64(2);
        let rep = trainer.step_discriminator(&reals, &mut rng_step);
        measured.row([
            name.to_string(),
            rep.peak_live_traces.to_string(),
            rep.peak_buffered_elems.to_string(),
        ]);
    }
    println!("== Measured on a live trainer (batch {batch}) ==");
    println!("{}", measured.render());
}
