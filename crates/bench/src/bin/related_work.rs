//! Extension: the related-work comparison the paper argues in prose
//! (Section VII) — an Eyeriss-style row-stationary baseline that *gates*
//! zero computations (saving energy) but cannot *skip* them (saving
//! cycles), against the paper's zero-free designs.

use serde::Serialize;
use zfgan_bench::{emit, fmt_x, TextTable};
use zfgan_dataflow::{Dataflow, RowStationary, Zfost, Zfwst};
use zfgan_sim::ConvKind;
use zfgan_workloads::GanSpec;

#[derive(Serialize)]
struct Row {
    phase: &'static str,
    arch: &'static str,
    cycles: u64,
    input_reads: u64,
    speedup_of_zero_free: f64,
}

fn main() {
    let spec = GanSpec::dcgan();
    let groups: [(&'static str, ConvKind, usize); 4] = [
        ("D (S-CONV)", ConvKind::S, 1200),
        ("G (T-CONV)", ConvKind::T, 1200),
        ("Dw (W-CONV)", ConvKind::WGradS, 480),
        ("Gw (W-CONV)", ConvKind::WGradT, 480),
    ];
    let mut rows = Vec::new();
    for (label, kind, budget) in groups {
        let phases = spec.phase_set(kind);
        let channels = budget / 16;
        let rs = RowStationary::new(4, 4, channels);
        let zero_free: Box<dyn Dataflow> = if kind.is_weight_grad() {
            Box::new(Zfwst::new(4, 4, channels))
        } else {
            Box::new(Zfost::new(4, 4, channels))
        };
        let rs_stats = rs.schedule_all(&phases);
        let zf_stats = zero_free.schedule_all(&phases);
        let speedup = rs_stats.cycles as f64 / zf_stats.cycles as f64;
        rows.push(Row {
            phase: label,
            arch: "Row-Stationary (gating)",
            cycles: rs_stats.cycles,
            input_reads: rs_stats.access.input_reads,
            speedup_of_zero_free: speedup,
        });
        rows.push(Row {
            phase: label,
            arch: if kind.is_weight_grad() {
                "ZFWST (skipping)"
            } else {
                "ZFOST (skipping)"
            },
            cycles: zf_stats.cycles,
            input_reads: zf_stats.access.input_reads,
            speedup_of_zero_free: 1.0,
        });
    }
    let mut table = TextTable::new([
        "Phase",
        "Architecture",
        "Cycles (DCGAN)",
        "Input loads",
        "ZF speedup",
    ]);
    for r in &rows {
        table.row([
            r.phase.to_string(),
            r.arch.to_string(),
            r.cycles.to_string(),
            r.input_reads.to_string(),
            fmt_x(r.speedup_of_zero_free),
        ]);
    }
    emit(
        "related_work",
        "Extension: zero-gating (Eyeriss-style RS) vs zero-skipping (ZFOST/ZFWST)",
        &table,
        &rows,
    );
    println!(
        "Gating suppresses the energy of an ineffectual multiply but still spends its cycle;\n\
         skipping reclaims the cycle — the paper's central microarchitectural argument."
    );
}
