//! Table IV — parameters of the evaluated GANs (Discriminator ladders).

use serde::Serialize;
use zfgan_bench::{emit, TextTable};
use zfgan_workloads::GanSpec;

#[derive(Serialize)]
struct Row {
    gan: String,
    input: String,
    kernel: String,
    stride: String,
    output: String,
}

fn main() {
    let mut rows = Vec::new();
    for spec in GanSpec::all_paper_gans() {
        for l in spec.layers() {
            rows.push(Row {
                gan: spec.name().to_string(),
                input: format!("{}x{}x{}", l.large_c, l.large_hw, l.large_hw),
                kernel: format!("{}x{}", l.kernel, l.kernel),
                stride: format!("{}x{}", l.stride, l.stride),
                output: format!("{}x{}x{}", l.small_c, l.small_hw(), l.small_hw()),
            });
        }
    }
    let mut table = TextTable::new(["GAN", "Input", "Kernel", "Stride", "Output"]);
    for r in &rows {
        table.row([
            r.gan.clone(),
            r.input.clone(),
            r.kernel.clone(),
            r.stride.clone(),
            r.output.clone(),
        ]);
    }
    emit(
        "table4",
        "Table IV: parameters of the evaluated GANs",
        &table,
        &rows,
    );
}
