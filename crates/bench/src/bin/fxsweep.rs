//! Deterministic Q8.8 fixed-point conv sweep — the SIMD byte-identity
//! probe.
//!
//! Runs every conv op (S/T forward, both input-grads, both W-CONV
//! gradients) in Q8.8 fixed point over MNIST-GAN-shaped and
//! boundary-heavy geometries, through both packed-engine backends
//! (sequential and pooled), and prints an FNV-1a digest of each result's
//! raw `i16` payload plus a few sampled raw values.
//!
//! The output is a pure function of the fixed seed: no timestamps, no
//! timings, no SIMD/thread metadata on stdout. `scripts/ci.sh` runs this
//! binary twice — once with the runtime-detected SIMD kernels, once under
//! `ZFGAN_NO_SIMD=1` — and diffs the two transcripts. A byte-identical
//! diff proves the vectorized Q8.8 microkernel reproduces the scalar
//! `Fx` semantics (widened i32 lanes, round-half-up at every
//! multiply, saturating adds) bit-for-bit end to end, not just on the
//! proptest corpus.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use zfgan_tensor::{ConvBackend, ConvGeom, ConvWorkspace, Fmaps, Fx, Kernels};

/// FNV-1a over the little-endian bytes of the raw Q8.8 words.
fn digest(raw: impl Iterator<Item = i16>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in raw {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn report(label: &str, backend: &str, raw: &[Fx]) {
    let head: Vec<i16> = raw.iter().take(4).map(|v| v.raw()).collect();
    println!(
        "{label:<28} {backend:<6} digest {:016x}  head {head:?}",
        digest(raw.iter().map(|v| v.raw()))
    );
}

fn rand_fmaps(c: usize, h: usize, w: usize, rng: &mut SmallRng) -> Fmaps<Fx> {
    let mut f = Fmaps::zeros(c, h, w);
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                *f.at_mut(ch, y, x) = Fx::from_f32(rng.gen_range(-2.0f32..2.0));
            }
        }
    }
    f
}

fn rand_kernels(n_of: usize, n_if: usize, kh: usize, kw: usize, rng: &mut SmallRng) -> Kernels<Fx> {
    let mut k = Kernels::zeros(n_of, n_if, kh, kw);
    for a in 0..n_of {
        for b in 0..n_if {
            for y in 0..kh {
                for x in 0..kw {
                    *k.at_mut(a, b, y, x) = Fx::from_f32(rng.gen_range(-0.5f32..0.5));
                }
            }
        }
    }
    k
}

/// All six conv ops for one geometry, one backend. `(ih, iw)` is the
/// large-side (S-CONV input) spatial size; the T-CONV direction feeds the
/// small side back up.
fn sweep_geom(tag: &str, geom: &ConvGeom, n_small: usize, n_large: usize, ih: usize, iw: usize) {
    let mut ws: ConvWorkspace<Fx> = ConvWorkspace::new();
    for (bname, be) in [
        ("seq", ConvBackend::LoweredZeroFree),
        ("pool2", ConvBackend::Parallel(2)),
    ] {
        // Re-seed per backend so both backends see identical operands —
        // their digests must agree line for line as well.
        let mut rng = SmallRng::seed_from_u64(0x5eed);
        let x = rand_fmaps(n_large, ih, iw, &mut rng);
        let k = rand_kernels(n_small, n_large, geom.kh(), geom.kw(), &mut rng);
        let (oh, ow) = geom.down_out(ih, iw);
        let d_small = rand_fmaps(n_small, oh, ow, &mut rng);

        let fwd = be.s_conv_ws(&x, &k, geom, &mut ws).unwrap();
        report(&format!("{tag}/s_conv"), bname, fwd.as_slice());
        let dg = be
            .s_conv_input_grad_ws(&d_small, &k, geom, ih, iw, &mut ws)
            .unwrap();
        report(&format!("{tag}/s_input_grad"), bname, dg.as_slice());
        let wg = be
            .w_conv_for_s_layer_ws(&x, &d_small, geom, &mut ws)
            .unwrap();
        report(&format!("{tag}/s_wgrad"), bname, wg.as_slice());
        ws.give_fmaps(dg);

        let up = be.t_conv_ws(&fwd, &k, geom, &mut ws).unwrap();
        report(&format!("{tag}/t_conv"), bname, up.as_slice());
        let d_large = rand_fmaps(n_large, up.height(), up.width(), &mut rng);
        let tg = be
            .t_conv_input_grad_ws(&d_large, &k, geom, &mut ws)
            .unwrap();
        report(&format!("{tag}/t_input_grad"), bname, tg.as_slice());
        let wt = be
            .w_conv_for_t_layer_ws(&fwd, &d_large, geom, &mut ws)
            .unwrap();
        report(&format!("{tag}/t_wgrad"), bname, wt.as_slice());
        ws.give_fmaps(fwd);
        ws.give_fmaps(up);
        ws.give_fmaps(tg);
    }
}

fn main() {
    // MNIST-GAN layer shapes (channel counts trimmed to keep the sweep
    // fast) plus a boundary-heavy odd-stride geometry.
    sweep_geom(
        "g28",
        &ConvGeom::down(28, 28, 5, 5, 2, 14, 14).unwrap(),
        16,
        8,
        28,
        28,
    );
    sweep_geom(
        "g14",
        &ConvGeom::down(14, 14, 5, 5, 2, 7, 7).unwrap(),
        24,
        16,
        14,
        14,
    );
    sweep_geom(
        "head",
        &ConvGeom::new(7, 7, 1, 0, 0, 0, 0).unwrap(),
        8,
        32,
        7,
        7,
    );
    sweep_geom(
        "odd",
        &ConvGeom::down(7, 7, 3, 3, 3, 3, 3).unwrap(),
        5,
        3,
        7,
        7,
    );
}
