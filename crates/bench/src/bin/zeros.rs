//! Section III-C — ineffectual (zero-operand) multiplication fractions per
//! phase family ("about 64% and 75% of total multiplications in Ḡ/Ḡw and
//! D̄w") and the WST utilization formula (Eq. 5).

use serde::Serialize;
use zfgan_bench::{emit, TextTable};
use zfgan_sim::ConvKind;
use zfgan_workloads::GanSpec;

#[derive(Serialize)]
struct Row {
    gan: String,
    phase: &'static str,
    naive_muls: u64,
    effectual: u64,
    ineffectual_pct: f64,
}

fn main() {
    let mut rows = Vec::new();
    for spec in GanSpec::all_paper_gans() {
        for (label, kind) in [
            ("G fwd / D bwd (T-CONV)", ConvKind::T),
            ("Dw (W-CONV, zero-ins. kernel)", ConvKind::WGradS),
            ("Gw (W-CONV, zero-ins. input)", ConvKind::WGradT),
        ] {
            let (mut naive, mut eff) = (0u64, 0u64);
            for p in spec.phase_set(kind) {
                naive += p.naive_muls();
                eff += p.effectual_macs();
            }
            rows.push(Row {
                gan: spec.name().to_string(),
                phase: label,
                naive_muls: naive,
                effectual: eff,
                ineffectual_pct: 100.0 * (1.0 - eff as f64 / naive as f64),
            });
        }
    }
    let mut table = TextTable::new(["GAN", "Phase", "Naive muls", "Effectual", "Ineffectual %"]);
    for r in &rows {
        table.row([
            r.gan.clone(),
            r.phase.to_string(),
            r.naive_muls.to_string(),
            r.effectual.to_string(),
            format!("{:.1}%", r.ineffectual_pct),
        ]);
    }
    emit(
        "zeros",
        "Section III-C: ineffectual multiplications from zero-inserting",
        &table,
        &rows,
    );

    // Eq. 5: WST utilization = (Noy·Nox)/(Niy·Nix) per layer.
    let mut eq5 = TextTable::new(["GAN", "Layer", "Eq. 5 WST utilization bound"]);
    for spec in GanSpec::all_paper_gans() {
        for (i, l) in spec.layers().iter().enumerate() {
            let bound = (l.small_hw() * l.small_hw()) as f64 / (l.large_hw * l.large_hw) as f64;
            eq5.row([
                spec.name().to_string(),
                format!("{}", i + 1),
                format!("{bound:.3}"),
            ]);
        }
    }
    println!("== Eq. 5: WST utilization bound on S-CONV ==");
    println!("{}", eq5.render());
}
