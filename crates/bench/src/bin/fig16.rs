//! Fig. 16 — on-chip data-access breakdown for DCGAN: kernel-weight loads,
//! input-neuron loads and output reads/writes per architecture and phase
//! group (same tuned configurations as Fig. 15).

use serde::Serialize;
use zfgan_bench::{emit, TextTable};
use zfgan_dataflow::{ArchKind, Dataflow, PhaseTuned};
use zfgan_sim::ConvKind;
use zfgan_workloads::GanSpec;

#[derive(Serialize)]
struct Row {
    phase: &'static str,
    arch: &'static str,
    weight_reads: u64,
    input_reads: u64,
    output_rw: u64,
    total: u64,
}

fn main() {
    let spec = GanSpec::dcgan();
    let groups: [(&'static str, ConvKind, usize); 4] = [
        ("D (S-CONV)", ConvKind::S, 1200),
        ("G (T-CONV)", ConvKind::T, 1200),
        ("Dw (W-CONV)", ConvKind::WGradS, 480),
        ("Gw (W-CONV)", ConvKind::WGradT, 480),
    ];
    let mut rows = Vec::new();
    for (label, kind, budget) in groups {
        let phases = spec.phase_set(kind);
        for arch in ArchKind::ALL {
            let tuned = PhaseTuned::tune(arch, budget, &phases);
            let s = tuned.schedule_all(&phases);
            rows.push(Row {
                phase: label,
                arch: arch.name(),
                weight_reads: s.access.weight_reads,
                input_reads: s.access.input_reads,
                output_rw: s.access.output_reads + s.access.output_writes,
                total: s.access.total(),
            });
        }
    }
    let mut table = TextTable::new([
        "Phase",
        "Arch",
        "Weight loads",
        "Input loads",
        "Output R+W",
        "Total",
    ]);
    for r in &rows {
        table.row([
            r.phase.to_string(),
            r.arch.to_string(),
            r.weight_reads.to_string(),
            r.input_reads.to_string(),
            r.output_rw.to_string(),
            r.total.to_string(),
        ]);
    }
    emit(
        "fig16",
        "Fig. 16: on-chip data accesses breakdown for DCGAN",
        &table,
        &rows,
    );
}
