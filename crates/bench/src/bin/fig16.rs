//! Fig. 16 — on-chip data-access breakdown for DCGAN: kernel-weight loads,
//! input-neuron loads and output reads/writes per architecture and phase
//! group (same tuned configurations as Fig. 15).

use serde::{Deserialize, Serialize};
use zfgan_bench::{emit, par_map_cached, TextTable};
use zfgan_dataflow::{ArchKind, Dataflow, PhaseTuned};
use zfgan_sim::ConvKind;
use zfgan_workloads::GanSpec;

#[derive(Serialize, Deserialize)]
struct Row {
    phase: &'static str,
    arch: &'static str,
    weight_reads: u64,
    input_reads: u64,
    output_rw: u64,
    total: u64,
}

fn main() {
    let spec = GanSpec::dcgan();
    let groups: [(&'static str, ConvKind, usize); 4] = [
        ("D (S-CONV)", ConvKind::S, 1200),
        ("G (T-CONV)", ConvKind::T, 1200),
        ("Dw (W-CONV)", ConvKind::WGradS, 480),
        ("Gw (W-CONV)", ConvKind::WGradT, 480),
    ];
    // Tune each phase group on its own worker; the ordered merge keeps the
    // row order identical to the sequential sweep.
    let rows: Vec<Row> = par_map_cached(
        "fig16",
        &groups,
        |(label, _, budget)| format!("{label}|{budget}"),
        |&(label, kind, budget)| {
            let phases = spec.phase_set(kind);
            ArchKind::ALL
                .into_iter()
                .map(|arch| {
                    let tuned = PhaseTuned::tune(arch, budget, &phases);
                    let s = tuned.schedule_all(&phases);
                    Row {
                        phase: label,
                        arch: arch.name(),
                        weight_reads: s.access.weight_reads,
                        input_reads: s.access.input_reads,
                        output_rw: s.access.output_reads + s.access.output_writes,
                        total: s.access.total(),
                    }
                })
                .collect::<Vec<Row>>()
        },
    )
    .into_iter()
    .flatten()
    .collect();
    let mut table = TextTable::new([
        "Phase",
        "Arch",
        "Weight loads",
        "Input loads",
        "Output R+W",
        "Total",
    ]);
    for r in &rows {
        table.row([
            r.phase.to_string(),
            r.arch.to_string(),
            r.weight_reads.to_string(),
            r.input_reads.to_string(),
            r.output_rw.to_string(),
            r.total.to_string(),
        ]);
    }
    emit(
        "fig16",
        "Fig. 16: on-chip data accesses breakdown for DCGAN",
        &table,
        &rows,
    );
}
