//! Fig. 16 — on-chip data-access breakdown for DCGAN: kernel-weight loads,
//! input-neuron loads and output reads/writes per architecture and phase
//! group (same tuned configurations as Fig. 15).
//!
//! The sweep is served by the DSE engine ([`zfgan_dse::sweeps::fig16`]);
//! this bin only renders the rows.

use zfgan_bench::{emit, TextTable};
use zfgan_dse::sweeps::fig16::{self, Row};
use zfgan_dse::DseConfig;

fn main() {
    let rows: Vec<Row> = fig16::rows(&DseConfig::from_env(fig16::NAME));
    let mut table = TextTable::new([
        "Phase",
        "Arch",
        "Weight loads",
        "Input loads",
        "Output R+W",
        "Total",
    ]);
    for r in &rows {
        table.row([
            r.phase.to_string(),
            r.arch.to_string(),
            r.weight_reads.to_string(),
            r.input_reads.to_string(),
            r.output_rw.to_string(),
            r.total.to_string(),
        ]);
    }
    emit(
        "fig16",
        "Fig. 16: on-chip data accesses breakdown for DCGAN",
        &table,
        &rows,
    );
}
