//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. **ZFOST kernel-feed reorder** (paper Fig. 12a) — what the parity
//!    reordering buys on `S-CONV` (input reuse) and `T-CONV` (4× cycles).
//! 2. **W-ARCH speed ratio** (paper Eq. 8) — sweep the ST:W split away from
//!    2.5:1 and watch one array starve the other.
//! 3. **Deferral safety** — the WGAN losses admit per-sample backward
//!    passes; a batch-coupled loss (log-sum-exp) provably does not.

use serde::Serialize;
use zfgan_accel::gantt::BatchSchedule;
use zfgan_bench::{emit, fmt_x, TextTable};
use zfgan_dataflow::{Dataflow, Zfost, Zfwst};
use zfgan_nn::wgan;
use zfgan_sim::ConvKind;
use zfgan_workloads::{GanSpec, PhaseSeq};

#[derive(Serialize)]
struct ReorderRow {
    phase: &'static str,
    variant: &'static str,
    cycles: u64,
    input_reads: u64,
}

fn reorder_ablation() -> Vec<ReorderRow> {
    let spec = GanSpec::dcgan();
    let mut rows = Vec::new();
    for (label, kind) in [
        ("S-CONV (D̄ fwd)", ConvKind::S),
        ("T-CONV (Ḡ fwd)", ConvKind::T),
    ] {
        let phases = spec.phase_set(kind);
        for (variant, zf) in [
            ("with reorder", Zfost::new(4, 4, 75)),
            ("without reorder", Zfost::without_reorder(4, 4, 75)),
        ] {
            let s = zf.schedule_all(&phases);
            rows.push(ReorderRow {
                phase: label,
                variant,
                cycles: s.cycles,
                input_reads: s.access.input_reads,
            });
        }
    }
    rows
}

#[derive(Serialize)]
struct RatioRow {
    st_pof: usize,
    w_pof: usize,
    ratio: f64,
    makespan: u64,
    st_util: f64,
    w_util: f64,
}

fn ratio_sweep() -> Vec<RatioRow> {
    // Fixed 1680-PE budget, varying the split; Eq. 8 says 2.5:1 is the
    // sweet spot for Discriminator updates.
    let spec = GanSpec::cgan();
    let mut rows = Vec::new();
    for (st_pof, w_pof) in [(95usize, 10usize), (85, 20), (75, 30), (65, 40), (55, 50)] {
        let st = Zfost::new(4, 4, st_pof);
        let w = Zfwst::new(4, 4, w_pof);
        let st_cycles = st.schedule_all(&spec.st_phases(PhaseSeq::DisUpdate)).cycles;
        let w_cycles = w.schedule_all(&spec.w_phases(PhaseSeq::DisUpdate)).cycles;
        let sched = BatchSchedule::deferred(st_cycles, w_cycles, 32);
        let (st_util, w_util) = sched.utilizations();
        rows.push(RatioRow {
            st_pof,
            w_pof,
            ratio: st_pof as f64 / w_pof as f64,
            makespan: sched.makespan,
            st_util,
            w_util,
        });
    }
    rows
}

fn main() {
    // 1. Kernel-feed reorder.
    let rows = reorder_ablation();
    let mut table = TextTable::new(["Phase", "Variant", "Cycles (DCGAN)", "Input loads"]);
    for r in &rows {
        table.row([
            r.phase.to_string(),
            r.variant.to_string(),
            r.cycles.to_string(),
            r.input_reads.to_string(),
        ]);
    }
    emit(
        "ablation_reorder",
        "Ablation 1: ZFOST kernel-feed reorder (Fig. 12a)",
        &table,
        &rows,
    );
    let t_with = rows
        .iter()
        .find(|r| r.phase.starts_with("T-CONV") && r.variant == "with reorder")
        .expect("present");
    let t_without = rows
        .iter()
        .find(|r| r.phase.starts_with("T-CONV") && r.variant == "without reorder")
        .expect("present");
    println!(
        "The reorder buys {} on T-CONV cycles.\n",
        fmt_x(t_without.cycles as f64 / t_with.cycles as f64)
    );

    // 2. ST:W split sweep.
    let rows = ratio_sweep();
    let mut table = TextTable::new([
        "ST_Pof",
        "W_Pof",
        "ST:W",
        "Makespan (32 samples)",
        "ST util",
        "W util",
    ]);
    for r in &rows {
        table.row([
            r.st_pof.to_string(),
            r.w_pof.to_string(),
            format!("{:.2}", r.ratio),
            r.makespan.to_string(),
            format!("{:.0}%", 100.0 * r.st_util),
            format!("{:.0}%", 100.0 * r.w_util),
        ]);
    }
    emit(
        "ablation_ratio",
        "Ablation 2: ST:W budget split around Eq. 8's 2.5:1",
        &table,
        &rows,
    );
    let best = rows.iter().min_by_key(|r| r.makespan).expect("non-empty");
    println!(
        "Best split: ST_Pof={} / W_Pof={} (ratio {:.2}; Eq. 8 prescribes 2.5)\n",
        best.st_pof, best.w_pof, best.ratio
    );

    // 3. Deferral safety.
    let probe = [0.7, -0.4, 1.3, 0.1];
    let wgan_safe = wgan::is_deferral_safe(
        |scores| vec![-1.0 / scores.len() as f64; scores.len()],
        &probe,
    );
    let lse_safe = wgan::is_deferral_safe(wgan::lse_output_errors, &probe);
    println!("== Ablation 3: which losses admit deferred synchronization ==");
    println!("WGAN linear average : deferral-safe = {wgan_safe}");
    println!("log-sum-exp (coupled): deferral-safe = {lse_safe}");
    println!("(Paper Eq. 6 relies exactly on the linear-average structure.)");

    // Grid ablation (Section V-A): the paper picks a 4×4 PE grid because
    // DCGAN's minimum output feature map is 4×4. Re-split the same budget
    // across grid shapes and compare full-iteration cycles.
    {
        use zfgan_accel::{AccelConfig, GanAccelerator};
        println!("== Ablation: PE-grid edge at a fixed ~1680-PE budget (DCGAN) ==");
        println!("grid   total PEs   cyc/sample");
        let base = AccelConfig::vcu118();
        let mut best: Option<(usize, u64)> = None;
        for grid in [2usize, 3, 4, 5, 6, 8] {
            let cfg = base.with_grid(grid);
            let accel = GanAccelerator::new(cfg, GanSpec::dcgan());
            let cyc = accel.iteration_cycles_per_sample();
            println!("{grid:>4}   {:>9}   {cyc:>10}", cfg.total_pes());
            if best.map(|(_, c)| cyc < c).unwrap_or(true) {
                best = Some((grid, cyc));
            }
        }
        let (g, _) = best.expect("swept");
        println!(
            "best grid: {g} (paper picks 4 = DCGAN's minimum output map)
"
        );
    }

    // RTL-level evidence for the reorder: run the register-lattice model
    // of Fig. 11 in both feed orders and report the *observed* buffer
    // loads (not the analytical model's assumption).
    {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        use zfgan_dataflow::rtl::reorder_load_comparison;
        use zfgan_sim::ConvShape;
        use zfgan_tensor::{ConvGeom, Fmaps, Kernels};
        let mut rng = SmallRng::seed_from_u64(11);
        let geom = ConvGeom::down(32, 32, 4, 4, 2, 16, 16).expect("static geometry");
        let phase = ConvShape::new(ConvKind::S, geom, 16, 3, 32, 32);
        let x: Fmaps<f32> = Fmaps::random(3, 32, 32, 1.0, &mut rng);
        let k: Kernels<f32> = Kernels::random(16, 3, 4, 4, 0.25, &mut rng);
        let zf = Zfost::new(4, 4, 8);
        let (reordered, raster) =
            reorder_load_comparison(&zf, &phase, &x, &k).expect("operands match phase");
        println!("== RTL register-lattice measurement (S-CONV, 16×16 out, 3→16 maps) ==");
        println!("input-buffer loads with parity reorder : {reordered}");
        println!(
            "input-buffer loads with raster feed    : {raster}  ({:.1}x more)",
            raster as f64 / reordered as f64
        );
        println!(
            "(observed on the Fig. 11 register model, not assumed)
"
        );
    }

    // Bonus: the batch pipeline as ASCII Gantt art, Fig. 10 made visible.
    let spec = GanSpec::cgan();
    let st = Zfost::new(4, 4, 75);
    let w = Zfwst::new(4, 4, 30);
    let st_c = st.schedule_all(&spec.st_phases(PhaseSeq::DisUpdate)).cycles;
    let w_c = w.schedule_all(&spec.w_phases(PhaseSeq::DisUpdate)).cycles;
    println!("\n== Deferred pipeline, 6 samples (digits = sample index) ==");
    println!("{}", BatchSchedule::deferred(st_c, w_c, 6).render_ascii(72));
    println!("\n== Synchronized, same work ==");
    println!(
        "{}",
        BatchSchedule::synchronized(st_c, w_c, 6).render_ascii(72)
    );
}
