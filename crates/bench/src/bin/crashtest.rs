//! Crash-injection campaign: kill `train` children at seeded points
//! (including torn mid-write checkpoint publishes), corrupt stored
//! checkpoint generations, and prove that resume-from-disk reproduces
//! the uninterrupted run byte for byte. Writes `results/crashtest.json`
//! and the store-counter sidecar `results/telemetry_crashtest.json`.
//!
//! Child mode: when invoked as `crashtest train …` this binary routes
//! straight into the `zfgan` CLI's `train` command, so the campaign's
//! `current_exe` re-invocation works no matter which binary hosts it.

use zfgan::crashtest::{render_summary, run_campaign, violations, CrashtestConfig, ExeRunner};
use zfgan_bench::{emit, TextTable};

fn main() {
    // Child mode: the campaign re-invokes this executable with a leading
    // `train` argument; delegate to the shared CLI and exit.
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("train") {
        match zfgan::cli::run(&args) {
            Ok(out) => print!("{out}"),
            Err(err) => {
                eprintln!("{err}");
                std::process::exit(1);
            }
        }
        return;
    }

    let telemetry = zfgan_bench::telemetry_sidecar("crashtest");
    let seed = std::env::var("ZFGAN_CRASHTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024u64);
    let cfg = CrashtestConfig::smoke(seed);
    let dir = std::env::temp_dir().join(format!("zfgan-crashtest-bench-{}", std::process::id()));

    let result = match run_campaign(&cfg, &ExeRunner, &dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    };
    let _ = std::fs::remove_dir_all(&dir);

    let mut points = TextTable::new([
        "Point",
        "Iteration",
        "Phase",
        "Bytes",
        "Crashed",
        "Resumed",
        "Bit-identical",
    ]);
    for p in &result.points {
        points.row([
            p.point.to_string(),
            p.iteration.to_string(),
            p.phase.clone(),
            p.bytes.to_string(),
            p.crashed.to_string(),
            p.resumed.to_string(),
            p.bit_identical.to_string(),
        ]);
    }
    emit(
        "crashtest",
        "Crash-injection campaign: seeded kills, torn writes, corrupted checkpoints",
        &points,
        &result,
    );

    let mut trials = TextTable::new(["Trial", "Kind", "At", "Detected+recovered", "Bit-identical"]);
    for t in &result.trials {
        trials.row([
            t.trial.to_string(),
            t.kind.clone(),
            t.at.to_string(),
            t.detected_and_recovered.to_string(),
            t.bit_identical.to_string(),
        ]);
    }
    println!("== Checkpoint corruption trials ==");
    println!("{}", trials.render());

    println!("{}", render_summary(&result));
    telemetry();

    let v = violations(&result);
    if !v.is_empty() {
        eprintln!("DURABILITY INVARIANTS VIOLATED:");
        for msg in &v {
            eprintln!("  - {msg}");
        }
        std::process::exit(1);
    }
}
