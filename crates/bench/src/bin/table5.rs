//! Table V — per-architecture, per-phase unrolling strategies found by the
//! search of `zfgan_dataflow::unroll` under the paper's PE budgets
//! (ST-ARCH: 1200 PEs, W-ARCH: 480 PEs).

use serde::Serialize;
use zfgan_bench::{emit, TextTable};
use zfgan_dataflow::{ArchKind, UnrollChoice};
use zfgan_sim::{ConvKind, ConvShape};
use zfgan_workloads::GanSpec;

#[derive(Serialize)]
struct Row {
    arch: String,
    phase: String,
    budget: usize,
    choice: String,
    pes_used: usize,
}

fn phases(kind: ConvKind) -> Vec<ConvShape> {
    GanSpec::all_paper_gans()
        .iter()
        .flat_map(|g| g.phase_set(kind))
        .collect()
}

fn describe(c: &UnrollChoice) -> String {
    match c.arch {
        ArchKind::Nlr => format!("Pif={}, Pof={}", c.p_y, c.p_of),
        ArchKind::Wst | ArchKind::Zfwst => {
            format!("Pky={}, Pkx={}, Pof={}", c.p_y, c.p_x, c.p_of)
        }
        ArchKind::Ost | ArchKind::Zfost => {
            format!("Poy={}, Pox={}, Pof={}", c.p_y, c.p_x, c.p_of)
        }
    }
}

fn main() {
    let mut rows = Vec::new();
    let groups: [(&str, ConvKind, usize); 4] = [
        ("ST: S-CONV (D̄ fwd / Ḡ bwd)", ConvKind::S, 1200),
        ("ST: T-CONV (Ḡ fwd / D̄ bwd)", ConvKind::T, 1200),
        ("W: D̄w", ConvKind::WGradS, 480),
        ("W: Ḡw", ConvKind::WGradT, 480),
    ];
    for arch in ArchKind::ALL {
        for (label, kind, budget) in groups {
            let choice = UnrollChoice::search(arch, budget, &phases(kind));
            rows.push(Row {
                arch: arch.name().to_string(),
                phase: label.to_string(),
                budget,
                choice: describe(&choice),
                pes_used: choice.n_pes(),
            });
        }
    }
    let mut table = TextTable::new([
        "Arch",
        "Phase group",
        "Budget",
        "Chosen unrolling",
        "PEs used",
    ]);
    for r in &rows {
        table.row([
            r.arch.clone(),
            r.phase.clone(),
            r.budget.to_string(),
            r.choice.clone(),
            r.pes_used.to_string(),
        ]);
    }
    emit(
        "table5",
        "Table V: unrolling strategies (searched per phase group)",
        &table,
        &rows,
    );
}
