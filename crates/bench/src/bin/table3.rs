//! Table III — FPGA resource utilization of the accelerator.

use serde::Serialize;
use zfgan_accel::{AccelConfig, ResourceModel};
use zfgan_bench::{emit, TextTable};
use zfgan_workloads::GanSpec;

#[derive(Serialize)]
struct Row {
    resource: &'static str,
    modelled: u64,
    paper: u64,
    device_total: u64,
}

fn main() {
    let cfg = AccelConfig::vcu118();
    let model = ResourceModel::estimate(&cfg, &GanSpec::dcgan());
    let rows = vec![
        Row {
            resource: "Logic (LUTs)",
            modelled: model.luts,
            paper: 254_523,
            device_total: 1_182_240,
        },
        Row {
            resource: "Flip-Flops",
            modelled: model.flip_flops,
            paper: 79_668,
            device_total: 2_364_480,
        },
        Row {
            resource: "Block RAM",
            modelled: model.bram_blocks,
            paper: 2_008,
            device_total: 2_160,
        },
        Row {
            resource: "DSP",
            modelled: model.dsps,
            paper: 1_694,
            device_total: 6_840,
        },
    ];
    let mut table = TextTable::new(["Resource type", "Modelled", "Paper", "Total on board"]);
    for r in &rows {
        table.row([
            r.resource.to_string(),
            r.modelled.to_string(),
            r.paper.to_string(),
            r.device_total.to_string(),
        ]);
    }
    emit(
        "table3",
        "Table III: resource utilization (XCVU9P, 1680 PEs)",
        &table,
        &rows,
    );
}
