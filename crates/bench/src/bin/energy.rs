//! Extension: the energy story behind Fig. 19 — per-component breakdown
//! (compute / on-chip SRAM / DRAM / static) of one training iteration, and
//! the energy cost of the baseline dataflows' extra on-chip traffic.

use serde::Serialize;
use zfgan_accel::{AccelConfig, GanAccelerator};
use zfgan_bench::{emit, fmt_x, TextTable};
use zfgan_dataflow::{ArchKind, Dataflow, PhaseTuned};
use zfgan_sim::{ConvKind, EnergyModel};
use zfgan_workloads::GanSpec;

#[derive(Serialize)]
struct BreakdownRow {
    gan: String,
    compute_pct: f64,
    sram_pct: f64,
    dram_pct: f64,
    static_pct: f64,
    total_mj_per_batch: f64,
}

#[derive(Serialize)]
struct ArchEnergyRow {
    arch: &'static str,
    phase: &'static str,
    onchip_mj: f64,
    vs_zero_free: f64,
}

fn main() {
    // 1. Component breakdown of the full accelerator.
    let mut rows = Vec::new();
    for spec in GanSpec::all_paper_gans() {
        let accel = GanAccelerator::new(AccelConfig::vcu118(), spec.clone());
        let r = accel.iteration_report(64);
        let e = r.energy;
        let total = e.total_pj();
        rows.push(BreakdownRow {
            gan: spec.name().to_string(),
            compute_pct: 100.0 * e.compute_pj / total,
            sram_pct: 100.0 * e.sram_pj / total,
            dram_pct: 100.0 * e.dram_pj / total,
            static_pct: 100.0 * e.static_pj / total,
            total_mj_per_batch: total * 1e-9,
        });
    }
    let mut table = TextTable::new([
        "GAN",
        "Compute",
        "SRAM",
        "DRAM",
        "PE static",
        "Total (mJ/batch)",
    ]);
    for r in &rows {
        table.row([
            r.gan.clone(),
            format!("{:.1}%", r.compute_pct),
            format!("{:.1}%", r.sram_pct),
            format!("{:.1}%", r.dram_pct),
            format!("{:.1}%", r.static_pct),
            format!("{:.2}", r.total_mj_per_batch),
        ]);
    }
    emit(
        "energy_breakdown",
        "Extension: accelerator energy breakdown (batch 64)",
        &table,
        &rows,
    );

    // 2. On-chip access energy of the baselines vs the zero-free designs,
    //    per phase group (the energy consequence of Fig. 16).
    let spec = GanSpec::dcgan();
    let model = EnergyModel::default();
    let groups: [(&'static str, ConvKind, usize, ArchKind); 4] = [
        ("D (S-CONV)", ConvKind::S, 1200, ArchKind::Zfost),
        ("G (T-CONV)", ConvKind::T, 1200, ArchKind::Zfost),
        ("Dw (W-CONV)", ConvKind::WGradS, 480, ArchKind::Zfwst),
        ("Gw (W-CONV)", ConvKind::WGradT, 480, ArchKind::Zfwst),
    ];
    let mut arch_rows = Vec::new();
    for (label, kind, budget, zero_free) in groups {
        let phases = spec.phase_set(kind);
        let zf_energy = {
            let tuned = PhaseTuned::tune(zero_free, budget, &phases);
            let s = tuned.schedule_all(&phases);
            model.phase_energy(&s).sram_pj * 1e-9
        };
        for arch in [ArchKind::Nlr, ArchKind::Wst, ArchKind::Ost, zero_free] {
            let tuned = PhaseTuned::tune(arch, budget, &phases);
            let s = tuned.schedule_all(&phases);
            let mj = model.phase_energy(&s).sram_pj * 1e-9;
            arch_rows.push(ArchEnergyRow {
                arch: arch.name(),
                phase: label,
                onchip_mj: mj,
                vs_zero_free: mj / zf_energy,
            });
        }
    }
    let mut table2 = TextTable::new(["Phase", "Arch", "On-chip energy (mJ)", "vs zero-free"]);
    for r in &arch_rows {
        table2.row([
            r.phase.to_string(),
            r.arch.to_string(),
            format!("{:.3}", r.onchip_mj),
            fmt_x(r.vs_zero_free),
        ]);
    }
    emit(
        "energy_onchip",
        "Extension: on-chip access energy per phase group (DCGAN, per sample)",
        &table2,
        &arch_rows,
    );
    println!(
        "The Fig. 16 access gaps translate directly into on-chip energy: the\n\
         zero-free designs win on traffic even where cycle counts tie."
    );
}
