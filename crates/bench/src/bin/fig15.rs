//! Fig. 15 — throughput of the five architectures on the four computing
//! phases (`D̄/Ḡ`, `Ḡ/D̄`, `D̄w`, `Ḡw`), normalized to improved NLR,
//! at equal PE budgets (ST phases: 1200 PEs, W phases: 480 PEs).
//!
//! The sweep itself is served by the DSE engine
//! ([`zfgan_dse::sweeps::fig15`]): point list, cell evaluation and the
//! content-addressed cache (`ZFGAN_DSE_CACHE`) all live there — this bin
//! only renders the rows.

use zfgan_bench::{emit, fmt_x, TextTable};
use zfgan_dataflow::ArchKind;
use zfgan_dse::sweeps::fig15::{self, Row};
use zfgan_dse::DseConfig;

fn main() {
    let telemetry = zfgan_bench::telemetry_sidecar("fig15");
    let rows: Vec<Row> = fig15::rows(&DseConfig::from_env(fig15::NAME));
    let mut table = TextTable::new([
        "GAN",
        "Phase",
        "Arch",
        "Cycles",
        "Speedup vs NLR",
        "PE util",
    ]);
    for r in &rows {
        table.row([
            r.gan.clone(),
            r.phase.to_string(),
            r.arch.to_string(),
            r.cycles.to_string(),
            fmt_x(r.speedup_vs_nlr),
            format!("{:.2}", r.utilization),
        ]);
    }
    emit(
        "fig15",
        "Fig. 15: performance comparison on the four computing phases",
        &table,
        &rows,
    );

    // Geometric-mean summary across GANs, like the paper's bars.
    let mut summary = TextTable::new(["Phase", "NLR", "WST", "OST", "ZFOST", "ZFWST"]);
    for label in ["D (S-CONV)", "G (T-CONV)", "Dw (W-CONV)", "Gw (W-CONV)"] {
        let mut cells = vec![label.to_string()];
        for arch in ArchKind::ALL {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| r.phase == label && r.arch == arch.name())
                .map(|r| r.speedup_vs_nlr)
                .collect();
            let gm = (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp();
            cells.push(fmt_x(gm));
        }
        summary.row(cells);
    }
    println!("== Fig. 15 summary (geomean speedup over NLR across GANs) ==");
    println!("{}", summary.render());
    telemetry();
}
