//! Fig. 15 — throughput of the five architectures on the four computing
//! phases (`D̄/Ḡ`, `Ḡ/D̄`, `D̄w`, `Ḡw`), normalized to improved NLR,
//! at equal PE budgets (ST phases: 1200 PEs, W phases: 480 PEs).

use serde::{Deserialize, Serialize};
use zfgan_bench::{emit, fmt_x, par_map_cached, TextTable};
use zfgan_dataflow::{ArchKind, Dataflow, PhaseTuned};
use zfgan_sim::{ConvKind, ConvShape};
use zfgan_workloads::GanSpec;

#[derive(Serialize, Deserialize)]
struct Row {
    gan: String,
    phase: &'static str,
    arch: &'static str,
    cycles: u64,
    speedup_vs_nlr: f64,
    utilization: f64,
}

fn main() {
    let telemetry = zfgan_bench::telemetry_sidecar("fig15");
    let groups: [(&'static str, ConvKind, usize); 4] = [
        ("D (S-CONV)", ConvKind::S, 1200),
        ("G (T-CONV)", ConvKind::T, 1200),
        ("Dw (W-CONV)", ConvKind::WGradS, 480),
        ("Gw (W-CONV)", ConvKind::WGradT, 480),
    ];
    // One sweep point per (GAN, phase group); each point tunes every
    // architecture. par_map returns the points in input order, so the row
    // stream is byte-identical to the old nested loops.
    let mut points = Vec::new();
    for spec in GanSpec::all_paper_gans() {
        for (label, kind, budget) in groups {
            points.push((spec.clone(), label, kind, budget));
        }
    }
    let rows: Vec<Row> = par_map_cached(
        "fig15",
        &points,
        |(spec, label, _, budget)| format!("{}|{label}|{budget}", spec.name()),
        |(spec, label, kind, budget)| {
            let phases: Vec<ConvShape> = spec.phase_set(*kind);
            let nlr_cycles = {
                let tuned = PhaseTuned::tune(ArchKind::Nlr, *budget, &phases);
                tuned.schedule_all(&phases).cycles
            };
            ArchKind::ALL
                .into_iter()
                .map(|arch| {
                    let tuned = PhaseTuned::tune(arch, *budget, &phases);
                    let stats = tuned.schedule_all(&phases);
                    Row {
                        gan: spec.name().to_string(),
                        phase: label,
                        arch: arch.name(),
                        cycles: stats.cycles,
                        speedup_vs_nlr: nlr_cycles as f64 / stats.cycles as f64,
                        utilization: stats.utilization(),
                    }
                })
                .collect::<Vec<Row>>()
        },
    )
    .into_iter()
    .flatten()
    .collect();
    let mut table = TextTable::new([
        "GAN",
        "Phase",
        "Arch",
        "Cycles",
        "Speedup vs NLR",
        "PE util",
    ]);
    for r in &rows {
        table.row([
            r.gan.clone(),
            r.phase.to_string(),
            r.arch.to_string(),
            r.cycles.to_string(),
            fmt_x(r.speedup_vs_nlr),
            format!("{:.2}", r.utilization),
        ]);
    }
    emit(
        "fig15",
        "Fig. 15: performance comparison on the four computing phases",
        &table,
        &rows,
    );

    // Geometric-mean summary across GANs, like the paper's bars.
    let mut summary = TextTable::new(["Phase", "NLR", "WST", "OST", "ZFOST", "ZFWST"]);
    for (label, _, _) in groups {
        let mut cells = vec![label.to_string()];
        for arch in ArchKind::ALL {
            let vals: Vec<f64> = rows
                .iter()
                .filter(|r| r.phase == label && r.arch == arch.name())
                .map(|r| r.speedup_vs_nlr)
                .collect();
            let gm = (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp();
            cells.push(fmt_x(gm));
        }
        summary.row(cells);
    }
    println!("== Fig. 15 summary (geomean speedup over NLR across GANs) ==");
    println!("{}", summary.render());
    telemetry();
}
