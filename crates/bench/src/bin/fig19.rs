//! Fig. 19 — throughput (GOPS) and energy efficiency (GOPS/W) of the
//! accelerator against CPU and GPU platforms on full GAN training
//! iterations, plus a measured single-thread Rust CPU data point.
//!
//! The analytical sweep is served by the DSE engine
//! ([`zfgan_dse::sweeps::fig19`]); the measured wall-clock point stays
//! here because it must run uncached on one thread every time to remain a
//! meaningful sample.

use zfgan_bench::{emit, fmt_x, TextTable};
use zfgan_dse::sweeps::fig19::{self, Row};
use zfgan_dse::DseConfig;
use zfgan_platforms::measured;
use zfgan_workloads::GanSpec;

fn main() {
    let mut rows: Vec<Row> = fig19::rows(&DseConfig::from_env(fig19::NAME));
    // Measured single-thread Rust CPU point on the smallest workload
    // (reference loop nests, release build).
    let mnist = GanSpec::mnist_gan();
    let m = measured::measure_phases(&mnist.iteration_phases());
    rows.push(Row {
        gan: mnist.name().to_string(),
        platform: "CPU (measured Rust, 1 thread)".to_string(),
        gops: m.gops,
        watts: 140.0,
        gops_per_watt: m.gops / 140.0,
    });

    let mut table = TextTable::new(["GAN", "Platform", "GOPS", "Watts", "GOPS/W"]);
    for r in &rows {
        table.row([
            r.gan.clone(),
            r.platform.clone(),
            format!("{:.1}", r.gops),
            format!("{:.1}", r.watts),
            format!("{:.2}", r.gops_per_watt),
        ]);
    }
    emit(
        "fig19",
        "Fig. 19: comparison with CPU and GPU",
        &table,
        &rows,
    );

    // Headline ratios (paper: 8.3x speedup over CPU, 5.2x / 7.1x energy
    // efficiency over Titan X / K20).
    let avg = |f: &dyn Fn(&Row) -> bool, g: &dyn Fn(&Row) -> f64| -> f64 {
        let v: Vec<f64> = rows.iter().filter(|r| f(r)).map(g).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let fpga_gops = avg(&|r| r.platform == "FPGA (ours)", &|r| r.gops);
    let cpu_gops = avg(&|r| r.platform.starts_with("CPU (i7"), &|r| r.gops);
    let fpga_eff = avg(&|r| r.platform == "FPGA (ours)", &|r| r.gops_per_watt);
    let k20_eff = avg(&|r| r.platform.contains("K20"), &|r| r.gops_per_watt);
    let titan_eff = avg(&|r| r.platform.contains("Titan"), &|r| r.gops_per_watt);
    println!(
        "Speedup over CPU:                {} (paper: 8.3x)",
        fmt_x(fpga_gops / cpu_gops)
    );
    println!(
        "Energy efficiency over K20:      {} (paper: 7.1x)",
        fmt_x(fpga_eff / k20_eff)
    );
    println!(
        "Energy efficiency over Titan X:  {} (paper: 5.2x)",
        fmt_x(fpga_eff / titan_eff)
    );
}
