//! Collects every JSON sidecar under `results/` into one Markdown digest
//! (`results/RESULTS.md`) — the machine-written companion of the hand-
//! written `EXPERIMENTS.md`.
//!
//! Run the individual experiment binaries first (or `scripts/run_all.sh`);
//! this binary only aggregates what exists.

use std::fs;
use std::path::Path;

fn main() {
    let dir = Path::new("results");
    let mut entries: Vec<(String, serde_json::Value)> = Vec::new();
    match fs::read_dir(dir) {
        Ok(read) => {
            for entry in read.flatten() {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) != Some("json") {
                    continue;
                }
                let name = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("unknown")
                    .to_string();
                match fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
                {
                    Some(v) => entries.push((name, v)),
                    None => eprintln!("warning: could not parse {}", path.display()),
                }
            }
        }
        Err(err) => {
            eprintln!("no results/ directory ({err}); run the experiment binaries first");
            std::process::exit(1);
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));

    let mut md = String::from(
        "# zfgan results digest\n\n\
         Auto-generated from the JSON sidecars in `results/`. Regenerate any\n\
         entry with `cargo run --release -p zfgan-bench --bin <name>`.\n\n",
    );
    for (name, value) in &entries {
        md.push_str(&format!("## `{name}`\n\n"));
        match value {
            serde_json::Value::Array(rows) if !rows.is_empty() => {
                // Render an array of flat objects as a Markdown table.
                if let Some(serde_json::Value::Object(first)) = rows.first() {
                    let cols: Vec<&String> = first.keys().collect();
                    md.push_str(&format!(
                        "| {} |\n|{}|\n",
                        cols.iter()
                            .map(|c| c.as_str())
                            .collect::<Vec<_>>()
                            .join(" | "),
                        cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
                    ));
                    for row in rows {
                        if let serde_json::Value::Object(obj) = row {
                            let cells: Vec<String> = cols
                                .iter()
                                .map(|c| match obj.get(c) {
                                    Some(serde_json::Value::Number(n)) => {
                                        // Trim float noise for readability.
                                        n.as_f64()
                                            .map(|f| {
                                                if f.fract() == 0.0 && f.abs() < 1e15 {
                                                    format!("{}", f as i64)
                                                } else {
                                                    format!("{f:.3}")
                                                }
                                            })
                                            .unwrap_or_else(|| n.to_string())
                                    }
                                    Some(serde_json::Value::String(s)) => s.clone(),
                                    Some(other) => other.to_string(),
                                    None => String::new(),
                                })
                                .collect();
                            md.push_str(&format!("| {} |\n", cells.join(" | ")));
                        }
                    }
                    md.push('\n');
                    md.push_str(&format!("({} rows)\n\n", rows.len()));
                } else {
                    md.push_str("```json\n");
                    md.push_str(&serde_json::to_string_pretty(value).unwrap_or_default());
                    md.push_str("\n```\n\n");
                }
            }
            other => {
                md.push_str("```json\n");
                md.push_str(&serde_json::to_string_pretty(other).unwrap_or_default());
                md.push_str("\n```\n\n");
            }
        }
    }
    md.push_str(&format!(
        "\n_{} experiment files collected._\n",
        entries.len()
    ));

    let out = dir.join("RESULTS.md");
    match fs::write(&out, &md) {
        Ok(()) => println!(
            "wrote {} ({} experiments, {} bytes)",
            out.display(),
            entries.len(),
            md.len()
        ),
        Err(err) => {
            eprintln!("could not write {}: {err}", out.display());
            std::process::exit(1);
        }
    }
}
