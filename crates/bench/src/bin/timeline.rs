//! Figs. 9–10 — pipeline bubbles of the naive three-architecture design vs
//! the time-multiplexed ST-ARCH + W-ARCH organisation, in both the paper's
//! unit-slot idealization and with real ZFOST/ZFWST phase durations.

use serde::Serialize;
use zfgan_accel::timeline::{naive_pipeline, time_multiplexed_pipeline, PipelineReport};
use zfgan_accel::AccelConfig;
use zfgan_bench::{emit, TextTable};
use zfgan_dataflow::{Dataflow, Zfost, Zfwst};
use zfgan_sim::ConvKind;
use zfgan_workloads::{GanSpec, PhaseSeq};

#[derive(Serialize)]
struct Row {
    gan: String,
    update: &'static str,
    organisation: &'static str,
    lane: String,
    utilization: f64,
    bubble_fraction: f64,
}

fn push_rows(
    rows: &mut Vec<Row>,
    gan: &str,
    update: &'static str,
    org: &'static str,
    r: &PipelineReport,
) {
    for lane in &r.lanes {
        rows.push(Row {
            gan: gan.to_string(),
            update,
            organisation: org,
            lane: lane.name.clone(),
            utilization: lane.utilization,
            bubble_fraction: r.bubble_fraction(),
        });
    }
}

fn main() {
    let cfg = AccelConfig::vcu118();
    let st = Zfost::new(cfg.grid(), cfg.grid(), cfg.st_pof());
    let w = Zfwst::new(cfg.grid(), cfg.grid(), cfg.w_pof());
    let mut rows = Vec::new();
    for spec in GanSpec::all_paper_gans() {
        for (update, seq) in [("D", PhaseSeq::DisUpdate), ("G", PhaseSeq::GenUpdate)] {
            // Paper idealization: equal phase durations.
            let naive = naive_pipeline(&spec, seq, |_| 1);
            push_rows(&mut rows, spec.name(), update, "naive (unit slots)", &naive);
            let tm = time_multiplexed_pipeline(&spec, seq, |_| 1, AccelConfig::ST_TO_W_RATIO);
            push_rows(
                &mut rows,
                spec.name(),
                update,
                "time-multiplexed (unit)",
                &tm,
            );
            // Real durations from the tuned arrays.
            let real = |p: &zfgan_sim::ConvShape| -> u64 {
                if p.kind().is_weight_grad() {
                    w.schedule(p).cycles
                } else {
                    st.schedule(p).cycles
                }
            };
            let _ = ConvKind::S;
            let tm_real = time_multiplexed_pipeline(&spec, seq, real, 1.0);
            push_rows(
                &mut rows,
                spec.name(),
                update,
                "time-multiplexed (real)",
                &tm_real,
            );
        }
    }
    let mut table = TextTable::new([
        "GAN",
        "Update",
        "Organisation",
        "Lane",
        "Utilization",
        "Bubbles",
    ]);
    for r in &rows {
        table.row([
            r.gan.clone(),
            r.update.to_string(),
            r.organisation.to_string(),
            r.lane.clone(),
            format!("{:.1}%", 100.0 * r.utilization),
            format!("{:.1}%", 100.0 * r.bubble_fraction),
        ]);
    }
    emit(
        "timeline",
        "Figs. 9-10: pipeline occupancy, naive vs time-multiplexed",
        &table,
        &rows,
    );

    // The fine-grained Fig. 10 picture: one cGAN sample's D-update with
    // real per-layer durations on both arrays.
    use zfgan_accel::timeline::{labeled_update_timeline, render_segments};
    let spec = GanSpec::cgan();
    let segs = labeled_update_timeline(
        &spec,
        PhaseSeq::DisUpdate,
        |p| st.schedule(p).cycles,
        |p| w.schedule(p).cycles,
    );
    println!("== One cGAN sample's D-update, labeled (cycles) ==");
    println!("{}", render_segments(&segs));
}
