//! Extension: the 16-bit datapath study. The paper runs its FPGA in 16-bit
//! fixed point against f32 CPU/GPU baselines ("To compare CPU/GPU (using
//! floating point) and FPGA (using fixed point)…") without quantifying the
//! numerical cost. This binary propagates the same random activations
//! through each Discriminator ladder in f32 and in a faithful model of the
//! hardware datapath — Q8.8 storage, per-tensor power-of-two weight
//! scaling, and **wide (DSP-slice) accumulation** with one rounding per
//! output — and reports the per-layer drift.
//!
//! Three datapath variants are compared, teasing apart where the precision
//! goes:
//!
//! * `naive Q8.8`  — 16-bit storage *and* 16-bit accumulation,
//! * `wide accum`  — 16-bit storage, 48-bit accumulation (the DSP reality),
//! * `wide+scaled` — additionally pre-scales each weight tensor into the
//!   representable sweet spot by a power of two (dynamic fixed point).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use zfgan_bench::{emit, TextTable};
use zfgan_tensor::{s_conv, ConvGeom, Fmaps, Fx, Kernels, Num};
use zfgan_workloads::GanSpec;

/// `S-CONV` with Q8.8 operands and a wide (i64) accumulator, rounded once
/// per output neuron — the DSP-slice datapath.
fn s_conv_wide(x: &Fmaps<Fx>, k: &Kernels<Fx>, geom: &ConvGeom, out_shift: u32) -> Fmaps<Fx> {
    let (oh, ow) = geom.down_out(x.height(), x.width());
    let stride = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let mut out: Fmaps<Fx> = Fmaps::zeros(k.n_of(), oh, ow);
    for of in 0..k.n_of() {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc: i64 = 0;
                for if_ in 0..k.n_if() {
                    for ky in 0..geom.kh() {
                        for kx in 0..geom.kw() {
                            let iy = stride * oy as isize + ky as isize - pt;
                            let ix = stride * ox as isize + kx as isize - pl;
                            let a = x.at_padded(if_, iy, ix).raw() as i64;
                            let b = k.at(of, if_, ky, kx).raw() as i64;
                            acc += a * b;
                        }
                    }
                }
                // Product carries 16 fractional bits (+ the weight gain);
                // round-to-nearest down to Q8.8.
                let shift = 8 + out_shift;
                let half = 1i64 << (shift - 1);
                let rounded = (acc + half) >> shift;
                let clamped = rounded.clamp(i64::from(i16::MIN), i64::from(i16::MAX));
                *out.at_mut(of, oy, ox) = Fx::from_raw(clamped as i16);
            }
        }
    }
    out
}

fn drift(y32: &Fmaps<f32>, yq: &Fmaps<Fx>) -> f64 {
    let diffs: Vec<f64> = y32
        .as_slice()
        .iter()
        .zip(yq.as_slice())
        .map(|(&a, &b)| (f64::from(a) - b.to_f64()).abs())
        .collect();
    let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
    let magnitude = y32
        .as_slice()
        .iter()
        .map(|v| f64::from(v.abs()))
        .sum::<f64>()
        / y32.len() as f64;
    100.0 * mean / magnitude.max(1e-12)
}

#[derive(Serialize)]
struct Row {
    gan: String,
    layer: usize,
    naive_rel_pct: f64,
    wide_rel_pct: f64,
    wide_scaled_rel_pct: f64,
}

fn main() {
    let mut rows = Vec::new();
    for spec in GanSpec::all_paper_gans() {
        let mut rng = SmallRng::seed_from_u64(42);
        let (c, h, w) = spec.image_shape();
        let mut x32: Fmaps<f32> = Fmaps::random(c, h, w, 1.0, &mut rng);
        let mut xq = x32.map(Fx::from_f32);
        for (i, l) in spec.layers().iter().enumerate() {
            let fan_in = (l.large_c * l.kernel * l.kernel) as f32;
            let scale = (2.0 / fan_in).sqrt();
            let k32: Kernels<f32> =
                Kernels::random(l.small_c, l.large_c, l.kernel, l.kernel, scale, &mut rng);
            let geom = l.geom();
            let y32 = s_conv(&x32, &k32, &geom).expect("spec-consistent operands");

            // Variant 1: naive Q8.8 end to end.
            let naive = s_conv(&xq, &k32.map(Fx::from_f32), &geom).expect("operands");
            // Variant 2: wide accumulation, unscaled weights.
            let wide = s_conv_wide(&xq, &k32.map(Fx::from_f32), &geom, 0);
            // Variant 3: wide accumulation + power-of-two weight gain.
            let max_w = k32.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let mut gain_shift = 0u32;
            while gain_shift < 8 && max_w * ((1 << (gain_shift + 1)) as f32) < 64.0 {
                gain_shift += 1;
            }
            let gain = (1u32 << gain_shift) as f32;
            let kq_scaled = k32.map(|v| Fx::from_f32(v * gain));
            let wide_scaled = s_conv_wide(&xq, &kq_scaled, &geom, gain_shift);

            rows.push(Row {
                gan: spec.name().to_string(),
                layer: i + 1,
                naive_rel_pct: drift(&y32, &naive),
                wide_rel_pct: drift(&y32, &wide),
                wide_scaled_rel_pct: drift(&y32, &wide_scaled),
            });

            // Batch-norm-style rescale (shared scale) + LeakyReLU, then the
            // best quantised path continues as the next layer's input.
            let std = (y32.as_slice().iter().map(|v| f64::from(v * v)).sum::<f64>()
                / y32.len() as f64)
                .sqrt()
                .max(1e-6) as f32;
            let inv = 1.0 / std;
            let inv_q = Fx::from_f32(inv);
            x32 = y32.map(|v| {
                let n = v * inv;
                if n >= 0.0 {
                    n
                } else {
                    0.2 * n
                }
            });
            xq = wide_scaled.map(|v| {
                let n = v * inv_q;
                if n >= Fx::ZERO {
                    n
                } else {
                    n * Fx::from_f32(0.2)
                }
            });
        }
    }
    let mut table = TextTable::new(["GAN", "Layer", "naive Q8.8", "wide accum", "wide+scaled"]);
    for r in &rows {
        table.row([
            r.gan.clone(),
            r.layer.to_string(),
            format!("{:.2}%", r.naive_rel_pct),
            format!("{:.2}%", r.wide_rel_pct),
            format!("{:.2}%", r.wide_scaled_rel_pct),
        ]);
    }
    emit(
        "quantization",
        "Extension: 16-bit datapath drift (relative error vs f32, per layer)",
        &table,
        &rows,
    );
    let worst = rows
        .iter()
        .map(|r| r.wide_scaled_rel_pct)
        .fold(0.0, f64::max);
    println!(
        "Worst drift of the full hardware datapath (wide accumulation + dynamic\n\
         fixed point): {worst:.2}%. The paper's 16-bit claim holds because DSP\n\
         slices accumulate wide and designs scale per tensor; naive 16-bit\n\
         arithmetic compounds to tens of percent by layer 4."
    );
}
