//! DSE engine cache gate: a warm-cache full fig15 sweep must be ≥10×
//! faster than the cold run that populated the cache, and the canonical
//! result stream must be byte-identical between the two.
//!
//! Criterion's repeated-iteration harness cannot measure this — the first
//! in-process run both pays the tuning cost and fills the cache, so only
//! wall-clock timing of *one* cold pass against warm repetitions is
//! meaningful. The rows still land in `results/bench_history.jsonl` as
//! the `dse` series via [`zfgan_bench::emit_bench`].

use std::time::Instant;

use zfgan_bench::{emit_bench, fmt_x, BenchRow, TextTable};
use zfgan_dse::sweeps::fig15;
use zfgan_dse::DseConfig;

/// Warm repetitions; the minimum carries the stable signal.
const WARM_REPS: usize = 5;

/// The gated floor for cold/warm wall-clock speedup.
const MIN_SPEEDUP: f64 = 10.0;

fn main() {
    // Anchor at the workspace root so `emit_bench` writes the tracked
    // top-level `results/` ledger.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let _ = std::env::set_current_dir(root);

    let dir = std::env::temp_dir().join(format!("zfgan-dse-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = DseConfig::new(fig15::NAME);
    cfg.cache_dir = Some(dir.clone());

    // Cold: an empty cache directory — every cell computes and publishes.
    let started = Instant::now();
    let cold = fig15::run(&cfg);
    let cold_ns = started.elapsed().as_nanos() as f64;

    // Warm: every cell is a verified-checksum hit; keep the fastest rep.
    let mut warm_ns = f64::INFINITY;
    let mut warm_iters = 0u64;
    for _ in 0..WARM_REPS {
        let started = Instant::now();
        let warm = fig15::run(&cfg);
        warm_ns = warm_ns.min(started.elapsed().as_nanos() as f64);
        warm_iters += 1;
        assert_eq!(
            cold.stream, warm.stream,
            "warm stream must be byte-identical to cold"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    let speedup = cold_ns / warm_ns;
    let mut rows: Vec<BenchRow> = [
        ("dse/fig15_cold", cold_ns, 1u64, 1.0),
        ("dse/fig15_warm", warm_ns, warm_iters, speedup),
    ]
    .into_iter()
    .map(|(id, ns, iters, speedup)| BenchRow {
        bench: "dse".to_string(),
        id: id.to_string(),
        mean_ns: ns,
        min_ns: ns,
        stddev_ns: 0.0,
        iters,
        threads: zfgan_pool::pool_threads(),
        simd: zfgan_tensor::microkernel::simd_label().to_string(),
        speedup,
        git_sha: String::new(),
        host: String::new(),
        run_id: 0,
    })
    .collect();

    let mut table = TextTable::new(["Benchmark", "ns/run", "Speedup vs cold"]);
    for r in &rows {
        table.row([r.id.clone(), format!("{:.0}", r.mean_ns), fmt_x(r.speedup)]);
    }
    emit_bench(
        "BENCH_dse",
        "DSE engine: cold vs warm-cache full fig15 sweep (byte-identical streams)",
        &table,
        &mut rows,
    );
    println!(
        "Warm-cache fig15 sweep speedup over cold: {} ({} unique cells)",
        fmt_x(speedup),
        cold.unique
    );

    assert!(
        speedup >= MIN_SPEEDUP,
        "warm-cache fig15 must be >= {}x faster than cold, got {} (cold {:.0} ns, warm {:.0} ns)",
        MIN_SPEEDUP,
        fmt_x(speedup),
        cold_ns,
        warm_ns
    );
}
