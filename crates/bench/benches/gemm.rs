//! GEMM fast-path benchmarks on paper GAN layer shapes: naive vs blocked
//! vs parallel matmul kernels, dense vs zero-free T-CONV lowering, and an
//! end-to-end WGAN trainer iteration per [`ConvBackend`].
//!
//! Uses a custom harness (no `criterion_main!`) so it can drain the
//! recorded measurements, compute speedups against each group's baseline,
//! and emit the machine-readable summary `results/BENCH_gemm.json` via
//! [`zfgan_bench::emit`] — the perf trajectory the fast path is tracked
//! by. The compared variants agree numerically per the family contracts
//! pinned by `tests/fast_conv.rs` (scalar kernels bit-identical to naive;
//! packed kernels mutually bit-identical and within the fused
//! accumulation bound; Q8.8 bit-identical everywhere), so every ratio
//! here is pure speed. Gates the packed single-threaded microkernel at
//! ≥4× over the naive triple loop on the batch-lowered dense matmul, and
//! at ≥2× on the ReLU-sparse and Q8.8 variants (where the naive loop's
//! per-word zero skip halves its own work, or the saturating i16 chain
//! caps the vector win), when SIMD is active.

use std::time::Duration;

use criterion::Criterion;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use zfgan_bench::{emit_bench, fmt_x, BenchRow, TextTable};
use zfgan_nn::{GanTrainer, TrainerConfig};
use zfgan_tensor::gemm::MatmulKind;
use zfgan_tensor::im2col::t_conv_via_gemm;
use zfgan_tensor::im2col::{im2col_s, weights_as_matrix_s, Matrix};
use zfgan_tensor::microkernel::{
    choose_path, matmul_f32_path, simd_label, simd_level, GemmPath, PackScratch,
};
use zfgan_tensor::zero_free::t_conv_zero_free;
use zfgan_tensor::{t_conv, ConvBackend, ConvGeom, Fmaps, Fx, Kernels};
use zfgan_workloads::GanSpec;

/// MNIST-GAN layer 2 (Table IV): 64 → 128 maps, 14×14 → 7×7, 5×5, stride 2.
fn mnist_layer2() -> ConvGeom {
    ConvGeom::down(14, 14, 5, 5, 2, 7, 7).expect("static geometry")
}

/// Post-ReLU activations: roughly half the entries are exact zeros, the
/// sparsity the zero-skipping GEMM exploits.
fn relu_like(c: usize, h: usize, w: usize, rng: &mut SmallRng) -> Fmaps<f32> {
    Fmaps::random(c, h, w, 1.0, rng).map(|v| if v > 0.0 { v } else { 0.0 })
}

/// Naive vs blocked vs parallel kernels on the lowered MNIST-GAN S-CONV:
/// a 49×1600 patch matrix against a 1600×128 weight matrix.
fn bench_matmul_kinds(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(21);
    let geom = mnist_layer2();
    let input = relu_like(64, 14, 14, &mut rng);
    let k = Kernels::random(128, 64, 5, 5, 0.25, &mut rng);
    let a: Matrix<f32> = im2col_s(&input, &geom).patches;
    let b = weights_as_matrix_s(&k);
    let mut group = c.benchmark_group("matmul");
    for (name, kind) in [
        ("naive", MatmulKind::Naive),
        ("blocked_scalar", MatmulKind::BlockedScalar),
        ("blocked", MatmulKind::Blocked),
        ("parallel2", MatmulKind::Parallel(2)),
        ("parallel4", MatmulKind::Parallel(4)),
    ] {
        group.bench_function(name, |bch| {
            bch.iter(|| kind.run(&a, &b).expect("conforming operands"))
        });
    }
    group.finish();

    // Batch-4 dense activations (pre-ReLU / post-BatchNorm maps carry no
    // structural zeros): the naive loop's per-word zero skip buys nothing
    // here, so this group isolates raw kernel throughput on a batch-
    // lowered 196×1600 patch matrix — the shape the tentpole gate holds.
    let mut data = Vec::new();
    for _ in 0..4 {
        let dense = Fmaps::random(64, 14, 14, 1.0, &mut rng);
        data.extend_from_slice(im2col_s(&dense, &geom).patches.as_slice());
    }
    let rows = data.len() / a.cols();
    let ab: Matrix<f32> = Matrix::from_vec(rows, a.cols(), data);
    let mut group = c.benchmark_group("matmul_batch");
    for (name, kind) in [
        ("naive", MatmulKind::Naive),
        ("blocked", MatmulKind::Blocked),
    ] {
        group.bench_function(name, |bch| {
            bch.iter(|| kind.run(&ab, &b).expect("conforming operands"))
        });
    }
    group.finish();

    // The same shape in Q8.8: the vectorized fixed-point kernel against
    // the naive triple loop (bit-identical by contract, so pure speed).
    let afx = Matrix::from_vec(
        a.rows(),
        a.cols(),
        a.as_slice().iter().map(|v| Fx::from_f32(*v)).collect(),
    );
    let bfx = Matrix::from_vec(
        b.rows(),
        b.cols(),
        b.as_slice().iter().map(|v| Fx::from_f32(*v)).collect(),
    );
    let mut group = c.benchmark_group("matmul_fx");
    for (name, kind) in [
        ("naive", MatmulKind::Naive),
        ("blocked", MatmulKind::Blocked),
    ] {
        group.bench_function(name, |bch| {
            bch.iter(|| kind.run(&afx, &bfx).expect("conforming operands"))
        });
    }
    group.finish();
}

/// The shapes the dispatcher exists for (ROADMAP open item 1), each run
/// through the packed panel path and through the engine the dispatcher
/// actually picks, via the explicit-path entries:
///
/// * the MNIST-GAN projection GEMM — 49×4900×128 at ~2% density whose
///   live columns recur at stride 49 (one pixel per source channel), so
///   every KP=8 panel straddles a nonzero and the packed kernel's masks
///   skip nothing → broadcast-FMA `ikj`, which skips element-wise and
///   never packs `B`;
/// * the `m = 1` input-grad GEMM — 1×6272×100 on a ~50% ReLU-sparse
///   row, where packing 627k words of `B` for one output row dwarfs the
///   arithmetic → the small-`m` streaming engine.
fn bench_dispatch_shapes(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(24);
    let level = simd_level();
    let mut scratch = PackScratch::new();

    // Projection t-conv forward: row r is live only at columns ch·49 + r.
    let (pm, pkk, pn) = (49usize, 4900usize, 128usize);
    let mut a_proj = vec![0.0f32; pm * pkk];
    for r in 0..pm {
        for ch in 0..100 {
            a_proj[r * pkk + ch * pm + r] = rng.gen_range(0.1f32..1.0);
        }
    }
    let b_proj: Vec<f32> = (0..pkk * pn).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let proj_zeros = a_proj.iter().filter(|v| **v == 0.0).count() as u64;
    assert_eq!(
        choose_path(pm, pkk, pn, proj_zeros),
        GemmPath::Ikj,
        "dispatcher must route the projection shape to the ikj engine"
    );
    let mut out = vec![0.0f32; pm * pn];
    let mut group = c.benchmark_group("dispatch_proj");
    for (name, path) in [("packed", GemmPath::Packed), ("ikj", GemmPath::Ikj)] {
        group.bench_function(name, |bch| {
            bch.iter(|| {
                matmul_f32_path(
                    level,
                    path,
                    &a_proj,
                    &b_proj,
                    &mut out,
                    pm,
                    pkk,
                    pn,
                    &mut scratch,
                )
            })
        });
    }
    group.finish();

    // m = 1 input-grad: one ReLU-sparse error row against a wide B.
    let (gm, gkk, gn) = (1usize, 6272usize, 100usize);
    let a_grad: Vec<f32> = (0..gm * gkk)
        .map(|_| {
            let v: f32 = rng.gen_range(-1.0..1.0);
            if v > 0.0 {
                v
            } else {
                0.0
            }
        })
        .collect();
    let b_grad: Vec<f32> = (0..gkk * gn).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let grad_zeros = a_grad.iter().filter(|v| **v == 0.0).count() as u64;
    assert_eq!(
        choose_path(gm, gkk, gn, grad_zeros),
        GemmPath::SmallM,
        "dispatcher must route the m = 1 shape to the small-m engine"
    );
    let mut out = vec![0.0f32; gm * gn];
    let mut group = c.benchmark_group("dispatch_m1");
    for (name, path) in [("packed", GemmPath::Packed), ("smallm", GemmPath::SmallM)] {
        group.bench_function(name, |bch| {
            bch.iter(|| {
                matmul_f32_path(
                    level,
                    path,
                    &a_grad,
                    &b_grad,
                    &mut out,
                    gm,
                    gkk,
                    gn,
                    &mut scratch,
                )
            })
        });
    }
    group.finish();
}

/// Golden nest vs dense zero-inserted lowering vs compact zero-free
/// lowering on the MNIST-GAN Generator layer (128×7×7 → 64×14×14).
fn bench_t_conv_lowering(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(22);
    let geom = mnist_layer2();
    let input = relu_like(128, 7, 7, &mut rng);
    let k = Kernels::random(128, 64, 5, 5, 0.25, &mut rng);
    let mut group = c.benchmark_group("t_conv");
    group.bench_function("golden", |bch| {
        bch.iter(|| t_conv(&input, &k, &geom).expect("conforming operands"))
    });
    group.bench_function("dense_gemm", |bch| {
        bch.iter(|| t_conv_via_gemm(&input, &k, &geom).expect("conforming operands"))
    });
    group.bench_function("zero_free", |bch| {
        bch.iter(|| {
            t_conv_zero_free(&input, &k, &geom, MatmulKind::Blocked).expect("conforming operands")
        })
    });
    group.finish();
}

/// Full WGAN trainer iterations (1 critic step + 1 Generator step,
/// batch 2) on the MNIST-GAN spec, one bench per conv backend.
fn bench_trainer_backends(c: &mut Criterion) {
    let spec = GanSpec::mnist_gan();
    let config = TrainerConfig {
        n_critic: 1,
        ..TrainerConfig::default()
    };
    let mut group = c.benchmark_group("trainer");
    for (name, backend) in [
        ("golden_direct", ConvBackend::GoldenDirect),
        ("lowered_gemm", ConvBackend::LoweredGemm),
        ("lowered_zero_free", ConvBackend::LoweredZeroFree),
        ("parallel2", ConvBackend::Parallel(2)),
    ] {
        let mut rng = SmallRng::seed_from_u64(23);
        let mut pair = spec
            .build_pair(0.05, &mut rng)
            .expect("built-in spec is consistent");
        pair.set_backend(backend);
        let mut trainer = GanTrainer::new(pair, config);
        group.bench_function(name, |bch| {
            bch.iter(|| trainer.train_iteration(2, &mut rng))
        });
    }
    group.finish();
}

/// Baseline id within each group: ratios are reported against it.
fn baseline_of(id: &str) -> &'static str {
    if id.starts_with("matmul_fx/") {
        "matmul_fx/naive"
    } else if id.starts_with("dispatch_proj/") {
        "dispatch_proj/packed"
    } else if id.starts_with("dispatch_m1/") {
        "dispatch_m1/packed"
    } else if id.starts_with("matmul_batch/") {
        "matmul_batch/naive"
    } else if id.starts_with("matmul/") {
        "matmul/naive"
    } else if id.starts_with("t_conv/") {
        "t_conv/golden"
    } else {
        "trainer/golden_direct"
    }
}

/// Worker threads a benchmark variant uses (from its id suffix).
fn threads_of(id: &str) -> usize {
    id.rsplit("parallel")
        .next()
        .and_then(|n| n.parse().ok())
        .unwrap_or(1)
}

/// Per-benchmark measurement window: `ZFGAN_BENCH_MS` overrides the
/// 200 ms default (CI smoke runs use a small value).
fn measurement_ms() -> u64 {
    std::env::var("ZFGAN_BENCH_MS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(200)
}

fn main() {
    // `cargo bench` runs with cwd = this package; anchor at the workspace
    // root so `emit` drops the sidecar in the tracked top-level `results/`.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let _ = std::env::set_current_dir(root);

    let mut c = Criterion::default().measurement_time(Duration::from_millis(measurement_ms()));
    bench_matmul_kinds(&mut c);
    bench_dispatch_shapes(&mut c);
    bench_t_conv_lowering(&mut c);
    bench_trainer_backends(&mut c);

    let measurements = c.take_results();
    let mut rows: Vec<BenchRow> = measurements
        .iter()
        .map(|m| {
            let base = measurements
                .iter()
                .find(|b| b.id == baseline_of(&m.id))
                .expect("baseline benches run first in each group");
            BenchRow {
                bench: "gemm".to_string(),
                id: m.id.clone(),
                mean_ns: m.mean_ns,
                min_ns: m.min_ns,
                stddev_ns: m.stddev_ns,
                iters: m.iters,
                threads: threads_of(&m.id),
                simd: simd_label().to_string(),
                speedup: base.mean_ns / m.mean_ns,
                git_sha: String::new(),
                host: String::new(),
                run_id: 0,
            }
        })
        .collect();

    let mut table = TextTable::new(["Benchmark", "ns/iter", "Speedup vs baseline"]);
    for r in &rows {
        table.row([r.id.clone(), format!("{:.0}", r.mean_ns), fmt_x(r.speedup)]);
    }
    emit_bench(
        "BENCH_gemm",
        "GEMM fast path: kernels, lowering, and trainer backends",
        &table,
        &mut rows,
    );

    let headline = |id: &str| rows.iter().find(|r| r.id == id).map_or(0.0, |r| r.speedup);
    println!(
        "Trainer iteration speedup over GoldenDirect: zero-free {} | parallel(2) {}",
        fmt_x(headline("trainer/lowered_zero_free")),
        fmt_x(headline("trainer/parallel2")),
    );

    // Regression gate: the pooled GEMM variants must not lose to the
    // sequential naive kernel on this shape. Spawn-per-call used to put
    // parallel2/parallel4 below 1.0×; the persistent pool is what keeps
    // them above it, and this assertion keeps that from regressing.
    for id in ["matmul/parallel2", "matmul/parallel4"] {
        let s = headline(id);
        assert!(
            s >= 1.0,
            "pooled GEMM regressed below the sequential baseline: {id} = {}",
            fmt_x(s)
        );
    }

    // Speedup of a variant over its group baseline on the fastest samples
    // (`min_ns`): the host is a shared single core whose mean timings
    // swing by double-digit percentages between runs, while each side's
    // fastest-of-5 sample tracks the true cost far more tightly.
    let headline_min = |id: &str| {
        rows.iter().find(|r| r.id == id).map_or(0.0, |r| {
            let base = rows
                .iter()
                .find(|b| b.id == baseline_of(id))
                .expect("baseline row exists");
            base.min_ns / r.min_ns
        })
    };

    // Tentpole gates (SIMD on; the scalar fallback is exempt — it exists
    // for determinism checks, not speed):
    //
    // * >=4x on the batch-lowered dense matmul, where naive's per-word
    //   zero skip buys nothing and the comparison is raw kernel speed.
    // * >=2x on the single-image ReLU-sparse matmul — the naive loop
    //   skips ~half its work there (the operand is ~50% exact zeros), so
    //   the packed kernel's margin is structurally halved; it must still
    //   win by 2x while doing twice the arithmetic.
    // * >=2x on the Q8.8 matmul (the vectorized saturating i16 path).
    let gates = [
        ("matmul_batch/blocked", 4.0),
        ("matmul/blocked", 2.0),
        ("matmul_fx/blocked", 2.0),
    ];
    for (id, need) in gates {
        let s = headline_min(id);
        println!(
            "Packed microkernel gate {id}: {} vs >={need}x (simd: {})",
            fmt_x(s),
            simd_label()
        );
        assert!(
            simd_label() != "avx2" || s >= need,
            "packed GEMM speedup {} fell below the {need}x gate for {id}",
            fmt_x(s)
        );
    }

    // Dispatch gates (SIMD on): on the shapes the dispatcher exists for,
    // the engine it picks must beat the packed panel path by >=2x — the
    // pack bypass (ikj) and pack + fill bypass (small-m streaming) are
    // the whole point of routing these shapes away from the panel kernel.
    for (id, need) in [("dispatch_proj/ikj", 2.0), ("dispatch_m1/smallm", 2.0)] {
        let s = headline_min(id);
        println!(
            "Dispatch gate {id}: {} vs >={need}x over the packed path (simd: {})",
            fmt_x(s),
            simd_label()
        );
        assert!(
            simd_label() != "avx2" || s >= need,
            "dispatched engine speedup {} fell below the {need}x gate for {id}",
            fmt_x(s)
        );
    }
}
