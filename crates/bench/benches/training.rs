//! Criterion benchmarks of the training loops: synchronized vs deferred
//! Discriminator/Generator updates on a small trainable GAN.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan_nn::{GanPair, GanTrainer, SyncMode, TrainerConfig};

fn trainer(mode: SyncMode) -> GanTrainer {
    let mut rng = SmallRng::seed_from_u64(0);
    let pair = GanPair::tiny(&mut rng);
    GanTrainer::new(
        pair,
        TrainerConfig {
            mode,
            ..TrainerConfig::default()
        },
    )
}

fn bench_discriminator_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("dis_step_batch8");
    for (name, mode) in [
        ("synchronized", SyncMode::Synchronized),
        ("deferred", SyncMode::Deferred),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut rng = SmallRng::seed_from_u64(1);
                    let t = trainer(mode);
                    let reals = t.gan().sample_real_batch(8, &mut rng);
                    (t, reals, rng)
                },
                |(mut t, reals, mut rng)| t.step_discriminator(&reals, &mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_parallel_gradients(c: &mut Criterion) {
    use rand::Rng;
    use zfgan_nn::parallel::parallel_dis_grads_with;
    let mut rng = SmallRng::seed_from_u64(5);
    let pair = zfgan_nn::GanPair::tiny(&mut rng);
    let reals = pair.sample_real_batch(16, &mut rng);
    let fakes = pair.sample_real_batch(16, &mut rng);
    let _: f32 = rng.gen(); // keep the rng exercised for clarity
    let mut group = c.benchmark_group("parallel_dis_grads_batch16");
    for threads in [1usize, 4] {
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| parallel_dis_grads_with(pair.discriminator(), &reals, &fakes, threads))
        });
    }
    group.finish();
}

fn bench_generator_step(c: &mut Criterion) {
    c.bench_function("gen_step_batch8_deferred", |b| {
        b.iter_batched(
            || (trainer(SyncMode::Deferred), SmallRng::seed_from_u64(2)),
            |(mut t, mut rng)| t.step_generator(8, &mut rng),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_discriminator_step,
    bench_generator_step,
    bench_parallel_gradients
);
criterion_main!(benches);
