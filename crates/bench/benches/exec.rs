//! Fast executor engine vs the scalar oracle across all nine
//! cycle-accurate executors on a DCGAN-shaped phase (5×5 kernel, stride 2,
//! 16×16 ↔ 8×8, 16/32 channels).
//!
//! Both sides compute bit-identical outputs, cycles, and counters
//! (`tests/exec_engine.rs` proves it property-wise), so the ratios here
//! are pure speed: what the interior/edge tile split plus the pooled
//! channel-group fan-out buy over the guarded per-element loops. Emits
//! `results/BENCH_exec.json` via [`zfgan_bench::emit`] with min/mean/stddev
//! per row (noisy shared host — `min_ns` carries the stable signal) plus
//! thread-count and SIMD-level metadata, and gates the headline
//! forward/transposed executors (ZFOST both directions plus WST) at ≥3×
//! even single-threaded. The W-CONV gradient pair is gated at the softer
//! ≥1.5×: its per-element semantics are a single serial accumulator
//! flushed every `grid` positions — a float dependency chain the oracle
//! shares — so overhead removal alone tops out around 2× there.

use std::time::Duration;

use criterion::Criterion;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan_bench::{emit_bench, fmt_x, BenchRow, TextTable};
use zfgan_dataflow::exec::{self, scalar};
use zfgan_dataflow::{ExecWorkspace, Nlr, Ost, Wst, Zfost, Zfwst};
use zfgan_sim::{ConvKind, ConvShape};
use zfgan_tensor::microkernel::simd_label;
use zfgan_tensor::{ConvGeom, Fmaps, Kernels};

fn measurement_ms() -> u64 {
    std::env::var("ZFGAN_BENCH_MS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(200)
}

fn main() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let _ = std::env::set_current_dir(root);

    // DCGAN-shaped phase: 5×5 kernel, stride 2, asymmetric SAME padding.
    let geom = ConvGeom::down(16, 16, 5, 5, 2, 8, 8).expect("static geometry");
    let (small, large) = (32usize, 16usize);
    let s_phase = ConvShape::new(ConvKind::S, geom, small, large, 16, 16);
    let t_phase = ConvShape::new(ConvKind::T, geom, small, large, 16, 16);
    let ws_phase = ConvShape::new(ConvKind::WGradS, geom, small, large, 16, 16);
    let wt_phase = ConvShape::new(ConvKind::WGradT, geom, small, large, 16, 16);

    let mut rng = SmallRng::seed_from_u64(7);
    let big: Fmaps<f32> = Fmaps::random(large, 16, 16, 1.0, &mut rng);
    let smallx: Fmaps<f32> = Fmaps::random(small, 8, 8, 1.0, &mut rng);
    let k: Kernels<f32> = Kernels::random(small, large, 5, 5, 0.25, &mut rng);

    let zfost = Zfost::new(4, 4, 2);
    let zfwst = Zfwst::new(2, 2, 2);
    let ost = Ost::new(4, 4, 2);
    let wst = Wst::new(4, 4, 2);
    let nlr = Nlr::new(3, 5);

    let mut ws: ExecWorkspace<f32> = ExecWorkspace::new();
    let mut c = Criterion::default().measurement_time(Duration::from_millis(measurement_ms()));
    let mut group = c.benchmark_group("exec");

    macro_rules! pair {
        ($name:literal, $fast:expr, $slow:expr) => {
            group.bench_function(concat!($name, "/engine"), |b| b.iter(|| $fast));
            group.bench_function(concat!($name, "/scalar"), |b| b.iter(|| $slow));
        };
    }

    pair!(
        "zfost_s",
        {
            let out = exec::zfost_s_conv_ws(&zfost, &s_phase, &big, &k, &mut ws).unwrap();
            ws.give_fmaps(out.output);
        },
        scalar::zfost_s_conv(&zfost, &s_phase, &big, &k).unwrap()
    );
    pair!(
        "zfost_t",
        {
            let out = exec::zfost_t_conv_ws(&zfost, &t_phase, &smallx, &k, &mut ws).unwrap();
            ws.give_fmaps(out.output);
        },
        scalar::zfost_t_conv(&zfost, &t_phase, &smallx, &k).unwrap()
    );
    pair!(
        "wgrad_s",
        {
            let g = exec::zfwst_wgrad_s_ws(&zfwst, &ws_phase, &big, &smallx, &mut ws).unwrap();
            ws.give_kernels(g.output);
        },
        scalar::zfwst_wgrad_s(&zfwst, &ws_phase, &big, &smallx).unwrap()
    );
    pair!(
        "wgrad_t",
        {
            let g = exec::zfwst_wgrad_t_ws(&zfwst, &wt_phase, &smallx, &big, &mut ws).unwrap();
            ws.give_kernels(g.output);
        },
        scalar::zfwst_wgrad_t(&zfwst, &wt_phase, &smallx, &big).unwrap()
    );
    pair!(
        "ost_t",
        {
            let (out, _) = exec::ost_t_conv_ws(&ost, &t_phase, &smallx, &k, &mut ws).unwrap();
            ws.give_fmaps(out.output);
        },
        scalar::ost_t_conv(&ost, &t_phase, &smallx, &k).unwrap()
    );
    pair!(
        "wst_s",
        {
            let (out, _) = exec::wst_s_conv_ws(&wst, &s_phase, &big, &k, &mut ws).unwrap();
            ws.give_fmaps(out.output);
        },
        scalar::wst_s_conv(&wst, &s_phase, &big, &k).unwrap()
    );
    pair!(
        "nlr_s",
        {
            let (out, _) = exec::nlr_s_conv_ws(&nlr, &s_phase, &big, &k, &mut ws).unwrap();
            ws.give_fmaps(out.output);
        },
        scalar::nlr_s_conv(&nlr, &s_phase, &big, &k).unwrap()
    );
    pair!(
        "zfwst_s",
        {
            let out = exec::zfwst_s_conv_ws(&zfwst, &s_phase, &big, &k, &mut ws).unwrap();
            ws.give_fmaps(out.output);
        },
        scalar::zfwst_s_conv(&zfwst, &s_phase, &big, &k).unwrap()
    );
    pair!(
        "zfwst_t",
        {
            let out = exec::zfwst_t_conv_ws(&zfwst, &t_phase, &smallx, &k, &mut ws).unwrap();
            ws.give_fmaps(out.output);
        },
        scalar::zfwst_t_conv(&zfwst, &t_phase, &smallx, &k).unwrap()
    );

    group.finish();

    let measurements = c.take_results();
    let mean = |id: &str| {
        measurements
            .iter()
            .find(|m| m.id == id)
            .unwrap_or_else(|| panic!("missing measurement {id}"))
            .mean_ns
    };
    let mut rows: Vec<BenchRow> = measurements
        .iter()
        .map(|m| {
            let exec_name = m.id.split('/').nth(1).expect("exec/<name>/<side> ids");
            BenchRow {
                bench: "exec".to_string(),
                id: m.id.clone(),
                mean_ns: m.mean_ns,
                min_ns: m.min_ns,
                stddev_ns: m.stddev_ns,
                iters: m.iters,
                // Threads the side runs on: the engine fans channel groups
                // across the `zfgan-pool` workers, the oracle is serial.
                threads: if m.id.ends_with("/engine") {
                    zfgan_pool::pool_threads()
                } else {
                    1
                },
                simd: simd_label().to_string(),
                speedup: mean(&format!("exec/{exec_name}/scalar")) / m.mean_ns,
                git_sha: String::new(),
                host: String::new(),
                run_id: 0,
            }
        })
        .collect();

    let mut table = TextTable::new(["Benchmark", "ns/iter", "Speedup vs scalar"]);
    for r in &rows {
        table.row([r.id.clone(), format!("{:.0}", r.mean_ns), fmt_x(r.speedup)]);
    }
    emit_bench(
        "BENCH_exec",
        "Fast executor engine vs scalar oracle, DCGAN-shaped phase, all nine executors",
        &table,
        &mut rows,
    );

    let headline = ["zfost_s", "zfost_t", "wst_s"];
    for name in headline {
        let s = mean(&format!("exec/{name}/scalar")) / mean(&format!("exec/{name}/engine"));
        println!("{name}: engine {} vs scalar", fmt_x(s));
        // Regression gate: the forward/transposed executors must hold ≥3×
        // even single-threaded.
        assert!(
            s >= 3.0,
            "{name} engine speedup {} fell below the 3x gate",
            fmt_x(s)
        );
    }

    // The wgrad pair is chain-limited (see the module docs), so it gets a
    // softer gate on the fastest-sample ratio — the mean wanders with
    // host noise, the minimum tracks the engine.
    let min = |id: &str| {
        measurements
            .iter()
            .find(|m| m.id == id)
            .unwrap_or_else(|| panic!("missing measurement {id}"))
            .min_ns
    };
    for name in ["wgrad_s", "wgrad_t"] {
        let s = min(&format!("exec/{name}/scalar")) / min(&format!("exec/{name}/engine"));
        println!("{name}: engine {} vs scalar (min-based)", fmt_x(s));
        assert!(
            s >= 1.5,
            "{name} engine speedup {} fell below the 1.5x gate",
            fmt_x(s)
        );
    }
}
