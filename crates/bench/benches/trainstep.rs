//! Full GAN training-step latency on the MNIST-GAN spec: allocating vs
//! workspace-reusing conv scratch, sequential vs pooled GEMM.
//!
//! Every variant computes bit-identical updates (the workspace paths and
//! the pooled GEMM both preserve the reduction order — see
//! `tests/zero_alloc.rs` and `tests/pool.rs`), so the ratios here are pure
//! speed: what the persistent pool plus the zero-allocation hot path buy
//! over the allocate-per-call baseline. Emits
//! `results/BENCH_trainstep.json` via [`zfgan_bench::emit`].

use std::time::Duration;

use criterion::Criterion;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use zfgan_bench::{emit, fmt_x, TextTable};
use zfgan_nn::{GanTrainer, TrainerConfig};
use zfgan_tensor::ConvBackend;
use zfgan_workloads::GanSpec;

#[derive(Serialize)]
struct Row {
    id: String,
    mean_ns: f64,
    iters: u64,
    /// Speedup over the allocating sequential baseline (1.0 for it).
    speedup: f64,
}

/// Per-benchmark measurement window: `ZFGAN_BENCH_MS` overrides the
/// 200 ms default (CI smoke runs use a small value).
fn measurement_ms() -> u64 {
    std::env::var("ZFGAN_BENCH_MS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(200)
}

fn main() {
    // Anchor at the workspace root so `emit` writes the tracked top-level
    // `results/` sidecar.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let _ = std::env::set_current_dir(root);

    let spec = GanSpec::mnist_gan();
    let config = TrainerConfig {
        n_critic: 1,
        ..TrainerConfig::default()
    };
    let mut c = Criterion::default().measurement_time(Duration::from_millis(measurement_ms()));
    let mut group = c.benchmark_group("trainstep");
    for (name, backend, reuse) in [
        ("alloc_seq", ConvBackend::LoweredZeroFree, false),
        ("ws_seq", ConvBackend::LoweredZeroFree, true),
        ("alloc_pool2", ConvBackend::Parallel(2), false),
        ("ws_pool2", ConvBackend::Parallel(2), true),
    ] {
        let mut rng = SmallRng::seed_from_u64(29);
        let mut pair = spec
            .build_pair(0.05, &mut rng)
            .expect("built-in spec is consistent");
        pair.set_backend(backend);
        let mut trainer = GanTrainer::new(pair, config);
        trainer.set_workspace_reuse(reuse);
        group.bench_function(name, |bch| {
            bch.iter(|| trainer.train_iteration(2, &mut rng))
        });
    }
    group.finish();

    let measurements = c.take_results();
    let base = measurements
        .iter()
        .find(|m| m.id == "trainstep/alloc_seq")
        .expect("baseline bench runs first")
        .mean_ns;
    let rows: Vec<Row> = measurements
        .iter()
        .map(|m| Row {
            id: m.id.clone(),
            mean_ns: m.mean_ns,
            iters: m.iters,
            speedup: base / m.mean_ns,
        })
        .collect();

    let mut table = TextTable::new(["Benchmark", "ns/iter", "Speedup vs alloc_seq"]);
    for r in &rows {
        table.row([r.id.clone(), format!("{:.0}", r.mean_ns), fmt_x(r.speedup)]);
    }
    emit(
        "BENCH_trainstep",
        "GAN training step: allocating vs workspace scratch, sequential vs pooled GEMM",
        &table,
        &rows,
    );

    let headline = |id: &str| rows.iter().find(|r| r.id == id).map_or(0.0, |r| r.speedup);
    println!(
        "Training-step speedup over allocating sequential: ws {} | ws+pool2 {}",
        fmt_x(headline("trainstep/ws_seq")),
        fmt_x(headline("trainstep/ws_pool2")),
    );

    // Regression gate: workspace + pool must beat the allocating
    // sequential baseline outright.
    let s = headline("trainstep/ws_pool2");
    assert!(
        s > 1.0,
        "workspace+pool training step lost to the allocating baseline: {}",
        fmt_x(s)
    );
}
