//! Full GAN training-step latency on the MNIST-GAN spec: scalar vs packed
//! SIMD GEMM, allocating vs workspace-reusing conv scratch, sequential vs
//! pooled GEMM.
//!
//! The scalar reference (`ws_scalar`, [`ConvBackend::ScalarRef`]) is the
//! *reference engine* end to end: the specification fill/reshape loops
//! (see `MatmulKind::is_reference`) over the retained blocked-scalar GEMM,
//! with workspace reuse. That keeps its cost model pinned to the
//! pre-microkernel engine, so its ratio to `ws_pool2` measures what this
//! engine — cache-aware fills plus the packed SIMD microkernel — buys the
//! full train step. The packed variants compute bit-identical updates to
//! each other (`tests/determinism.rs`); `ws_scalar` agrees within the
//! fused-accumulation bound. Emits
//! `results/BENCH_trainstep.json` via [`zfgan_bench::emit`] with
//! min/mean/stddev per row (the host is a noisy shared core — `min_ns`
//! carries the stable signal) plus thread-count and SIMD-level metadata.

use std::time::Duration;

use criterion::Criterion;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan_bench::{emit_bench, fmt_x, BenchRow, TextTable};
use zfgan_nn::{GanTrainer, TrainerConfig};
use zfgan_tensor::microkernel::{set_forced_path, simd_label, GemmPath};
use zfgan_tensor::ConvBackend;
use zfgan_workloads::GanSpec;

/// Per-benchmark measurement window: `ZFGAN_BENCH_MS` overrides the
/// 400 ms default (CI smoke runs use a small value; the full train step
/// is slow enough that a bigger default window buys real sample counts).
fn measurement_ms() -> u64 {
    std::env::var("ZFGAN_BENCH_MS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(400)
}

fn main() {
    // Anchor at the workspace root so `emit` writes the tracked top-level
    // `results/` sidecar.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let _ = std::env::set_current_dir(root);

    let spec = GanSpec::mnist_gan();
    let config = TrainerConfig {
        n_critic: 1,
        ..TrainerConfig::default()
    };
    let mut c = Criterion::default().measurement_time(Duration::from_millis(measurement_ms()));
    let mut group = c.benchmark_group("trainstep");
    for (name, backend, reuse) in [
        ("alloc_seq", ConvBackend::LoweredZeroFree, false),
        ("ws_scalar", ConvBackend::ScalarRef, true),
        ("ws_seq", ConvBackend::LoweredZeroFree, true),
        ("alloc_pool2", ConvBackend::Parallel(2), false),
        ("ws_pool2", ConvBackend::Parallel(2), true),
        // The pre-dispatch engine: every GEMM forced through the packed
        // panel path, so ws_pool2 / packedonly_pool2 isolates what the
        // shape-aware dispatcher (ikj pack bypass, small-m streaming)
        // buys the full train step on identical code otherwise.
        ("packedonly_pool2", ConvBackend::Parallel(2), true),
    ] {
        let mut rng = SmallRng::seed_from_u64(29);
        let mut pair = spec
            .build_pair(0.05, &mut rng)
            .expect("built-in spec is consistent");
        pair.set_backend(backend);
        let mut trainer = GanTrainer::new(pair, config);
        trainer.set_workspace_reuse(reuse);
        if name == "packedonly_pool2" {
            set_forced_path(Some(GemmPath::Packed));
        }
        group.bench_function(name, |bch| {
            bch.iter(|| trainer.train_iteration(2, &mut rng))
        });
        set_forced_path(None);
    }
    group.finish();

    let measurements = c.take_results();
    let base = measurements
        .iter()
        .find(|m| m.id == "trainstep/alloc_seq")
        .expect("baseline bench runs first")
        .mean_ns;
    let threads_of = |id: &str| if id.ends_with("pool2") { 2 } else { 1 };
    let mut rows: Vec<BenchRow> = measurements
        .iter()
        .map(|m| BenchRow {
            bench: "trainstep".to_string(),
            id: m.id.clone(),
            mean_ns: m.mean_ns,
            min_ns: m.min_ns,
            stddev_ns: m.stddev_ns,
            iters: m.iters,
            threads: threads_of(&m.id),
            simd: simd_label().to_string(),
            speedup: base / m.mean_ns,
            git_sha: String::new(),
            host: String::new(),
            run_id: 0,
        })
        .collect();

    let mut table = TextTable::new(["Benchmark", "ns/iter", "Speedup vs alloc_seq"]);
    for r in &rows {
        table.row([r.id.clone(), format!("{:.0}", r.mean_ns), fmt_x(r.speedup)]);
    }
    emit_bench(
        "BENCH_trainstep",
        "GAN training step: scalar vs packed SIMD, allocating vs workspace scratch, sequential vs pooled GEMM",
        &table,
        &mut rows,
    );

    let headline = |id: &str| rows.iter().find(|r| r.id == id).map_or(0.0, |r| r.speedup);
    println!(
        "Training-step speedup over allocating sequential: scalar-ref {} | ws {} | ws+pool2 {}",
        fmt_x(headline("trainstep/ws_scalar")),
        fmt_x(headline("trainstep/ws_seq")),
        fmt_x(headline("trainstep/ws_pool2")),
    );

    let min_of = |id: &str| {
        rows.iter()
            .find(|r| r.id == id)
            .map_or(f64::INFINITY, |r| r.min_ns)
    };

    // Regression gate: workspace reuse must beat allocating scratch at
    // identical threading (pool2 vs pool2). Comparing against `alloc_seq`
    // instead would entangle the workspace win with the pool's fixed
    // dispatch overhead, which on a one-core CI host is pure penalty and
    // now outweighs the reuse margin since dispatch shrank the compute
    // under it. Fastest-sample ratio for the usual noisy-host reason.
    let s = min_of("trainstep/alloc_pool2") / min_of("trainstep/ws_pool2");
    assert!(
        s > 1.0,
        "workspace+pool training step lost to its allocating twin: {}",
        fmt_x(s)
    );

    // Tentpole gate: the packed engine (cache-aware fills + SIMD
    // microkernel) must buy the *full train step* >=2x over the reference
    // engine (specification fills + blocked-scalar GEMM, same workspace
    // reuse). Fastest-sample ratio for the same noisy-host reason as the
    // gemm bench gates; exempt under ZFGAN_NO_SIMD=1.
    let s = min_of("trainstep/ws_scalar") / min_of("trainstep/ws_pool2");
    println!(
        "Packed train-step gate ws_pool2 vs ws_scalar: {} vs >=2x (simd: {})",
        fmt_x(s),
        simd_label()
    );
    assert!(
        simd_label() != "avx2" || s >= 2.0,
        "packed train step speedup {} over the scalar reference fell below the 2x gate",
        fmt_x(s)
    );

    // Dispatch gate: the shape-aware dispatcher (ikj pack bypass +
    // small-m streamed lowering) must buy the full train step >=1.15x
    // over the same engine with every GEMM forced through the packed
    // panel path. Fastest-sample ratio, avx2-only, as above.
    let s = min_of("trainstep/packedonly_pool2") / min_of("trainstep/ws_pool2");
    println!(
        "Dispatch train-step gate ws_pool2 vs packedonly_pool2: {} vs >=1.15x (simd: {})",
        fmt_x(s),
        simd_label()
    );
    assert!(
        simd_label() != "avx2" || s >= 1.15,
        "shape-dispatch train step speedup {} over the packed-only engine fell below the 1.15x gate",
        fmt_x(s)
    );
}
