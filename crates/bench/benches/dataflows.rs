//! Criterion benchmarks of the dataflow schedulers (closed-form cycle
//! models over whole networks) and the functional PE-array executors.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan_dataflow::exec::{zfost_s_conv, zfost_t_conv, zfwst_wgrad_s};
use zfgan_dataflow::{ArchKind, Dataflow, UnrollChoice, Zfost, Zfwst};
use zfgan_sim::{ConvKind, ConvShape};
use zfgan_tensor::{ConvGeom, Fmaps, Kernels};
use zfgan_workloads::GanSpec;

fn bench_schedulers(c: &mut Criterion) {
    let spec = GanSpec::cgan();
    let phases: Vec<ConvShape> = spec.iteration_phases();
    let mut group = c.benchmark_group("schedule");
    for (name, df) in [
        (
            "zfost_4x4x75",
            Box::new(Zfost::new(4, 4, 75)) as Box<dyn Dataflow>,
        ),
        (
            "zfwst_4x4x30",
            Box::new(Zfwst::new(4, 4, 30)) as Box<dyn Dataflow>,
        ),
    ] {
        group.bench_function(format!("cgan_iteration_{name}"), |b| {
            b.iter(|| df.schedule_all(&phases))
        });
    }
    group.finish();
}

fn bench_unroll_search(c: &mut Criterion) {
    let phases = GanSpec::cgan().phase_set(ConvKind::T);
    c.bench_function("unroll_search_zfost_t_1200", |b| {
        b.iter(|| UnrollChoice::search(ArchKind::Zfost, 1200, &phases))
    });
}

fn bench_functional_executors(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let geom = ConvGeom::down(16, 16, 4, 4, 2, 8, 8).expect("static geometry");
    let s_phase = ConvShape::new(ConvKind::S, geom, 8, 4, 16, 16);
    let t_phase = s_phase.with_kind(ConvKind::T);
    let w_phase = s_phase.with_kind(ConvKind::WGradS);
    let big: Fmaps<f32> = Fmaps::random(4, 16, 16, 1.0, &mut rng);
    let small: Fmaps<f32> = Fmaps::random(8, 8, 8, 1.0, &mut rng);
    let k: Kernels<f32> = Kernels::random(8, 4, 4, 4, 0.25, &mut rng);
    let zfost = Zfost::new(4, 4, 4);
    let zfwst = Zfwst::new(4, 4, 4);
    let mut group = c.benchmark_group("functional_exec");
    group.bench_function("zfost_s_conv", |b| {
        b.iter(|| zfost_s_conv(&zfost, &s_phase, &big, &k).expect("valid operands"))
    });
    group.bench_function("zfost_t_conv", |b| {
        b.iter(|| zfost_t_conv(&zfost, &t_phase, &small, &k).expect("valid operands"))
    });
    group.bench_function("zfwst_wgrad_s", |b| {
        b.iter(|| zfwst_wgrad_s(&zfwst, &w_phase, &big, &small).expect("valid operands"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_unroll_search,
    bench_functional_executors
);
criterion_main!(benches);
