//! Criterion micro-benchmarks of the golden-reference convolutions — the
//! numerical substrate every functional validation rests on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan_tensor::{
    s_conv, t_conv, t_conv_via_zero_insert, w_conv_for_s_layer, w_conv_for_t_layer, ConvGeom,
    Fmaps, Fx, Kernels,
};

fn operands() -> (ConvGeom, Fmaps<f32>, Fmaps<f32>, Kernels<f32>) {
    let mut rng = SmallRng::seed_from_u64(7);
    let geom = ConvGeom::down(32, 32, 4, 4, 2, 16, 16).expect("static geometry");
    let big = Fmaps::random(16, 32, 32, 1.0, &mut rng);
    let small = Fmaps::random(32, 16, 16, 1.0, &mut rng);
    let k = Kernels::random(32, 16, 4, 4, 0.25, &mut rng);
    (geom, big, small, k)
}

fn bench_reference_convs(c: &mut Criterion) {
    let (geom, big, small, k) = operands();
    let mut group = c.benchmark_group("reference_conv");
    group.bench_function("s_conv_16to32maps_32px", |b| {
        b.iter(|| s_conv(&big, &k, &geom).expect("valid operands"))
    });
    group.bench_function("t_conv_32to16maps_16px", |b| {
        b.iter(|| t_conv(&small, &k, &geom).expect("valid operands"))
    });
    group.bench_function("t_conv_via_zero_insert", |b| {
        b.iter(|| t_conv_via_zero_insert(&small, &k, &geom).expect("valid operands"))
    });
    group.bench_function("w_conv_for_s_layer", |b| {
        b.iter(|| w_conv_for_s_layer(&big, &small, &geom).expect("valid operands"))
    });
    group.bench_function("w_conv_for_t_layer", |b| {
        b.iter(|| w_conv_for_t_layer(&small, &big, &geom).expect("valid operands"))
    });
    group.finish();
}

fn bench_fixed_point(c: &mut Criterion) {
    let (geom, big, _, k) = operands();
    let bigq = big.map(Fx::from_f32);
    let kq = k.map(Fx::from_f32);
    let mut group = c.benchmark_group("fixed_point");
    group.bench_function("s_conv_q8_8", |b| {
        b.iter(|| s_conv(&bigq, &kq, &geom).expect("valid operands"))
    });
    group.bench_function("quantise_feature_maps", |b| {
        b.iter_batched(
            || big.clone(),
            |m| m.map(Fx::from_f32),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_reference_convs, bench_fixed_point);
criterion_main!(benches);
