//! Criterion benchmarks of the accelerator-level models: full-design
//! evaluation, iteration reporting and the Fig. 17 design comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use zfgan_accel::{AccelConfig, Design, GanAccelerator, SyncPolicy};
use zfgan_dataflow::ArchKind;
use zfgan_workloads::{GanSpec, PhaseSeq};

fn bench_iteration_report(c: &mut Criterion) {
    let accel = GanAccelerator::new(AccelConfig::vcu118(), GanSpec::cgan());
    c.bench_function("accel_iteration_report_cgan", |b| {
        b.iter(|| accel.iteration_report(64))
    });
}

fn bench_design_evaluation(c: &mut Criterion) {
    let spec = GanSpec::cgan();
    let combo = Design::Combo {
        st: ArchKind::Zfost,
        w: ArchKind::Zfwst,
    };
    c.bench_function("design_eval_zfost_zfwst_deferred", |b| {
        b.iter(|| combo.evaluate(&spec, PhaseSeq::DisUpdate, SyncPolicy::Deferred, 1680))
    });
}

fn bench_memory_analysis(c: &mut Criterion) {
    let spec = GanSpec::dcgan();
    c.bench_function("memory_analysis_dcgan_256", |b| {
        b.iter(|| zfgan_accel::MemoryAnalysis::analyse(&spec, 256, 2))
    });
}

criterion_group!(
    benches,
    bench_iteration_report,
    bench_design_evaluation,
    bench_memory_analysis
);
criterion_main!(benches);
