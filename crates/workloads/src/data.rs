//! Synthetic training data.
//!
//! The paper trains on MNIST and LSUN-style images; the accelerator's cycle
//! behaviour is independent of pixel values (the only zeros that matter are
//! the structurally inserted ones), so this module substitutes deterministic
//! synthetic distributions that are (a) reproducible from a seed and
//! (b) structured enough for a WGAN critic to separate from Generator noise
//! — which is all the training demos need.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use zfgan_tensor::Fmaps;

/// A deterministic synthetic image distribution.
///
/// Each sample is a mixture of `blobs` Gaussian bumps with class-dependent
/// centres, squashed into the Generator's `tanh` output range `[-1, 1]`.
///
/// # Example
///
/// ```
/// use zfgan_workloads::data::SyntheticImages;
///
/// let mut ds = SyntheticImages::new(1, 28, 28, 42);
/// let batch = ds.batch(8);
/// assert_eq!(batch.len(), 8);
/// assert_eq!(batch[0].shape(), (1, 28, 28));
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticImages {
    channels: usize,
    height: usize,
    width: usize,
    rng: SmallRng,
}

impl SyntheticImages {
    /// Creates a dataset producing `channels × height × width` images.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(channels: usize, height: usize, width: usize, seed: u64) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "dimensions must be non-zero"
        );
        Self {
            channels,
            height,
            width,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Creates a dataset matching a workload's image shape.
    pub fn for_shape(shape: (usize, usize, usize), seed: u64) -> Self {
        Self::new(shape.0, shape.1, shape.2, seed)
    }

    /// `(channels, height, width)` of produced images.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Draws one sample.
    pub fn sample(&mut self) -> Fmaps<f32> {
        let (c, h, w) = (self.channels, self.height, self.width);
        let blobs = 2;
        let centres: Vec<(f32, f32, f32)> = (0..blobs)
            .map(|_| {
                (
                    self.rng.gen_range(0.2..0.8) * h as f32,
                    self.rng.gen_range(0.2..0.8) * w as f32,
                    self.rng.gen_range(0.15..0.35) * h.min(w) as f32,
                )
            })
            .collect();
        let mut img = Fmaps::zeros(c, h, w);
        for ch in 0..c {
            // Slight per-channel gain gives colour structure.
            let gain = 1.0 - 0.15 * ch as f32 / c as f32;
            for y in 0..h {
                for x in 0..w {
                    let mut v = 0.0f32;
                    for &(cy, cx, sigma) in &centres {
                        let d2 = (y as f32 - cy).powi(2) + (x as f32 - cx).powi(2);
                        v += (-d2 / (2.0 * sigma * sigma)).exp();
                    }
                    *img.at_mut(ch, y, x) = (gain * v).min(1.0) * 2.0 - 1.0;
                }
            }
        }
        img
    }

    /// Draws a batch of samples.
    pub fn batch(&mut self, n: usize) -> Vec<Fmaps<f32>> {
        (0..n).map(|_| self.sample()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_are_in_tanh_range() {
        let mut ds = SyntheticImages::new(3, 16, 16, 7);
        for img in ds.batch(4) {
            assert!(img.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn same_seed_same_data() {
        let a = SyntheticImages::new(1, 8, 8, 1).sample();
        let b = SyntheticImages::new(1, 8, 8, 1).sample();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticImages::new(1, 8, 8, 1).sample();
        let b = SyntheticImages::new(1, 8, 8, 2).sample();
        assert!(a.max_abs_diff(&b) > 0.0);
    }

    #[test]
    fn samples_have_structure() {
        // Not constant: a blob creates contrast.
        let img = SyntheticImages::new(1, 16, 16, 3).sample();
        let min = img.as_slice().iter().cloned().fold(f32::INFINITY, f32::min);
        let max = img
            .as_slice()
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 0.5, "contrast {}", max - min);
    }

    #[test]
    fn for_shape_matches() {
        let ds = SyntheticImages::for_shape((3, 4, 5), 0);
        assert_eq!(ds.shape(), (3, 4, 5));
    }
}

/// A deterministic multi-class synthetic dataset: seven-segment-style
/// "digits" rendered into the workload's image frame.
///
/// The paper's motivation is *unsupervised* learning — the accelerator
/// trains on raw, unlabeled data. This dataset provides exactly that
/// setting with known (but withheld) class structure, so experiments can
/// verify after the fact that an unsupervised critic's features separate
/// classes it never saw labels for.
///
/// # Example
///
/// ```
/// use zfgan_workloads::data::SyntheticDigits;
///
/// let mut ds = SyntheticDigits::new(1, 28, 28, 7);
/// let (img, class) = ds.sample();
/// assert!(class < 10);
/// assert_eq!(img.shape(), (1, 28, 28));
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticDigits {
    channels: usize,
    height: usize,
    width: usize,
    rng: SmallRng,
}

/// Segment on/off patterns for digits 0–9 in the order
/// (top, top-left, top-right, middle, bottom-left, bottom-right, bottom).
const SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, false, true, true, true],     // 0
    [false, false, true, false, false, true, false], // 1
    [true, false, true, true, true, false, true],    // 2
    [true, false, true, true, false, true, true],    // 3
    [false, true, true, true, false, true, false],   // 4
    [true, true, false, true, false, true, true],    // 5
    [true, true, false, true, true, true, true],     // 6
    [true, false, true, false, false, true, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

impl SyntheticDigits {
    /// Creates a digit dataset rendering into `channels × height × width`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the frame is smaller than 8×6.
    pub fn new(channels: usize, height: usize, width: usize, seed: u64) -> Self {
        assert!(
            channels > 0 && height >= 8 && width >= 6,
            "frame too small for a digit"
        );
        Self {
            channels,
            height,
            width,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws one sample, returning the image and its (withheld) class.
    pub fn sample(&mut self) -> (Fmaps<f32>, usize) {
        let class = self.rng.gen_range(0..10usize);
        let jitter_y = self.rng.gen_range(0..self.height / 8);
        let jitter_x = self.rng.gen_range(0..self.width / 8);
        (self.render(class, jitter_y, jitter_x), class)
    }

    /// Draws a batch of images, discarding the labels (the unsupervised
    /// setting the paper targets).
    pub fn batch_unlabeled(&mut self, n: usize) -> Vec<Fmaps<f32>> {
        (0..n).map(|_| self.sample().0).collect()
    }

    /// Renders digit `class` with the given positional jitter.
    ///
    /// # Panics
    ///
    /// Panics if `class ≥ 10`.
    pub fn render(&self, class: usize, jitter_y: usize, jitter_x: usize) -> Fmaps<f32> {
        assert!(class < 10, "classes are 0–9");
        let segs = SEGMENTS[class];
        let gh = (self.height * 3 / 4).max(8);
        let gw = (self.width / 2).max(4);
        let y0 = jitter_y.min(self.height - gh);
        let x0 = jitter_x.min(self.width - gw);
        let mid = y0 + gh / 2;
        let mut img = Fmaps::zeros(self.channels, self.height, self.width);
        let draw_h = |img: &mut Fmaps<f32>, y: usize| {
            for x in x0..x0 + gw {
                for c in 0..self.channels {
                    *img.at_mut(c, y, x) = 1.0;
                }
            }
        };
        let draw_v = |img: &mut Fmaps<f32>, ys: usize, ye: usize, x: usize| {
            for y in ys..ye {
                for c in 0..self.channels {
                    *img.at_mut(c, y, x) = 1.0;
                }
            }
        };
        if segs[0] {
            draw_h(&mut img, y0);
        }
        if segs[3] {
            draw_h(&mut img, mid);
        }
        if segs[6] {
            draw_h(&mut img, y0 + gh - 1);
        }
        if segs[1] {
            draw_v(&mut img, y0, mid, x0);
        }
        if segs[2] {
            draw_v(&mut img, y0, mid, x0 + gw - 1);
        }
        if segs[4] {
            draw_v(&mut img, mid, y0 + gh, x0);
        }
        if segs[5] {
            draw_v(&mut img, mid, y0 + gh, x0 + gw - 1);
        }
        // Map {0, 1} strokes into the tanh range.
        img.map(|v| v * 2.0 - 1.0)
    }
}

#[cfg(test)]
mod digit_tests {
    use super::*;

    #[test]
    fn digits_are_deterministic_per_seed() {
        let a = SyntheticDigits::new(1, 28, 28, 5).sample();
        let b = SyntheticDigits::new(1, 28, 28, 5).sample();
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn all_ten_classes_render_distinctly() {
        let ds = SyntheticDigits::new(1, 28, 28, 0);
        let rendered: Vec<Fmaps<f32>> = (0..10).map(|c| ds.render(c, 0, 0)).collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                assert!(
                    rendered[i].max_abs_diff(&rendered[j]) > 0.5,
                    "digits {i} and {j} look identical"
                );
            }
        }
    }

    #[test]
    fn eight_has_more_ink_than_one() {
        let ds = SyntheticDigits::new(1, 28, 28, 0);
        let ink = |img: &Fmaps<f32>| img.as_slice().iter().filter(|v| **v > 0.0).count();
        assert!(ink(&ds.render(8, 0, 0)) > 2 * ink(&ds.render(1, 0, 0)));
    }

    #[test]
    fn unlabeled_batches_are_in_range() {
        let mut ds = SyntheticDigits::new(1, 28, 28, 3);
        for img in ds.batch_unlabeled(8) {
            assert!(img.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    #[test]
    #[should_panic(expected = "0–9")]
    fn class_out_of_range_panics() {
        let ds = SyntheticDigits::new(1, 28, 28, 0);
        let _ = ds.render(10, 0, 0);
    }
}
