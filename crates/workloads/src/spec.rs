//! Network specifications: the paper's Fig. 1 / Table IV GANs.

use rand::Rng;
use serde::{Deserialize, Serialize};
use zfgan_nn::{Activation, ConvLayer, ConvNet, Direction, GanPair};
use zfgan_sim::{ConvKind, ConvShape};
use zfgan_tensor::{ConvGeom, TensorResult};

/// One Discriminator layer of a GAN ladder (Table IV row).
///
/// Everything is expressed in down-direction terms: `large_c` input maps at
/// `large_hw × large_hw` are strided down to `small_c` maps. The mirrored
/// Generator layer runs the same numbers in reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Channels on the up-sampled (input) side.
    pub large_c: usize,
    /// Channels on the down-sampled (output) side.
    pub small_c: usize,
    /// Spatial size on the up-sampled side (all paper maps are square).
    pub large_hw: usize,
    /// Kernel size (square).
    pub kernel: usize,
    /// Stride (all paper layers use 2).
    pub stride: usize,
}

impl LayerSpec {
    /// Spatial size on the down-sampled side.
    pub fn small_hw(&self) -> usize {
        self.large_hw / self.stride
    }

    /// The layer's convolution geometry.
    ///
    /// # Panics
    ///
    /// Panics if the spec is internally inconsistent (a static-data bug,
    /// not an input condition).
    pub fn geom(&self) -> ConvGeom {
        ConvGeom::down(
            self.large_hw,
            self.large_hw,
            self.kernel,
            self.kernel,
            self.stride,
            self.small_hw(),
            self.small_hw(),
        )
        .expect("layer spec must be self-consistent")
    }

    /// The layer's phase shape under one of the four convolution families.
    pub fn shape(&self, kind: ConvKind) -> ConvShape {
        ConvShape::new(
            kind,
            self.geom(),
            self.small_c,
            self.large_c,
            self.large_hw,
            self.large_hw,
        )
    }
}

/// Which half of a training iteration a phase sequence belongs to
/// (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseSeq {
    /// Discriminator update: `Ḡ`, `D̄`×2 (real+fake), `D̄`-backward×2 on
    /// ST-ARCH; `D̄w`×2 on W-ARCH.
    DisUpdate,
    /// Generator update: `Ḡ`, `D̄`, `D̄`-backward, `Ḡ`-backward on
    /// ST-ARCH; `Ḡw` on W-ARCH.
    GenUpdate,
}

/// A full GAN workload: the Discriminator ladder plus the latent size.
///
/// # Example
///
/// ```
/// use zfgan_workloads::GanSpec;
/// use zfgan_sim::ConvKind;
///
/// let dcgan = GanSpec::dcgan();
/// assert_eq!(dcgan.layers().len(), 4);
/// // All four phase families over the ladder:
/// assert_eq!(dcgan.phase_set(ConvKind::S).len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GanSpec {
    name: String,
    z_dim: usize,
    layers: Vec<LayerSpec>,
}

impl GanSpec {
    /// Creates a spec from an explicit ladder.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty, a layer does not chain onto the next,
    /// or a stride does not evenly divide its input.
    pub fn new(name: impl Into<String>, z_dim: usize, layers: Vec<LayerSpec>) -> Self {
        assert!(!layers.is_empty(), "a GAN needs at least one layer");
        assert!(z_dim > 0, "latent dimension must be non-zero");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].small_c, pair[1].large_c,
                "channel ladder must chain"
            );
            assert_eq!(
                pair[0].small_hw(),
                pair[1].large_hw,
                "spatial ladder must chain"
            );
        }
        for l in &layers {
            assert_eq!(
                l.large_hw % l.stride,
                0,
                "stride must divide the input size"
            );
        }
        Self {
            name: name.into(),
            z_dim,
            layers,
        }
    }

    /// The paper's Fig. 1 DCGAN: 64×64 RGB, 5×5 kernels, stride 2,
    /// 3 → 64 → 128 → 256 → 512 maps.
    pub fn dcgan() -> Self {
        Self::ladder("DCGAN", 100, 3, 64, 64, 5)
    }

    /// Table IV MNIST-GAN: 28×28 grayscale, 5×5 kernels,
    /// 1 → 64 → 128 maps.
    pub fn mnist_gan() -> Self {
        Self::new(
            "MNIST-GAN",
            100,
            vec![
                LayerSpec {
                    large_c: 1,
                    small_c: 64,
                    large_hw: 28,
                    kernel: 5,
                    stride: 2,
                },
                LayerSpec {
                    large_c: 64,
                    small_c: 128,
                    large_hw: 14,
                    kernel: 5,
                    stride: 2,
                },
            ],
        )
    }

    /// Table IV cGAN (Context Encoders / image editing): 64×64 RGB,
    /// 4×4 kernels, 3 → 64 → 128 → 256 → 512 maps.
    pub fn cgan() -> Self {
        Self::ladder("cGAN", 100, 3, 64, 64, 4)
    }

    /// The three evaluation networks in the paper's order.
    pub fn all_paper_gans() -> Vec<GanSpec> {
        vec![Self::mnist_gan(), Self::dcgan(), Self::cgan()]
    }

    /// Builds a doubling ladder: `base_c` maps after layer 1, doubling each
    /// layer, halving the spatial size down to 4×4, starting from
    /// `img_c × img_hw × img_hw` — the DCGAN family's construction rule,
    /// usable for custom resolutions (e.g. a 128×128 variant).
    ///
    /// # Panics
    ///
    /// Panics if the resulting ladder is inconsistent (e.g. `img_hw` not a
    /// multiple of a power of two ≥ 8, or a zero `z_dim`).
    pub fn ladder(
        name: &str,
        z_dim: usize,
        img_c: usize,
        img_hw: usize,
        base_c: usize,
        kernel: usize,
    ) -> Self {
        let mut specs = Vec::new();
        let mut large_c = img_c;
        let mut small_c = base_c;
        let mut hw = img_hw;
        while hw > 4 {
            specs.push(LayerSpec {
                large_c,
                small_c,
                large_hw: hw,
                kernel,
                stride: 2,
            });
            large_c = small_c;
            small_c *= 2;
            hw /= 2;
        }
        Self::new(name, z_dim, specs)
    }

    /// The workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The latent dimension.
    pub fn z_dim(&self) -> usize {
        self.z_dim
    }

    /// The Discriminator ladder, first layer first.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// `(channels, height, width)` of the image the GAN models.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        let l = &self.layers[0];
        (l.large_c, l.large_hw, l.large_hw)
    }

    /// All layers' phase shapes under one convolution family.
    pub fn phase_set(&self, kind: ConvKind) -> Vec<ConvShape> {
        self.layers.iter().map(|l| l.shape(kind)).collect()
    }

    /// The ST-ARCH phase sequence of one sample's loop (paper Fig. 8): the
    /// `S-CONV`/`T-CONV` passes of the given update.
    pub fn st_phases(&self, seq: PhaseSeq) -> Vec<ConvShape> {
        let fwd_g = self.phase_set(ConvKind::T); // Ḡ forward
        let fwd_d = self.phase_set(ConvKind::S); // D̄ forward
        let bwd_d = self.phase_set(ConvKind::T); // D̄ backward error
        let bwd_g = self.phase_set(ConvKind::S); // Ḡ backward error
        match seq {
            PhaseSeq::DisUpdate => {
                // Ḡ, D̄(fake), D̄(real), D̄-bwd(fake), D̄-bwd(real).
                [fwd_g, fwd_d.clone(), fwd_d, bwd_d.clone(), bwd_d].concat()
            }
            PhaseSeq::GenUpdate => [fwd_g, fwd_d, bwd_d, bwd_g].concat(),
        }
    }

    /// The W-ARCH phase sequence of one sample's loop.
    pub fn w_phases(&self, seq: PhaseSeq) -> Vec<ConvShape> {
        match seq {
            // D̄w for the fake and the real sample.
            PhaseSeq::DisUpdate => [
                self.phase_set(ConvKind::WGradS),
                self.phase_set(ConvKind::WGradS),
            ]
            .concat(),
            PhaseSeq::GenUpdate => self.phase_set(ConvKind::WGradT),
        }
    }

    /// Every phase of one sample's full training iteration (both updates).
    pub fn iteration_phases(&self) -> Vec<ConvShape> {
        [
            self.st_phases(PhaseSeq::DisUpdate),
            self.w_phases(PhaseSeq::DisUpdate),
            self.st_phases(PhaseSeq::GenUpdate),
            self.w_phases(PhaseSeq::GenUpdate),
        ]
        .concat()
    }

    /// Effectual operations (1 MAC = 2 ops) of one sample's full training
    /// iteration — the Fig. 19 GOPS numerator.
    pub fn iteration_ops(&self) -> u64 {
        self.iteration_phases()
            .iter()
            .map(|p| 2 * p.effectual_macs())
            .sum()
    }

    /// Bytes of intermediate data (`d^l` of every Discriminator layer) one
    /// sample's forward pass produces — the paper's Section III-A currency.
    /// With `2 × batch` samples buffered, DCGAN at batch 256 needs ~126 MB.
    pub fn dis_intermediate_bytes_per_sample(&self, bytes_per_elem: usize) -> u64 {
        self.layers
            .iter()
            .map(|l| (l.small_c * l.small_hw() * l.small_hw() * bytes_per_elem) as u64)
            .sum()
    }

    /// Buffer demand of the *synchronized* algorithm for a Discriminator
    /// update: `2 × batch` samples' intermediates.
    pub fn sync_buffer_bytes(&self, batch: usize, bytes_per_elem: usize) -> u64 {
        2 * batch as u64 * self.dis_intermediate_bytes_per_sample(bytes_per_elem)
    }

    /// Buffer demand after deferred synchronization: one sample.
    pub fn deferred_buffer_bytes(&self, bytes_per_elem: usize) -> u64 {
        self.dis_intermediate_bytes_per_sample(bytes_per_elem)
    }

    /// Builds a runnable, trainable [`GanPair`] for this workload:
    /// the Discriminator ladder with LeakyReLU(0.2) plus a full-frame
    /// critic head, mirrored into a Generator with ReLU bodies and a Tanh
    /// output.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from layer construction (impossible for the
    /// built-in specs; possible for hand-built inconsistent ones).
    pub fn build_pair<R: Rng>(&self, scale: f32, rng: &mut R) -> TensorResult<GanPair> {
        let last = self.layers.last().expect("validated non-empty");
        let head_hw = last.small_hw();
        let head_geom =
            ConvGeom::new(head_hw, head_hw, 1, 0, 0, 0, 0).expect("head geometry is valid");

        // Discriminator: ladder + critic head.
        let mut d_layers = Vec::new();
        for l in &self.layers {
            d_layers.push(ConvLayer::random(
                Direction::Down,
                l.geom(),
                l.small_c,
                l.large_c,
                Activation::LeakyRelu { alpha: 0.2 },
                (l.large_c, l.large_hw, l.large_hw),
                scale,
                rng,
            )?);
        }
        d_layers.push(ConvLayer::random(
            Direction::Down,
            head_geom,
            1,
            last.small_c,
            Activation::Identity,
            (last.small_c, head_hw, head_hw),
            scale,
            rng,
        )?);
        let discriminator = ConvNet::new(d_layers)?;

        // Generator: projection head + mirrored ladder.
        let mut g_layers = vec![ConvLayer::random(
            Direction::Up,
            head_geom,
            self.z_dim,
            last.small_c,
            Activation::Relu,
            (self.z_dim, 1, 1),
            scale,
            rng,
        )?];
        for (i, l) in self.layers.iter().enumerate().rev() {
            let act = if i == 0 {
                Activation::Tanh
            } else {
                Activation::Relu
            };
            g_layers.push(ConvLayer::random(
                Direction::Up,
                l.geom(),
                l.small_c,
                l.large_c,
                act,
                (l.small_c, l.small_hw(), l.small_hw()),
                scale,
                rng,
            )?);
        }
        let generator = ConvNet::new(g_layers)?;
        GanPair::new(generator, discriminator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn table_iv_mnist_gan() {
        let g = GanSpec::mnist_gan();
        let l = g.layers();
        assert_eq!(l.len(), 2);
        // "1×28×28, 5×5, 2×2 → 64×14×14".
        assert_eq!((l[0].large_c, l[0].large_hw, l[0].kernel), (1, 28, 5));
        assert_eq!((l[0].small_c, l[0].small_hw()), (64, 14));
        // "64×14×14 → 128×7×7".
        assert_eq!((l[1].small_c, l[1].small_hw()), (128, 7));
    }

    #[test]
    fn table_iv_cgan() {
        let g = GanSpec::cgan();
        let dims: Vec<_> = g
            .layers()
            .iter()
            .map(|l| (l.large_c, l.large_hw, l.small_c, l.kernel))
            .collect();
        assert_eq!(
            dims,
            vec![
                (3, 64, 64, 4),
                (64, 32, 128, 4),
                (128, 16, 256, 4),
                (256, 8, 512, 4)
            ]
        );
    }

    #[test]
    fn dcgan_uses_5x5_kernels() {
        let g = GanSpec::dcgan();
        assert!(g.layers().iter().all(|l| l.kernel == 5));
        assert_eq!(g.image_shape(), (3, 64, 64));
        assert_eq!(g.layers().last().unwrap().small_hw(), 4);
    }

    /// The Section III-A claim: "DCGAN needs a ~126M-byte buffer when the
    /// batch size is 256".
    #[test]
    fn dcgan_sync_buffer_is_about_126_mb() {
        let g = GanSpec::dcgan();
        let bytes = g.sync_buffer_bytes(256, 2);
        let mb = bytes as f64 / 1e6;
        assert!((120.0..132.0).contains(&mb), "sync buffer {mb} MB");
        // Deferred: 2·256× smaller.
        assert_eq!(g.deferred_buffer_bytes(2) * 512, bytes);
    }

    #[test]
    fn phase_counts_match_fig8() {
        let g = GanSpec::cgan();
        let n = g.layers().len();
        // Five ST passes + two W passes per Discriminator-update loop.
        assert_eq!(g.st_phases(PhaseSeq::DisUpdate).len(), 5 * n);
        assert_eq!(g.w_phases(PhaseSeq::DisUpdate).len(), 2 * n);
        // Four ST passes + one W pass per Generator-update loop.
        assert_eq!(g.st_phases(PhaseSeq::GenUpdate).len(), 4 * n);
        assert_eq!(g.w_phases(PhaseSeq::GenUpdate).len(), n);
        assert_eq!(g.iteration_phases().len(), 12 * n);
    }

    #[test]
    fn iteration_ops_are_positive_and_scale_with_network() {
        let small = GanSpec::mnist_gan().iteration_ops();
        let big = GanSpec::cgan().iteration_ops();
        assert!(small > 0);
        assert!(
            big > 10 * small,
            "cGAN ({big}) should dwarf MNIST-GAN ({small})"
        );
    }

    #[test]
    fn build_pair_produces_trainable_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let pair = GanSpec::mnist_gan().build_pair(0.05, &mut rng).unwrap();
        assert_eq!(pair.image_shape(), (1, 28, 28));
        assert_eq!(pair.z_shape(), (100, 1, 1));
        assert_eq!(pair.discriminator().out_shape(), (1, 1, 1));
        // Generator mirrors the ladder + head.
        assert_eq!(pair.generator().layers().len(), 3);
        assert_eq!(pair.discriminator().layers().len(), 3);
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn inconsistent_ladder_rejected() {
        let _ = GanSpec::new(
            "bad",
            10,
            vec![
                LayerSpec {
                    large_c: 1,
                    small_c: 8,
                    large_hw: 16,
                    kernel: 4,
                    stride: 2,
                },
                LayerSpec {
                    large_c: 16,
                    small_c: 32,
                    large_hw: 8,
                    kernel: 4,
                    stride: 2,
                },
            ],
        );
    }

    #[test]
    fn custom_ladders_scale_to_other_resolutions() {
        let big = GanSpec::ladder("DCGAN-128", 128, 3, 128, 64, 4);
        assert_eq!(big.layers().len(), 5);
        assert_eq!(big.image_shape(), (3, 128, 128));
        assert_eq!(big.layers().last().unwrap().small_hw(), 4);
        // Work grows superlinearly with resolution.
        assert!(big.iteration_ops() > 2 * GanSpec::cgan().iteration_ops());
    }

    #[test]
    fn specs_round_trip_through_serde() {
        for spec in GanSpec::all_paper_gans() {
            let json = serde_json::to_string(&spec).expect("serialises");
            let back: GanSpec = serde_json::from_str(&json).expect("deserialises");
            assert_eq!(back, spec);
            assert_eq!(back.iteration_ops(), spec.iteration_ops());
        }
    }

    #[test]
    fn all_paper_gans_enumerates_three() {
        let names: Vec<_> = GanSpec::all_paper_gans()
            .iter()
            .map(|g| g.name().to_string())
            .collect();
        assert_eq!(names, vec!["MNIST-GAN", "DCGAN", "cGAN"]);
    }
}
