//! GAN network specifications and synthetic datasets for the `zfgan`
//! evaluation.
//!
//! The paper evaluates three networks (its Fig. 1 and Table IV):
//!
//! * **DCGAN** — the 64×64 RGB network of Fig. 1 (5×5 kernels),
//! * **MNIST-GAN** — the 28×28 grayscale conditional DCGAN,
//! * **cGAN** — the 64×64 context-encoder network (4×4 kernels).
//!
//! A [`GanSpec`] describes the *Discriminator* ladder only — "Generator has
//! an inverse architecture of Discriminator", so every Generator quantity is
//! derived by running the same ladder in reverse. From a spec you can:
//!
//! * extract the [`ConvShape`](zfgan_sim::ConvShape) phase sets that the
//!   dataflow architectures schedule ([`GanSpec::phase_set`],
//!   [`GanSpec::iteration_phases`]),
//! * build a runnable, trainable [`GanPair`](zfgan_nn::GanPair)
//!   ([`GanSpec::build_pair`]),
//! * compute the Section III-A memory quantities
//!   ([`GanSpec::dis_intermediate_bytes_per_sample`]), and
//! * draw synthetic training data ([`data`]).

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod data;
mod spec;

pub use spec::{GanSpec, LayerSpec, PhaseSeq};
