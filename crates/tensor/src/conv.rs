//! Golden-reference implementations of the paper's three convolution
//! families.
//!
//! All of GAN training is built from one geometry ([`ConvGeom`]) applied in
//! three ways (paper Table I):
//!
//! * **S-CONV** ([`s_conv`]) — strided convolution. Discriminator forward
//!   (`D̄` uses it too, as the Generator's backward error pass).
//! * **T-CONV** ([`t_conv`]) — transposed convolution, the up-sampling
//!   direction of the same geometry. Generator forward and Discriminator
//!   backward error pass. [`t_conv_via_zero_insert`] computes the identical
//!   result the way the hardware sees it: zero-insert, then unit-stride
//!   convolution — the source of the paper's "ineffectual operations".
//! * **W-CONV** ([`w_conv_for_s_layer`], [`w_conv_for_t_layer`]) — the
//!   weight-gradient convolution with a four-dimensional output and no
//!   cross-input-map accumulation (paper Fig. 3). For an S-CONV layer the
//!   stride dilates the error operand ("zero-inserting in kernel"); for a
//!   T-CONV layer the input operand is the zero-inserted activation
//!   ("zero-inserting in input").
//!
//! These are deliberately plain loop nests: they exist to be *obviously
//! correct* so that the cycle-level dataflow executors in `zfgan-dataflow`
//! can be validated against them.

use crate::error::{ShapeError, TensorResult};
use crate::fmaps::Fmaps;
use crate::kernels::Kernels;
use crate::num::Num;
use crate::shape::ConvGeom;
use crate::zeros::insert_zeros;

/// Strided convolution (`S-CONV`): the down-sampling direction.
///
/// `output[of][oy][ox] = Σ_if Σ_ky Σ_kx input[if][s·oy+ky−pt][s·ox+kx−pl] · k[of][if][ky][kx]`
///
/// # Errors
///
/// Returns an error if `k.n_if() != input.channels()` or the geometry's
/// output would be empty for this input size.
///
/// # Example
///
/// ```
/// use zfgan_tensor::{ConvGeom, Fmaps, Kernels, s_conv};
///
/// let geom = ConvGeom::down(8, 8, 4, 4, 2, 4, 4)?;
/// let x: Fmaps<f32> = Fmaps::zeros(3, 8, 8);
/// let k: Kernels<f32> = Kernels::zeros(16, 3, 4, 4);
/// let y = s_conv(&x, &k, &geom)?;
/// assert_eq!(y.shape(), (16, 4, 4));
/// # Ok::<(), zfgan_tensor::ShapeError>(())
/// ```
pub fn s_conv<T: Num>(input: &Fmaps<T>, k: &Kernels<T>, geom: &ConvGeom) -> TensorResult<Fmaps<T>> {
    if k.n_if() != input.channels() {
        return Err(ShapeError::new(format!(
            "kernel expects {} input maps, input has {}",
            k.n_if(),
            input.channels()
        )));
    }
    let (oh, ow) = geom.down_out(input.height(), input.width());
    if oh == 0 || ow == 0 {
        return Err(ShapeError::new(
            "geometry yields an empty output for this input",
        ));
    }
    let stride = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let mut out = Fmaps::zeros(k.n_of(), oh, ow);
    for of in 0..k.n_of() {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = T::zero();
                for if_ in 0..k.n_if() {
                    for ky in 0..geom.kh() {
                        for kx in 0..geom.kw() {
                            let iy = stride * oy as isize + ky as isize - pt;
                            let ix = stride * ox as isize + kx as isize - pl;
                            acc.mul_add_assign(
                                input.at_padded(if_, iy, ix),
                                *k.at(of, if_, ky, kx),
                            );
                        }
                    }
                }
                *out.at_mut(of, oy, ox) = acc;
            }
        }
    }
    Ok(out)
}

/// Transposed convolution (`T-CONV`): the up-sampling direction of `geom`.
///
/// The kernel tensor keeps its *down-direction* layout — `n_of` is the small
/// side (this function's input channels) and `n_if` the large side (this
/// function's output channels) — so the very same `Kernels` value drives a
/// Discriminator layer forward and the mirrored Generator layer, matching
/// the paper's "Generator has an inverse architecture of Discriminator".
///
/// # Errors
///
/// Returns an error if `k.n_of() != input.channels()`.
///
/// # Example
///
/// ```
/// use zfgan_tensor::{ConvGeom, Fmaps, Kernels, t_conv};
///
/// let geom = ConvGeom::down(8, 8, 4, 4, 2, 4, 4)?;
/// let z: Fmaps<f32> = Fmaps::zeros(16, 4, 4);
/// let k: Kernels<f32> = Kernels::zeros(16, 3, 4, 4);
/// let y = t_conv(&z, &k, &geom)?;
/// assert_eq!(y.shape(), (3, 8, 8));
/// # Ok::<(), zfgan_tensor::ShapeError>(())
/// ```
pub fn t_conv<T: Num>(input: &Fmaps<T>, k: &Kernels<T>, geom: &ConvGeom) -> TensorResult<Fmaps<T>> {
    let (oh, ow) = geom.up_out(input.height(), input.width());
    t_conv_with_output_size(input, k, geom, oh, ow)
}

/// [`t_conv`] with an explicit output size (used by [`s_conv_input_grad`]
/// when the down-sampling quantised away rows that must not be recreated).
fn t_conv_with_output_size<T: Num>(
    input: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
    oh: usize,
    ow: usize,
) -> TensorResult<Fmaps<T>> {
    if k.n_of() != input.channels() {
        return Err(ShapeError::new(format!(
            "kernel's down-direction output side is {} maps, t_conv input has {}",
            k.n_of(),
            input.channels()
        )));
    }
    let stride = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let mut out: Fmaps<T> = Fmaps::zeros(k.n_if(), oh, ow);
    for sf in 0..input.channels() {
        for iy in 0..input.height() {
            for ix in 0..input.width() {
                let v = *input.at(sf, iy, ix);
                if v.is_zero() {
                    // Reference impl may skip: 0 · w contributes nothing.
                    continue;
                }
                for lf in 0..k.n_if() {
                    for ky in 0..geom.kh() {
                        for kx in 0..geom.kw() {
                            let ty = stride * iy as isize + ky as isize - pt;
                            let tx = stride * ix as isize + kx as isize - pl;
                            if ty >= 0 && tx >= 0 && (ty as usize) < oh && (tx as usize) < ow {
                                out.at_mut(lf, ty as usize, tx as usize)
                                    .mul_add_assign(v, *k.at(sf, lf, ky, kx));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// `T-CONV` computed the way the hardware sees it: first insert
/// `stride − 1` zeros between input pixels, then run a **unit-stride**
/// convolution with the flipped kernel over the zero-inserted map.
///
/// Bit-identical to [`t_conv`]; exists so the dataflow simulator's view of
/// the computation (including every ineffectual zero-operand multiplication)
/// has a checkable reference.
///
/// # Errors
///
/// Same conditions as [`t_conv`].
pub fn t_conv_via_zero_insert<T: Num>(
    input: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
) -> TensorResult<Fmaps<T>> {
    if k.n_of() != input.channels() {
        return Err(ShapeError::new(format!(
            "kernel's down-direction output side is {} maps, t_conv input has {}",
            k.n_of(),
            input.channels()
        )));
    }
    let zi = insert_zeros(input, geom.stride());
    let (oh, ow) = geom.up_out(input.height(), input.width());
    let (pt, _pb, pl, _pr) = geom.t_conv_pads();
    let (kh, kw) = (geom.kh(), geom.kw());
    let mut out = Fmaps::zeros(k.n_if(), oh, ow);
    for lf in 0..k.n_if() {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = T::zero();
                for sf in 0..k.n_of() {
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let zy = oy as isize + ky as isize - pt as isize;
                            let zx = ox as isize + kx as isize - pl as isize;
                            acc.mul_add_assign(
                                zi.at_padded(sf, zy, zx),
                                *k.at(sf, lf, kh - 1 - ky, kw - 1 - kx),
                            );
                        }
                    }
                }
                *out.at_mut(lf, oy, ox) = acc;
            }
        }
    }
    Ok(out)
}

/// Backward error pass of an `S-CONV` layer (paper Eq. 3 before the `∘ σ'`):
/// scatters `δ_out` back through the layer's weights onto the input grid.
///
/// This *is* a `T-CONV` — exactly the paper's observation that `D̄` runs
/// T-CONV — but takes the original input size explicitly, because a strided
/// down-sampling may have ignored trailing rows that must stay zero in the
/// gradient.
///
/// # Errors
///
/// Returns an error if `delta_out.channels() != k.n_of()`.
pub fn s_conv_input_grad<T: Num>(
    delta_out: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
    in_h: usize,
    in_w: usize,
) -> TensorResult<Fmaps<T>> {
    t_conv_with_output_size(delta_out, k, geom, in_h, in_w)
}

/// Backward error pass of a `T-CONV` layer: the gather direction, i.e. a
/// plain [`s_conv`] of the output error with the layer's own weights —
/// the paper's observation that `Ḡ` runs S-CONV.
///
/// # Errors
///
/// Returns an error if `delta_out.channels() != k.n_if()`.
pub fn t_conv_input_grad<T: Num>(
    delta_out: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
) -> TensorResult<Fmaps<T>> {
    s_conv_swapped(delta_out, k, geom)
}

/// `s_conv` but indexing the kernel with (of, if) swapped, because for a
/// T-CONV layer the kernel's `n_of` axis is the *input* of the backward pass.
fn s_conv_swapped<T: Num>(
    delta_out: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
) -> TensorResult<Fmaps<T>> {
    if k.n_if() != delta_out.channels() {
        return Err(ShapeError::new(format!(
            "kernel's up-direction side is {} maps, error has {}",
            k.n_if(),
            delta_out.channels()
        )));
    }
    let (oh, ow) = geom.down_out(delta_out.height(), delta_out.width());
    let stride = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let mut out = Fmaps::zeros(k.n_of(), oh, ow);
    for sf in 0..k.n_of() {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = T::zero();
                for lf in 0..k.n_if() {
                    for ky in 0..geom.kh() {
                        for kx in 0..geom.kw() {
                            let iy = stride * oy as isize + ky as isize - pt;
                            let ix = stride * ox as isize + kx as isize - pl;
                            acc.mul_add_assign(
                                delta_out.at_padded(lf, iy, ix),
                                *k.at(sf, lf, ky, kx),
                            );
                        }
                    }
                }
                *out.at_mut(sf, oy, ox) = acc;
            }
        }
    }
    Ok(out)
}

/// `W-CONV` for an `S-CONV` layer (Discriminator update, paper Eq. 4 /
/// Fig. 6c): the loss gradient w.r.t. the layer's weights.
///
/// `∇W[of][if][ky][kx] = Σ_oy,ox δ_out[of][oy][ox] · input[if][s·oy+ky−pt][s·ox+kx−pl]`
///
/// The output is four-dimensional (one `KH×KW` slice per `(of, if)` pair)
/// and involves **no accumulation across input maps** — the property that
/// idles the NLR adder tree in the paper's analysis. Seen as a convolution,
/// the `δ` operand is dilated by the stride, i.e. has zeros inserted in the
/// *kernel* position.
///
/// # Errors
///
/// Returns an error if the operand channel counts are inconsistent with a
/// forward pass of this geometry.
pub fn w_conv_for_s_layer<T: Num>(
    input: &Fmaps<T>,
    delta_out: &Fmaps<T>,
    geom: &ConvGeom,
) -> TensorResult<Kernels<T>> {
    let expected = geom.down_out(input.height(), input.width());
    if (delta_out.height(), delta_out.width()) != expected {
        return Err(ShapeError::new(format!(
            "error map is {}×{}, expected {}×{} for this geometry",
            delta_out.height(),
            delta_out.width(),
            expected.0,
            expected.1
        )));
    }
    let stride = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let mut grad = Kernels::zeros(delta_out.channels(), input.channels(), geom.kh(), geom.kw());
    for of in 0..delta_out.channels() {
        for if_ in 0..input.channels() {
            for ky in 0..geom.kh() {
                for kx in 0..geom.kw() {
                    let mut acc = T::zero();
                    for oy in 0..delta_out.height() {
                        for ox in 0..delta_out.width() {
                            let iy = stride * oy as isize + ky as isize - pt;
                            let ix = stride * ox as isize + kx as isize - pl;
                            acc.mul_add_assign(
                                *delta_out.at(of, oy, ox),
                                input.at_padded(if_, iy, ix),
                            );
                        }
                    }
                    *grad.at_mut(of, if_, ky, kx) = acc;
                }
            }
        }
    }
    Ok(grad)
}

/// `W-CONV` for a `T-CONV` layer (Generator update, paper Fig. 6d): the
/// loss gradient w.r.t. the weights of an up-sampling layer.
///
/// `∇W[sf][lf][ky][kx] = Σ_iy,ix input[sf][iy][ix] · δ_out[lf][s·iy+ky−pt][s·ix+kx−pl]`
///
/// Seen as a convolution this correlates the **zero-inserted** input with
/// the output error — the "zero-inserting in input" case of W-CONV. The
/// returned gradient has the same down-direction layout as the layer's
/// weight tensor.
///
/// # Errors
///
/// Returns an error if `delta_out`'s spatial size is not the up-sampled size
/// of `input` under this geometry.
pub fn w_conv_for_t_layer<T: Num>(
    input: &Fmaps<T>,
    delta_out: &Fmaps<T>,
    geom: &ConvGeom,
) -> TensorResult<Kernels<T>> {
    let expected = geom.up_out(input.height(), input.width());
    if (delta_out.height(), delta_out.width()) != expected {
        return Err(ShapeError::new(format!(
            "error map is {}×{}, expected {}×{} for this geometry",
            delta_out.height(),
            delta_out.width(),
            expected.0,
            expected.1
        )));
    }
    let stride = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let (dh, dw) = (delta_out.height() as isize, delta_out.width() as isize);
    let mut grad = Kernels::zeros(input.channels(), delta_out.channels(), geom.kh(), geom.kw());
    for sf in 0..input.channels() {
        for lf in 0..delta_out.channels() {
            for ky in 0..geom.kh() {
                for kx in 0..geom.kw() {
                    let mut acc = T::zero();
                    for iy in 0..input.height() {
                        for ix in 0..input.width() {
                            let ty = stride * iy as isize + ky as isize - pt;
                            let tx = stride * ix as isize + kx as isize - pl;
                            if ty >= 0 && tx >= 0 && ty < dh && tx < dw {
                                acc.mul_add_assign(
                                    *input.at(sf, iy, ix),
                                    *delta_out.at(lf, ty as usize, tx as usize),
                                );
                            }
                        }
                    }
                    *grad.at_mut(sf, lf, ky, kx) = acc;
                }
            }
        }
    }
    Ok(grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn geom_4x4_s2(in_hw: usize) -> ConvGeom {
        ConvGeom::down(in_hw, in_hw, 4, 4, 2, in_hw / 2, in_hw / 2).unwrap()
    }

    #[test]
    fn s_conv_identity_kernel() {
        // 1×1 kernel, stride 1, no padding: convolution is a scaling.
        let geom = ConvGeom::new(1, 1, 1, 0, 0, 0, 0).unwrap();
        let x = Fmaps::from_vec(1, 2, 2, vec![1.0f32, 2.0, 3.0, 4.0]);
        let k = Kernels::from_vec(1, 1, 1, 1, vec![2.0f32]);
        let y = s_conv(&x, &k, &geom).unwrap();
        assert_eq!(y.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn s_conv_known_values() {
        // Hand-computed 3×3 input, 2×2 kernel, stride 1, no pad.
        let geom = ConvGeom::new(2, 2, 1, 0, 0, 0, 0).unwrap();
        let x = Fmaps::from_vec(
            1,
            3,
            3,
            vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        );
        let k = Kernels::from_vec(1, 1, 2, 2, vec![1.0f32, 0.0, 0.0, 1.0]);
        let y = s_conv(&x, &k, &geom).unwrap();
        assert_eq!(y.as_slice(), &[1.0 + 5.0, 2.0 + 6.0, 4.0 + 8.0, 5.0 + 9.0]);
    }

    #[test]
    fn s_conv_accumulates_across_input_maps() {
        let geom = ConvGeom::new(1, 1, 1, 0, 0, 0, 0).unwrap();
        let x = Fmaps::from_vec(2, 1, 1, vec![3.0f32, 4.0]);
        let k = Kernels::from_vec(1, 2, 1, 1, vec![1.0f32, 10.0]);
        let y = s_conv(&x, &k, &geom).unwrap();
        assert_eq!(y.as_slice(), &[43.0]);
    }

    #[test]
    fn s_conv_rejects_channel_mismatch() {
        let geom = geom_4x4_s2(8);
        let x: Fmaps<f32> = Fmaps::zeros(3, 8, 8);
        let k: Kernels<f32> = Kernels::zeros(4, 2, 4, 4);
        assert!(s_conv(&x, &k, &geom).is_err());
    }

    #[test]
    fn t_conv_matches_zero_insert_path() {
        let mut rng = SmallRng::seed_from_u64(11);
        for in_hw in [4usize, 6, 8] {
            let geom = geom_4x4_s2(in_hw * 2);
            let x: Fmaps<f64> = Fmaps::random(3, in_hw, in_hw, 1.0, &mut rng).map(|v: f64| v);
            let k: Kernels<f64> = Kernels::random(3, 2, 4, 4, 1.0, &mut rng);
            let direct = t_conv(&x, &k, &geom).unwrap();
            let via_zi = t_conv_via_zero_insert(&x, &k, &geom).unwrap();
            assert!(direct.max_abs_diff(&via_zi) < 1e-9, "in_hw={in_hw}");
        }
    }

    #[test]
    fn t_conv_shape_is_up_out() {
        let geom = ConvGeom::down(28, 28, 5, 5, 2, 14, 14).unwrap();
        let x: Fmaps<f32> = Fmaps::zeros(8, 14, 14);
        let k: Kernels<f32> = Kernels::zeros(8, 1, 5, 5);
        let y = t_conv(&x, &k, &geom).unwrap();
        assert_eq!(y.shape(), (1, 28, 28));
    }

    #[test]
    fn t_conv_rejects_channel_mismatch() {
        let geom = geom_4x4_s2(8);
        let x: Fmaps<f32> = Fmaps::zeros(5, 4, 4);
        let k: Kernels<f32> = Kernels::zeros(4, 2, 4, 4);
        assert!(t_conv(&x, &k, &geom).is_err());
        assert!(t_conv_via_zero_insert(&x, &k, &geom).is_err());
    }

    /// Finite-difference check of `s_conv_input_grad` and `w_conv_for_s_layer`.
    #[test]
    fn s_layer_gradients_match_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(42);
        let geom = ConvGeom::down(6, 6, 4, 4, 2, 3, 3).unwrap();
        let x: Fmaps<f64> = Fmaps::random(2, 6, 6, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(3, 2, 4, 4, 1.0, &mut rng);
        // Loss = Σ y ⇒ δy = all-ones.
        let y = s_conv(&x, &k, &geom).unwrap();
        let delta = Fmaps::from_vec(3, 3, 3, vec![1.0f64; 27]);
        let dx = s_conv_input_grad(&delta, &k, &geom, 6, 6).unwrap();
        let dw = w_conv_for_s_layer(&x, &delta, &geom).unwrap();
        let eps = 1e-6;
        let loss = |y: &Fmaps<f64>| y.sum_f64();
        let base = loss(&y);
        // Check a handful of input coordinates.
        for (c, yy, xx) in [(0, 0, 0), (1, 3, 2), (0, 5, 5), (1, 2, 4)] {
            let mut xp = x.clone();
            *xp.at_mut(c, yy, xx) += eps;
            let num = (loss(&s_conv(&xp, &k, &geom).unwrap()) - base) / eps;
            assert!(
                (num - *dx.at(c, yy, xx)).abs() < 1e-5,
                "dx[{c}][{yy}][{xx}]: fd={num} analytic={}",
                dx.at(c, yy, xx)
            );
        }
        // Check a handful of weight coordinates.
        for (of, if_, ky, kx) in [(0, 0, 0, 0), (2, 1, 3, 3), (1, 0, 2, 1)] {
            let mut kp = k.clone();
            *kp.at_mut(of, if_, ky, kx) += eps;
            let num = (loss(&s_conv(&x, &kp, &geom).unwrap()) - base) / eps;
            assert!(
                (num - *dw.at(of, if_, ky, kx)).abs() < 1e-5,
                "dw[{of}][{if_}][{ky}][{kx}]: fd={num} analytic={}",
                dw.at(of, if_, ky, kx)
            );
        }
    }

    /// Finite-difference check of `t_conv_input_grad` and `w_conv_for_t_layer`.
    #[test]
    fn t_layer_gradients_match_finite_differences() {
        let mut rng = SmallRng::seed_from_u64(43);
        let geom = ConvGeom::down(6, 6, 4, 4, 2, 3, 3).unwrap();
        let x: Fmaps<f64> = Fmaps::random(3, 3, 3, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(3, 2, 4, 4, 1.0, &mut rng);
        let y = t_conv(&x, &k, &geom).unwrap();
        assert_eq!(y.shape(), (2, 6, 6));
        let delta = Fmaps::from_vec(2, 6, 6, vec![1.0f64; 72]);
        let dx = t_conv_input_grad(&delta, &k, &geom).unwrap();
        let dw = w_conv_for_t_layer(&x, &delta, &geom).unwrap();
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(dw.shape(), k.shape());
        let eps = 1e-6;
        let base = y.sum_f64();
        for (c, yy, xx) in [(0, 0, 0), (2, 1, 2), (1, 2, 2)] {
            let mut xp = x.clone();
            *xp.at_mut(c, yy, xx) += eps;
            let num = (t_conv(&xp, &k, &geom).unwrap().sum_f64() - base) / eps;
            assert!(
                (num - *dx.at(c, yy, xx)).abs() < 1e-5,
                "dx[{c}][{yy}][{xx}]: fd={num} analytic={}",
                dx.at(c, yy, xx)
            );
        }
        for (sf, lf, ky, kx) in [(0, 0, 0, 0), (2, 1, 3, 2), (1, 1, 1, 1)] {
            let mut kp = k.clone();
            *kp.at_mut(sf, lf, ky, kx) += eps;
            let num = (t_conv(&x, &kp, &geom).unwrap().sum_f64() - base) / eps;
            assert!(
                (num - *dw.at(sf, lf, ky, kx)).abs() < 1e-5,
                "dw[{sf}][{lf}][{ky}][{kx}]: fd={num} analytic={}",
                dw.at(sf, lf, ky, kx)
            );
        }
    }

    #[test]
    fn w_conv_validates_error_shape() {
        let geom = geom_4x4_s2(8);
        let x: Fmaps<f32> = Fmaps::zeros(2, 8, 8);
        let bad: Fmaps<f32> = Fmaps::zeros(3, 5, 5);
        assert!(w_conv_for_s_layer(&x, &bad, &geom).is_err());
        let x_small: Fmaps<f32> = Fmaps::zeros(2, 4, 4);
        assert!(w_conv_for_t_layer(&x_small, &bad, &geom).is_err());
    }

    #[test]
    fn round_trip_s_then_t_shapes() {
        // Down then up restores the spatial size for every paper layer.
        for (h, k, s, o) in [
            (64usize, 4usize, 2usize, 32usize),
            (28, 5, 2, 14),
            (16, 4, 2, 8),
        ] {
            let geom = ConvGeom::down(h, h, k, k, s, o, o).unwrap();
            let x: Fmaps<f32> = Fmaps::zeros(2, h, h);
            let w: Kernels<f32> = Kernels::zeros(3, 2, k, k);
            let y = s_conv(&x, &w, &geom).unwrap();
            assert_eq!((y.height(), y.width()), (o, o));
            let back = t_conv(&y, &Kernels::<f32>::zeros(3, 2, k, k), &geom).unwrap();
            assert_eq!((back.height(), back.width()), (h, h));
        }
    }

    #[test]
    fn fixed_point_conv_close_to_float() {
        let mut rng = SmallRng::seed_from_u64(5);
        let geom = geom_4x4_s2(8);
        let x: Fmaps<f32> = Fmaps::random(2, 8, 8, 1.0, &mut rng);
        let k: Kernels<f32> = Kernels::random(4, 2, 4, 4, 0.25, &mut rng);
        let y = s_conv(&x, &k, &geom).unwrap();
        let yq = s_conv(
            &x.map(crate::Fx::from_f32),
            &k.map(crate::Fx::from_f32),
            &geom,
        )
        .unwrap();
        let diff = y
            .as_slice()
            .iter()
            .zip(yq.as_slice())
            .map(|(&a, &b)| (f64::from(a) - b.to_f64()).abs())
            .fold(0.0f64, f64::max);
        // 32 MACs of Q8.8 values ⇒ worst-case rounding well under 0.2.
        assert!(diff < 0.2, "quantisation error {diff}");
    }
}
