//! A reusable scratch arena for the conv hot path.
//!
//! Every lowered convolution needs the same transient buffers — im2col
//! patch matrices, reshaped weight matrices, the GEMM product, and the
//! output maps. Allocating them from scratch per call is where a training
//! step's heap traffic comes from; [`ConvWorkspace`] keeps the buffers on
//! a free list instead, so after a warm-up step the conv hot path performs
//! **zero heap allocation** (pinned by `tests/zero_alloc.rs` with a
//! counting global allocator).
//!
//! # Lifetime rules
//!
//! - `take_*` hands out a buffer of the exact requested shape, zero-filled
//!   (several fill loops — phase patches, scatter-skipped outputs, the
//!   naive GEMM's `+=` — rely on starting from zeros).
//! - `give_*` returns a buffer to the free list. Returning is optional for
//!   correctness (a dropped buffer is just an allocation next time) and
//!   mandatory for the zero-allocation guarantee.
//! - Buffers grow monotonically: `take` picks the smallest free buffer
//!   whose capacity already fits (best fit), so a steady-state workload
//!   stops allocating once every distinct size has been seen.
//! - A workspace is plain owned data (`Send`): one per trainer, never
//!   shared across threads. Pool workers inside a pooled GEMM only touch
//!   caller-partitioned output slices, never the workspace itself.
//!
//! Setting [`ConvWorkspace::set_reuse`]`(false)` turns the arena into a
//! pass-through allocator (every `take` is fresh, every `give` drops, the
//! T-CONV phase cache is bypassed). The workspace code path itself is
//! unchanged, which is how the `trainstep` bench measures an honest
//! allocating baseline against the reusing one.

use crate::fmaps::Fmaps;
use crate::im2col::Matrix;
use crate::kernels::Kernels;
use crate::microkernel::PackScratch;
use crate::num::Num;
use crate::zero_free::PhaseCache;

/// Free-list arena for conv-sized `Vec<T>` buffers plus the memoized
/// T-CONV phase decompositions. See the module docs for the lifetime and
/// zero-fill rules.
#[derive(Debug)]
pub struct ConvWorkspace<T> {
    free: Vec<Vec<T>>,
    reuse: bool,
    /// Memoized `stride²`-phase decompositions for the zero-free T-CONV
    /// lowering (shape-keyed; shared out as `Arc` clones so the hot path
    /// never recomputes or reallocates them).
    pub(crate) phases: PhaseCache,
    /// Packed-microkernel scratch (packed `B` panels + `A` zero masks),
    /// reused across GEMMs so the packed fast path stays allocation-free
    /// once warm.
    pack: PackScratch,
}

impl<T> Default for ConvWorkspace<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ConvWorkspace<T> {
    /// Creates an empty workspace with buffer reuse enabled.
    pub fn new() -> Self {
        Self {
            free: Vec::new(),
            reuse: true,
            phases: PhaseCache::default(),
            pack: PackScratch::new(),
        }
    }

    /// The packed-microkernel scratch. With reuse off the previous scratch
    /// is dropped first, so every GEMM packs into fresh buffers — the same
    /// honest allocating-baseline behaviour as [`ConvWorkspace::take`].
    pub(crate) fn pack_scratch(&mut self) -> &mut PackScratch {
        if !self.reuse {
            self.pack = PackScratch::new();
        }
        &mut self.pack
    }

    /// Read-only view of the scratch as the last [`Self::pack_scratch`]
    /// caller left it — no allocating-baseline reset, so the `A` masks a
    /// just-run scan built stay readable even with reuse off.
    pub(crate) fn pack_scratch_ref(&self) -> &PackScratch {
        &self.pack
    }

    /// Whether buffers are recycled (the default) or freshly allocated per
    /// `take` (the honest allocating baseline for benchmarks).
    pub fn reuse(&self) -> bool {
        self.reuse
    }

    /// Toggles buffer reuse. Disabling also drops every cached buffer and
    /// bypasses the phase cache, so subsequent calls behave exactly like
    /// the pre-workspace allocating code path.
    pub fn set_reuse(&mut self, reuse: bool) {
        self.reuse = reuse;
        if !reuse {
            self.free.clear();
            self.phases = PhaseCache::default();
            self.pack = PackScratch::new();
        }
    }

    /// Number of buffers currently parked on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Total capacity (in elements) parked on the free list.
    pub fn free_elems(&self) -> usize {
        self.free.iter().map(Vec::capacity).sum()
    }
}

impl<T: Num> ConvWorkspace<T> {
    /// Takes a zero-filled buffer of exactly `len` elements, recycling the
    /// best-fitting free buffer when reuse is on.
    pub fn take(&mut self, len: usize) -> Vec<T> {
        if !self.reuse {
            return vec![T::zero(); len];
        }
        // Best fit: the smallest free buffer whose capacity suffices;
        // otherwise the largest available one (which then grows once and
        // serves this size forever after).
        let mut best: Option<usize> = None;
        let mut largest: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= len {
                if best.is_none_or(|b| buf.capacity() < self.free[b].capacity()) {
                    best = Some(i);
                }
            } else if largest.is_none_or(|l| buf.capacity() > self.free[l].capacity()) {
                largest = Some(i);
            }
        }
        let mut v = match best.or(largest) {
            Some(i) => self.free.swap_remove(i),
            None => Vec::new(),
        };
        v.clear();
        v.resize(len, T::zero());
        v
    }

    /// Returns a buffer to the free list (dropped when reuse is off).
    pub fn give(&mut self, v: Vec<T>) {
        if self.reuse && v.capacity() > 0 {
            self.free.push(v);
        }
    }

    /// Takes a zero [`Matrix`] of the given shape from the arena.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero (as [`Matrix::zeros`] does).
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix<T> {
        Matrix::from_vec(rows, cols, self.take(rows * cols))
    }

    /// Returns a matrix's buffer to the arena.
    pub fn give_matrix(&mut self, m: Matrix<T>) {
        self.give(m.into_vec());
    }

    /// Takes zero [`Fmaps`] of the given shape from the arena.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero (as [`Fmaps::zeros`] does).
    pub fn take_fmaps(&mut self, channels: usize, height: usize, width: usize) -> Fmaps<T> {
        Fmaps::from_vec(
            channels,
            height,
            width,
            self.take(channels * height * width),
        )
    }

    /// Returns a feature-map buffer to the arena.
    pub fn give_fmaps(&mut self, f: Fmaps<T>) {
        self.give(f.into_vec());
    }

    /// Takes zero [`Kernels`] of the given shape from the arena.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero (as [`Kernels::zeros`] does).
    pub fn take_kernels(&mut self, n_of: usize, n_if: usize, kh: usize, kw: usize) -> Kernels<T> {
        Kernels::from_vec(n_of, n_if, kh, kw, self.take(n_of * n_if * kh * kw))
    }

    /// Returns a kernel buffer to the arena.
    pub fn give_kernels(&mut self, k: Kernels<T>) {
        self.give(k.into_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_even_after_dirty_give() {
        let mut ws: ConvWorkspace<f32> = ConvWorkspace::new();
        let mut a = ws.take(8);
        a.iter_mut().for_each(|v| *v = 7.0);
        ws.give(a);
        let b = ws.take(4);
        assert_eq!(b, vec![0.0; 4]);
    }

    #[test]
    fn steady_state_reuses_instead_of_allocating() {
        let mut ws: ConvWorkspace<f32> = ConvWorkspace::new();
        let warm = ws.take(100);
        ws.give(warm);
        let cap_before = ws.free_elems();
        for _ in 0..10 {
            let v = ws.take(100);
            assert!(v.capacity() >= 100);
            ws.give(v);
        }
        assert_eq!(ws.free_elems(), cap_before);
        assert_eq!(ws.free_buffers(), 1);
    }

    #[test]
    fn best_fit_prefers_the_smallest_sufficient_buffer() {
        let mut ws: ConvWorkspace<f32> = ConvWorkspace::new();
        ws.give(Vec::with_capacity(1000));
        ws.give(Vec::with_capacity(10));
        let v = ws.take(5);
        assert!(v.capacity() < 1000, "took the big buffer for a small job");
        ws.give(v);
    }

    #[test]
    fn reuse_off_is_a_pass_through_allocator() {
        let mut ws: ConvWorkspace<f32> = ConvWorkspace::new();
        ws.set_reuse(false);
        let v = ws.take(16);
        ws.give(v);
        assert_eq!(ws.free_buffers(), 0);
        assert_eq!(ws.take(3), vec![0.0; 3]);
    }

    #[test]
    fn typed_takes_have_the_right_shapes() {
        let mut ws: ConvWorkspace<f32> = ConvWorkspace::new();
        let m = ws.take_matrix(3, 4);
        let f = ws.take_fmaps(2, 3, 4);
        let k = ws.take_kernels(2, 3, 4, 5);
        assert_eq!((m.rows(), m.cols()), (3, 4));
        assert_eq!(f.shape(), (2, 3, 4));
        assert_eq!(k.shape(), (2, 3, 4, 5));
        ws.give_matrix(m);
        ws.give_fmaps(f);
        ws.give_kernels(k);
        assert_eq!(ws.free_buffers(), 3);
    }
}
