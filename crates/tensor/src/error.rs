//! Error type shared by all shape-checked tensor operations.

use std::error::Error;
use std::fmt;

/// Result alias for fallible tensor operations.
pub type TensorResult<T> = Result<T, ShapeError>;

/// A shape or geometry mismatch detected by a tensor operation.
///
/// Every public convolution in this crate validates its operands before
/// touching data, so out-of-bounds access is impossible and misuse surfaces
/// as a descriptive error instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    /// Creates a shape error with a human-readable description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The human-readable description of the mismatch.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch: {}", self.message)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let err = ShapeError::new("kernel larger than padded input");
        assert!(err.to_string().contains("kernel larger than padded input"));
        assert_eq!(err.message(), "kernel larger than padded input");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
