//! Backend selection for the three convolution families.
//!
//! [`ConvBackend`] picks how a convolution is *computed* without changing
//! what it computes. [`ConvBackend::GoldenDirect`] and
//! [`ConvBackend::ScalarRef`] are bit-identical to the golden loop nests
//! in [`crate::conv`] for every element type (see [`crate::gemm`] for why
//! scalar blocking preserves bits, and [`crate::zero_free`] for why
//! skipping the inserted zeros does). The packed-microkernel backends
//! ([`ConvBackend::LoweredGemm`], [`ConvBackend::LoweredZeroFree`],
//! [`ConvBackend::Parallel`]) are bit-identical to *each other* for every
//! thread count and SIMD level, bit-identical to golden for `Fx` and
//! `f64`, and within the fused-accumulation error bound of golden for
//! `f32` — the packed f32 kernel owns its accumulation order (see
//! [`crate::microkernel`]). The golden nests stay the oracle the dataflow
//! executors validate against; the lowered backends are what training
//! actually runs.

use serde::{Deserialize, Serialize};

use crate::error::TensorResult;
use crate::fmaps::Fmaps;
use crate::gemm::MatmulKind;
use crate::im2col::{
    im2col_s, im2col_t, im2col_t_with_output_size, s_conv_via_gemm_ws, weights_as_matrix_t,
};
use crate::kernels::Kernels;
use crate::num::Num;
use crate::shape::ConvGeom;
use crate::workspace::ConvWorkspace;
use crate::zero_free;
use crate::{conv, ShapeError};

/// How a convolution layer executes its forward and backward passes.
///
/// See the module docs for which variants are bit-identical to which;
/// they differ in speed and in whether the zero-inserting transformations
/// are materialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvBackend {
    /// The golden loop nests — the slow, obviously-correct oracle.
    GoldenDirect,
    /// Zero-free lowering + the retained cache-blocked *scalar* GEMM —
    /// bit-identical to [`ConvBackend::GoldenDirect`] for every element
    /// type, and the honest scalar baseline the packed-microkernel
    /// speedup gates measure against.
    ScalarRef,
    /// `im2col + packed GEMM`, materialising inserted zeros the way
    /// Caffe's deconvolution path does (the paper's software baseline).
    LoweredGemm,
    /// Compact zero-free lowering + packed SIMD microkernel GEMM:
    /// inserted zeros are never built — the software mirror of
    /// ZFOST/ZFWST.
    LoweredZeroFree,
    /// [`ConvBackend::LoweredZeroFree`] with the GEMM split over this
    /// many pooled threads (clamped to the available rows; deterministic
    /// for every thread count).
    Parallel(usize),
}

impl Default for ConvBackend {
    /// Zero-free is the default: it is bit-identical to the golden nests
    /// and strictly cheaper than the dense lowering.
    fn default() -> Self {
        ConvBackend::LoweredZeroFree
    }
}

impl ConvBackend {
    /// The GEMM kernel the lowered backends use.
    fn mm(self) -> MatmulKind {
        match self {
            // Unused for GoldenDirect; the naive kernel is the honest
            // stand-in.
            ConvBackend::GoldenDirect => MatmulKind::Naive,
            ConvBackend::ScalarRef => MatmulKind::BlockedScalar,
            ConvBackend::LoweredGemm | ConvBackend::LoweredZeroFree => MatmulKind::Blocked,
            ConvBackend::Parallel(n) => MatmulKind::Parallel(n),
        }
    }

    /// Strided convolution (`S-CONV`) — see [`crate::s_conv`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::s_conv`].
    pub fn s_conv<T: Num>(
        self,
        input: &Fmaps<T>,
        k: &Kernels<T>,
        geom: &ConvGeom,
    ) -> TensorResult<Fmaps<T>> {
        match self {
            ConvBackend::GoldenDirect => conv::s_conv(input, k, geom),
            _ => {
                if k.n_if() != input.channels() {
                    return Err(ShapeError::new("kernel/input channel mismatch"));
                }
                let lowered = im2col_s(input, geom);
                let mut wmat = crate::im2col::Matrix::zeros(k.n_if() * k.kh() * k.kw(), k.n_of());
                crate::im2col::fill_weights_as_matrix_s_for(&mut wmat, k, self.mm());
                let product = self.mm().run(&lowered.patches, &wmat)?;
                let (oh, ow) = lowered.out_hw;
                let mut out = Fmaps::zeros(k.n_of(), oh, ow);
                for of in 0..k.n_of() {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            *out.at_mut(of, oy, ox) = *product.at(oy * ow + ox, of);
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    /// Transposed convolution (`T-CONV`) — see [`crate::t_conv`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::t_conv`].
    pub fn t_conv<T: Num>(
        self,
        input: &Fmaps<T>,
        k: &Kernels<T>,
        geom: &ConvGeom,
    ) -> TensorResult<Fmaps<T>> {
        match self {
            ConvBackend::GoldenDirect => conv::t_conv(input, k, geom),
            ConvBackend::LoweredGemm => {
                if k.n_of() != input.channels() {
                    return Err(ShapeError::new("kernel/input channel mismatch"));
                }
                let lowered = im2col_t(input, geom);
                let product = self.mm().run(&lowered.patches, &weights_as_matrix_t(k))?;
                let (oh, ow) = lowered.out_hw;
                let mut out = Fmaps::zeros(k.n_if(), oh, ow);
                for lf in 0..k.n_if() {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            *out.at_mut(lf, oy, ox) = *product.at(oy * ow + ox, lf);
                        }
                    }
                }
                Ok(out)
            }
            ConvBackend::ScalarRef | ConvBackend::LoweredZeroFree | ConvBackend::Parallel(_) => {
                zero_free::t_conv_zero_free(input, k, geom, self.mm())
            }
        }
    }

    /// Backward error pass of an `S-CONV` layer — see
    /// [`crate::s_conv_input_grad`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::s_conv_input_grad`].
    pub fn s_conv_input_grad<T: Num>(
        self,
        delta_out: &Fmaps<T>,
        k: &Kernels<T>,
        geom: &ConvGeom,
        in_h: usize,
        in_w: usize,
    ) -> TensorResult<Fmaps<T>> {
        match self {
            ConvBackend::GoldenDirect => conv::s_conv_input_grad(delta_out, k, geom, in_h, in_w),
            ConvBackend::LoweredGemm => {
                if k.n_of() != delta_out.channels() {
                    return Err(ShapeError::new("kernel/error channel mismatch"));
                }
                let lowered = im2col_t_with_output_size(delta_out, geom, in_h, in_w);
                let product = self.mm().run(&lowered.patches, &weights_as_matrix_t(k))?;
                let mut out = Fmaps::zeros(k.n_if(), in_h, in_w);
                for lf in 0..k.n_if() {
                    for oy in 0..in_h {
                        for ox in 0..in_w {
                            *out.at_mut(lf, oy, ox) = *product.at(oy * in_w + ox, lf);
                        }
                    }
                }
                Ok(out)
            }
            ConvBackend::ScalarRef | ConvBackend::LoweredZeroFree | ConvBackend::Parallel(_) => {
                zero_free::t_conv_zero_free_sized(delta_out, k, geom, in_h, in_w, self.mm())
            }
        }
    }

    /// Backward error pass of a `T-CONV` layer — see
    /// [`crate::t_conv_input_grad`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::t_conv_input_grad`].
    pub fn t_conv_input_grad<T: Num>(
        self,
        delta_out: &Fmaps<T>,
        k: &Kernels<T>,
        geom: &ConvGeom,
    ) -> TensorResult<Fmaps<T>> {
        match self {
            ConvBackend::GoldenDirect => conv::t_conv_input_grad(delta_out, k, geom),
            // This pass involves no zero-inserting in either formulation,
            // so dense-lowered and zero-free share one GEMM.
            _ => zero_free::t_conv_input_grad_via_gemm(delta_out, k, geom, self.mm()),
        }
    }

    /// `W-CONV` of an `S-CONV` layer — see [`crate::w_conv_for_s_layer`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::w_conv_for_s_layer`].
    pub fn w_conv_for_s_layer<T: Num>(
        self,
        input: &Fmaps<T>,
        delta_out: &Fmaps<T>,
        geom: &ConvGeom,
    ) -> TensorResult<Kernels<T>> {
        match self {
            ConvBackend::GoldenDirect => conv::w_conv_for_s_layer(input, delta_out, geom),
            // Caffe computes exactly this GEMM — the dilated ("zero-
            // inserted in kernel") error operand never materialises — so
            // it serves the dense-lowered backend too.
            _ => zero_free::w_conv_s_via_gemm(input, delta_out, geom, self.mm()),
        }
    }

    /// `W-CONV` of a `T-CONV` layer — see [`crate::w_conv_for_t_layer`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::w_conv_for_t_layer`].
    pub fn w_conv_for_t_layer<T: Num>(
        self,
        input: &Fmaps<T>,
        delta_out: &Fmaps<T>,
        geom: &ConvGeom,
    ) -> TensorResult<Kernels<T>> {
        match self {
            ConvBackend::GoldenDirect => conv::w_conv_for_t_layer(input, delta_out, geom),
            ConvBackend::LoweredGemm => {
                zero_free::w_conv_t_via_zero_insert_gemm(input, delta_out, geom, self.mm())
            }
            ConvBackend::ScalarRef | ConvBackend::LoweredZeroFree | ConvBackend::Parallel(_) => {
                zero_free::w_conv_t_zero_free(input, delta_out, geom, self.mm())
            }
        }
    }

    // Workspace-fed variants. Each is bit-identical to its allocating
    // sibling above; transients come from (and return to) `ws`, so a
    // steady-state call allocates nothing (pinned by `tests/zero_alloc.rs`
    // on the default backend). `GoldenDirect` and the `LoweredGemm`
    // zero-inserting T paths delegate to the allocating forms: they are
    // comparison baselines, not the training hot path, and keeping them
    // allocating keeps their cost model honest.

    /// [`ConvBackend::s_conv`] with transients drawn from the workspace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::s_conv`].
    pub fn s_conv_ws<T: Num>(
        self,
        input: &Fmaps<T>,
        k: &Kernels<T>,
        geom: &ConvGeom,
        ws: &mut ConvWorkspace<T>,
    ) -> TensorResult<Fmaps<T>> {
        match self {
            ConvBackend::GoldenDirect => conv::s_conv(input, k, geom),
            _ => s_conv_via_gemm_ws(input, k, geom, self.mm(), ws),
        }
    }

    /// [`ConvBackend::t_conv`] with transients drawn from the workspace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::t_conv`].
    pub fn t_conv_ws<T: Num>(
        self,
        input: &Fmaps<T>,
        k: &Kernels<T>,
        geom: &ConvGeom,
        ws: &mut ConvWorkspace<T>,
    ) -> TensorResult<Fmaps<T>> {
        match self {
            ConvBackend::GoldenDirect | ConvBackend::LoweredGemm => self.t_conv(input, k, geom),
            ConvBackend::ScalarRef | ConvBackend::LoweredZeroFree | ConvBackend::Parallel(_) => {
                zero_free::t_conv_zero_free_ws(input, k, geom, self.mm(), ws)
            }
        }
    }

    /// [`ConvBackend::s_conv_input_grad`] with transients drawn from the
    /// workspace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::s_conv_input_grad`].
    pub fn s_conv_input_grad_ws<T: Num>(
        self,
        delta_out: &Fmaps<T>,
        k: &Kernels<T>,
        geom: &ConvGeom,
        in_h: usize,
        in_w: usize,
        ws: &mut ConvWorkspace<T>,
    ) -> TensorResult<Fmaps<T>> {
        match self {
            ConvBackend::GoldenDirect | ConvBackend::LoweredGemm => {
                self.s_conv_input_grad(delta_out, k, geom, in_h, in_w)
            }
            ConvBackend::ScalarRef | ConvBackend::LoweredZeroFree | ConvBackend::Parallel(_) => {
                zero_free::t_conv_zero_free_sized_ws(delta_out, k, geom, in_h, in_w, self.mm(), ws)
            }
        }
    }

    /// [`ConvBackend::t_conv_input_grad`] with transients drawn from the
    /// workspace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::t_conv_input_grad`].
    pub fn t_conv_input_grad_ws<T: Num>(
        self,
        delta_out: &Fmaps<T>,
        k: &Kernels<T>,
        geom: &ConvGeom,
        ws: &mut ConvWorkspace<T>,
    ) -> TensorResult<Fmaps<T>> {
        match self {
            ConvBackend::GoldenDirect => conv::t_conv_input_grad(delta_out, k, geom),
            _ => zero_free::t_conv_input_grad_via_gemm_ws(delta_out, k, geom, self.mm(), ws),
        }
    }

    /// [`ConvBackend::w_conv_for_s_layer`] with transients drawn from the
    /// workspace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::w_conv_for_s_layer`].
    pub fn w_conv_for_s_layer_ws<T: Num>(
        self,
        input: &Fmaps<T>,
        delta_out: &Fmaps<T>,
        geom: &ConvGeom,
        ws: &mut ConvWorkspace<T>,
    ) -> TensorResult<Kernels<T>> {
        match self {
            ConvBackend::GoldenDirect => conv::w_conv_for_s_layer(input, delta_out, geom),
            _ => zero_free::w_conv_s_via_gemm_ws(input, delta_out, geom, self.mm(), ws),
        }
    }

    /// [`ConvBackend::w_conv_for_t_layer`] with transients drawn from the
    /// workspace.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::w_conv_for_t_layer`].
    pub fn w_conv_for_t_layer_ws<T: Num>(
        self,
        input: &Fmaps<T>,
        delta_out: &Fmaps<T>,
        geom: &ConvGeom,
        ws: &mut ConvWorkspace<T>,
    ) -> TensorResult<Kernels<T>> {
        match self {
            ConvBackend::GoldenDirect | ConvBackend::LoweredGemm => {
                self.w_conv_for_t_layer(input, delta_out, geom)
            }
            ConvBackend::ScalarRef | ConvBackend::LoweredZeroFree | ConvBackend::Parallel(_) => {
                zero_free::w_conv_t_zero_free_ws(input, delta_out, geom, self.mm(), ws)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const ALL: [ConvBackend; 5] = [
        ConvBackend::GoldenDirect,
        ConvBackend::ScalarRef,
        ConvBackend::LoweredGemm,
        ConvBackend::LoweredZeroFree,
        ConvBackend::Parallel(4),
    ];

    /// The packed-microkernel family: bit-identical to each other, within
    /// the fused-accumulation bound of golden for f32.
    const PACKED: [ConvBackend; 3] = [
        ConvBackend::LoweredGemm,
        ConvBackend::LoweredZeroFree,
        ConvBackend::Parallel(4),
    ];

    fn geom() -> ConvGeom {
        ConvGeom::down(10, 10, 4, 4, 2, 5, 5).unwrap()
    }

    /// Loose fused-vs-unfused accumulation bound for these unit-magnitude
    /// operands and short (≤ 48-term) reductions.
    const ACC_BOUND: f64 = 1e-4;

    #[test]
    fn every_backend_matches_golden_on_every_family() {
        let mut rng = SmallRng::seed_from_u64(30);
        let g = geom();
        let x: Fmaps<f32> = Fmaps::random(3, 10, 10, 1.0, &mut rng);
        let k: Kernels<f32> = Kernels::random(4, 3, 4, 4, 1.0, &mut rng);
        let y = ConvBackend::GoldenDirect.s_conv(&x, &k, &g).unwrap();
        let z: Fmaps<f32> = Fmaps::random(4, 5, 5, 1.0, &mut rng);
        let up = ConvBackend::GoldenDirect.t_conv(&z, &k, &g).unwrap();
        let sig = ConvBackend::GoldenDirect
            .s_conv_input_grad(&y, &k, &g, 10, 10)
            .unwrap();
        let tig = ConvBackend::GoldenDirect
            .t_conv_input_grad(&up, &k, &g)
            .unwrap();
        let ws = ConvBackend::GoldenDirect
            .w_conv_for_s_layer(&x, &y, &g)
            .unwrap();
        let wt = ConvBackend::GoldenDirect
            .w_conv_for_t_layer(&z, &up, &g)
            .unwrap();

        // The scalar reference backend reproduces golden bit for bit.
        let b = ConvBackend::ScalarRef;
        assert_eq!(y, b.s_conv(&x, &k, &g).unwrap(), "{b:?} s_conv");
        assert_eq!(up, b.t_conv(&z, &k, &g).unwrap(), "{b:?} t_conv");
        assert_eq!(
            sig,
            b.s_conv_input_grad(&y, &k, &g, 10, 10).unwrap(),
            "{b:?} s_conv_input_grad"
        );
        assert_eq!(
            tig,
            b.t_conv_input_grad(&up, &k, &g).unwrap(),
            "{b:?} t_conv_input_grad"
        );
        assert_eq!(
            ws,
            b.w_conv_for_s_layer(&x, &y, &g).unwrap(),
            "{b:?} w_conv_for_s_layer"
        );
        assert_eq!(
            wt,
            b.w_conv_for_t_layer(&z, &up, &g).unwrap(),
            "{b:?} w_conv_for_t_layer"
        );

        // The packed backends agree with each other bit for bit (the
        // single fused accumulation order) and with golden within the
        // accumulation bound.
        let ref_b = ConvBackend::LoweredZeroFree;
        let py = ref_b.s_conv(&x, &k, &g).unwrap();
        let pup = ref_b.t_conv(&z, &k, &g).unwrap();
        let psig = ref_b.s_conv_input_grad(&y, &k, &g, 10, 10).unwrap();
        let ptig = ref_b.t_conv_input_grad(&up, &k, &g).unwrap();
        let pws = ref_b.w_conv_for_s_layer(&x, &y, &g).unwrap();
        let pwt = ref_b.w_conv_for_t_layer(&z, &up, &g).unwrap();
        assert!(y.max_abs_diff(&py) <= ACC_BOUND, "packed s_conv vs golden");
        assert!(
            up.max_abs_diff(&pup) <= ACC_BOUND,
            "packed t_conv vs golden"
        );
        assert!(sig.max_abs_diff(&psig) <= ACC_BOUND, "packed sig vs golden");
        assert!(tig.max_abs_diff(&ptig) <= ACC_BOUND, "packed tig vs golden");
        assert!(ws.max_abs_diff(&pws) <= ACC_BOUND, "packed ws vs golden");
        assert!(wt.max_abs_diff(&pwt) <= ACC_BOUND, "packed wt vs golden");
        for b in PACKED {
            assert_eq!(py, b.s_conv(&x, &k, &g).unwrap(), "{b:?} s_conv");
            assert_eq!(pup, b.t_conv(&z, &k, &g).unwrap(), "{b:?} t_conv");
            assert_eq!(
                psig,
                b.s_conv_input_grad(&y, &k, &g, 10, 10).unwrap(),
                "{b:?} s_conv_input_grad"
            );
            assert_eq!(
                ptig,
                b.t_conv_input_grad(&up, &k, &g).unwrap(),
                "{b:?} t_conv_input_grad"
            );
            assert_eq!(
                pws,
                b.w_conv_for_s_layer(&x, &y, &g).unwrap(),
                "{b:?} w_conv_for_s_layer"
            );
            assert_eq!(
                pwt,
                b.w_conv_for_t_layer(&z, &up, &g).unwrap(),
                "{b:?} w_conv_for_t_layer"
            );
        }
    }

    #[test]
    fn workspace_variants_match_allocating_ones_on_every_backend() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = geom();
        let x: Fmaps<f32> = Fmaps::random(3, 10, 10, 1.0, &mut rng);
        let k: Kernels<f32> = Kernels::random(4, 3, 4, 4, 1.0, &mut rng);
        let z: Fmaps<f32> = Fmaps::random(4, 5, 5, 1.0, &mut rng);
        let mut ws: ConvWorkspace<f32> = ConvWorkspace::new();
        // Two rounds through one workspace: round two runs on recycled
        // (dirty) buffers, which is the state the zero-fill rules protect.
        for round in 0..2 {
            for b in ALL {
                let y = b.s_conv(&x, &k, &g).unwrap();
                assert_eq!(
                    y,
                    b.s_conv_ws(&x, &k, &g, &mut ws).unwrap(),
                    "{b:?} r{round}"
                );
                let up = b.t_conv(&z, &k, &g).unwrap();
                assert_eq!(
                    up,
                    b.t_conv_ws(&z, &k, &g, &mut ws).unwrap(),
                    "{b:?} r{round}"
                );
                assert_eq!(
                    b.s_conv_input_grad(&y, &k, &g, 10, 10).unwrap(),
                    b.s_conv_input_grad_ws(&y, &k, &g, 10, 10, &mut ws).unwrap(),
                    "{b:?} r{round}"
                );
                assert_eq!(
                    b.t_conv_input_grad(&up, &k, &g).unwrap(),
                    b.t_conv_input_grad_ws(&up, &k, &g, &mut ws).unwrap(),
                    "{b:?} r{round}"
                );
                assert_eq!(
                    b.w_conv_for_s_layer(&x, &y, &g).unwrap(),
                    b.w_conv_for_s_layer_ws(&x, &y, &g, &mut ws).unwrap(),
                    "{b:?} r{round}"
                );
                assert_eq!(
                    b.w_conv_for_t_layer(&z, &up, &g).unwrap(),
                    b.w_conv_for_t_layer_ws(&z, &up, &g, &mut ws).unwrap(),
                    "{b:?} r{round}"
                );
            }
        }
    }

    #[test]
    fn default_is_zero_free() {
        assert_eq!(ConvBackend::default(), ConvBackend::LoweredZeroFree);
    }

    #[test]
    fn backends_propagate_shape_errors() {
        let g = geom();
        let x: Fmaps<f32> = Fmaps::zeros(2, 10, 10);
        let k: Kernels<f32> = Kernels::zeros(4, 3, 4, 4);
        for b in ALL {
            assert!(b.s_conv(&x, &k, &g).is_err(), "{b:?}");
            assert!(b.t_conv(&x, &k, &g).is_err(), "{b:?}");
        }
    }
}
