//! `im2col + GEMM` — the convolution lowering Caffe (the paper's CPU/GPU
//! baseline software) actually executes.
//!
//! Lowering a convolution to a matrix multiply materialises one input patch
//! per output position. For `S-CONV` that is merely redundant; for `T-CONV`
//! the patches come from the **zero-inserted** map, so the GEMM multiplies
//! through every inserted zero — this module makes that cost measurable
//! ([`Lowered::zero_fraction`]) and is the concrete justification for the
//! lower `T-CONV` efficiency factors in `zfgan-platforms`.
//!
//! Everything here is validated against the direct loop nests of
//! [`crate::s_conv`] / [`crate::t_conv`].

use crate::error::{ShapeError, TensorResult};
use crate::fmaps::Fmaps;
use crate::gemm::MatmulKind;
use crate::kernels::Kernels;
use crate::num::Num;
use crate::shape::ConvGeom;
use crate::workspace::ConvWorkspace;
use crate::zeros::insert_zeros;

/// A dense row-major matrix — just enough linear algebra for the lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Num> Matrix<T> {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }

    /// Mutably borrow element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}×{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consumes the matrix, returning its flat buffer — how matrices give
    /// their storage back to a [`crate::ConvWorkspace`].
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Flat mutable row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Borrow row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Fraction of elements that are exactly zero.
    pub fn zero_fraction(&self) -> f64 {
        self.data.iter().filter(|v| v.is_zero()).count() as f64 / self.data.len() as f64
    }

    /// Plain triple-loop GEMM: `self × rhs`.
    ///
    /// # Errors
    ///
    /// Returns an error if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix<T>) -> TensorResult<Matrix<T>> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul`] into a caller-provided output matrix, which is
    /// zero-filled first (the triple loop accumulates with `+=`). The
    /// allocation-free form the workspace conv path uses; bit-identical to
    /// [`Matrix::matmul`].
    ///
    /// # Errors
    ///
    /// Returns an error if the inner dimensions disagree or `out` has the
    /// wrong shape.
    pub fn matmul_into(&self, rhs: &Matrix<T>, out: &mut Matrix<T>) -> TensorResult<()> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new(format!(
                "matmul inner dimensions disagree: {}×{} vs {}×{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        if out.rows != self.rows || out.cols != rhs.cols {
            return Err(ShapeError::new(format!(
                "matmul output shape {}×{} does not match {}×{}",
                out.rows, out.cols, self.rows, rhs.cols
            )));
        }
        out.data.fill(T::zero());
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.data[i * rhs.cols + j] += a * rhs.data[k * rhs.cols + j];
                }
            }
        }
        Ok(())
    }
}

/// The lowered form of one convolution: the patch matrix plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Lowered<T> {
    /// Patch matrix: one row per output position, `N_if·K_h·K_w` columns.
    pub patches: Matrix<T>,
    /// Output spatial size `(oh, ow)`.
    pub out_hw: (usize, usize),
}

impl<T: Num> Lowered<T> {
    /// Fraction of the patch matrix that is zeros — the ineffectual-operand
    /// share a GEMM grinds through.
    pub fn zero_fraction(&self) -> f64 {
        self.patches.zero_fraction()
    }
}

/// The `S-CONV` patch fill loop, shared by the allocating and workspace
/// lowerings. Writes every cell of `patches`.
pub(crate) fn fill_im2col_s<T: Num>(
    patches: &mut Matrix<T>,
    input: &Fmaps<T>,
    geom: &ConvGeom,
    oh: usize,
    ow: usize,
) {
    let stride = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            let mut col = 0;
            for c in 0..input.channels() {
                for ky in 0..geom.kh() {
                    for kx in 0..geom.kw() {
                        let iy = stride * oy as isize + ky as isize - pt;
                        let ix = stride * ox as isize + kx as isize - pl;
                        *patches.at_mut(row, col) = input.at_padded(c, iy, ix);
                        col += 1;
                    }
                }
            }
        }
    }
}

/// Lowers an `S-CONV` input into patch-matrix form.
pub fn im2col_s<T: Num>(input: &Fmaps<T>, geom: &ConvGeom) -> Lowered<T> {
    let (oh, ow) = geom.down_out(input.height(), input.width());
    let cols = input.channels() * geom.kh() * geom.kw();
    let mut patches = Matrix::zeros(oh * ow, cols);
    fill_im2col_s(&mut patches, input, geom, oh, ow);
    Lowered {
        patches,
        out_hw: (oh, ow),
    }
}

/// [`im2col_s`] drawing the patch matrix from a [`ConvWorkspace`] instead
/// of allocating it. Bit-identical to [`im2col_s`]; return the patches via
/// [`ConvWorkspace::give_matrix`] when done.
pub fn im2col_s_ws<T: Num>(
    input: &Fmaps<T>,
    geom: &ConvGeom,
    ws: &mut ConvWorkspace<T>,
) -> Lowered<T> {
    let (oh, ow) = geom.down_out(input.height(), input.width());
    let cols = input.channels() * geom.kh() * geom.kw();
    let mut patches = ws.take_matrix(oh * ow, cols);
    fill_im2col_s(&mut patches, input, geom, oh, ow);
    Lowered {
        patches,
        out_hw: (oh, ow),
    }
}

/// Lowers a `T-CONV` input the way Caffe's deconvolution path effectively
/// does: zero-insert, then unit-stride `im2col` with the flipped-kernel
/// padding. The resulting patch matrix is mostly zeros.
pub fn im2col_t<T: Num>(input: &Fmaps<T>, geom: &ConvGeom) -> Lowered<T> {
    let (oh, ow) = geom.up_out(input.height(), input.width());
    im2col_t_with_output_size(input, geom, oh, ow)
}

/// [`im2col_t`] with an explicit output size — the backward error pass of
/// an S-CONV layer must recreate the layer's original input size, which a
/// strided down-sampling may have quantised away.
pub fn im2col_t_with_output_size<T: Num>(
    input: &Fmaps<T>,
    geom: &ConvGeom,
    oh: usize,
    ow: usize,
) -> Lowered<T> {
    let zi = insert_zeros(input, geom.stride());
    let (pt, _, pl, _) = geom.t_conv_pads();
    let cols = input.channels() * geom.kh() * geom.kw();
    let mut patches = Matrix::zeros(oh * ow, cols);
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            let mut col = 0;
            for c in 0..input.channels() {
                for ky in 0..geom.kh() {
                    for kx in 0..geom.kw() {
                        let zy = oy as isize + ky as isize - pt as isize;
                        let zx = ox as isize + kx as isize - pl as isize;
                        *patches.at_mut(row, col) = zi.at_padded(c, zy, zx);
                        col += 1;
                    }
                }
            }
        }
    }
    Lowered {
        patches,
        out_hw: (oh, ow),
    }
}

/// The `S-CONV` weight-matrix fill, shared by the allocating and workspace
/// reshapes. Writes every cell of `m`.
pub(crate) fn fill_weights_as_matrix_s<T: Num>(m: &mut Matrix<T>, k: &Kernels<T>) {
    // Row-major traversal: contiguous writes per output row; for a fixed
    // `if_` the strided reads revisit the same few cache lines of every
    // `of` block across the `(ky, kx)` sweep, so the kernel tensor
    // streams through cache once instead of once per output column.
    let (n_if, kh, kw) = (k.n_if(), k.kh(), k.kw());
    let kdata = k.as_slice();
    let mut row = 0;
    for if_ in 0..n_if {
        for ky in 0..kh {
            for kx in 0..kw {
                let off = (if_ * kh + ky) * kw + kx;
                let dst = m.row_mut(row);
                for (of, d) in dst.iter_mut().enumerate() {
                    *d = kdata[of * n_if * kh * kw + off];
                }
                row += 1;
            }
        }
    }
}

/// Specification form of [`fill_weights_as_matrix_s`]: column-major
/// traversal through the kernel accessor, as the reshape is defined. The
/// reference engines run this loop (see
/// [`crate::gemm::MatmulKind::is_reference`]); tests pin it bit-identical
/// to the row-major fill.
pub(crate) fn fill_weights_as_matrix_s_ref<T: Num>(m: &mut Matrix<T>, k: &Kernels<T>) {
    for of in 0..k.n_of() {
        let mut row = 0;
        for if_ in 0..k.n_if() {
            for ky in 0..k.kh() {
                for kx in 0..k.kw() {
                    *m.at_mut(row, of) = *k.at(of, if_, ky, kx);
                    row += 1;
                }
            }
        }
    }
}

/// Picks the specification or cache-tuned weight fill by GEMM family.
pub(crate) fn fill_weights_as_matrix_s_for<T: Num>(
    m: &mut Matrix<T>,
    k: &Kernels<T>,
    mm: crate::gemm::MatmulKind,
) {
    if mm.is_reference() {
        fill_weights_as_matrix_s_ref(m, k);
    } else {
        fill_weights_as_matrix_s(m, k);
    }
}

/// Fills one row `r` of the [`fill_weights_as_matrix_s`] reshape — the
/// per-row form the streamed GEMM lowering pulls through
/// [`crate::gemm`]'s row callback, so the full weight matrix need never
/// be materialised. Row `r` is the linear `(if_, ky, kx)` index, which is
/// exactly the kernel tensor's within-block offset. Writes every element
/// of `row`.
pub(crate) fn fill_weights_as_matrix_s_row<T: Num>(k: &Kernels<T>, r: usize, row: &mut [T]) {
    let block = k.n_if() * k.kh() * k.kw();
    let kdata = k.as_slice();
    for (of, d) in row.iter_mut().enumerate() {
        *d = kdata[of * block + r];
    }
}

/// Fills one row `r` (output position `oy·ow + ox`) of the
/// [`fill_im2col_s`] patch matrix — the per-row form for streamed GEMM
/// lowering. Writes every element of `row`.
pub(crate) fn fill_im2col_s_row<T: Num>(
    input: &Fmaps<T>,
    geom: &ConvGeom,
    ow: usize,
    r: usize,
    row: &mut [T],
) {
    let stride = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let (oy, ox) = (r / ow, r % ow);
    let mut col = 0;
    for c in 0..input.channels() {
        for ky in 0..geom.kh() {
            for kx in 0..geom.kw() {
                let iy = stride * oy as isize + ky as isize - pt;
                let ix = stride * ox as isize + kx as isize - pl;
                row[col] = input.at_padded(c, iy, ix);
                col += 1;
            }
        }
    }
}

/// Reshapes an `S-CONV` weight tensor into the `(N_if·K_h·K_w) × N_of` GEMM
/// operand.
pub fn weights_as_matrix_s<T: Num>(k: &Kernels<T>) -> Matrix<T> {
    let mut m = Matrix::zeros(k.n_if() * k.kh() * k.kw(), k.n_of());
    fill_weights_as_matrix_s(&mut m, k);
    m
}

/// [`weights_as_matrix_s`] drawing its matrix from a [`ConvWorkspace`].
pub fn weights_as_matrix_s_ws<T: Num>(k: &Kernels<T>, ws: &mut ConvWorkspace<T>) -> Matrix<T> {
    let mut m = ws.take_matrix(k.n_if() * k.kh() * k.kw(), k.n_of());
    fill_weights_as_matrix_s(&mut m, k);
    m
}

/// Reshapes a (down-layout) weight tensor for the `T-CONV` GEMM: the
/// flipped kernels, indexed by the transposed channel roles.
pub fn weights_as_matrix_t<T: Num>(k: &Kernels<T>) -> Matrix<T> {
    // Row-major traversal for the same cache-behaviour reason as
    // [`fill_weights_as_matrix_s`]: contiguous writes, reads confined to
    // one `sf` block per row group.
    let (n_if, kh, kw) = (k.n_if(), k.kh(), k.kw());
    let mut m = Matrix::zeros(k.n_of() * kh * kw, n_if);
    let kdata = k.as_slice();
    let mut row = 0;
    for sf in 0..k.n_of() {
        for ky in 0..kh {
            for kx in 0..kw {
                let tap = (kh - 1 - ky) * kw + (kw - 1 - kx);
                let base = sf * n_if * kh * kw + tap;
                let dst = m.row_mut(row);
                for (lf, d) in dst.iter_mut().enumerate() {
                    *d = kdata[base + lf * kh * kw];
                }
                row += 1;
            }
        }
    }
    m
}

/// `S-CONV` computed by `im2col + GEMM`. Bit-equivalent (up to float
/// summation order) to [`crate::s_conv`].
///
/// # Errors
///
/// Returns an error if `k` does not match `input`'s channel count.
pub fn s_conv_via_gemm<T: Num>(
    input: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
) -> TensorResult<Fmaps<T>> {
    if k.n_if() != input.channels() {
        return Err(ShapeError::new("kernel/input channel mismatch"));
    }
    let lowered = im2col_s(input, geom);
    let product = lowered.patches.matmul(&weights_as_matrix_s(k))?;
    let (oh, ow) = lowered.out_hw;
    let mut out = Fmaps::zeros(k.n_of(), oh, ow);
    for of in 0..k.n_of() {
        for oy in 0..oh {
            for ox in 0..ow {
                *out.at_mut(of, oy, ox) = *product.at(oy * ow + ox, of);
            }
        }
    }
    Ok(out)
}

/// `S-CONV` by lowering with an explicit GEMM kernel, drawing every
/// transient (patches, weight matrix, product, output maps) from the
/// workspace. Bit-identical to the allocating lowering for the same
/// [`MatmulKind`]; the returned maps belong to the caller (recycle them
/// via [`ConvWorkspace::give_fmaps`]).
///
/// # Errors
///
/// Returns an error if `k` does not match `input`'s channel count.
pub fn s_conv_via_gemm_ws<T: Num>(
    input: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
    mm: MatmulKind,
    ws: &mut ConvWorkspace<T>,
) -> TensorResult<Fmaps<T>> {
    if k.n_if() != input.channels() {
        return Err(ShapeError::new("kernel/input channel mismatch"));
    }
    let lowered = im2col_s_ws(input, geom, ws);
    let product = if mm.is_reference() {
        let mut wmat = ws.take_matrix(k.n_if() * k.kh() * k.kw(), k.n_of());
        fill_weights_as_matrix_s_for(&mut wmat, k, mm);
        let product = mm.run_ws(&lowered.patches, &wmat, ws)?;
        ws.give_matrix(wmat);
        product
    } else {
        // Streamed lowering: weight-matrix rows are produced on demand, so
        // when the dispatcher picks the small-m streamed engine, rows whose
        // patch column is entirely zero are never built at all.
        crate::gemm::matmul_streamed_ws(
            mm,
            &lowered.patches,
            k.n_if() * k.kh() * k.kw(),
            k.n_of(),
            &mut |r, row| fill_weights_as_matrix_s_row(k, r, row),
            ws,
        )?
    };
    ws.give_matrix(lowered.patches);
    let (oh, ow) = lowered.out_hw;
    let mut out = ws.take_fmaps(k.n_of(), oh, ow);
    for of in 0..k.n_of() {
        for oy in 0..oh {
            for ox in 0..ow {
                *out.at_mut(of, oy, ox) = *product.at(oy * ow + ox, of);
            }
        }
    }
    ws.give_matrix(product);
    Ok(out)
}

/// `T-CONV` computed by zero-insert + `im2col + GEMM` — the Caffe
/// deconvolution cost model made executable.
///
/// # Errors
///
/// Returns an error if `k` does not match `input`'s channel count.
pub fn t_conv_via_gemm<T: Num>(
    input: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
) -> TensorResult<Fmaps<T>> {
    if k.n_of() != input.channels() {
        return Err(ShapeError::new("kernel/input channel mismatch"));
    }
    let lowered = im2col_t(input, geom);
    let product = lowered.patches.matmul(&weights_as_matrix_t(k))?;
    let (oh, ow) = lowered.out_hw;
    let mut out = Fmaps::zeros(k.n_if(), oh, ow);
    for lf in 0..k.n_if() {
        for oy in 0..oh {
            for ox in 0..ow {
                *out.at_mut(lf, oy, ox) = *product.at(oy * ow + ox, lf);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{s_conv, t_conv};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn geom() -> ConvGeom {
        ConvGeom::down(12, 12, 4, 4, 2, 6, 6).unwrap()
    }

    #[test]
    fn matmul_known_values() {
        let mut a: Matrix<f64> = Matrix::zeros(2, 2);
        *a.at_mut(0, 0) = 1.0;
        *a.at_mut(0, 1) = 2.0;
        *a.at_mut(1, 0) = 3.0;
        *a.at_mut(1, 1) = 4.0;
        let b = a.clone();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[7.0, 10.0, 15.0, 22.0]);
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a: Matrix<f64> = Matrix::zeros(2, 3);
        let b: Matrix<f64> = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    /// The specification fill and the cache-tuned fill are the same
    /// reshape in different traversal orders — bit-identical results.
    #[test]
    fn weight_fill_families_are_bit_identical() {
        let mut rng = SmallRng::seed_from_u64(9);
        for (n_of, n_if, kh, kw) in [(5, 3, 4, 4), (1, 7, 5, 5), (8, 1, 7, 7), (2, 2, 1, 1)] {
            let k: Kernels<f32> = Kernels::random(n_of, n_if, kh, kw, 1.0, &mut rng);
            let mut tuned = Matrix::zeros(n_if * kh * kw, n_of);
            fill_weights_as_matrix_s(&mut tuned, &k);
            let mut reference = Matrix::zeros(n_if * kh * kw, n_of);
            fill_weights_as_matrix_s_ref(&mut reference, &k);
            assert_eq!(tuned, reference, "{n_of}x{n_if}x{kh}x{kw}");
        }
    }

    #[test]
    fn s_conv_gemm_matches_direct() {
        let mut rng = SmallRng::seed_from_u64(1);
        let x: Fmaps<f64> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
        let direct = s_conv(&x, &k, &geom()).unwrap();
        let gemm = s_conv_via_gemm(&x, &k, &geom()).unwrap();
        assert!(direct.max_abs_diff(&gemm) < 1e-9);
    }

    #[test]
    fn t_conv_gemm_matches_direct() {
        let mut rng = SmallRng::seed_from_u64(2);
        let x: Fmaps<f64> = Fmaps::random(5, 6, 6, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
        let direct = t_conv(&x, &k, &geom()).unwrap();
        let gemm = t_conv_via_gemm(&x, &k, &geom()).unwrap();
        assert!(direct.max_abs_diff(&gemm) < 1e-9);
    }

    #[test]
    fn t_conv_patches_are_mostly_zeros() {
        // The Caffe-cost story: the T-CONV patch matrix is ~3/4 zeros for
        // stride 2 (plus padding), while the S-CONV one has only padding
        // zeros.
        let mut rng = SmallRng::seed_from_u64(3);
        let dense: Fmaps<f64> = Fmaps::random(2, 6, 6, 1.0, &mut rng);
        let t = im2col_t(&dense, &geom());
        assert!(t.zero_fraction() > 0.65, "T fraction {}", t.zero_fraction());
        let big: Fmaps<f64> = Fmaps::random(2, 12, 12, 1.0, &mut rng);
        let s = im2col_s(&big, &geom());
        assert!(s.zero_fraction() < 0.2, "S fraction {}", s.zero_fraction());
    }

    #[test]
    fn gemm_rejects_channel_mismatch() {
        let x: Fmaps<f64> = Fmaps::zeros(2, 12, 12);
        let k: Kernels<f64> = Kernels::zeros(5, 3, 4, 4);
        assert!(s_conv_via_gemm(&x, &k, &geom()).is_err());
        let z: Fmaps<f64> = Fmaps::zeros(2, 6, 6);
        assert!(t_conv_via_gemm(&z, &k, &geom()).is_err());
    }

    #[test]
    fn asymmetric_padding_also_matches() {
        let g = ConvGeom::down(14, 14, 5, 5, 2, 7, 7).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let x: Fmaps<f64> = Fmaps::random(2, 14, 14, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(4, 2, 5, 5, 1.0, &mut rng);
        let a = s_conv(&x, &k, &g).unwrap();
        let b = s_conv_via_gemm(&x, &k, &g).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-9);
        let z: Fmaps<f64> = Fmaps::random(4, 7, 7, 1.0, &mut rng);
        let c = t_conv(&z, &k, &g).unwrap();
        let d = t_conv_via_gemm(&z, &k, &g).unwrap();
        assert!(c.max_abs_diff(&d) < 1e-9);
    }
}
