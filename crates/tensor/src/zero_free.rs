//! Zero-free convolution lowerings — the software mirror of the paper's
//! ZFOST/ZFWST dataflows.
//!
//! The Caffe-style lowering in [`crate::im2col`] materialises every zero
//! the zero-inserting transformations create: `T-CONV` patches are ~3/4
//! inserted zeros at stride 2, and the `W-CONV` of a T-CONV layer
//! correlates a zero-inserted input. The hardware answer in the paper is
//! to *reorganise the computation* so those zeros are never fetched; this
//! module is the same idea in software.
//!
//! For `T-CONV`, the output pixels are split into `stride²` phases by
//! their coordinates mod the stride. Within one phase every output pixel
//! uses the *same* subset of (flipped) kernel taps — exactly the
//! observation behind ZFOST's zero-free output-stationary schedule — so
//! the phase lowers to a compact patch matrix whose columns enumerate
//! only the kept taps. Inserted zeros are never materialised; only
//! boundary (padding) zeros remain, and they are skipped by the GEMM's
//! zero-operand test. [`im2col_t_zero_free`] exposes the compact patch
//! matrices so the residual zero share is measurable through
//! [`Lowered::zero_fraction`], next to the dense lowering's.
//!
//! For `W-CONV` of a T-CONV layer, the gradient is a GEMM between the
//! *compact* input (as a channels × pixels matrix) and a patch matrix of
//! the output error — the zero-inserted input of the textbook formulation
//! ([`w_conv_t_via_zero_insert_gemm`]) never exists, mirroring ZFWST's
//! "zero-inserting in input" elimination. For `W-CONV` of an S-CONV layer
//! the dilated-error operand is likewise never built.
//!
//! The *lowering* itself never changes results: per output element the
//! compact operands carry the same terms in the same order as the golden
//! loop nests, with only exact-zero terms (which cannot change a finite
//! accumulation) skipped. Run with a scalar GEMM
//! ([`MatmulKind::Naive`]/[`MatmulKind::BlockedScalar`]), every function
//! here is therefore **bit-identical** to its golden nest in
//! [`crate::conv`]. Run with the packed microkernel
//! ([`MatmulKind::Blocked`]/[`MatmulKind::Parallel`]), the f32 results
//! follow the kernel's own fused accumulation order instead (still
//! deterministic; see [`crate::microkernel`]), while `Fx` and `f64` stay
//! bit-identical to golden. `tests/fast_conv.rs` pins both contracts over
//! random geometries.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{ShapeError, TensorResult};
use crate::fmaps::Fmaps;
use crate::gemm::MatmulKind;
use crate::im2col::{fill_im2col_s_row, im2col_s, im2col_s_ws, Lowered, Matrix};
use crate::kernels::Kernels;
use crate::num::Num;
use crate::shape::ConvGeom;
use crate::workspace::ConvWorkspace;
use crate::zeros::insert_zeros;

/// One stride-phase of a zero-free `T-CONV`: the output pixels with
/// `oy ≡ ry`, `ox ≡ rx (mod stride)` and the kernel taps that can reach
/// them.
#[derive(Debug)]
struct TPhase {
    /// Output rows of this phase, ascending.
    oys: Vec<usize>,
    /// Output columns of this phase, ascending.
    oxs: Vec<usize>,
    /// Kept flipped-kernel row indices `ky′`, ascending — ascending `ky′`
    /// is ascending source row `iy`, the golden scatter's order.
    kys: Vec<usize>,
    /// Kept flipped-kernel column indices `kx′`, ascending.
    kxs: Vec<usize>,
}

/// Enumerates the `stride²` phases of a `T-CONV` output of size `oh × ow`.
fn t_phases(geom: &ConvGeom, oh: usize, ow: usize) -> Vec<TPhase> {
    let s = geom.stride();
    let (pt, _, pl, _) = geom.t_conv_pads();
    let keep = |r: usize, pad: usize, kdim: usize| -> Vec<usize> {
        (0..kdim)
            .filter(|&k| (r as isize + k as isize - pad as isize).rem_euclid(s as isize) == 0)
            .collect()
    };
    let mut phases = Vec::with_capacity(s * s);
    for ry in 0..s {
        for rx in 0..s {
            let oys: Vec<usize> = (ry..oh).step_by(s).collect();
            let oxs: Vec<usize> = (rx..ow).step_by(s).collect();
            if oys.is_empty() || oxs.is_empty() {
                continue;
            }
            phases.push(TPhase {
                oys,
                oxs,
                kys: keep(ry, pt, geom.kh()),
                kxs: keep(rx, pl, geom.kw()),
            });
        }
    }
    phases
}

/// Shape-keyed memo of [`t_phases`] decompositions, embedded in
/// [`ConvWorkspace`]. A GAN's layer geometries repeat every step, and
/// `t_phases` allocates a handful of index vectors per call — caching them
/// behind `Arc`s removes the last per-call allocation from the zero-free
/// T-CONV hot path (`Arc` rather than `Rc` keeps the workspace `Send`).
#[derive(Debug, Default)]
pub(crate) struct PhaseCache {
    #[allow(clippy::type_complexity)]
    map: HashMap<(usize, usize, usize, usize, usize, usize, usize), Arc<Vec<TPhase>>>,
}

impl PhaseCache {
    /// The phase decomposition for `(geom, oh, ow)`, computed at most once
    /// per distinct shape. The key covers every input `t_phases` reads.
    fn get(&mut self, geom: &ConvGeom, oh: usize, ow: usize) -> Arc<Vec<TPhase>> {
        let (pt, _, pl, _) = geom.t_conv_pads();
        let key = (geom.stride(), pt, pl, geom.kh(), geom.kw(), oh, ow);
        Arc::clone(
            self.map
                .entry(key)
                .or_insert_with(|| Arc::new(t_phases(geom, oh, ow))),
        )
    }
}

/// The phases for one zero-free T-CONV call: memoized through the
/// workspace when reuse is on, computed fresh (like the pre-workspace
/// code) when it is off.
fn phases_for<T>(
    ws: &mut ConvWorkspace<T>,
    geom: &ConvGeom,
    oh: usize,
    ow: usize,
) -> Arc<Vec<TPhase>> {
    if ws.reuse() {
        ws.phases.get(geom, oh, ow)
    } else {
        Arc::new(t_phases(geom, oh, ow))
    }
}

/// The patch fill loop of [`t_phase_patches`], shared by the allocating
/// and workspace lowerings. Writes only in-bounds entries, so `patches`
/// **must** start zero-filled.
fn fill_t_phase_patches<T: Num>(
    patches: &mut Matrix<T>,
    input: &Fmaps<T>,
    geom: &ConvGeom,
    phase: &TPhase,
) {
    let s = geom.stride() as isize;
    let su = geom.stride();
    let (pt, _, pl, _) = geom.t_conv_pads();
    let (ih, iw) = (input.height() as isize, input.width() as isize);
    let iw_s = iw * s;
    let (nky, nkx) = (phase.kys.len(), phase.kxs.len());
    let data = input.as_slice();
    let ch_stride = (ih * iw) as usize;
    // zy/zx ≡ 0 (mod s) by construction of the kept taps; a tap is a real
    // source pixel iff it lands inside the map. Row-major traversal with
    // flat-slice writes: each output row is written contiguously, the
    // y-axis division is hoisted out of the inner tap loop, and the
    // strided reads stay inside one `sf` channel block per row group —
    // small enough to sit in cache. No scratch is allocated (the conv hot
    // path is zero-allocation in steady state, `tests/zero_alloc.rs`).
    for (ri, &oy) in phase.oys.iter().enumerate() {
        for (rj, &ox) in phase.oxs.iter().enumerate() {
            let row = ri * phase.oxs.len() + rj;
            let dst = patches.row_mut(row);
            for (sf, dchunk) in dst.chunks_exact_mut(nky * nkx).enumerate() {
                let cbase = sf * ch_stride;
                for (kyi, &ky) in phase.kys.iter().enumerate() {
                    let zy = oy as isize + ky as isize - pt as isize;
                    if zy < 0 || zy / s >= ih {
                        continue;
                    }
                    let src = cbase + (zy / s) as usize * iw as usize;
                    let db = kyi * nkx;
                    for (kxi, &kx) in phase.kxs.iter().enumerate() {
                        let zx = ox as isize + kx as isize - pl as isize;
                        if zx >= 0 && zx < iw_s {
                            dchunk[db + kxi] = data[src + zx as usize / su];
                        }
                    }
                }
            }
        }
    }
}

/// Specification form of [`fill_t_phase_patches`]: one bounds check and
/// stride division per matrix entry, written exactly as the lowering is
/// defined. The reference engines ([`MatmulKind::is_reference`]) run this
/// loop so their cost model stays that of the pre-microkernel engine;
/// tests pin it bit-identical to the table-driven fill.
fn fill_t_phase_patches_ref<T: Num>(
    patches: &mut Matrix<T>,
    input: &Fmaps<T>,
    geom: &ConvGeom,
    phase: &TPhase,
) {
    let s = geom.stride() as isize;
    let (pt, _, pl, _) = geom.t_conv_pads();
    let (ih, iw) = (input.height() as isize, input.width() as isize);
    for (ri, &oy) in phase.oys.iter().enumerate() {
        for (rj, &ox) in phase.oxs.iter().enumerate() {
            let row = ri * phase.oxs.len() + rj;
            let mut col = 0;
            for sf in 0..input.channels() {
                for &ky in &phase.kys {
                    // zy ≡ 0 (mod s) by construction of the kept taps; it
                    // is a real source pixel iff it lands inside the map.
                    let zy = oy as isize + ky as isize - pt as isize;
                    for &kx in &phase.kxs {
                        let zx = ox as isize + kx as isize - pl as isize;
                        if zy >= 0 && zx >= 0 && zy / s < ih && zx / s < iw {
                            *patches.at_mut(row, col) =
                                *input.at(sf, (zy / s) as usize, (zx / s) as usize);
                        }
                        col += 1;
                    }
                }
            }
        }
    }
}

/// Picks the specification or table-driven patch fill by GEMM family.
fn fill_t_phase_patches_for<T: Num>(
    m: &mut Matrix<T>,
    input: &Fmaps<T>,
    geom: &ConvGeom,
    phase: &TPhase,
    mm: MatmulKind,
) {
    if mm.is_reference() {
        fill_t_phase_patches_ref(m, input, geom, phase);
    } else {
        fill_t_phase_patches(m, input, geom, phase);
    }
}

/// Builds one phase's compact patch matrix. Rows enumerate the phase's
/// output pixels (row-major); columns enumerate `(sf, ky′, kx′)` over the
/// kept taps. Entries outside the real input (boundary, not inserted) are
/// zero.
fn t_phase_patches<T: Num>(input: &Fmaps<T>, geom: &ConvGeom, phase: &TPhase) -> Matrix<T> {
    let cols = input.channels() * phase.kys.len() * phase.kxs.len();
    let mut patches = Matrix::zeros(phase.oys.len() * phase.oxs.len(), cols);
    fill_t_phase_patches(&mut patches, input, geom, phase);
    patches
}

/// The weight fill loop of [`t_phase_weights`], shared by the allocating
/// and workspace reshapes. Writes every cell of `m`.
fn fill_t_phase_weights<T: Num>(m: &mut Matrix<T>, k: &Kernels<T>, phase: &TPhase) {
    // Row-major traversal: each output row is written contiguously, and
    // the strided kernel reads stay inside one `sf` block (`n_if·kh·kw`
    // elements) that is revisited for every kept tap — small enough to
    // sit in cache. The column-major variant (outer `lf`) walks the whole
    // matrix once per column and is memory-bound on the writes.
    for row in 0..m.rows() {
        fill_t_phase_weights_row(m.row_mut(row), k, phase, row);
    }
}

/// One row of [`fill_t_phase_weights`]: row `(sf, ky′, kx′)` of the phase
/// weight matrix, written contiguously across the `lf` columns. The
/// streamed-lowering fill for the phase GEMM — live rows are generated
/// straight into the driver's hot row buffer, so phases the dispatch
/// layer routes off the packed path never materialize the weight matrix.
fn fill_t_phase_weights_row<T: Num>(dst: &mut [T], k: &Kernels<T>, phase: &TPhase, row: usize) {
    let (n_if, kh, kw) = (k.n_if(), k.kh(), k.kw());
    let kdata = k.as_slice();
    let kxi = row % phase.kxs.len();
    let rest = row / phase.kxs.len();
    let kyi = rest % phase.kys.len();
    let sf = rest / phase.kys.len();
    let tap = (kh - 1 - phase.kys[kyi]) * kw + (kw - 1 - phase.kxs[kxi]);
    let base = sf * n_if * kh * kw + tap;
    for (lf, d) in dst.iter_mut().enumerate() {
        *d = kdata[base + lf * kh * kw];
    }
}

/// Specification form of [`fill_t_phase_weights`]: column-major traversal
/// through the kernel accessor, written exactly as the reshape is defined.
/// The reference engines run this loop (see [`MatmulKind::is_reference`]);
/// tests pin it bit-identical to the row-major fill.
fn fill_t_phase_weights_ref<T: Num>(m: &mut Matrix<T>, k: &Kernels<T>, phase: &TPhase) {
    let (kh, kw) = (k.kh(), k.kw());
    for lf in 0..k.n_if() {
        let mut row = 0;
        for sf in 0..k.n_of() {
            for &ky in &phase.kys {
                for &kx in &phase.kxs {
                    *m.at_mut(row, lf) = *k.at(sf, lf, kh - 1 - ky, kw - 1 - kx);
                    row += 1;
                }
            }
        }
    }
}

/// Picks the specification or cache-tuned weight fill by GEMM family.
fn fill_t_phase_weights_for<T: Num>(
    m: &mut Matrix<T>,
    k: &Kernels<T>,
    phase: &TPhase,
    mm: MatmulKind,
) {
    if mm.is_reference() {
        fill_t_phase_weights_ref(m, k, phase);
    } else {
        fill_t_phase_weights(m, k, phase);
    }
}

/// The row subset of [`crate::im2col::weights_as_matrix_t`] matching one
/// phase's kept taps: rows are `(sf, ky′, kx′)`, columns the large-side
/// output channels.
fn t_phase_weights<T: Num>(k: &Kernels<T>, phase: &TPhase) -> Matrix<T> {
    let rows = k.n_of() * phase.kys.len() * phase.kxs.len();
    let mut m = Matrix::zeros(rows, k.n_if());
    fill_t_phase_weights(&mut m, k, phase);
    m
}

/// The compact per-phase patch matrices of a zero-free `T-CONV` lowering,
/// for ineffectual-operand accounting: compare these matrices'
/// [`Lowered::zero_fraction`] (only boundary zeros remain) with
/// [`crate::im2col::im2col_t`]'s (inserted zeros dominate). Each entry's
/// `out_hw` is the phase's output grid. Phases with no reachable kernel
/// taps produce no patches.
pub fn im2col_t_zero_free<T: Num>(input: &Fmaps<T>, geom: &ConvGeom) -> Vec<Lowered<T>> {
    let (oh, ow) = geom.up_out(input.height(), input.width());
    t_phases(geom, oh, ow)
        .iter()
        .filter(|p| !p.kys.is_empty() && !p.kxs.is_empty())
        .map(|p| Lowered {
            patches: t_phase_patches(input, geom, p),
            out_hw: (p.oys.len(), p.oxs.len()),
        })
        .collect()
}

/// The per-phase GEMM operand pairs `(patches, weights)` of a zero-free
/// `T-CONV` — the exact matrices [`t_conv_zero_free`] multiplies, exposed
/// so fault-injection campaigns can drive each phase's GEMM through
/// instrumented kernels (ABFT checks, accumulator corruption) without
/// re-deriving the dataflow. Phases with no reachable kernel taps are
/// omitted, matching [`im2col_t_zero_free`].
///
/// # Errors
///
/// Returns an error if `k.n_of() != input.channels()`.
pub fn t_zero_free_gemm_operands<T: Num>(
    input: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
) -> TensorResult<Vec<(Matrix<T>, Matrix<T>)>> {
    if k.n_of() != input.channels() {
        return Err(ShapeError::new(format!(
            "kernel's down-direction output side is {} maps, t_conv input has {}",
            k.n_of(),
            input.channels()
        )));
    }
    let (oh, ow) = geom.up_out(input.height(), input.width());
    Ok(t_phases(geom, oh, ow)
        .iter()
        .filter(|p| !p.kys.is_empty() && !p.kxs.is_empty())
        .map(|p| (t_phase_patches(input, geom, p), t_phase_weights(k, p)))
        .collect())
}

/// Zero-free `T-CONV`: compact per-phase lowering + GEMM, bit-identical
/// to [`crate::t_conv`].
///
/// # Errors
///
/// Returns an error if `k.n_of() != input.channels()`.
pub fn t_conv_zero_free<T: Num>(
    input: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
    mm: MatmulKind,
) -> TensorResult<Fmaps<T>> {
    let (oh, ow) = geom.up_out(input.height(), input.width());
    t_conv_zero_free_sized(input, k, geom, oh, ow, mm)
}

/// [`t_conv_zero_free`] with an explicit output size (the backward error
/// pass of an S-CONV layer needs the original input size back).
///
/// # Errors
///
/// Returns an error if `k.n_of() != input.channels()`.
pub fn t_conv_zero_free_sized<T: Num>(
    input: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
    oh: usize,
    ow: usize,
    mm: MatmulKind,
) -> TensorResult<Fmaps<T>> {
    if k.n_of() != input.channels() {
        return Err(ShapeError::new(format!(
            "kernel's down-direction output side is {} maps, t_conv input has {}",
            k.n_of(),
            input.channels()
        )));
    }
    let mut out = Fmaps::zeros(k.n_if(), oh, ow);
    for phase in t_phases(geom, oh, ow) {
        if phase.kys.is_empty() || phase.kxs.is_empty() {
            // No kernel tap reaches this phase: its outputs stay zero,
            // exactly as the golden scatter leaves them.
            continue;
        }
        let cols = input.channels() * phase.kys.len() * phase.kxs.len();
        let mut patches = Matrix::zeros(phase.oys.len() * phase.oxs.len(), cols);
        fill_t_phase_patches_for(&mut patches, input, geom, &phase, mm);
        let mut weights = Matrix::zeros(k.n_of() * phase.kys.len() * phase.kxs.len(), k.n_if());
        fill_t_phase_weights_for(&mut weights, k, &phase, mm);
        let product = mm.run(&patches, &weights)?;
        for lf in 0..k.n_if() {
            for (ri, &oy) in phase.oys.iter().enumerate() {
                for (rj, &ox) in phase.oxs.iter().enumerate() {
                    *out.at_mut(lf, oy, ox) = *product.at(ri * phase.oxs.len() + rj, lf);
                }
            }
        }
    }
    Ok(out)
}

/// [`t_conv_zero_free`] with every transient drawn from the workspace.
/// Bit-identical; the returned maps belong to the caller.
///
/// # Errors
///
/// Returns an error if `k.n_of() != input.channels()`.
pub fn t_conv_zero_free_ws<T: Num>(
    input: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
    mm: MatmulKind,
    ws: &mut ConvWorkspace<T>,
) -> TensorResult<Fmaps<T>> {
    let (oh, ow) = geom.up_out(input.height(), input.width());
    t_conv_zero_free_sized_ws(input, k, geom, oh, ow, mm, ws)
}

/// [`t_conv_zero_free_sized`] with every transient (phase patch and weight
/// matrices, GEMM products, output maps) drawn from the workspace, and the
/// phase decomposition memoized through its [`PhaseCache`]. Bit-identical
/// to the allocating form.
///
/// # Errors
///
/// Returns an error if `k.n_of() != input.channels()`.
pub fn t_conv_zero_free_sized_ws<T: Num>(
    input: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
    oh: usize,
    ow: usize,
    mm: MatmulKind,
    ws: &mut ConvWorkspace<T>,
) -> TensorResult<Fmaps<T>> {
    if k.n_of() != input.channels() {
        return Err(ShapeError::new(format!(
            "kernel's down-direction output side is {} maps, t_conv input has {}",
            k.n_of(),
            input.channels()
        )));
    }
    if input.height() == 1 && input.width() == 1 {
        if let Some(out) = t_conv_one_by_one_ws(input, k, geom, oh, ow, mm, ws)? {
            return Ok(out);
        }
    }
    let phases = phases_for(ws, geom, oh, ow);
    // take_fmaps zero-fills: phases without reachable taps leave their
    // outputs zero, exactly as the golden scatter does.
    let mut out = ws.take_fmaps(k.n_if(), oh, ow);
    for phase in phases.iter() {
        if phase.kys.is_empty() || phase.kxs.is_empty() {
            continue;
        }
        let cols = input.channels() * phase.kys.len() * phase.kxs.len();
        // take_matrix zero-fills — required: the patch fill writes only
        // in-bounds entries.
        let mut patches = ws.take_matrix(phase.oys.len() * phase.oxs.len(), cols);
        fill_t_phase_patches_for(&mut patches, input, geom, phase, mm);
        let wrows = k.n_of() * phase.kys.len() * phase.kxs.len();
        let product = if mm.is_reference() {
            // Reference kinds keep the specification reshape loop and the
            // materialized operand.
            let mut weights = ws.take_matrix(wrows, k.n_if());
            fill_t_phase_weights_ref(&mut weights, k, phase);
            let product = mm.run_ws(&patches, &weights, ws)?;
            ws.give_matrix(weights);
            product
        } else {
            // Streamed lowering: the highly sparse phases (the generator
            // projection in particular) dispatch off the packed path, and
            // there the weight matrix is never materialized — rows are
            // generated on demand into the driver's hot tile buffer.
            crate::gemm::matmul_streamed_ws(
                mm,
                &patches,
                wrows,
                k.n_if(),
                &mut |row, dst| fill_t_phase_weights_row(dst, k, phase, row),
                ws,
            )?
        };
        ws.give_matrix(patches);
        for lf in 0..k.n_if() {
            for (ri, &oy) in phase.oys.iter().enumerate() {
                for (rj, &ox) in phase.oxs.iter().enumerate() {
                    *out.at_mut(lf, oy, ox) = *product.at(ri * phase.oxs.len() + rj, lf);
                }
            }
        }
        ws.give_matrix(product);
    }
    Ok(out)
}

/// Collapsed lowering for a `1×1` input map (the generator's latent
/// projection): every live patch entry is just `z[sf]` — the single input
/// pixel — so the whole phase decomposition collapses to **one**
/// `1 × n_of` GEMM against the kernel tensor itself, read zero-copy as
/// the `n_of × (n_if·kh·kw)` row-major matrix it already is. No patch
/// matrix, no `m·kk`-word `A` scan, no weight reshape: the only remaining
/// traffic is one streamed pass over the weights.
///
/// Bit-identity: in the classic phase GEMM each channel `sf` contributes
/// exactly one live tap per output pixel, so the per-element chain is
/// `Σ_sf z[sf]·k[sf][lf][ky][kx]` with `sf` ascending — precisely element
/// `(lf, ky, kx)` of the collapsed GEMM, the same fused (f32) /
/// saturating (Q8.8) chain in the same order. Output pixels no tap
/// reaches stay zero under every engine.
///
/// Returns `None` when the dispatch layer routes the collapsed GEMM to
/// the packed engine (forced-packed runs), the kind is a reference kind,
/// or the element type has no packed kernels: the caller then takes the
/// classic phase route, so a forced-packed baseline keeps the PR-8 cost
/// model unchanged.
fn t_conv_one_by_one_ws<T: Num>(
    input: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
    oh: usize,
    ow: usize,
    mm: MatmulKind,
    ws: &mut ConvWorkspace<T>,
) -> TensorResult<Option<Fmaps<T>>> {
    let (n_if, kh, kw) = (k.n_if(), k.kh(), k.kw());
    let mut z = ws.take_matrix(1, k.n_of());
    z.as_mut_slice().copy_from_slice(input.as_slice());
    let product = crate::gemm::matmul_inline_b_ws(mm, &z, k.as_slice(), n_if * kh * kw, ws)?;
    ws.give_matrix(z);
    let Some(product) = product else {
        return Ok(None);
    };
    // Scatter: kernel tap `(ky, kx)` — flipped index `(kh−1−ky, kw−1−kx)`
    // — reaches exactly the output pixel whose source lands on the single
    // input pixel: `oy = pt − (kh−1−ky)`, `ox = pl − (kw−1−kx)`. Taps
    // mapping outside the output grid are boundary-cropped; pixels no tap
    // reaches stay zero (take_fmaps zero-fills).
    let (pt, _, pl, _) = geom.t_conv_pads();
    let mut out = ws.take_fmaps(n_if, oh, ow);
    let p = product.as_slice();
    for lf in 0..n_if {
        for ky in 0..kh {
            let oy = pt as isize - (kh - 1 - ky) as isize;
            if oy < 0 || oy as usize >= oh {
                continue;
            }
            for kx in 0..kw {
                let ox = pl as isize - (kw - 1 - kx) as isize;
                if ox < 0 || ox as usize >= ow {
                    continue;
                }
                *out.at_mut(lf, oy as usize, ox as usize) = p[(lf * kh + ky) * kw + kx];
            }
        }
    }
    ws.give_matrix(product);
    Ok(Some(out))
}

/// Reshapes a (down-layout) weight tensor for the backward error pass of a
/// T-CONV layer: rows are `(lf, ky, kx)`, columns the small-side channels
/// — the operand of [`t_conv_input_grad_via_gemm`].
pub fn weights_as_matrix_s_swapped<T: Num>(k: &Kernels<T>) -> Matrix<T> {
    let mut m = Matrix::zeros(k.n_if() * k.kh() * k.kw(), k.n_of());
    fill_weights_as_matrix_s_swapped(&mut m, k);
    m
}

/// Fills a `(n_if·kh·kw) × n_of` matrix with the channel-swapped weight
/// layout of [`weights_as_matrix_s_swapped`]. Writes every cell.
fn fill_weights_as_matrix_s_swapped<T: Num>(m: &mut Matrix<T>, k: &Kernels<T>) {
    // Row-major traversal: each output row is written contiguously, and
    // for a fixed `lf` the strided reads revisit the same few cache lines
    // of every `sf` block across the `(ky, kx)` sweep. The column-major
    // variant (outer `sf`) re-walks the whole matrix once per column and
    // is memory-bound on the writes.
    let (n_if, kh, kw) = (k.n_if(), k.kh(), k.kw());
    let kdata = k.as_slice();
    let mut row = 0;
    for lf in 0..n_if {
        for ky in 0..kh {
            for kx in 0..kw {
                let off = (lf * kh + ky) * kw + kx;
                let dst = m.row_mut(row);
                for (sf, d) in dst.iter_mut().enumerate() {
                    *d = kdata[sf * n_if * kh * kw + off];
                }
                row += 1;
            }
        }
    }
}

/// Specification form of [`fill_weights_as_matrix_s_swapped`]:
/// column-major traversal through the kernel accessor, as the reshape is
/// defined. The reference engines run this loop (see
/// [`MatmulKind::is_reference`]); tests pin it bit-identical to the
/// row-major fill.
fn fill_weights_as_matrix_s_swapped_ref<T: Num>(m: &mut Matrix<T>, k: &Kernels<T>) {
    for sf in 0..k.n_of() {
        let mut row = 0;
        for lf in 0..k.n_if() {
            for ky in 0..k.kh() {
                for kx in 0..k.kw() {
                    *m.at_mut(row, sf) = *k.at(sf, lf, ky, kx);
                    row += 1;
                }
            }
        }
    }
}

/// Fills one row `r` of the [`fill_weights_as_matrix_s_swapped`] reshape —
/// the per-row form the streamed GEMM lowering pulls through
/// [`crate::gemm`]'s row callback. Row `r` is the linear `(lf, ky, kx)`
/// index, which is exactly the kernel tensor's within-block offset. Writes
/// every element of `row`.
fn fill_weights_as_matrix_s_swapped_row<T: Num>(k: &Kernels<T>, r: usize, row: &mut [T]) {
    let block = k.n_if() * k.kh() * k.kw();
    let kdata = k.as_slice();
    for (sf, d) in row.iter_mut().enumerate() {
        *d = kdata[sf * block + r];
    }
}

/// Picks the specification or cache-tuned swapped-weight fill by GEMM
/// family.
fn fill_weights_as_matrix_s_swapped_for<T: Num>(m: &mut Matrix<T>, k: &Kernels<T>, mm: MatmulKind) {
    if mm.is_reference() {
        fill_weights_as_matrix_s_swapped_ref(m, k);
    } else {
        fill_weights_as_matrix_s_swapped(m, k);
    }
}

/// Backward error pass of a T-CONV layer by lowering: a plain strided
/// `im2col` of the error GEMMed against the channel-swapped weights.
/// Bit-identical to [`crate::t_conv_input_grad`]. No zero-inserting is
/// involved in either formulation, so this is also the zero-free form.
///
/// # Errors
///
/// Returns an error if `delta_out.channels() != k.n_if()`.
pub fn t_conv_input_grad_via_gemm<T: Num>(
    delta_out: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
    mm: MatmulKind,
) -> TensorResult<Fmaps<T>> {
    if k.n_if() != delta_out.channels() {
        return Err(ShapeError::new(format!(
            "kernel's up-direction side is {} maps, error has {}",
            k.n_if(),
            delta_out.channels()
        )));
    }
    let lowered = im2col_s(delta_out, geom);
    let mut swapped = Matrix::zeros(k.n_if() * k.kh() * k.kw(), k.n_of());
    fill_weights_as_matrix_s_swapped_for(&mut swapped, k, mm);
    let product = mm.run(&lowered.patches, &swapped)?;
    let (oh, ow) = lowered.out_hw;
    let mut out = Fmaps::zeros(k.n_of(), oh, ow);
    for sf in 0..k.n_of() {
        for oy in 0..oh {
            for ox in 0..ow {
                *out.at_mut(sf, oy, ox) = *product.at(oy * ow + ox, sf);
            }
        }
    }
    Ok(out)
}

/// [`t_conv_input_grad_via_gemm`] with every transient drawn from the
/// workspace. Bit-identical; the returned maps belong to the caller.
///
/// # Errors
///
/// Returns an error if `delta_out.channels() != k.n_if()`.
pub fn t_conv_input_grad_via_gemm_ws<T: Num>(
    delta_out: &Fmaps<T>,
    k: &Kernels<T>,
    geom: &ConvGeom,
    mm: MatmulKind,
    ws: &mut ConvWorkspace<T>,
) -> TensorResult<Fmaps<T>> {
    if k.n_if() != delta_out.channels() {
        return Err(ShapeError::new(format!(
            "kernel's up-direction side is {} maps, error has {}",
            k.n_if(),
            delta_out.channels()
        )));
    }
    let lowered = im2col_s_ws(delta_out, geom, ws);
    let product = if mm.is_reference() {
        let mut swapped = ws.take_matrix(k.n_if() * k.kh() * k.kw(), k.n_of());
        fill_weights_as_matrix_s_swapped_for(&mut swapped, k, mm);
        let product = mm.run_ws(&lowered.patches, &swapped, ws)?;
        ws.give_matrix(swapped);
        product
    } else {
        // Streamed lowering: swapped-weight rows are produced on demand, so
        // the `m = 1` projection-layer input grad never materialises the
        // weight matrix — dead patch columns skip their row fill entirely.
        crate::gemm::matmul_streamed_ws(
            mm,
            &lowered.patches,
            k.n_if() * k.kh() * k.kw(),
            k.n_of(),
            &mut |r, row| fill_weights_as_matrix_s_swapped_row(k, r, row),
            ws,
        )?
    };
    let (oh, ow) = lowered.out_hw;
    ws.give_matrix(lowered.patches);
    let mut out = ws.take_fmaps(k.n_of(), oh, ow);
    for sf in 0..k.n_of() {
        for oy in 0..oh {
            for ox in 0..ow {
                *out.at_mut(sf, oy, ox) = *product.at(oy * ow + ox, sf);
            }
        }
    }
    ws.give_matrix(product);
    Ok(out)
}

/// `W-CONV` of an S-CONV layer by lowering: the error (as a channels ×
/// pixels matrix) GEMMed against the forward pass's `im2col` patches.
/// Bit-identical to [`crate::w_conv_for_s_layer`].
///
/// This is the form Caffe actually executes — the "zero-inserting in
/// kernel" dilation of the textbook description never materialises, so
/// the same routine serves both the dense-lowered and zero-free backends.
///
/// # Errors
///
/// Returns an error if `delta_out`'s spatial size does not match this
/// geometry's forward output.
pub fn w_conv_s_via_gemm<T: Num>(
    input: &Fmaps<T>,
    delta_out: &Fmaps<T>,
    geom: &ConvGeom,
    mm: MatmulKind,
) -> TensorResult<Kernels<T>> {
    let expected = geom.down_out(input.height(), input.width());
    if (delta_out.height(), delta_out.width()) != expected {
        return Err(ShapeError::new(format!(
            "error map is {}×{}, expected {}×{} for this geometry",
            delta_out.height(),
            delta_out.width(),
            expected.0,
            expected.1
        )));
    }
    let (oh, ow) = (delta_out.height(), delta_out.width());
    let delta_mat = Matrix::from_vec(delta_out.channels(), oh * ow, delta_out.as_slice().to_vec());
    let lowered = im2col_s(input, geom);
    let product = mm.run(&delta_mat, &lowered.patches)?;
    // The product's `of × (if·ky·kx)` row-major layout is exactly the
    // kernel tensor's flat layout — reshape by bulk copy.
    let mut grad = Kernels::zeros(delta_out.channels(), input.channels(), geom.kh(), geom.kw());
    grad.as_mut_slice().copy_from_slice(product.as_slice());
    Ok(grad)
}

/// [`w_conv_s_via_gemm`] with every transient drawn from the workspace.
/// Bit-identical; the returned gradient belongs to the caller.
///
/// # Errors
///
/// Returns an error if `delta_out`'s spatial size does not match this
/// geometry's forward output.
pub fn w_conv_s_via_gemm_ws<T: Num>(
    input: &Fmaps<T>,
    delta_out: &Fmaps<T>,
    geom: &ConvGeom,
    mm: MatmulKind,
    ws: &mut ConvWorkspace<T>,
) -> TensorResult<Kernels<T>> {
    let expected = geom.down_out(input.height(), input.width());
    if (delta_out.height(), delta_out.width()) != expected {
        return Err(ShapeError::new(format!(
            "error map is {}×{}, expected {}×{} for this geometry",
            delta_out.height(),
            delta_out.width(),
            expected.0,
            expected.1
        )));
    }
    let (oh, ow) = (delta_out.height(), delta_out.width());
    let mut delta_buf = ws.take(delta_out.len());
    delta_buf.copy_from_slice(delta_out.as_slice());
    let delta_mat = Matrix::from_vec(delta_out.channels(), oh * ow, delta_buf);
    let product = if mm.is_reference() {
        let lowered = im2col_s_ws(input, geom, ws);
        let product = mm.run_ws(&delta_mat, &lowered.patches, ws)?;
        ws.give_matrix(lowered.patches);
        product
    } else {
        // Streamed lowering: patch rows of the forward input are produced
        // on demand, so for few-channel error maps (the critic head) the
        // small-m streamed engine skips the whole `im2col` fill for every
        // patch position whose error column is zero.
        crate::gemm::matmul_streamed_ws(
            mm,
            &delta_mat,
            oh * ow,
            input.channels() * geom.kh() * geom.kw(),
            &mut |r, row| fill_im2col_s_row(input, geom, ow, r, row),
            ws,
        )?
    };
    ws.give_matrix(delta_mat);
    let mut grad = ws.take_kernels(delta_out.channels(), input.channels(), geom.kh(), geom.kw());
    // Same flat layout on both sides (see `w_conv_s_via_gemm`).
    grad.as_mut_slice().copy_from_slice(product.as_slice());
    ws.give_matrix(product);
    Ok(grad)
}

/// Patch matrix for the zero-free `W-CONV` of a T-CONV layer: rows are the
/// layer's *compact* input pixels `(iy, ix)`, columns `(lf, ky, kx)`, each
/// entry the output error the pixel meets under that tap (zero outside the
/// error map).
fn im2col_wgrad_t<T: Num>(
    delta_out: &Fmaps<T>,
    geom: &ConvGeom,
    ih: usize,
    iw: usize,
) -> Matrix<T> {
    let cols = delta_out.channels() * geom.kh() * geom.kw();
    let mut m = Matrix::zeros(ih * iw, cols);
    fill_im2col_wgrad_t(&mut m, delta_out, geom, ih, iw);
    m
}

/// Fills an `(ih·iw) × (lf·kh·kw)` matrix with [`im2col_wgrad_t`]'s patch
/// layout. Writes every cell (out-of-bounds taps write an explicit zero).
fn fill_im2col_wgrad_t<T: Num>(
    m: &mut Matrix<T>,
    delta_out: &Fmaps<T>,
    geom: &ConvGeom,
    ih: usize,
    iw: usize,
) {
    let s = geom.stride() as isize;
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    for iy in 0..ih {
        for ix in 0..iw {
            let row = iy * iw + ix;
            let mut col = 0;
            for lf in 0..delta_out.channels() {
                for ky in 0..geom.kh() {
                    for kx in 0..geom.kw() {
                        let ty = s * iy as isize + ky as isize - pt;
                        let tx = s * ix as isize + kx as isize - pl;
                        *m.at_mut(row, col) = delta_out.at_padded(lf, ty, tx);
                        col += 1;
                    }
                }
            }
        }
    }
}

/// Zero-free `W-CONV` of a T-CONV layer: the compact input (channels ×
/// pixels) GEMMed against [`im2col_wgrad_t`] patches of the error. The
/// zero-inserted input of the textbook formulation is never built —
/// ZFWST's elimination, in software. Bit-identical to
/// [`crate::w_conv_for_t_layer`].
///
/// # Errors
///
/// Returns an error if `delta_out`'s spatial size is not the up-sampled
/// size of `input` under this geometry.
pub fn w_conv_t_zero_free<T: Num>(
    input: &Fmaps<T>,
    delta_out: &Fmaps<T>,
    geom: &ConvGeom,
    mm: MatmulKind,
) -> TensorResult<Kernels<T>> {
    let expected = geom.up_out(input.height(), input.width());
    if (delta_out.height(), delta_out.width()) != expected {
        return Err(ShapeError::new(format!(
            "error map is {}×{}, expected {}×{} for this geometry",
            delta_out.height(),
            delta_out.width(),
            expected.0,
            expected.1
        )));
    }
    let (ih, iw) = (input.height(), input.width());
    let input_mat = Matrix::from_vec(input.channels(), ih * iw, input.as_slice().to_vec());
    let patches = im2col_wgrad_t(delta_out, geom, ih, iw);
    let product = mm.run(&input_mat, &patches)?;
    // The product's `sf × (lf·ky·kx)` row-major layout is exactly the
    // kernel tensor's flat layout — reshape by bulk copy.
    let mut grad = Kernels::zeros(input.channels(), delta_out.channels(), geom.kh(), geom.kw());
    grad.as_mut_slice().copy_from_slice(product.as_slice());
    Ok(grad)
}

/// [`w_conv_t_zero_free`] with every transient drawn from the workspace.
/// Bit-identical; the returned gradient belongs to the caller.
///
/// # Errors
///
/// Returns an error if `delta_out`'s spatial size is not the up-sampled
/// size of `input` under this geometry.
pub fn w_conv_t_zero_free_ws<T: Num>(
    input: &Fmaps<T>,
    delta_out: &Fmaps<T>,
    geom: &ConvGeom,
    mm: MatmulKind,
    ws: &mut ConvWorkspace<T>,
) -> TensorResult<Kernels<T>> {
    let expected = geom.up_out(input.height(), input.width());
    if (delta_out.height(), delta_out.width()) != expected {
        return Err(ShapeError::new(format!(
            "error map is {}×{}, expected {}×{} for this geometry",
            delta_out.height(),
            delta_out.width(),
            expected.0,
            expected.1
        )));
    }
    let (ih, iw) = (input.height(), input.width());
    let mut input_buf = ws.take(input.len());
    input_buf.copy_from_slice(input.as_slice());
    let input_mat = Matrix::from_vec(input.channels(), ih * iw, input_buf);
    let cols = delta_out.channels() * geom.kh() * geom.kw();
    let mut patches = ws.take_matrix(ih * iw, cols);
    fill_im2col_wgrad_t(&mut patches, delta_out, geom, ih, iw);
    let product = mm.run_ws(&input_mat, &patches, ws)?;
    ws.give_matrix(input_mat);
    ws.give_matrix(patches);
    let mut grad = ws.take_kernels(input.channels(), delta_out.channels(), geom.kh(), geom.kw());
    // Same flat layout on both sides (see `w_conv_t_zero_free`).
    grad.as_mut_slice().copy_from_slice(product.as_slice());
    ws.give_matrix(product);
    Ok(grad)
}

/// `W-CONV` of a T-CONV layer the textbook way: materialise the
/// zero-inserted input, then GEMM it against unit-stride error patches.
/// Bit-identical to [`crate::w_conv_for_t_layer`] (the GEMM's zero skip
/// drops exactly the inserted rows), but pays for every inserted zero in
/// memory and operand traffic — the dense-lowered backend's cost model,
/// and the baseline the zero-free path is measured against.
///
/// # Errors
///
/// Returns an error if `delta_out`'s spatial size is not the up-sampled
/// size of `input` under this geometry.
pub fn w_conv_t_via_zero_insert_gemm<T: Num>(
    input: &Fmaps<T>,
    delta_out: &Fmaps<T>,
    geom: &ConvGeom,
    mm: MatmulKind,
) -> TensorResult<Kernels<T>> {
    let expected = geom.up_out(input.height(), input.width());
    if (delta_out.height(), delta_out.width()) != expected {
        return Err(ShapeError::new(format!(
            "error map is {}×{}, expected {}×{} for this geometry",
            delta_out.height(),
            delta_out.width(),
            expected.0,
            expected.1
        )));
    }
    let zi = insert_zeros(input, geom.stride());
    let (zh, zw) = (zi.height(), zi.width());
    let zi_mat = Matrix::from_vec(zi.channels(), zh * zw, zi.as_slice().to_vec());
    // Unit-stride patches of the error over the zero-inserted grid: the
    // original pixel (iy, ix) sits at (s·iy, s·ix), so the taps match the
    // golden nest's `s·iy + ky − pt` exactly.
    let (pt, pl) = (geom.pad_top() as isize, geom.pad_left() as isize);
    let cols = delta_out.channels() * geom.kh() * geom.kw();
    let mut patches = Matrix::zeros(zh * zw, cols);
    for zy in 0..zh {
        for zx in 0..zw {
            let row = zy * zw + zx;
            let mut col = 0;
            for lf in 0..delta_out.channels() {
                for ky in 0..geom.kh() {
                    for kx in 0..geom.kw() {
                        let ty = zy as isize + ky as isize - pt;
                        let tx = zx as isize + kx as isize - pl;
                        *patches.at_mut(row, col) = delta_out.at_padded(lf, ty, tx);
                        col += 1;
                    }
                }
            }
        }
    }
    let product = mm.run(&zi_mat, &patches)?;
    let mut grad = Kernels::zeros(input.channels(), delta_out.channels(), geom.kh(), geom.kw());
    for sf in 0..input.channels() {
        let mut col = 0;
        for lf in 0..delta_out.channels() {
            for ky in 0..geom.kh() {
                for kx in 0..geom.kw() {
                    *grad.at_mut(sf, lf, ky, kx) = *product.at(sf, col);
                    col += 1;
                }
            }
        }
    }
    Ok(grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{t_conv, t_conv_input_grad, w_conv_for_s_layer, w_conv_for_t_layer};
    use crate::im2col::im2col_t;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn geom() -> ConvGeom {
        ConvGeom::down(12, 12, 4, 4, 2, 6, 6).unwrap()
    }

    #[test]
    fn zero_free_t_conv_is_bit_identical() {
        let mut rng = SmallRng::seed_from_u64(20);
        let x: Fmaps<f32> = Fmaps::random(5, 6, 6, 1.0, &mut rng);
        let k: Kernels<f32> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
        let golden = t_conv(&x, &k, &geom()).unwrap();
        for mm in [MatmulKind::Naive, MatmulKind::BlockedScalar] {
            let fast = t_conv_zero_free(&x, &k, &geom(), mm).unwrap();
            assert_eq!(golden, fast, "{mm:?}");
        }
    }

    #[test]
    fn zero_free_patches_drop_the_inserted_zeros() {
        let mut rng = SmallRng::seed_from_u64(21);
        let x: Fmaps<f64> = Fmaps::random(2, 6, 6, 1.0, &mut rng);
        let dense = im2col_t(&x, &geom());
        let compact = im2col_t_zero_free(&x, &geom());
        let frac = |zeros: f64, total: f64| zeros / total;
        let compact_zeros: f64 = compact
            .iter()
            .map(|l| l.zero_fraction() * (l.patches.rows() * l.patches.cols()) as f64)
            .sum();
        let compact_total: f64 = compact
            .iter()
            .map(|l| (l.patches.rows() * l.patches.cols()) as f64)
            .sum();
        assert!(dense.zero_fraction() > 0.65);
        assert!(
            frac(compact_zeros, compact_total) < 0.35,
            "compact fraction {}",
            frac(compact_zeros, compact_total)
        );
        // The compact lowering covers every output pixel exactly once.
        let (oh, ow) = geom().up_out(6, 6);
        let covered: usize = compact.iter().map(|l| l.out_hw.0 * l.out_hw.1).sum();
        assert_eq!(covered, oh * ow);
    }

    #[test]
    fn wgrad_lowerings_are_bit_identical() {
        let mut rng = SmallRng::seed_from_u64(22);
        let g = geom();
        // S layer: input 12×12 → delta 6×6.
        let x: Fmaps<f32> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
        let d: Fmaps<f32> = Fmaps::random(4, 6, 6, 1.0, &mut rng);
        let golden_s = w_conv_for_s_layer(&x, &d, &g).unwrap();
        assert_eq!(
            golden_s,
            w_conv_s_via_gemm(&x, &d, &g, MatmulKind::BlockedScalar).unwrap()
        );
        // T layer: input 6×6 → delta 12×12.
        let xt: Fmaps<f32> = Fmaps::random(4, 6, 6, 1.0, &mut rng);
        let dt: Fmaps<f32> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
        let golden_t = w_conv_for_t_layer(&xt, &dt, &g).unwrap();
        assert_eq!(
            golden_t,
            w_conv_t_zero_free(&xt, &dt, &g, MatmulKind::BlockedScalar).unwrap()
        );
        assert_eq!(
            golden_t,
            w_conv_t_via_zero_insert_gemm(&xt, &dt, &g, MatmulKind::BlockedScalar).unwrap()
        );
    }

    #[test]
    fn t_input_grad_lowering_is_bit_identical() {
        let mut rng = SmallRng::seed_from_u64(23);
        let g = geom();
        let d: Fmaps<f32> = Fmaps::random(3, 12, 12, 1.0, &mut rng);
        let k: Kernels<f32> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
        let golden = t_conv_input_grad(&d, &k, &g).unwrap();
        let fast = t_conv_input_grad_via_gemm(&d, &k, &g, MatmulKind::BlockedScalar).unwrap();
        assert_eq!(golden, fast);
    }

    #[test]
    fn gemm_operands_mirror_the_zero_free_phases() {
        let mut rng = SmallRng::seed_from_u64(24);
        let x: Fmaps<f32> = Fmaps::random(5, 6, 6, 1.0, &mut rng);
        let k: Kernels<f32> = Kernels::random(5, 3, 4, 4, 1.0, &mut rng);
        let pairs = t_zero_free_gemm_operands(&x, &k, &geom()).unwrap();
        let lowered = im2col_t_zero_free(&x, &geom());
        assert_eq!(pairs.len(), lowered.len());
        for ((patches, weights), l) in pairs.iter().zip(&lowered) {
            assert_eq!(patches, &l.patches);
            assert_eq!(patches.cols(), weights.rows(), "GEMM-compatible pair");
            assert_eq!(weights.cols(), k.n_if());
        }
        let bad: Fmaps<f32> = Fmaps::zeros(2, 6, 6);
        assert!(t_zero_free_gemm_operands(&bad, &k, &geom()).is_err());
    }

    /// The reference (specification) fills and the cache-tuned fills must
    /// produce bit-identical matrices — they are the same reshape, only
    /// the traversal order differs. Covers boundary-heavy geometries
    /// where the patch fill's bounds checks matter.
    #[test]
    fn reference_and_tuned_fills_are_bit_identical() {
        let mut rng = SmallRng::seed_from_u64(25);
        let geoms = [
            (ConvGeom::down(12, 12, 4, 4, 2, 6, 6).unwrap(), 6, 6),
            (ConvGeom::down(14, 14, 5, 5, 2, 7, 7).unwrap(), 7, 7),
            (ConvGeom::down(7, 7, 3, 3, 3, 3, 3).unwrap(), 3, 3),
            (ConvGeom::new(7, 7, 1, 0, 0, 0, 0).unwrap(), 1, 1),
        ];
        for (g, ih, iw) in &geoms {
            let (ih, iw) = (*ih, *iw);
            let x: Fmaps<f32> = Fmaps::random(3, ih, iw, 1.0, &mut rng);
            let k: Kernels<f32> = Kernels::random(3, 4, g.kh(), g.kw(), 1.0, &mut rng);
            let (oh, ow) = g.up_out(ih, iw);
            for phase in t_phases(g, oh, ow) {
                if phase.kys.is_empty() || phase.kxs.is_empty() {
                    continue;
                }
                let cols = x.channels() * phase.kys.len() * phase.kxs.len();
                let rows = phase.oys.len() * phase.oxs.len();
                let mut tuned = Matrix::zeros(rows, cols);
                fill_t_phase_patches(&mut tuned, &x, g, &phase);
                let mut reference = Matrix::zeros(rows, cols);
                fill_t_phase_patches_ref(&mut reference, &x, g, &phase);
                assert_eq!(tuned, reference, "patches, {g:?}");

                let wrows = k.n_of() * phase.kys.len() * phase.kxs.len();
                let mut tuned = Matrix::zeros(wrows, k.n_if());
                fill_t_phase_weights(&mut tuned, &k, &phase);
                let mut reference = Matrix::zeros(wrows, k.n_if());
                fill_t_phase_weights_ref(&mut reference, &k, &phase);
                assert_eq!(tuned, reference, "weights, {g:?}");
            }
            let mut tuned = Matrix::zeros(k.n_if() * k.kh() * k.kw(), k.n_of());
            fill_weights_as_matrix_s_swapped(&mut tuned, &k);
            let mut reference = Matrix::zeros(k.n_if() * k.kh() * k.kw(), k.n_of());
            fill_weights_as_matrix_s_swapped_ref(&mut reference, &k);
            assert_eq!(tuned, reference, "swapped weights, {g:?}");
        }
    }

    #[test]
    fn shape_errors_match_the_golden_nests() {
        let g = geom();
        let x: Fmaps<f32> = Fmaps::zeros(2, 6, 6);
        let k: Kernels<f32> = Kernels::zeros(5, 3, 4, 4);
        assert!(t_conv_zero_free(&x, &k, &g, MatmulKind::Blocked).is_err());
        let bad: Fmaps<f32> = Fmaps::zeros(3, 5, 5);
        assert!(w_conv_s_via_gemm(&x, &bad, &g, MatmulKind::Blocked).is_err());
        assert!(w_conv_t_zero_free(&x, &bad, &g, MatmulKind::Blocked).is_err());
        assert!(w_conv_t_via_zero_insert_gemm(&x, &bad, &g, MatmulKind::Blocked).is_err());
    }
}
