//! Algorithm-based fault tolerance (ABFT) for the lowered-GEMM paths.
//!
//! Huang & Abraham's classic scheme: for `C = A·B`, the column sums of `C`
//! must equal `(eᵀA)·B` and the row sums must equal `A·(Be)`. Both sides
//! are recomputed here in `f64` from the *inputs*, so a corrupted PE
//! accumulator shows up as a row/column whose sum disagrees beyond a
//! quantization-noise tolerance — and the intersection of a flagged row
//! and column localises the faulty element. The check is `O(mn + mk + kn)`
//! against the GEMM's `O(mkn)` multiplies, i.e. asymptotically free, which
//! is why accelerator reliability work standardises on it.
//!
//! The tolerance is the crux: the checked product is computed in `f32`
//! (the functional stand-in for the paper's Q8.8 datapath) while the
//! checksums accumulate in `f64`, so an honest GEMM still disagrees by
//! rounding error that grows with the reduction length and operand
//! magnitude. [`tolerance`] bounds that drift; campaign faults *above* the
//! bound are detectable, faults below it are indistinguishable from
//! quantization noise by construction (the campaign classifies those as
//! `benign`, not `silent`).
//!
//! Complementing ABFT (which guards *compute*) the module carries the two
//! cheap guards that protect *transfers and state*: [`slice_checksum`]
//! for before/after comparison of a buffer or DRAM move, and
//! [`first_non_finite`] / [`first_out_of_range`] for NaN/Inf/runaway
//! screens over activations and weights.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::error::TensorResult;
use crate::fault::{FaultLog, FaultPlan};
use crate::gemm::{matmul_with_faults, MatmulKind};
use crate::im2col::Matrix;

/// Outcome of an ABFT check over one GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct AbftReport {
    /// Detection threshold used for both row and column residuals.
    pub tolerance: f64,
    /// Output columns whose checksum residual exceeded the tolerance.
    pub faulty_cols: Vec<usize>,
    /// Output rows whose checksum residual exceeded the tolerance.
    pub faulty_rows: Vec<usize>,
    /// Largest column residual observed.
    pub max_col_residual: f64,
    /// Largest row residual observed.
    pub max_row_residual: f64,
}

impl AbftReport {
    /// Whether the product passed both checksum tests.
    pub fn clean(&self) -> bool {
        self.faulty_cols.is_empty() && self.faulty_rows.is_empty()
    }

    /// Whether the element at `(row, col)` lies on a flagged row or column
    /// — the localisation ABFT gives for free.
    pub fn implicates(&self, row: usize, col: usize) -> bool {
        self.faulty_rows.contains(&row) || self.faulty_cols.contains(&col)
    }
}

/// Detection threshold separating `f32`-vs-`f64` accumulation drift from
/// genuine corruption, for a product `A(m×k) · B(k×n)`.
///
/// Each output element is a length-`k` `f32` reduction, so its error is
/// bounded by `k · ε · k·max|a|·max|b|`; a row/column sum of up to
/// `max(m, n)` such elements adds another factor. A small safety margin
/// absorbs the checksum's own (much smaller) `f64` rounding.
pub fn tolerance(a: &Matrix<f32>, b: &Matrix<f32>) -> f64 {
    let amax = a
        .as_slice()
        .iter()
        .fold(0.0f64, |m, &v| m.max(f64::from(v.abs())));
    let bmax = b
        .as_slice()
        .iter()
        .fold(0.0f64, |m, &v| m.max(f64::from(v.abs())));
    let k = a.cols() as f64;
    let span = a.rows().max(b.cols()) as f64;
    let elem_bound = k * amax * bmax;
    (k + span) * f64::from(f32::EPSILON) * elem_bound * 8.0 + f64::MIN_POSITIVE
}

/// Runs the row/column checksum test on a computed product.
///
/// The caller guarantees `c` was produced (possibly faultily) from
/// `a × b`; shape agreement is assumed.
pub fn verify(a: &Matrix<f32>, b: &Matrix<f32>, c: &Matrix<f32>) -> AbftReport {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let tol = tolerance(a, b);

    // Column test: (eᵀA)·B vs column sums of C.
    let mut col_weights = vec![0.0f64; k];
    for i in 0..m {
        for (kk, w) in col_weights.iter_mut().enumerate() {
            *w += f64::from(*a.at(i, kk));
        }
    }
    let mut expected_cols = vec![0.0f64; n];
    for (kk, &w) in col_weights.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        for (j, e) in expected_cols.iter_mut().enumerate() {
            *e += w * f64::from(*b.at(kk, j));
        }
    }
    let mut actual_cols = vec![0.0f64; n];
    for i in 0..m {
        for (j, s) in actual_cols.iter_mut().enumerate() {
            *s += f64::from(*c.at(i, j));
        }
    }

    // Row test: A·(Be) vs row sums of C.
    let mut row_weights = vec![0.0f64; k];
    for (kk, w) in row_weights.iter_mut().enumerate() {
        for j in 0..n {
            *w += f64::from(*b.at(kk, j));
        }
    }
    let mut faulty_rows = Vec::new();
    let mut max_row_residual = 0.0f64;
    for i in 0..m {
        let mut expected = 0.0f64;
        for (kk, &w) in row_weights.iter().enumerate() {
            expected += f64::from(*a.at(i, kk)) * w;
        }
        let mut actual = 0.0f64;
        for j in 0..n {
            actual += f64::from(*c.at(i, j));
        }
        let residual = residual_of(expected, actual);
        max_row_residual = max_row_residual.max(residual);
        if residual > tol {
            faulty_rows.push(i);
        }
    }

    let mut faulty_cols = Vec::new();
    let mut max_col_residual = 0.0f64;
    for j in 0..n {
        let residual = residual_of(expected_cols[j], actual_cols[j]);
        max_col_residual = max_col_residual.max(residual);
        if residual > tol {
            faulty_cols.push(j);
        }
    }

    let report = AbftReport {
        tolerance: tol,
        faulty_cols,
        faulty_rows,
        max_col_residual,
        max_row_residual,
    };
    if zfgan_telemetry::enabled() {
        zfgan_telemetry::count("abft_checks_total", &[], 1);
        if !report.clean() {
            zfgan_telemetry::count("abft_detections_total", &[], 1);
        }
        zfgan_telemetry::count(
            "abft_flagged_rows_total",
            &[],
            report.faulty_rows.len() as u64,
        );
        zfgan_telemetry::count(
            "abft_flagged_cols_total",
            &[],
            report.faulty_cols.len() as u64,
        );
    }
    report
}

/// Residual between an expected and an actual checksum; a non-finite
/// actual sum (a NaN/Inf reached the output) is an unconditional detect.
fn residual_of(expected: f64, actual: f64) -> f64 {
    if actual.is_finite() {
        (expected - actual).abs()
    } else {
        f64::INFINITY
    }
}

/// GEMM with the ABFT check bolted on: computes `a × b` with the selected
/// kernel and verifies it against the input checksums.
///
/// # Errors
///
/// Returns an error if the inner dimensions disagree.
pub fn checked_matmul(
    kind: MatmulKind,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
) -> TensorResult<(Matrix<f32>, AbftReport)> {
    let c = kind.run(a, b)?;
    let report = verify(a, b, &c);
    Ok((c, report))
}

/// [`checked_matmul`] over the fault-injecting GEMM entry point — the
/// campaign's ABFT-guarded backend.
///
/// # Errors
///
/// Returns an error if the inner dimensions disagree.
pub fn checked_matmul_with_faults(
    kind: MatmulKind,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    plan: &FaultPlan,
    base: u64,
    log: &mut FaultLog,
) -> TensorResult<(Matrix<f32>, AbftReport)> {
    let c = matmul_with_faults(kind, a, b, plan, base, log)?;
    let report = verify(a, b, &c);
    Ok((c, report))
}

/// Index of the first non-finite element, if any — the cheapest guard
/// against escaped NaN/Inf corruption.
pub fn first_non_finite(xs: &[f32]) -> Option<usize> {
    xs.iter().position(|v| !v.is_finite())
}

/// Index of the first element with `|x| > limit`, if any — a range guard
/// for values with a known bound (e.g. clipped WGAN weights).
pub fn first_out_of_range(xs: &[f32], limit: f32) -> Option<usize> {
    xs.iter().position(|v| !v.is_finite() || v.abs() > limit)
}

/// Order-sensitive `f64` checksum of a word stream, for before/after
/// comparison around a modelled transfer (bitwise equality of the two
/// sums detects any effective single-word corruption; position weighting
/// additionally catches reorderings).
pub fn slice_checksum(xs: &[f32]) -> f64 {
    xs.iter()
        .enumerate()
        .fold(0.0f64, |acc, (i, &v)| acc + (i as f64 + 1.0) * f64::from(v))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultSite};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix<f32> {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn clean_gemm_passes_for_all_kernels() {
        let mut rng = SmallRng::seed_from_u64(21);
        for (m, k, n) in [(1, 1, 1), (9, 31, 17), (40, 100, 64)] {
            let a = random_matrix(m, k, &mut rng);
            let b = random_matrix(k, n, &mut rng);
            for kind in [
                MatmulKind::Naive,
                MatmulKind::Blocked,
                MatmulKind::Parallel(3),
            ] {
                let (_, report) = checked_matmul(kind, &a, &b).unwrap();
                assert!(report.clean(), "{m}×{k}×{n} {kind:?}: {report:?}");
            }
        }
    }

    #[test]
    fn single_element_corruption_is_localised() {
        let mut rng = SmallRng::seed_from_u64(22);
        let a = random_matrix(12, 20, &mut rng);
        let b = random_matrix(20, 15, &mut rng);
        let mut c = MatmulKind::Blocked.run(&a, &b).unwrap();
        *c.at_mut(7, 4) += 1.0; // far above quantization noise
        let report = verify(&a, &b, &c);
        assert_eq!(report.faulty_rows, vec![7]);
        assert_eq!(report.faulty_cols, vec![4]);
        assert!(report.implicates(7, 4));
        assert!(!report.implicates(3, 3));
    }

    #[test]
    fn nan_in_product_is_detected() {
        let mut rng = SmallRng::seed_from_u64(23);
        let a = random_matrix(5, 8, &mut rng);
        let b = random_matrix(8, 6, &mut rng);
        let mut c = MatmulKind::Blocked.run(&a, &b).unwrap();
        *c.at_mut(2, 2) = f32::NAN;
        let report = verify(&a, &b, &c);
        assert!(report.implicates(2, 2));
    }

    #[test]
    fn injected_high_bit_flips_are_always_detected() {
        let mut rng = SmallRng::seed_from_u64(24);
        let a = random_matrix(16, 40, &mut rng);
        let b = random_matrix(40, 24, &mut rng);
        let plan = FaultPlan::new(
            5,
            0.01,
            FaultSite::GemmAccumulator,
            FaultKind::BitFlip { bit: 30 },
        )
        .unwrap();
        let mut log = FaultLog::default();
        let (_, report) =
            checked_matmul_with_faults(MatmulKind::Blocked, &a, &b, &plan, 0, &mut log).unwrap();
        assert!(log.effective > 0, "plan should fire in 384 elements");
        for rec in &log.records {
            if rec.effective() {
                let (row, col) = ((rec.index / 24) as usize, (rec.index % 24) as usize);
                assert!(report.implicates(row, col), "missed fault at {rec:?}");
            }
        }
    }

    #[test]
    fn guards_catch_non_finite_and_range() {
        assert_eq!(first_non_finite(&[1.0, 2.0]), None);
        assert_eq!(first_non_finite(&[1.0, f32::NAN, 2.0]), Some(1));
        assert_eq!(first_out_of_range(&[0.5, -3.0], 1.0), Some(1));
        assert_eq!(first_out_of_range(&[0.5, -0.5], 1.0), None);
    }

    #[test]
    fn slice_checksum_catches_corruption_and_swaps() {
        let xs = [0.5f32, -1.25, 3.0, 0.0];
        let base = slice_checksum(&xs);
        let mut corrupted = xs;
        corrupted[2] = 3.0000002;
        assert_ne!(base.to_bits(), slice_checksum(&corrupted).to_bits());
        let swapped = [xs[1], xs[0], xs[2], xs[3]];
        assert_ne!(base.to_bits(), slice_checksum(&swapped).to_bits());
        assert_eq!(base.to_bits(), slice_checksum(&xs).to_bits());
    }
}
