//! Convolution geometry: kernel size, stride and (possibly asymmetric)
//! padding, with the shape algebra used by every convolution family.
//!
//! One [`ConvGeom`] describes a *down-sampling* pairing (`S-CONV`), and the
//! same geometry run in reverse describes the matching *up-sampling*
//! transposed convolution (`T-CONV`) — exactly how the paper derives the
//! Generator as "an inverse architecture of Discriminator".

use serde::{Deserialize, Serialize};

use crate::error::{ShapeError, TensorResult};

/// Geometry of one convolutional layer.
///
/// # Example
///
/// ```
/// use zfgan_tensor::ConvGeom;
///
/// // MNIST-GAN layer 1: 28×28 → 14×14 with a 5×5 kernel, stride 2.
/// let geom = ConvGeom::down(28, 28, 5, 5, 2, 14, 14).unwrap();
/// assert_eq!(geom.down_out(28, 28), (14, 14));
/// assert_eq!(geom.up_out(14, 14), (28, 28));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvGeom {
    kh: usize,
    kw: usize,
    stride: usize,
    pad_top: usize,
    pad_bottom: usize,
    pad_left: usize,
    pad_right: usize,
}

impl ConvGeom {
    /// Creates a geometry from explicit padding.
    ///
    /// # Errors
    ///
    /// Returns an error if the kernel is empty, the stride is zero, or the
    /// padding on any side reaches the kernel size (which would make the
    /// transposed form ill-defined).
    pub fn new(
        kh: usize,
        kw: usize,
        stride: usize,
        pad_top: usize,
        pad_bottom: usize,
        pad_left: usize,
        pad_right: usize,
    ) -> TensorResult<Self> {
        if kh == 0 || kw == 0 {
            return Err(ShapeError::new("kernel dimensions must be non-zero"));
        }
        if stride == 0 {
            return Err(ShapeError::new("stride must be non-zero"));
        }
        if pad_top >= kh || pad_bottom >= kh || pad_left >= kw || pad_right >= kw {
            return Err(ShapeError::new(format!(
                "padding ({pad_top},{pad_bottom},{pad_left},{pad_right}) must be \
                 smaller than the kernel ({kh}×{kw})"
            )));
        }
        Ok(Self {
            kh,
            kw,
            stride,
            pad_top,
            pad_bottom,
            pad_left,
            pad_right,
        })
    }

    /// Creates a symmetric-padding geometry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConvGeom::new`].
    pub fn symmetric(kh: usize, kw: usize, stride: usize, pad: usize) -> TensorResult<Self> {
        Self::new(kh, kw, stride, pad, pad, pad, pad)
    }

    /// Re-runs the [`ConvGeom::new`] invariants on this geometry.
    ///
    /// Every constructor enforces them, but serde's derived `Deserialize`
    /// fills the fields directly — an edited or corrupted payload can smuggle
    /// in a zero stride or kernel that would panic deep inside a convolution.
    /// Checkpoint loading calls this to turn such payloads into errors.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConvGeom::new`].
    pub fn validate(&self) -> TensorResult<()> {
        Self::new(
            self.kh,
            self.kw,
            self.stride,
            self.pad_top,
            self.pad_bottom,
            self.pad_left,
            self.pad_right,
        )
        .map(|_| ())
    }

    /// Solves the padding so that an `in_h × in_w` input down-samples to
    /// exactly `out_h × out_w` (TensorFlow `SAME`-style: the extra pad unit,
    /// if any, goes on the bottom/right).
    ///
    /// # Errors
    ///
    /// Returns an error if no padding smaller than the kernel achieves the
    /// requested output size.
    pub fn down(
        in_h: usize,
        in_w: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        out_h: usize,
        out_w: usize,
    ) -> TensorResult<Self> {
        if stride == 0 {
            return Err(ShapeError::new("stride must be non-zero"));
        }
        if out_h == 0 || out_w == 0 {
            return Err(ShapeError::new("output dimensions must be non-zero"));
        }
        let solve = |inp: usize, k: usize, out: usize| -> TensorResult<(usize, usize)> {
            let needed = (out - 1) * stride + k;
            if needed < inp {
                return Err(ShapeError::new(format!(
                    "output {out} too small for input {inp} with kernel {k}, stride {stride}"
                )));
            }
            let total = needed - inp;
            Ok((total / 2, total - total / 2))
        };
        let (pad_top, pad_bottom) = solve(in_h, kh, out_h)?;
        let (pad_left, pad_right) = solve(in_w, kw, out_w)?;
        Self::new(kh, kw, stride, pad_top, pad_bottom, pad_left, pad_right)
    }

    /// Kernel height.
    pub fn kh(&self) -> usize {
        self.kh
    }

    /// Kernel width.
    pub fn kw(&self) -> usize {
        self.kw
    }

    /// Stride (identical in both spatial dimensions, as in all of the
    /// paper's networks).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding on the top edge.
    pub fn pad_top(&self) -> usize {
        self.pad_top
    }

    /// Padding on the bottom edge.
    pub fn pad_bottom(&self) -> usize {
        self.pad_bottom
    }

    /// Padding on the left edge.
    pub fn pad_left(&self) -> usize {
        self.pad_left
    }

    /// Padding on the right edge.
    pub fn pad_right(&self) -> usize {
        self.pad_right
    }

    /// Output size of the down-sampling (`S-CONV`) direction.
    pub fn down_out(&self, in_h: usize, in_w: usize) -> (usize, usize) {
        let oh = (in_h + self.pad_top + self.pad_bottom).saturating_sub(self.kh) / self.stride + 1;
        let ow = (in_w + self.pad_left + self.pad_right).saturating_sub(self.kw) / self.stride + 1;
        (oh, ow)
    }

    /// Output size of the up-sampling (`T-CONV`) direction: the unique size
    /// whose down-sampling yields `in_h × in_w` under this geometry.
    pub fn up_out(&self, in_h: usize, in_w: usize) -> (usize, usize) {
        let oh = self.stride * (in_h - 1) + self.kh - self.pad_top - self.pad_bottom;
        let ow = self.stride * (in_w - 1) + self.kw - self.pad_left - self.pad_right;
        (oh, ow)
    }

    /// Spatial size of the zero-inserted input of a `T-CONV` (`stride − 1`
    /// zeros between adjacent pixels; no edge extension).
    pub fn zero_inserted(&self, in_h: usize, in_w: usize) -> (usize, usize) {
        (self.stride * (in_h - 1) + 1, self.stride * (in_w - 1) + 1)
    }

    /// Effective padding of the unit-stride convolution over the
    /// zero-inserted input that realises the `T-CONV`: `k − 1 − pad` per
    /// edge, with top/bottom (and left/right) swapped by the kernel flip.
    pub fn t_conv_pads(&self) -> (usize, usize, usize, usize) {
        (
            self.kh - 1 - self.pad_top,
            self.kh - 1 - self.pad_bottom,
            self.kw - 1 - self.pad_left,
            self.kw - 1 - self.pad_right,
        )
    }

    /// Total number of multiply-accumulate operations in the down-sampling
    /// direction for the given channel counts, counting one MAC per (output
    /// neuron × input channel × kernel position) — the paper's `nMACs`.
    pub fn down_macs(&self, n_if: usize, n_of: usize, in_h: usize, in_w: usize) -> u64 {
        let (oh, ow) = self.down_out(in_h, in_w);
        n_if as u64 * n_of as u64 * self.kh as u64 * self.kw as u64 * oh as u64 * ow as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcgan_layer_geometry() {
        // 64×64 → 32×32, k=4, s=2 ⇒ symmetric padding 1.
        let g = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        assert_eq!(
            (g.pad_top(), g.pad_bottom(), g.pad_left(), g.pad_right()),
            (1, 1, 1, 1)
        );
        assert_eq!(g.down_out(64, 64), (32, 32));
        assert_eq!(g.up_out(32, 32), (64, 64));
    }

    #[test]
    fn mnist_gan_asymmetric_padding() {
        // 28×28 → 14×14, k=5, s=2 ⇒ total padding 3 split as 1/2.
        let g = ConvGeom::down(28, 28, 5, 5, 2, 14, 14).unwrap();
        assert_eq!((g.pad_top(), g.pad_bottom()), (1, 2));
        assert_eq!(g.down_out(28, 28), (14, 14));
        assert_eq!(g.up_out(14, 14), (28, 28));
    }

    #[test]
    fn zero_inserted_dimensions() {
        let g = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        // 32 pixels with one zero between every pair: 2·31 + 1 = 63.
        assert_eq!(g.zero_inserted(32, 32), (63, 63));
    }

    #[test]
    fn t_conv_pads_complement_kernel() {
        let g = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        assert_eq!(g.t_conv_pads(), (2, 2, 2, 2));
        let g = ConvGeom::down(28, 28, 5, 5, 2, 14, 14).unwrap();
        assert_eq!(g.t_conv_pads(), (3, 2, 3, 2));
    }

    #[test]
    fn rejects_invalid_geometry() {
        assert!(ConvGeom::new(0, 4, 2, 0, 0, 0, 0).is_err());
        assert!(ConvGeom::new(4, 4, 0, 0, 0, 0, 0).is_err());
        assert!(ConvGeom::new(4, 4, 2, 4, 0, 0, 0).is_err());
        assert!(ConvGeom::down(64, 64, 4, 4, 2, 8, 8).is_err());
        assert!(ConvGeom::down(64, 64, 4, 4, 2, 0, 32).is_err());
        assert!(ConvGeom::down(64, 64, 4, 4, 0, 32, 32).is_err());
    }

    #[test]
    fn down_macs_counts_loop_nest() {
        let g = ConvGeom::down(8, 8, 4, 4, 2, 4, 4).unwrap();
        // 3 in-maps × 5 out-maps × 4×4 kernel × 4×4 outputs.
        assert_eq!(g.down_macs(3, 5, 8, 8), 3 * 5 * 16 * 16);
    }

    #[test]
    fn unit_stride_identity_sizes() {
        let g = ConvGeom::symmetric(3, 3, 1, 1).unwrap();
        assert_eq!(g.down_out(7, 9), (7, 9));
        assert_eq!(g.up_out(7, 9), (7, 9));
        assert_eq!(g.zero_inserted(7, 9), (7, 9));
    }
}
