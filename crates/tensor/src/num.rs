//! The element trait implemented by `f32`, `f64` and the fixed-point [`Fx`].
//!
//! [`Fx`]: crate::Fx

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Numeric element of a tensor.
///
/// The trait is deliberately small: the golden-reference convolutions and the
/// functional PE-array executors only need multiply-accumulate, zero and a
/// conversion path from `f32` (used when quantising reference data onto the
/// 16-bit datapath).
pub trait Num:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity.
    fn one() -> Self;

    /// Converts from an `f32`, saturating/rounding as the type requires.
    fn from_f32(value: f32) -> Self;

    /// Converts to `f64` for loss accounting and cross-type comparison.
    fn to_f64(self) -> f64;

    /// Whether this element is exactly zero (an *ineffectual* multiply
    /// operand in the paper's terminology).
    fn is_zero(self) -> bool {
        self == Self::zero()
    }

    /// Fused multiply-accumulate: `self + a * b`.
    fn mul_add_assign(&mut self, a: Self, b: Self) {
        *self += a * b;
    }

    /// Fused multiply-add with a **single rounding**: `self + a * b`.
    ///
    /// For floats this is the IEEE-754 correctly-rounded `mul_add` — the
    /// same operation an x86 `vfmadd` lane performs — which is what makes
    /// the packed microkernel's scalar fallback bit-identical to its SIMD
    /// kernel. Types without a fused form (like [`Fx`]) keep the
    /// two-rounding default.
    ///
    /// [`Fx`]: crate::Fx
    fn fused_mul_add(self, a: Self, b: Self) -> Self {
        self + a * b
    }
}

impl Num for f32 {
    fn zero() -> Self {
        0.0
    }

    fn one() -> Self {
        1.0
    }

    fn from_f32(value: f32) -> Self {
        value
    }

    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    fn fused_mul_add(self, a: Self, b: Self) -> Self {
        a.mul_add(b, self)
    }
}

impl Num for f64 {
    fn zero() -> Self {
        0.0
    }

    fn one() -> Self {
        1.0
    }

    fn from_f32(value: f32) -> Self {
        f64::from(value)
    }

    fn to_f64(self) -> f64 {
        self
    }

    fn fused_mul_add(self, a: Self, b: Self) -> Self {
        a.mul_add(b, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_basics() {
        assert_eq!(f32::zero(), 0.0);
        assert_eq!(f32::one(), 1.0);
        assert!(f32::zero().is_zero());
        assert!(!f32::one().is_zero());
        let mut acc = 1.0f32;
        acc.mul_add_assign(2.0, 3.0);
        assert_eq!(acc, 7.0);
    }

    #[test]
    fn f64_round_trip() {
        assert_eq!(f64::from_f32(1.5).to_f64(), 1.5);
    }
}
