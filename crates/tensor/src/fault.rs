//! Seeded, deterministic fault models for resilience studies.
//!
//! The functional simulator computes real numbers on the same schedule the
//! paper's FPGA microarchitecture would, which makes it the right vehicle
//! for a question the paper leaves open: how do transient faults in PEs,
//! on-chip buffers and DRAM transfers propagate through zero-free dataflows
//! and WGAN training, and how cheaply can they be detected and masked?
//!
//! A [`FaultPlan`] describes one fault *population*: a site (which
//! microarchitectural structure misbehaves), a kind (transient bit-flip or
//! stuck-at on one bit of the 32-bit word), and a per-word rate. Whether a
//! given word is corrupted is a pure function of `(seed, site, index)` — a
//! counter-based hash, not an RNG stream — so injection is deterministic
//! under any thread count and any evaluation order, and the same plan can
//! be replayed bit-identically across backends. A [`FaultLog`] accumulates
//! what actually happened so campaigns can separate *fired* faults from
//! *effective* ones (a stuck-at on a bit already holding that value is
//! masked by construction).
//!
//! The injection hooks live where the modelled hardware lives: GEMM
//! accumulator writeback in [`crate::gemm::matmul_with_faults`], on-chip
//! buffer reads in `zfgan_sim::OnChipBuffer::read_through`, and DRAM bursts
//! in `zfgan_sim::DramModel::burst`. Detection lives in [`crate::abft`].

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Which modelled structure a [`FaultPlan`] corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// A PE's partial-sum accumulator, at writeback time.
    GemmAccumulator,
    /// A word read out of an on-chip SRAM buffer.
    BufferRead,
    /// A word moved across the off-chip DRAM channel.
    DramBurst,
    /// A parameter word corrupted during one trainer step (the
    /// end-to-end site the `SupervisedTrainer` watchdogs).
    TrainerStep,
    /// A byte of a checkpoint envelope corrupted between write and
    /// re-read (torn rename target, media rot) — campaigns use this
    /// site's fires/pick streams to choose which stored byte/bit to
    /// flip or where to truncate.
    CheckpointWrite,
}

impl FaultSite {
    /// Stable per-site salt folded into the injection hash so plans with
    /// the same seed but different sites draw independent fault streams.
    fn salt(self) -> u64 {
        match self {
            FaultSite::GemmAccumulator => 0x9e37_79b9_0000_0001,
            FaultSite::BufferRead => 0x9e37_79b9_0000_0002,
            FaultSite::DramBurst => 0x9e37_79b9_0000_0003,
            FaultSite::TrainerStep => 0x9e37_79b9_0000_0004,
            FaultSite::CheckpointWrite => 0x9e37_79b9_0000_0005,
        }
    }

    /// Short human/JSON-stable name ("gemm-accumulator", …).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::GemmAccumulator => "gemm-accumulator",
            FaultSite::BufferRead => "buffer-read",
            FaultSite::DramBurst => "dram-burst",
            FaultSite::TrainerStep => "trainer-step",
            FaultSite::CheckpointWrite => "checkpoint-write",
        }
    }
}

/// How a fired fault perturbs the 32-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Transient single-event upset: XOR one bit.
    BitFlip {
        /// Bit position, 0 (LSB of the mantissa) to 31 (sign).
        bit: u8,
    },
    /// Stuck-at-1 on one bit (masked when the bit is already 1).
    StuckAtOne {
        /// Bit position, 0 to 31.
        bit: u8,
    },
    /// Stuck-at-0 on one bit (masked when the bit is already 0).
    StuckAtZero {
        /// Bit position, 0 to 31.
        bit: u8,
    },
}

impl FaultKind {
    fn bit(self) -> u8 {
        match self {
            FaultKind::BitFlip { bit }
            | FaultKind::StuckAtOne { bit }
            | FaultKind::StuckAtZero { bit } => bit,
        }
    }

    /// Applies the perturbation to a value's bit pattern.
    pub fn apply(self, v: f32) -> f32 {
        let bits = v.to_bits();
        let corrupted = match self {
            FaultKind::BitFlip { bit } => bits ^ (1u32 << bit),
            FaultKind::StuckAtOne { bit } => bits | (1u32 << bit),
            FaultKind::StuckAtZero { bit } => bits & !(1u32 << bit),
        };
        f32::from_bits(corrupted)
    }
}

/// An invalid [`FaultPlan`] configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfigError {
    message: String,
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.message)
    }
}

impl Error for FaultConfigError {}

/// A seeded, deterministic fault population.
///
/// # Example
///
/// ```
/// use zfgan_tensor::fault::{FaultKind, FaultLog, FaultPlan, FaultSite};
///
/// let plan = FaultPlan::new(7, 0.01, FaultSite::BufferRead, FaultKind::BitFlip { bit: 30 })?;
/// let mut data = vec![1.0f32; 1000];
/// let mut log = FaultLog::default();
/// plan.corrupt_slice(FaultSite::BufferRead, 0, &mut data, &mut log);
/// assert!(log.fired > 0 && log.fired < 100);
/// // Replaying the same plan over the same indices corrupts the same words.
/// let mut replay = vec![1.0f32; 1000];
/// let mut log2 = FaultLog::default();
/// plan.corrupt_slice(FaultSite::BufferRead, 0, &mut replay, &mut log2);
/// assert_eq!(data, replay);
/// # Ok::<(), zfgan_tensor::fault::FaultConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    site: FaultSite,
    kind: FaultKind,
}

/// SplitMix64 finaliser — the counter-based hash behind [`FaultPlan`].
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Creates a plan.
    ///
    /// # Errors
    ///
    /// Returns an error if `rate` is not a probability in `[0, 1]` or the
    /// kind's bit position exceeds 31.
    pub fn new(
        seed: u64,
        rate: f64,
        site: FaultSite,
        kind: FaultKind,
    ) -> Result<Self, FaultConfigError> {
        if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
            return Err(FaultConfigError {
                message: format!("rate {rate} is not a probability in [0, 1]"),
            });
        }
        if kind.bit() > 31 {
            return Err(FaultConfigError {
                message: format!("bit {} exceeds the 31-bit word index", kind.bit()),
            });
        }
        Ok(Self {
            seed,
            rate,
            site,
            kind,
        })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-word fault probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The targeted site.
    pub fn site(&self) -> FaultSite {
        self.site
    }

    /// The perturbation applied when a fault fires.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// Whether the fault fires on word `index` of `site` — a pure function
    /// of `(seed, site, index)`, independent of evaluation order.
    pub fn fires(&self, site: FaultSite, index: u64) -> bool {
        if site != self.site {
            return false;
        }
        let h = splitmix64(self.seed ^ site.salt() ^ index.wrapping_mul(0x2545_f491_4f6c_dd1d));
        // 53 uniform bits in [0, 1), the same construction the RNG shim uses.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.rate
    }

    /// Deterministically picks one of `n` lanes for fault `index` — used to
    /// choose *which* word of a structure a fired fault lands on when the
    /// plan is applied at coarser granularity (e.g. one parameter per
    /// trainer step).
    ///
    /// Returns 0 when `n` is zero.
    pub fn pick(&self, index: u64, salt: u64, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (splitmix64(self.seed ^ salt ^ index.wrapping_mul(0x6c62_272e_07bb_0142)) % n as u64)
            as usize
    }

    /// Applies the plan's perturbation to `v` (unconditionally; combine
    /// with [`FaultPlan::fires`] for rate-gated injection).
    pub fn apply(&self, v: f32) -> f32 {
        self.kind.apply(v)
    }

    /// Corrupts a single word at `(site, index)` if the plan fires there,
    /// recording the outcome in `log`. Returns the (possibly corrupted)
    /// value.
    pub fn corrupt_value(&self, site: FaultSite, index: u64, v: f32, log: &mut FaultLog) -> f32 {
        if site != self.site {
            return v;
        }
        log.attempts += 1;
        if !self.fires(site, index) {
            return v;
        }
        let corrupted = self.kind.apply(v);
        log.record(index, v, corrupted);
        corrupted
    }

    /// Corrupts every firing word of `data`, treating element `i` as word
    /// `base + i` of the site's index space.
    pub fn corrupt_slice(&self, site: FaultSite, base: u64, data: &mut [f32], log: &mut FaultLog) {
        if site != self.site {
            return;
        }
        for (i, v) in data.iter_mut().enumerate() {
            *v = self.corrupt_value(site, base + i as u64, *v, log);
        }
    }
}

/// One fired fault: where it landed and what it did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Site-space word index the fault fired on.
    pub index: u64,
    /// Value before corruption.
    pub before: f32,
    /// Value after corruption (equal bits ⇒ the fault was masked).
    pub after: f32,
}

impl FaultRecord {
    /// Whether the fault changed the stored bit pattern.
    pub fn effective(&self) -> bool {
        self.before.to_bits() != self.after.to_bits()
    }
}

/// Cap on retained [`FaultRecord`]s; counters stay exact beyond it.
const MAX_RECORDS: usize = 4096;

/// What a [`FaultPlan`] actually did over some region of execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLog {
    /// Words evaluated at the plan's site.
    pub attempts: u64,
    /// Faults that fired.
    pub fired: u64,
    /// Fired faults that changed the stored bit pattern.
    pub effective: u64,
    /// Fired faults masked by the existing bit value (stuck-at on a bit
    /// already holding that value).
    pub masked: u64,
    /// Per-fault records, capped at 4096 entries (counters stay exact).
    pub records: Vec<FaultRecord>,
}

impl FaultLog {
    fn record(&mut self, index: u64, before: f32, after: f32) {
        self.fired += 1;
        let rec = FaultRecord {
            index,
            before,
            after,
        };
        if rec.effective() {
            self.effective += 1;
        } else {
            self.masked += 1;
        }
        if self.records.len() < MAX_RECORDS {
            self.records.push(rec);
        }
    }

    /// Merges another log (e.g. a per-op log into a campaign-cell log).
    pub fn absorb(&mut self, other: &FaultLog) {
        self.attempts += other.attempts;
        self.fired += other.fired;
        self.effective += other.effective;
        self.masked += other.masked;
        let room = MAX_RECORDS.saturating_sub(self.records.len());
        self.records
            .extend(other.records.iter().take(room).copied());
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_rate_and_bit() {
        assert!(FaultPlan::new(
            0,
            -0.1,
            FaultSite::BufferRead,
            FaultKind::BitFlip { bit: 0 }
        )
        .is_err());
        assert!(
            FaultPlan::new(0, 1.5, FaultSite::BufferRead, FaultKind::BitFlip { bit: 0 }).is_err()
        );
        assert!(FaultPlan::new(
            0,
            f64::NAN,
            FaultSite::BufferRead,
            FaultKind::BitFlip { bit: 0 }
        )
        .is_err());
        assert!(FaultPlan::new(
            0,
            0.5,
            FaultSite::BufferRead,
            FaultKind::BitFlip { bit: 32 }
        )
        .is_err());
    }

    #[test]
    fn firing_is_deterministic_and_rate_shaped() {
        let plan = FaultPlan::new(
            42,
            0.05,
            FaultSite::GemmAccumulator,
            FaultKind::BitFlip { bit: 30 },
        )
        .unwrap();
        let fired: Vec<u64> = (0..20_000)
            .filter(|&i| plan.fires(FaultSite::GemmAccumulator, i))
            .collect();
        let again: Vec<u64> = (0..20_000)
            .filter(|&i| plan.fires(FaultSite::GemmAccumulator, i))
            .collect();
        assert_eq!(fired, again);
        // ~1000 expected; generous bounds keep the test seed-robust.
        assert!(fired.len() > 500 && fired.len() < 2000, "{}", fired.len());
        // Other sites never fire.
        assert!((0..1000).all(|i| !plan.fires(FaultSite::DramBurst, i)));
    }

    #[test]
    fn sites_draw_independent_streams() {
        let mk = |site| {
            FaultPlan::new(9, 0.1, site, FaultKind::BitFlip { bit: 1 })
                .unwrap()
                .fires(site, 12345)
        };
        // Not a strict requirement per index, but the streams must not be
        // identical across all indices.
        let a: Vec<bool> = (0..256)
            .map(|i| {
                FaultPlan::new(9, 0.1, FaultSite::BufferRead, FaultKind::BitFlip { bit: 1 })
                    .unwrap()
                    .fires(FaultSite::BufferRead, i)
            })
            .collect();
        let b: Vec<bool> = (0..256)
            .map(|i| {
                FaultPlan::new(9, 0.1, FaultSite::DramBurst, FaultKind::BitFlip { bit: 1 })
                    .unwrap()
                    .fires(FaultSite::DramBurst, i)
            })
            .collect();
        assert_ne!(a, b);
        let _ = mk(FaultSite::BufferRead);
    }

    #[test]
    fn kinds_perturb_bits_as_documented() {
        let one = 1.0f32; // 0x3f80_0000
        assert_eq!(FaultKind::BitFlip { bit: 31 }.apply(one), -1.0, "sign flip");
        assert_eq!(FaultKind::StuckAtZero { bit: 31 }.apply(-1.0), 1.0);
        // Stuck-at on an already-set bit is masked.
        let v = FaultKind::StuckAtOne { bit: 29 }.apply(one);
        assert_eq!(v.to_bits(), one.to_bits() | (1 << 29));
        assert_eq!(
            FaultKind::StuckAtOne { bit: 29 }.apply(v).to_bits(),
            v.to_bits()
        );
    }

    #[test]
    fn log_separates_effective_from_masked() {
        let plan = FaultPlan::new(
            3,
            1.0,
            FaultSite::BufferRead,
            FaultKind::StuckAtZero { bit: 31 },
        )
        .unwrap();
        // Positive values already have sign bit 0: all masked.
        let mut data = vec![1.0f32, 2.0, -3.0];
        let mut log = FaultLog::default();
        plan.corrupt_slice(FaultSite::BufferRead, 0, &mut data, &mut log);
        assert_eq!(log.fired, 3);
        assert_eq!(log.effective, 1);
        assert_eq!(log.masked, 2);
        assert_eq!(data, vec![1.0, 2.0, 3.0]);
        let mut total = FaultLog::default();
        total.absorb(&log);
        total.absorb(&log);
        assert_eq!(total.fired, 6);
        assert_eq!(total.records.len(), 6);
    }

    #[test]
    fn pick_is_in_range_and_deterministic() {
        let plan = FaultPlan::new(
            5,
            0.5,
            FaultSite::TrainerStep,
            FaultKind::BitFlip { bit: 30 },
        )
        .unwrap();
        for i in 0..100 {
            let a = plan.pick(i, 17, 13);
            assert!(a < 13);
            assert_eq!(a, plan.pick(i, 17, 13));
        }
        assert_eq!(plan.pick(1, 0, 0), 0);
    }
}
