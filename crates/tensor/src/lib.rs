//! Golden-reference tensor math for the `zfgan` reproduction of the HPCA'18
//! zero-free GAN accelerator.
//!
//! This crate is the *numerical substrate* of the project. It provides
//!
//! * [`Fmaps`] — a set of 2-D feature maps (`C × H × W`) holding one sample's
//!   activations or errors,
//! * [`Kernels`] — a 4-D weight tensor (`OF × IF × KH × KW`),
//! * [`Fx`] — the Q8.8 16-bit fixed-point element type matching the paper's
//!   datapath ("the width of data is 16 in our system"),
//! * [`ConvGeom`] — convolution geometry (kernel size, stride, asymmetric
//!   padding) with shape inference for down- and up-sampling layers, and
//! * the three convolution families of the paper, implemented as
//!   straightforward loop nests that serve as the golden reference for the
//!   cycle-level simulator:
//!   [`s_conv`] (strided convolution, Discriminator forward),
//!   [`t_conv`] (transposed convolution with zero-inserting, Generator
//!   forward / Discriminator backward) and
//!   [`w_conv_for_s_layer`] / [`w_conv_for_t_layer`] (the four-dimensional
//!   weight-gradient convolution, `W-CONV`).
//!
//! The [`zeros`] module exposes the zero-inserting transformation explicitly
//! together with counters for *ineffectual* (zero-operand) multiplications —
//! the quantity the paper reports as "about 64% and 75% of total
//! multiplications" for the Generator and `D̄w` phases.
//!
//! # Example
//!
//! ```
//! use zfgan_tensor::{ConvGeom, Fmaps, Kernels, s_conv, t_conv};
//!
//! // A DCGAN-style down-sampling layer: 3×64×64 → 64×32×32, 4×4 kernel, stride 2.
//! let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
//! let x: Fmaps<f32> = Fmaps::zeros(3, 64, 64);
//! let k: Kernels<f32> = Kernels::zeros(64, 3, 4, 4);
//! let y = s_conv(&x, &k, &geom).unwrap();
//! assert_eq!((y.channels(), y.height(), y.width()), (64, 32, 32));
//!
//! // The matching up-sampling layer runs the geometry in reverse.
//! let kt: Kernels<f32> = Kernels::zeros(64, 3, 4, 4);
//! let up = t_conv(&y_as_input(&y), &kt, &geom).unwrap();
//! assert_eq!((up.channels(), up.height(), up.width()), (3, 64, 64));
//! # fn y_as_input(y: &Fmaps<f32>) -> Fmaps<f32> { Fmaps::zeros(64, 32, 32) }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod abft;
mod backend;
mod conv;
mod error;
pub mod fault;
mod fixed;
mod fmaps;
pub mod gemm;
pub mod im2col;
mod kernels;
pub mod microkernel;
mod num;
mod shape;
mod workspace;
pub mod zero_free;
pub mod zeros;

pub use backend::ConvBackend;
pub use conv::{
    s_conv, s_conv_input_grad, t_conv, t_conv_input_grad, t_conv_via_zero_insert,
    w_conv_for_s_layer, w_conv_for_t_layer,
};
pub use error::{ShapeError, TensorResult};
pub use fixed::{Fx, FRAC_BITS};
pub use fmaps::Fmaps;
pub use kernels::Kernels;
pub use num::Num;
pub use shape::ConvGeom;
pub use workspace::ConvWorkspace;
