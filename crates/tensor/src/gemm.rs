//! GEMM kernels for the lowered convolution fast path.
//!
//! Three tiers share one dispatch enum:
//!
//! * [`MatmulKind::Naive`] — the plain triple loop ([`Matrix::matmul`]),
//!   the golden oracle.
//! * [`MatmulKind::BlockedScalar`] — the retained cache-blocked scalar
//!   kernel. **Bit-identical** to the naive loop: blocking tiles only the
//!   `i`/`j` (output) dimensions while each element's `k` reduction stays
//!   sequential in ascending order with the same `a.is_zero()` operand
//!   skip. This is the scalar oracle the packed kernels are measured
//!   against, and the honest baseline for the microkernel speedup gates.
//! * [`MatmulKind::Blocked`] / [`MatmulKind::Parallel`] — the **packed
//!   SIMD microkernel** ([`crate::microkernel`]) for `f32` and [`Fx`]
//!   operands; other element types (the `f64` validation paths) fall back
//!   to the scalar blocked kernel and keep its naive bit-identity.
//!
//! # Packed-kernel semantics
//!
//! The packed f32 kernel defines its *own* fixed accumulation order — per
//! output element a single fused-multiply-add chain over `k` ascending —
//! rather than reproducing the naive two-rounding sum. That order is
//! deterministic and invariant across thread counts, `ZFGAN_NO_SIMD`, and
//! AVX2-vs-scalar dispatch (the scalar fallback uses the correctly-rounded
//! [`f32::mul_add`], the same operation as one `vfmadd` lane), and it
//! matches the naive oracle within the standard accumulation-error bound.
//! The packed Q8.8 kernel is **bit-identical** to the naive [`Fx`] chain:
//! saturating multiply and add are reproduced exactly, lane for lane.
//!
//! Zero-operand skipping is bit-neutral at *any* granularity under both
//! packed kernels — `fma(0, b, acc) = acc` exactly for finite operands,
//! and the Q8.8 term of a zero operand is exactly zero — so the per-panel
//! structural-zero masks (the paper's zero-free scheduling composed with
//! SIMD) are pure performance freedom, never a semantics choice.
//!
//! The parallel variant packs once on the calling thread, then splits the
//! *output rows* into contiguous chunks, one persistent-pool task per
//! chunk (`zfgan-pool`). Panels run along `k` within a row, so any row
//! partition trivially preserves bits for every thread count and pool
//! schedule.
//!
//! Caveat: the "skipping a zero operand is bit-neutral" argument assumes
//! finite values. A zero activation times an infinite/NaN weight would
//! produce NaN where the skipping path produces 0 — GAN training here
//! never manufactures non-finite weights (WGAN weight clipping bounds
//! them), and the golden nests skip zeros the same way.
//!
//! [`Fx`]: crate::Fx

use std::cell::RefCell;

use crate::error::{ShapeError, TensorResult};
use crate::fault::{FaultLog, FaultPlan, FaultSite};
use crate::im2col::Matrix;
use crate::microkernel::{self, GemmPath, PackScratch, PackedKind};
use crate::num::Num;
use crate::workspace::ConvWorkspace;

/// Row-block height of the scalar blocked kernel: output rows processed
/// per cache tile.
const ROW_BLOCK: usize = 16;
/// Column-block width of the scalar blocked kernel: output columns
/// accumulated in registers per tile. Sized to cover the widest
/// lowered-GAN output-feature count (128) in a single tile: every extra
/// tile re-walks the sparse `a` row, and on the ~50%-zero activations the
/// repeated `is_zero` branches cost more than the tile buys.
const COL_BLOCK: usize = 128;

thread_local! {
    // Packed-kernel scratch for the allocating (non-workspace) entry
    // points: steady-state packing reuse without threading a workspace
    // through every call site. Workspace callers use the workspace's own
    // scratch instead (`ConvWorkspace::pack_scratch`).
    static PACK_TLS: RefCell<PackScratch> = RefCell::new(PackScratch::new());
}

/// How a lowered convolution multiplies its patch and weight matrices.
///
/// `Naive` and `BlockedScalar` are bit-identical to each other for every
/// element type; `Blocked` and `Parallel` run the packed microkernel for
/// `f32`/`Fx` (bit-identical to *each other* for every thread count and
/// SIMD level, bit-identical to the scalar pair for `Fx`, and within the
/// accumulation-error bound of it for `f32`) — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulKind {
    /// The plain triple loop ([`Matrix::matmul`]).
    Naive,
    /// Cache-blocked, register-tiled single-threaded scalar kernel,
    /// bit-identical to [`MatmulKind::Naive`] — the retained scalar
    /// oracle.
    BlockedScalar,
    /// The packed SIMD microkernel, single-threaded (scalar blocked
    /// fallback for element types without a packed kernel).
    Blocked,
    /// The packed SIMD microkernel over row chunks on this many pooled
    /// threads.
    Parallel(usize),
}

impl MatmulKind {
    /// Whether this kind belongs to the reference family (`Naive`,
    /// `BlockedScalar`). The lowering drivers route reference kinds
    /// through the specification fill/reshape loops instead of the
    /// cache-tuned ones, so a reference-backend run keeps the cost model
    /// of the pre-microkernel engine end to end — the baseline the
    /// packed engine's train-step gate measures from. Both fill families
    /// produce bit-identical matrices (pinned by tests); only their
    /// memory-access patterns differ.
    pub fn is_reference(&self) -> bool {
        matches!(self, MatmulKind::Naive | MatmulKind::BlockedScalar)
    }

    /// Runs the selected kernel on `a × b`.
    ///
    /// # Errors
    ///
    /// Returns an error if the inner dimensions disagree.
    pub fn run<T: Num>(&self, a: &Matrix<T>, b: &Matrix<T>) -> TensorResult<Matrix<T>> {
        match *self {
            MatmulKind::Naive => {
                zfgan_telemetry::count("gemm_calls", &[("backend", "naive")], 1);
                a.matmul(b)
            }
            MatmulKind::BlockedScalar => matmul_blocked_scalar(a, b),
            MatmulKind::Blocked => matmul_blocked(a, b),
            MatmulKind::Parallel(n) => matmul_parallel(a, b, n),
        }
    }

    /// Runs the selected kernel on `a × b` with the product drawn from the
    /// workspace instead of allocated — and, for the packed kernels, the
    /// packing scratch reused from the workspace too. Bit-identical to
    /// [`MatmulKind::run`] for every variant; return the product via
    /// [`ConvWorkspace::give_matrix`] when done.
    ///
    /// # Errors
    ///
    /// Returns an error if the inner dimensions disagree (the product
    /// buffer goes back to the workspace).
    pub fn run_ws<T: Num>(
        &self,
        a: &Matrix<T>,
        b: &Matrix<T>,
        ws: &mut ConvWorkspace<T>,
    ) -> TensorResult<Matrix<T>> {
        let mut out = ws.take_matrix(a.rows(), b.cols());
        let result = match *self {
            MatmulKind::Naive => {
                zfgan_telemetry::count("gemm_calls", &[("backend", "naive")], 1);
                a.matmul_into(b, &mut out)
            }
            MatmulKind::BlockedScalar => matmul_blocked_scalar_into(a, b, &mut out),
            MatmulKind::Blocked => matmul_blocked_into_scratch(a, b, &mut out, ws.pack_scratch()),
            MatmulKind::Parallel(n) => {
                matmul_parallel_into_scratch(a, b, n, &mut out, ws.pack_scratch())
            }
        };
        match result {
            Ok(()) => Ok(out),
            Err(e) => {
                ws.give_matrix(out);
                Err(e)
            }
        }
    }
}

/// Publish one kernel invocation's deterministic telemetry: call/tile
/// counts plus the operand-word traffic and how much of it zero skipping
/// elided. For the packed kernels both counts are pure functions of the
/// `a` operand and the shape (panel-mask words), so they are identical
/// for every thread count and SIMD level — and so is `path`, the
/// shape-dispatch decision recorded as the `gemm_dispatch{path}` series
/// (`None` for kernels the dispatch layer doesn't route).
fn record_gemm(
    backend: &'static str,
    m: usize,
    n: usize,
    skipped: u64,
    visited: u64,
    path: Option<GemmPath>,
) {
    if !zfgan_telemetry::enabled() {
        return;
    }
    let labels: &[(&str, &str)] = &[("backend", backend)];
    let blocks = (m.div_ceil(ROW_BLOCK) * n.div_ceil(COL_BLOCK)) as u64;
    zfgan_telemetry::count("gemm_calls", labels, 1);
    zfgan_telemetry::count("gemm_blocks", labels, blocks);
    zfgan_telemetry::count("gemm_operand_words", labels, visited);
    zfgan_telemetry::count("gemm_zero_skipped_words", labels, skipped);
    if let Some(p) = path {
        zfgan_telemetry::count("gemm_dispatch", &[("path", p.label())], 1);
    }
}

/// The scalar blocked kernel over a row range of the output.
///
/// `a` holds `m_local` rows of length `kk`; `out` holds the matching
/// `m_local × n` output rows. Per element the reduction is `k`-ascending
/// with the naive path's `a.is_zero()` skip — bit-identical to
/// [`Matrix::matmul`].
///
/// Returns `(skipped, visited)` operand-word counts: how many `a` words the
/// zero skip elided versus how many were walked in total, feeding the
/// `gemm_zero_skipped_words` / `gemm_operand_words` telemetry counters.
fn gemm_rows<T: Num>(a: &[T], b: &[T], out: &mut [T], kk: usize, n: usize) -> (u64, u64) {
    let m = out.len() / n;
    debug_assert_eq!(a.len(), m * kk);
    debug_assert_eq!(out.len(), m * n);
    let mut acc = [T::zero(); COL_BLOCK];
    let mut skipped = 0u64;
    let mut visited = 0u64;
    for ib in (0..m).step_by(ROW_BLOCK) {
        let ie = (ib + ROW_BLOCK).min(m);
        let mut jb = 0;
        while jb < n {
            let je = (jb + COL_BLOCK).min(n);
            let width = je - jb;
            for i in ib..ie {
                let a_row = &a[i * kk..(i + 1) * kk];
                let tile = &mut acc[..width];
                tile.fill(T::zero());
                visited += kk as u64;
                for (k, &aik) in a_row.iter().enumerate() {
                    if aik.is_zero() {
                        skipped += 1;
                        continue;
                    }
                    let b_row = &b[k * n + jb..k * n + je];
                    for (t, &bv) in tile.iter_mut().zip(b_row) {
                        *t += aik * bv;
                    }
                }
                out[i * n + jb..i * n + je].copy_from_slice(tile);
            }
            jb = je;
        }
    }
    (skipped, visited)
}

/// Validates `a × b = out` shapes for the `_into` kernels.
fn check_matmul_shapes<T: Num>(a: &Matrix<T>, b: &Matrix<T>, out: &Matrix<T>) -> TensorResult<()> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new(format!(
            "matmul inner dimensions disagree: {}×{} vs {}×{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        )));
    }
    if out.rows() != a.rows() || out.cols() != b.cols() {
        return Err(ShapeError::new(format!(
            "matmul output shape {}×{} does not match {}×{}",
            out.rows(),
            out.cols(),
            a.rows(),
            b.cols()
        )));
    }
    Ok(())
}

/// The retained cache-blocked scalar GEMM: `a × b`, bit-identical to
/// [`Matrix::matmul`]. The scalar oracle the packed microkernel is gated
/// against.
///
/// # Errors
///
/// Returns an error if the inner dimensions disagree.
pub fn matmul_blocked_scalar<T: Num>(a: &Matrix<T>, b: &Matrix<T>) -> TensorResult<Matrix<T>> {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_blocked_scalar_into(a, b, &mut out)?;
    Ok(out)
}

/// [`matmul_blocked_scalar`] into a caller-provided output matrix (every
/// element is overwritten; no pre-zeroing required).
///
/// # Errors
///
/// Returns an error if the inner dimensions disagree or `out` has the wrong
/// shape.
pub fn matmul_blocked_scalar_into<T: Num>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    out: &mut Matrix<T>,
) -> TensorResult<()> {
    check_matmul_shapes(a, b, out)?;
    let (kk, n) = (a.cols(), b.cols());
    let (skipped, visited) = gemm_rows(a.as_slice(), b.as_slice(), out.as_mut_slice(), kk, n);
    record_gemm("blocked_scalar", a.rows(), n, skipped, visited, None);
    Ok(())
}

/// Packed SIMD microkernel GEMM: `a × b` through [`crate::microkernel`]
/// for `f32`/[`Fx`](crate::Fx) operands (scalar blocked fallback for
/// other element types). Deterministic for every SIMD level; see the
/// module docs for how it relates to the naive oracle.
///
/// # Errors
///
/// Returns an error if the inner dimensions disagree.
pub fn matmul_blocked<T: Num>(a: &Matrix<T>, b: &Matrix<T>) -> TensorResult<Matrix<T>> {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_blocked_into(a, b, &mut out)?;
    Ok(out)
}

/// [`matmul_blocked`] into a caller-provided output matrix (every element
/// is overwritten; no pre-zeroing required), packing into thread-local
/// scratch. The workspace conv path uses the `_scratch` variant instead.
///
/// # Errors
///
/// Returns an error if the inner dimensions disagree or `out` has the wrong
/// shape.
pub fn matmul_blocked_into<T: Num>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    out: &mut Matrix<T>,
) -> TensorResult<()> {
    PACK_TLS.with(|s| matmul_blocked_into_scratch(a, b, out, &mut s.borrow_mut()))
}

/// [`matmul_blocked_into`] with caller-owned packing scratch (the
/// workspace hot path: zero allocations once the scratch is warm).
pub(crate) fn matmul_blocked_into_scratch<T: Num>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    out: &mut Matrix<T>,
    scratch: &mut PackScratch,
) -> TensorResult<()> {
    check_matmul_shapes(a, b, out)?;
    let (m, kk, n) = (a.rows(), a.cols(), b.cols());
    match microkernel::packed_kind::<T>() {
        Some(kind) => {
            let plan = microkernel::plan_gemm(a.as_slice(), b.as_slice(), m, kk, n, kind, scratch);
            microkernel::run_plan_rows(
                plan.path,
                a.as_slice(),
                b.as_slice(),
                scratch,
                out.as_mut_slice(),
                0,
                kk,
                n,
                kind,
            );
            record_gemm("blocked", m, n, plan.skipped, plan.visited, Some(plan.path));
        }
        None => {
            let (skipped, visited) =
                gemm_rows(a.as_slice(), b.as_slice(), out.as_mut_slice(), kk, n);
            record_gemm("blocked", m, n, skipped, visited, None);
        }
    }
    Ok(())
}

/// Multithreaded packed GEMM: operands packed once on the calling thread,
/// then contiguous row chunks of the output, one pool task each (on the
/// persistent `zfgan-pool` workers). Bit-identical to [`matmul_blocked`]
/// for every thread count.
///
/// `n_threads` is clamped to `[1, a.rows()]`; with one thread this is
/// exactly [`matmul_blocked`].
///
/// # Errors
///
/// Returns an error if the inner dimensions disagree.
pub fn matmul_parallel<T: Num>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    n_threads: usize,
) -> TensorResult<Matrix<T>> {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    matmul_parallel_into(a, b, n_threads, &mut out)?;
    Ok(out)
}

/// [`matmul_parallel`] into a caller-provided output matrix (every element
/// is overwritten; no pre-zeroing required), packing into thread-local
/// scratch.
///
/// The row chunking is a pure function of `(rows, n_threads)` — identical
/// to the pre-pool scoped-thread split — and the packed kernel's panels
/// run along `k` *within* a row, so results stay bit-identical regardless
/// of which pool worker runs which chunk.
///
/// # Errors
///
/// Returns an error if the inner dimensions disagree or `out` has the wrong
/// shape.
pub fn matmul_parallel_into<T: Num>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    n_threads: usize,
    out: &mut Matrix<T>,
) -> TensorResult<()> {
    PACK_TLS.with(|s| matmul_parallel_into_scratch(a, b, n_threads, out, &mut s.borrow_mut()))
}

/// [`matmul_parallel_into`] with caller-owned packing scratch (the
/// workspace hot path).
pub(crate) fn matmul_parallel_into_scratch<T: Num>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    n_threads: usize,
    out: &mut Matrix<T>,
    scratch: &mut PackScratch,
) -> TensorResult<()> {
    check_matmul_shapes(a, b, out)?;
    let (m, kk, n) = (a.rows(), a.cols(), b.cols());
    // Splitting wider than the pool only adds dispatch overhead (the
    // chunks would serialize anyway), so clamp to the hardware width; on
    // a single-core host this degrades to the blocked kernel with zero
    // synchronisation. Results are bit-identical for every width.
    let threads = n_threads.clamp(1, m).min(zfgan_pool::pool_threads());
    if threads == 1 {
        return matmul_blocked_into_scratch(a, b, out, scratch);
    }
    let rows_per = m.div_ceil(threads);
    let (a_flat, b_flat) = (a.as_slice(), b.as_slice());
    match microkernel::packed_kind::<T>() {
        Some(kind) => {
            // Scan A, pick the dispatch path and (for the packed engine)
            // pack B once on the calling thread; the workers only read.
            // One plan per GEMM means one telemetry record and an
            // identical engine for every chunk — bit-neutral under any
            // partition, since every engine's chains run along `k`.
            let plan = microkernel::plan_gemm(a_flat, b_flat, m, kk, n, kind, scratch);
            let shared: &PackScratch = scratch;
            zfgan_pool::parallel_chunks_mut(
                out.as_mut_slice(),
                rows_per * n,
                |chunk_idx, out_chunk| {
                    microkernel::run_plan_rows(
                        plan.path,
                        a_flat,
                        b_flat,
                        shared,
                        out_chunk,
                        chunk_idx * rows_per,
                        kk,
                        n,
                        kind,
                    );
                },
            )
            .expect("matmul worker panicked");
            record_gemm(
                "parallel",
                m,
                n,
                plan.skipped,
                plan.visited,
                Some(plan.path),
            );
        }
        None => {
            // Per-chunk (skipped, visited) counts come back in chunk
            // order; the calling thread aggregates and records them (pool
            // workers don't see the caller's thread-local telemetry
            // scope).
            let counts = zfgan_pool::parallel_chunks_mut(
                out.as_mut_slice(),
                rows_per * n,
                |chunk_idx, out_chunk| {
                    let row0 = chunk_idx * rows_per;
                    let rows_here = out_chunk.len() / n;
                    let a_chunk = &a_flat[row0 * kk..(row0 + rows_here) * kk];
                    gemm_rows(a_chunk, b_flat, out_chunk, kk, n)
                },
            )
            .expect("matmul worker panicked");
            let (skipped, visited) = counts
                .iter()
                .fold((0, 0), |(s, v), (cs, cv)| (s + cs, v + cv));
            record_gemm("parallel", m, n, skipped, visited, None);
        }
    }
    Ok(())
}

/// GEMM with `B` produced on demand — the streamed-lowering entry for the
/// workspace conv drivers. `fill_row(k, row)` must write every element of
/// row `k` of the virtual `kk × n` operand `B` (the buffer it receives is
/// reused across rows, so a partial write would leak a previous row).
///
/// The `A` scan runs **before** `B` exists: when the dispatch layer picks
/// a broadcast path (small-`m` or ikj), `B` is never materialized — rows
/// stream through a one-`k`-tile workspace buffer, `k` ascending, each
/// live `(i, k)` pair applying one [`microkernel::axpy_packed`] update,
/// and `B` rows whose `A` column is entirely zero are never even
/// generated. That is the same per-element operation chain as every other
/// engine (the f32 fused chain / the saturating Q8.8 chain, zero terms
/// skipped), so the result is bit-identical to materializing `B` and
/// calling [`MatmulKind::run_ws`] — which is exactly what the remaining
/// paths (packed, non-packed element types) do here.
///
/// Reference kinds keep their specification fills at the call sites and
/// never reach this entry.
///
/// # Errors
///
/// Returns an error if `a.cols() != kk`.
pub(crate) fn matmul_streamed_ws<T: Num>(
    kind: MatmulKind,
    a: &Matrix<T>,
    kk: usize,
    n: usize,
    fill_row: &mut dyn FnMut(usize, &mut [T]),
    ws: &mut ConvWorkspace<T>,
) -> TensorResult<Matrix<T>> {
    let m = a.rows();
    if a.cols() != kk {
        return Err(ShapeError::new(format!(
            "streamed matmul inner dimensions disagree: {}×{} vs {}×{}",
            m,
            a.cols(),
            kk,
            n
        )));
    }
    if let Some(pkind) = microkernel::packed_kind::<T>() {
        if !kind.is_reference() {
            let plan = microkernel::scan_gemm(a.as_slice(), m, kk, n, ws.pack_scratch());
            if matches!(plan.path, GemmPath::SmallM | GemmPath::Ikj) {
                let mut out = ws.take_matrix(m, n);
                // One k-tile of `B` rows — or fewer when the whole operand
                // is shorter than a tile (`kk = 1` input-grad reshapes).
                let mut rowbuf = ws.take(microkernel::IKJ_KB.min(kk) * n);
                broadcast_streamed(
                    pkind,
                    a.as_slice(),
                    ws.pack_scratch_ref().masks(),
                    m,
                    kk,
                    n,
                    out.as_mut_slice(),
                    &mut rowbuf,
                    fill_row,
                );
                ws.give(rowbuf);
                record_gemm("blocked", m, n, plan.skipped, plan.visited, Some(plan.path));
                return Ok(out);
            }
        }
    }
    // The packed path wants `B` whole (it packs it into column panels):
    // materialize it row by row into workspace scratch — the same bytes
    // the cache-tuned fills produce — and run the normal kernel. Non-
    // packed element types and reference kinds land here too.
    let mut b = ws.take_matrix(kk, n);
    for k in 0..kk {
        fill_row(k, b.row_mut(k));
    }
    let result = kind.run_ws(a, &b, ws);
    ws.give_matrix(b);
    result
}

/// The streamed broadcast engine behind both non-packed dispatch paths:
/// the same [`microkernel::IKJ_KB`]-tiled `kb`/`i`/`k` nest as the ikj
/// kernels, but over `B` rows generated on demand into a one-tile row
/// buffer instead of a materialized operand. Per tile it scans column
/// liveness through the panel masks (masked `A` panels are never read),
/// fills only the live `B` rows — dead columns skip row generation
/// entirely — then runs the *shared* fused tile kernel
/// ([`microkernel::ikj_tile_packed`]) against the L1-hot buffer. Each
/// output element's term chain still runs `k` ascending (tiles ascend,
/// `k` ascends within a tile), so the result is bit-identical to the
/// in-memory ikj kernels (exact round trips — see the microkernel module
/// docs).
#[allow(clippy::too_many_arguments)]
fn broadcast_streamed<T: Num>(
    kind: PackedKind,
    a: &[T],
    masks: &[u64],
    m: usize,
    kk: usize,
    n: usize,
    out: &mut [T],
    rowbuf: &mut [T],
    fill_row: &mut dyn FnMut(usize, &mut [T]),
) {
    const KP: usize = microkernel::KP;
    const KB: usize = microkernel::IKJ_KB;
    let wpr = microkernel::mask_geometry(kk).1;
    debug_assert_eq!(masks.len(), m * wpr);
    out.fill(T::zero());
    for kb in (0..kk).step_by(KB) {
        let kend = (kb + KB).min(kk);
        // Column-liveness scan for this tile: walk each row's tile words
        // panel-wise so masked panels cost one bit test, not `KP` loads.
        let mut live = [false; KB];
        for i in 0..m {
            let mrow = &masks[i * wpr..(i + 1) * wpr];
            let mut k = kb;
            while k < kend {
                let p = k / KP;
                let pend = (p * KP + KP).min(kend);
                if microkernel::mask_hit(mrow, p) {
                    k = pend;
                    continue;
                }
                while k < pend {
                    if !a[i * kk + k].is_zero() {
                        live[k - kb] = true;
                    }
                    k += 1;
                }
            }
        }
        for (t, &is_live) in live[..kend - kb].iter().enumerate() {
            if is_live {
                fill_row(kb + t, &mut rowbuf[t * n..(t + 1) * n]);
            }
        }
        microkernel::ikj_tile_packed(
            kind,
            a,
            masks,
            &rowbuf[..(kend - kb) * n],
            out,
            kk,
            n,
            kb,
            kend,
        );
    }
}

/// GEMM against an in-memory `B` borrowed as a raw row-major slice — the
/// entry for lowering fast paths whose `B` operand already exists inside
/// another tensor (the `1×1`-input T-CONV reads the kernel tensor itself
/// as its weight matrix, zero-copy). The dispatch layer decides exactly
/// as the materialized entries would; when it picks the packed engine
/// (forced or by shape), or the element type has no packed kernels, or
/// `kind` is a reference kind, the call returns `Ok(None)` untouched and
/// the caller falls back to its classic lowering — so a forced-packed
/// run keeps the classic route's cost model, the baseline the dispatch
/// gate measures against.
///
/// # Errors
///
/// Returns an error if `b` is not a `a.cols() × n` operand.
pub(crate) fn matmul_inline_b_ws<T: Num>(
    kind: MatmulKind,
    a: &Matrix<T>,
    b: &[T],
    n: usize,
    ws: &mut ConvWorkspace<T>,
) -> TensorResult<Option<Matrix<T>>> {
    let (m, kk) = (a.rows(), a.cols());
    if b.len() != kk * n {
        return Err(ShapeError::new(format!(
            "inline-B matmul operand holds {} words, expected {kk}×{n}",
            b.len()
        )));
    }
    let Some(pkind) = microkernel::packed_kind::<T>() else {
        return Ok(None);
    };
    if kind.is_reference() {
        return Ok(None);
    }
    let plan = microkernel::scan_gemm(a.as_slice(), m, kk, n, ws.pack_scratch());
    if plan.path == GemmPath::Packed {
        return Ok(None);
    }
    let mut out = ws.take_matrix(m, n);
    microkernel::run_plan_rows(
        plan.path,
        a.as_slice(),
        b,
        ws.pack_scratch_ref(),
        out.as_mut_slice(),
        0,
        kk,
        n,
        pkind,
    );
    record_gemm("blocked", m, n, plan.skipped, plan.visited, Some(plan.path));
    Ok(Some(out))
}

/// GEMM with deterministic accumulator-fault injection: runs the selected
/// kernel, then corrupts each output element the plan fires on — modelling
/// a transient upset of the PE's partial-sum register at writeback.
///
/// Output element `(i, j)` is word `base + i·n + j` of the
/// [`FaultSite::GemmAccumulator`] index space, so injection is positional:
/// the same plan fires on the same elements for every [`MatmulKind`] and
/// thread count, keeping campaigns bit-reproducible within a kernel
/// family.
///
/// # Errors
///
/// Returns an error if the inner dimensions disagree.
pub fn matmul_with_faults(
    kind: MatmulKind,
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    plan: &FaultPlan,
    base: u64,
    log: &mut FaultLog,
) -> TensorResult<Matrix<f32>> {
    let mut out = kind.run(a, b)?;
    plan.corrupt_slice(FaultSite::GemmAccumulator, base, out.as_mut_slice(), log);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;
    use crate::fixed::Fx;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, zero_frac: f64, rng: &mut SmallRng) -> Matrix<f32> {
        let data = (0..rows * cols)
            .map(|_| {
                if rng.gen_range(0.0..1.0) < zero_frac {
                    0.0
                } else {
                    rng.gen_range(-1.0f32..1.0)
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Standard accumulation-error bound between the fused `k`-chain and
    /// the naive two-rounding chain: `2·γ_kk·Σ|a·b| ≤ 2·kk²·ε` for the
    /// unit-magnitude test operands.
    fn assert_within_accumulation_bound(naive: &Matrix<f32>, packed: &Matrix<f32>, kk: usize) {
        let bound = (2.0 * (kk as f32) * (kk as f32) * f32::EPSILON).max(1e-6);
        for (i, (x, y)) in naive.as_slice().iter().zip(packed.as_slice()).enumerate() {
            assert!(
                (x - y).abs() <= bound,
                "element {i}: naive {x} vs packed {y} exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn blocked_scalar_is_bit_identical_to_naive() {
        let mut rng = SmallRng::seed_from_u64(10);
        for (m, k, n) in [(1, 1, 1), (3, 7, 5), (17, 33, 65), (40, 100, 130)] {
            let a = random_matrix(m, k, 0.4, &mut rng);
            let b = random_matrix(k, n, 0.1, &mut rng);
            let naive = a.matmul(&b).unwrap();
            let blocked = matmul_blocked_scalar(&a, &b).unwrap();
            assert_eq!(naive, blocked, "{m}×{k}×{n}");
        }
    }

    #[test]
    fn packed_f32_matches_naive_within_the_accumulation_bound() {
        let mut rng = SmallRng::seed_from_u64(10);
        for (m, k, n) in [(1, 1, 1), (3, 7, 5), (17, 33, 65), (40, 100, 130)] {
            let a = random_matrix(m, k, 0.4, &mut rng);
            let b = random_matrix(k, n, 0.1, &mut rng);
            let naive = a.matmul(&b).unwrap();
            let packed = matmul_blocked(&a, &b).unwrap();
            assert_within_accumulation_bound(&naive, &packed, k);
        }
    }

    #[test]
    fn packed_fx_is_bit_identical_to_naive_fx() {
        let mut rng = SmallRng::seed_from_u64(14);
        for (m, k, n) in [(1, 1, 1), (5, 9, 7), (19, 40, 33)] {
            let draw = |rows: usize, cols: usize, rng: &mut SmallRng| {
                let data = (0..rows * cols)
                    .map(|_| {
                        if rng.gen_range(0.0..1.0) < 0.4 {
                            Fx::ZERO
                        } else {
                            Fx::from_f32(rng.gen_range(-4.0f32..4.0))
                        }
                    })
                    .collect();
                Matrix::from_vec(rows, cols, data)
            };
            let a = draw(m, k, &mut rng);
            let b = draw(k, n, &mut rng);
            let naive = a.matmul(&b).unwrap();
            assert_eq!(naive, matmul_blocked(&a, &b).unwrap(), "{m}×{k}×{n}");
            assert_eq!(naive, matmul_blocked_scalar(&a, &b).unwrap(), "{m}×{k}×{n}");
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_blocked_for_every_thread_count() {
        let mut rng = SmallRng::seed_from_u64(11);
        let a = random_matrix(37, 50, 0.5, &mut rng);
        let b = random_matrix(50, 23, 0.0, &mut rng);
        let reference = matmul_blocked(&a, &b).unwrap();
        for threads in [1, 2, 3, 5, 8, 64] {
            let par = matmul_parallel(&a, &b, threads).unwrap();
            assert_eq!(reference, par, "threads={threads}");
        }
    }

    #[test]
    fn f64_keeps_the_naive_bit_identity_on_every_kind() {
        let mut rng = SmallRng::seed_from_u64(15);
        let data = |len: usize, rng: &mut SmallRng| -> Vec<f64> {
            (0..len).map(|_| rng.gen_range(-1.0f64..1.0)).collect()
        };
        let a = Matrix::from_vec(13, 21, data(13 * 21, &mut rng));
        let b = Matrix::from_vec(21, 9, data(21 * 9, &mut rng));
        let naive = a.matmul(&b).unwrap();
        for kind in [
            MatmulKind::BlockedScalar,
            MatmulKind::Blocked,
            MatmulKind::Parallel(4),
        ] {
            assert_eq!(naive, kind.run(&a, &b).unwrap(), "{kind:?}");
        }
    }

    #[test]
    fn thread_count_zero_is_clamped() {
        let mut rng = SmallRng::seed_from_u64(12);
        let a = random_matrix(4, 6, 0.0, &mut rng);
        let b = random_matrix(6, 3, 0.0, &mut rng);
        assert_eq!(
            matmul_blocked(&a, &b).unwrap(),
            matmul_parallel(&a, &b, 0).unwrap()
        );
    }

    #[test]
    fn kernels_reject_dimension_mismatch() {
        let a: Matrix<f32> = Matrix::zeros(2, 3);
        let b: Matrix<f32> = Matrix::zeros(2, 3);
        assert!(matmul_blocked(&a, &b).is_err());
        assert!(matmul_blocked_scalar(&a, &b).is_err());
        assert!(matmul_parallel(&a, &b, 4).is_err());
    }

    #[test]
    fn fault_injection_is_positional_across_kernels() {
        let mut rng = SmallRng::seed_from_u64(13);
        let a = random_matrix(19, 30, 0.3, &mut rng);
        let b = random_matrix(30, 21, 0.0, &mut rng);
        let plan = FaultPlan::new(
            77,
            0.02,
            FaultSite::GemmAccumulator,
            FaultKind::BitFlip { bit: 30 },
        )
        .unwrap();
        let mut reference_log = FaultLog::default();
        let reference =
            matmul_with_faults(MatmulKind::Blocked, &a, &b, &plan, 100, &mut reference_log)
                .unwrap();
        assert!(reference_log.fired > 0, "plan should fire in 399 elements");
        // Within the packed family the faulted outputs are bit-identical;
        // across families the fault *sites* (positions) still agree.
        for (kind, bitwise) in [
            (MatmulKind::Parallel(4), true),
            (MatmulKind::Naive, false),
            (MatmulKind::BlockedScalar, false),
        ] {
            let mut log = FaultLog::default();
            let c = matmul_with_faults(kind, &a, &b, &plan, 100, &mut log).unwrap();
            if bitwise {
                // Bitwise comparison: injected faults can produce NaN,
                // which PartialEq would treat as unequal to itself.
                assert!(
                    reference
                        .as_slice()
                        .iter()
                        .zip(c.as_slice())
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{kind:?}"
                );
            }
            assert_eq!(log.attempts, reference_log.attempts, "{kind:?}");
            assert_eq!(log.fired, reference_log.fired, "{kind:?}");
            assert_eq!(
                log.records.iter().map(|r| r.index).collect::<Vec<_>>(),
                reference_log
                    .records
                    .iter()
                    .map(|r| r.index)
                    .collect::<Vec<_>>(),
                "{kind:?}"
            );
        }
        // A different base shifts the fault pattern: same plan, new words.
        let mut other_log = FaultLog::default();
        let other = matmul_with_faults(MatmulKind::Blocked, &a, &b, &plan, 100_000, &mut other_log)
            .unwrap();
        assert_ne!(
            reference_log
                .records
                .iter()
                .map(|r| r.index)
                .collect::<Vec<_>>(),
            other_log
                .records
                .iter()
                .map(|r| r.index)
                .collect::<Vec<_>>(),
            "base offset must move the fault sites"
        );
        let _ = other;
    }

    #[test]
    fn workspace_scratch_matches_thread_local_scratch() {
        let mut rng = SmallRng::seed_from_u64(16);
        let a = random_matrix(12, 40, 0.5, &mut rng);
        let b = random_matrix(40, 17, 0.0, &mut rng);
        let mut ws: ConvWorkspace<f32> = ConvWorkspace::new();
        for kind in [MatmulKind::Blocked, MatmulKind::Parallel(3)] {
            let plain = kind.run(&a, &b).unwrap();
            // Twice: the second call runs on warm (dirty) scratch.
            for round in 0..2 {
                let ws_out = kind.run_ws(&a, &b, &mut ws).unwrap();
                assert_eq!(plain, ws_out, "{kind:?} round {round}");
                ws.give_matrix(ws_out);
            }
        }
    }
}
