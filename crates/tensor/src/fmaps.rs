//! [`Fmaps`] — one sample's worth of feature maps (`C × H × W`).

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::num::Num;

/// A dense set of 2-D feature maps, stored row-major as `C × H × W`.
///
/// This is the unit of data that flows between GAN layers: activations on the
/// forward pass, errors (`δ`) on the backward pass. Indexing is
/// bounds-checked through [`Fmaps::at`] / [`Fmaps::at_mut`]; the paper's
/// notation `I_(ix,iy)^(if)` maps to `at(if, iy, ix)`.
///
/// # Example
///
/// ```
/// use zfgan_tensor::Fmaps;
///
/// let mut x: Fmaps<f32> = Fmaps::zeros(2, 3, 3);
/// *x.at_mut(1, 2, 0) = 5.0;
/// assert_eq!(*x.at(1, 2, 0), 5.0);
/// assert_eq!(x.len(), 18);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fmaps<T> {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<T>,
}

impl<T: Num> Fmaps<T> {
    /// Creates feature maps filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "feature-map dimensions must be non-zero (got {channels}×{height}×{width})"
        );
        Self {
            channels,
            height,
            width,
            data: vec![T::zero(); channels * height * width],
        }
    }

    /// Creates feature maps from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != channels * height * width` or any dimension
    /// is zero.
    pub fn from_vec(channels: usize, height: usize, width: usize, data: Vec<T>) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "dimensions must be non-zero"
        );
        assert_eq!(
            data.len(),
            channels * height * width,
            "buffer length {} does not match {channels}×{height}×{width}",
            data.len()
        );
        Self {
            channels,
            height,
            width,
            data,
        }
    }

    /// Creates feature maps with each element drawn uniformly from
    /// `[-scale, scale]`.
    pub fn random<R: Rng>(
        channels: usize,
        height: usize,
        width: usize,
        scale: f32,
        rng: &mut R,
    ) -> Self {
        let mut out = Self::zeros(channels, height, width);
        for v in &mut out.data {
            *v = T::from_f32(rng.gen_range(-scale..=scale));
        }
        out
    }

    /// Number of feature maps (`N_if` / `N_of` in the paper).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Rows per feature map (`N_iy`).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Columns per feature map (`N_ix`).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (never true: dimensions are
    /// validated to be non-zero).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the element at channel `c`, row `y`, column `x`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn at(&self, c: usize, y: usize, x: usize) -> &T {
        &self.data[self.offset(c, y, x)]
    }

    /// Mutably borrow the element at channel `c`, row `y`, column `x`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn at_mut(&mut self, c: usize, y: usize, x: usize) -> &mut T {
        let idx = self.offset(c, y, x);
        &mut self.data[idx]
    }

    /// The element at `(c, y, x)` treating out-of-bounds coordinates as the
    /// zero padding that surrounds the map — the form every convolution
    /// loop nest wants.
    #[inline]
    pub fn at_padded(&self, c: usize, y: isize, x: isize) -> T {
        if y < 0 || x < 0 || y as usize >= self.height || x as usize >= self.width {
            T::zero()
        } else {
            self.data[self.offset(c, y as usize, x as usize)]
        }
    }

    /// Flat read-only view of the underlying buffer (row-major `C×H×W`).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Iterates the elements in row-major (`C×H×W`) order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutably iterates the elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Flat mutable view of the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, yielding its row-major buffer (so a workspace
    /// can recycle it).
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Applies `f` element-wise, producing a new tensor of the same shape.
    pub fn map<U: Num>(&self, mut f: impl FnMut(T) -> U) -> Fmaps<U> {
        Fmaps {
            channels: self.channels,
            height: self.height,
            width: self.width,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise (Hadamard) product — the `∘ σ'` step of paper Eq. (3).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, rhs: &Fmaps<T>) -> Fmaps<T> {
        assert_eq!(self.shape(), rhs.shape(), "hadamard requires equal shapes");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Fmaps {
            channels: self.channels,
            height: self.height,
            width: self.width,
            data,
        }
    }

    /// In-place accumulation `self += rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, rhs: &Fmaps<T>) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "add_assign requires equal shapes"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// `(channels, height, width)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.channels, self.height, self.width)
    }

    /// Number of elements that are exactly zero.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|v| v.is_zero()).count()
    }

    /// Sum of all elements in `f64` (used for loss averaging).
    pub fn sum_f64(&self) -> f64 {
        self.data.iter().map(|v| v.to_f64()).sum()
    }

    /// Largest absolute element-wise difference to `rhs`, in `f64`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, rhs: &Fmaps<T>) -> f64 {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "max_abs_diff requires equal shapes"
        );
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    #[inline]
    fn offset(&self, c: usize, y: usize, x: usize) -> usize {
        assert!(
            c < self.channels && y < self.height && x < self.width,
            "index ({c},{y},{x}) out of bounds for {}×{}×{}",
            self.channels,
            self.height,
            self.width
        );
        (c * self.height + y) * self.width + x
    }
}

impl<T: Num> fmt::Display for Fmaps<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fmaps({}×{}×{})", self.channels, self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn index_round_trip() {
        let mut t: Fmaps<f32> = Fmaps::zeros(2, 3, 4);
        *t.at_mut(1, 2, 3) = 7.0;
        assert_eq!(*t.at(1, 2, 3), 7.0);
        assert_eq!(t.as_slice()[(3 + 2) * 4 + 3], 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t: Fmaps<f32> = Fmaps::zeros(1, 2, 2);
        let _ = t.at(0, 2, 0);
    }

    #[test]
    fn padded_access_returns_zero_outside() {
        let mut t: Fmaps<f32> = Fmaps::zeros(1, 2, 2);
        *t.at_mut(0, 0, 0) = 3.0;
        assert_eq!(t.at_padded(0, -1, 0), 0.0);
        assert_eq!(t.at_padded(0, 0, 5), 0.0);
        assert_eq!(t.at_padded(0, 0, 0), 3.0);
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = Fmaps::from_vec(1, 1, 3, vec![1.0f32, 2.0, 3.0]);
        let b = Fmaps::from_vec(1, 1, 3, vec![4.0f32, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Fmaps::from_vec(1, 1, 2, vec![1.0f32, 2.0]);
        let b = Fmaps::from_vec(1, 1, 2, vec![0.5f32, -2.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[1.5, 0.0]);
    }

    #[test]
    fn count_zeros_and_sum() {
        let t = Fmaps::from_vec(1, 2, 2, vec![0.0f32, 1.0, 0.0, 2.0]);
        assert_eq!(t.count_zeros(), 2);
        assert_eq!(t.sum_f64(), 3.0);
    }

    #[test]
    fn random_respects_scale() {
        let mut rng = SmallRng::seed_from_u64(7);
        let t: Fmaps<f32> = Fmaps::random(2, 4, 4, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|v| v.abs() <= 0.5));
        // Astronomically unlikely to be all zeros.
        assert!(t.count_zeros() < t.len());
    }

    #[test]
    fn map_changes_element_type() {
        let t = Fmaps::from_vec(1, 1, 2, vec![1.25f32, -0.5]);
        let q = t.map(crate::Fx::from_f32);
        assert_eq!(q.at(0, 0, 0).to_f32(), 1.25);
        assert_eq!(q.at(0, 0, 1).to_f32(), -0.5);
    }

    #[test]
    fn max_abs_diff_finds_peak() {
        let a = Fmaps::from_vec(1, 1, 3, vec![1.0f32, 2.0, 3.0]);
        let b = Fmaps::from_vec(1, 1, 3, vec![1.0f32, 4.5, 3.0]);
        assert_eq!(a.max_abs_diff(&b), 2.5);
    }

    #[test]
    fn iterators_walk_row_major() {
        let mut t = Fmaps::from_vec(1, 2, 2, vec![1.0f32, 2.0, 3.0, 4.0]);
        let sum: f32 = t.iter().sum();
        assert_eq!(sum, 10.0);
        for v in t.iter_mut() {
            *v *= 2.0;
        }
        assert_eq!(t.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        let _: Fmaps<f32> = Fmaps::zeros(0, 2, 2);
    }
}
