//! [`Kernels`] — a 4-D convolution weight tensor (`OF × IF × KH × KW`).

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::num::Num;

/// The weights of one convolutional layer, stored row-major as
/// `OF × IF × KH × KW`.
///
/// The same type also holds the output of `W-CONV`: the paper's
/// "four-dimension output matrices" `∇W` have exactly this shape, with the
/// `(of, if)` pair indexing which output/input feature-map combination each
/// `KH × KW` slice belongs to.
///
/// # Example
///
/// ```
/// use zfgan_tensor::Kernels;
///
/// let mut w: Kernels<f32> = Kernels::zeros(64, 3, 4, 4);
/// *w.at_mut(10, 2, 1, 3) = 0.5;
/// assert_eq!(*w.at(10, 2, 1, 3), 0.5);
/// assert_eq!(w.len(), 64 * 3 * 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernels<T> {
    n_of: usize,
    n_if: usize,
    kh: usize,
    kw: usize,
    data: Vec<T>,
}

impl<T: Num> Kernels<T> {
    /// Creates a zero-filled weight tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(n_of: usize, n_if: usize, kh: usize, kw: usize) -> Self {
        assert!(
            n_of > 0 && n_if > 0 && kh > 0 && kw > 0,
            "kernel dimensions must be non-zero (got {n_of}×{n_if}×{kh}×{kw})"
        );
        Self {
            n_of,
            n_if,
            kh,
            kw,
            data: vec![T::zero(); n_of * n_if * kh * kw],
        }
    }

    /// Creates a weight tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match the dimensions.
    pub fn from_vec(n_of: usize, n_if: usize, kh: usize, kw: usize, data: Vec<T>) -> Self {
        assert!(
            n_of > 0 && n_if > 0 && kh > 0 && kw > 0,
            "dimensions must be non-zero"
        );
        assert_eq!(data.len(), n_of * n_if * kh * kw, "buffer length mismatch");
        Self {
            n_of,
            n_if,
            kh,
            kw,
            data,
        }
    }

    /// Creates a weight tensor with elements drawn uniformly from
    /// `[-scale, scale]` — the usual DCGAN initialisation envelope.
    pub fn random<R: Rng>(
        n_of: usize,
        n_if: usize,
        kh: usize,
        kw: usize,
        scale: f32,
        rng: &mut R,
    ) -> Self {
        let mut out = Self::zeros(n_of, n_if, kh, kw);
        for v in &mut out.data {
            *v = T::from_f32(rng.gen_range(-scale..=scale));
        }
        out
    }

    /// Number of output feature maps (`N_of`).
    pub fn n_of(&self) -> usize {
        self.n_of
    }

    /// Number of input feature maps (`N_if`).
    pub fn n_if(&self) -> usize {
        self.n_if
    }

    /// Kernel rows (`N_ky`).
    pub fn kh(&self) -> usize {
        self.kh
    }

    /// Kernel columns (`N_kx`).
    pub fn kw(&self) -> usize {
        self.kw
    }

    /// Total number of weights.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no weights (never true: dimensions are
    /// validated to be non-zero).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the weight `K_(ky,kx)^(of,if)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn at(&self, of: usize, if_: usize, ky: usize, kx: usize) -> &T {
        &self.data[self.offset(of, if_, ky, kx)]
    }

    /// Mutably borrow the weight `K_(ky,kx)^(of,if)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn at_mut(&mut self, of: usize, if_: usize, ky: usize, kx: usize) -> &mut T {
        let idx = self.offset(of, if_, ky, kx);
        &mut self.data[idx]
    }

    /// Flat read-only view (row-major `OF×IF×KH×KW`).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Iterates the weights in row-major (`OF×IF×KH×KW`) order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Mutably iterates the weights in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    /// Flat mutable view.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, yielding its row-major buffer (so a workspace
    /// can recycle it).
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// `(n_of, n_if, kh, kw)`.
    pub fn shape(&self) -> (usize, usize, usize, usize) {
        (self.n_of, self.n_if, self.kh, self.kw)
    }

    /// Applies `f` element-wise, producing a new tensor of the same shape.
    pub fn map<U: Num>(&self, mut f: impl FnMut(T) -> U) -> Kernels<U> {
        Kernels {
            n_of: self.n_of,
            n_if: self.n_if,
            kh: self.kh,
            kw: self.kw,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place accumulation `self += rhs` — how the deferred-synchronization
    /// trainer accumulates per-sample `∇wᵢ` into `∇W`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, rhs: &Kernels<T>) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "add_assign requires equal shapes"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place scaling by a scalar (loss averaging: `1/m`).
    pub fn scale(&mut self, factor: T) {
        for v in &mut self.data {
            *v = *v * factor;
        }
    }

    /// Largest absolute element-wise difference to `rhs`, in `f64`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, rhs: &Kernels<T>) -> f64 {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "max_abs_diff requires equal shapes"
        );
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Number of weights that are exactly zero.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|v| v.is_zero()).count()
    }

    #[inline]
    fn offset(&self, of: usize, if_: usize, ky: usize, kx: usize) -> usize {
        assert!(
            of < self.n_of && if_ < self.n_if && ky < self.kh && kx < self.kw,
            "index ({of},{if_},{ky},{kx}) out of bounds for {}×{}×{}×{}",
            self.n_of,
            self.n_if,
            self.kh,
            self.kw
        );
        ((of * self.n_if + if_) * self.kh + ky) * self.kw + kx
    }
}

impl<T: Num> fmt::Display for Kernels<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Kernels({}×{}×{}×{})",
            self.n_of, self.n_if, self.kh, self.kw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn index_round_trip() {
        let mut w: Kernels<f32> = Kernels::zeros(3, 2, 4, 5);
        *w.at_mut(2, 1, 3, 4) = -2.5;
        assert_eq!(*w.at(2, 1, 3, 4), -2.5);
        assert_eq!(w.as_slice()[((2 * 2 + 1) * 4 + 3) * 5 + 4], -2.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let w: Kernels<f32> = Kernels::zeros(1, 1, 2, 2);
        let _ = w.at(0, 0, 0, 2);
    }

    #[test]
    fn accumulate_and_scale() {
        let mut a = Kernels::from_vec(1, 1, 1, 2, vec![1.0f32, 2.0]);
        let b = Kernels::from_vec(1, 1, 1, 2, vec![3.0f32, -2.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[4.0, 0.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn random_respects_scale() {
        let mut rng = SmallRng::seed_from_u64(3);
        let w: Kernels<f32> = Kernels::random(4, 4, 3, 3, 0.1, &mut rng);
        assert!(w.as_slice().iter().all(|v| v.abs() <= 0.1));
    }

    #[test]
    fn max_abs_diff_and_zero_count() {
        let a = Kernels::from_vec(1, 1, 2, 2, vec![0.0f32, 1.0, 2.0, 3.0]);
        let b = Kernels::from_vec(1, 1, 2, 2, vec![0.0f32, 1.0, 2.0, 5.0]);
        assert_eq!(a.max_abs_diff(&b), 2.0);
        assert_eq!(a.count_zeros(), 1);
    }

    #[test]
    fn iterators_walk_row_major() {
        let mut w = Kernels::from_vec(1, 1, 1, 3, vec![1.0f32, 2.0, 3.0]);
        assert_eq!(w.iter().copied().sum::<f32>(), 6.0);
        for v in w.iter_mut() {
            *v += 1.0;
        }
        assert_eq!(w.as_slice(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn map_quantises() {
        let w = Kernels::from_vec(1, 1, 1, 2, vec![0.25f32, -1.5]);
        let q = w.map(crate::Fx::from_f32);
        assert_eq!(q.at(0, 0, 0, 1).to_f32(), -1.5);
    }
}
