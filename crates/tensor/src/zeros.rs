//! Zero-inserting transformations and ineffectual-operation accounting.
//!
//! `T-CONV` and `W-CONV` are realised on traditional hardware by inserting
//! zeros into the input feature maps (paper Fig. 6b/d) or between kernel
//! weights (Fig. 6c) and then running an ordinary convolution. Every
//! multiplication whose operand is such an inserted zero is *ineffectual* —
//! it cannot contribute to the output. The paper measures these at "about
//! 64% and 75% of total multiplications in `Ḡ`/`Ḡw` and `D̄w`"; the counters
//! here compute the exact numbers for any geometry so the claim can be
//! checked (and is, in this crate's tests).

use crate::fmaps::Fmaps;
use crate::kernels::Kernels;
use crate::num::Num;
use crate::shape::ConvGeom;

/// Inserts `stride − 1` zeros between adjacent pixels of every feature map
/// (no edge extension): the paper's Fig. 6(b) transformation.
///
/// A `H × W` map becomes `(s·(H−1)+1) × (s·(W−1)+1)`, with the original
/// pixel `(y, x)` landing at `(s·y, s·x)`.
///
/// # Example
///
/// ```
/// use zfgan_tensor::{Fmaps, zeros::insert_zeros};
///
/// let x = Fmaps::from_vec(1, 2, 2, vec![1.0f32, 2.0, 3.0, 4.0]);
/// let z = insert_zeros(&x, 2);
/// assert_eq!(z.shape(), (1, 3, 3));
/// assert_eq!(z.as_slice(), &[1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 3.0, 0.0, 4.0]);
/// ```
pub fn insert_zeros<T: Num>(input: &Fmaps<T>, stride: usize) -> Fmaps<T> {
    assert!(stride > 0, "stride must be non-zero");
    if stride == 1 {
        return input.clone();
    }
    let (c, h, w) = input.shape();
    let (zh, zw) = (stride * (h - 1) + 1, stride * (w - 1) + 1);
    let mut out = Fmaps::zeros(c, zh, zw);
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                *out.at_mut(ch, stride * y, stride * x) = *input.at(ch, y, x);
            }
        }
    }
    out
}

/// Inserts `stride − 1` zeros between adjacent weights of every kernel
/// slice: the paper's Fig. 6(c) transformation ("zero-inserting in kernel"),
/// used when the Discriminator's `W-CONV` is expressed as an ordinary
/// convolution with a dilated error kernel.
pub fn dilate_kernels<T: Num>(k: &Kernels<T>, stride: usize) -> Kernels<T> {
    assert!(stride > 0, "stride must be non-zero");
    if stride == 1 {
        return k.clone();
    }
    let (n_of, n_if, kh, kw) = k.shape();
    let (dh, dw) = (stride * (kh - 1) + 1, stride * (kw - 1) + 1);
    let mut out = Kernels::zeros(n_of, n_if, dh, dw);
    for of in 0..n_of {
        for if_ in 0..n_if {
            for ky in 0..kh {
                for kx in 0..kw {
                    *out.at_mut(of, if_, stride * ky, stride * kx) = *k.at(of, if_, ky, kx);
                }
            }
        }
    }
    out
}

/// Multiplication counts of a convolution phase when executed naively over
/// zero-inserted data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MulCounts {
    /// Multiplications whose operands are both potentially non-zero.
    pub effectual: u64,
    /// All multiplications the naive loop nest performs.
    pub total: u64,
}

impl MulCounts {
    /// Fraction of multiplications that are ineffectual (`0` when no
    /// multiplications are counted).
    pub fn ineffectual_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            1.0 - self.effectual as f64 / self.total as f64
        }
    }

    /// Component-wise sum, for aggregating across layers.
    pub fn merged(self, other: MulCounts) -> MulCounts {
        MulCounts {
            effectual: self.effectual + other.effectual,
            total: other.total + self.total,
        }
    }
}

/// Multiplication counts of a `T-CONV` over an `in_h × in_w` input under
/// `geom`, per `(of, if)` feature-map pair (multiply by `N_of · N_if` for a
/// whole layer).
///
/// "Total" walks the unit-stride convolution over the zero-inserted map,
/// counting one multiplication per (output position × kernel position);
/// "effectual" counts only those landing on a real (non-inserted, in-bounds)
/// input pixel.
pub fn t_conv_mul_counts(geom: &ConvGeom, in_h: usize, in_w: usize) -> MulCounts {
    let (oh, ow) = geom.up_out(in_h, in_w);
    let (zh, zw) = geom.zero_inserted(in_h, in_w);
    let (pt, _pb, pl, _pr) = geom.t_conv_pads();
    let s = geom.stride() as isize;
    // The validity condition separates by axis, so the 4-deep census
    // collapses to two 1-D sums: effectual = (Σ_oy f(oy)) · (Σ_ox f(ox)).
    let axis_sum = |n_out: usize, k: usize, pad: usize, z_len: usize| -> u64 {
        let mut sum = 0u64;
        for o in 0..n_out {
            for kk in 0..k {
                let z = o as isize + kk as isize - pad as isize;
                if z >= 0 && (z as usize) < z_len && z % s == 0 {
                    sum += 1;
                }
            }
        }
        sum
    };
    MulCounts {
        effectual: axis_sum(oh, geom.kh(), pt, zh) * axis_sum(ow, geom.kw(), pl, zw),
        total: (oh * ow * geom.kh() * geom.kw()) as u64,
    }
}

/// Multiplication counts of the Discriminator-side `W-CONV` (zero-inserted
/// *kernel*), per `(of, if)` pair.
///
/// The naive form convolves the `in_h × in_w` input with the error map
/// dilated by the stride; one multiplication is counted per (gradient
/// element × dilated-kernel position), effectual when the dilated position
/// holds a real error value.
pub fn w_conv_s_mul_counts(geom: &ConvGeom, in_h: usize, in_w: usize) -> MulCounts {
    let (oh, ow) = geom.down_out(in_h, in_w);
    let s = geom.stride() as u64;
    // Dilated error kernel size.
    let (dh, dw) = (s * (oh as u64 - 1) + 1, s * (ow as u64 - 1) + 1);
    let grad_elems = (geom.kh() * geom.kw()) as u64;
    MulCounts {
        effectual: grad_elems * oh as u64 * ow as u64,
        total: grad_elems * dh * dw,
    }
}

/// Multiplication counts of the Generator-side `W-CONV` (zero-inserted
/// *input*), per `(sf, lf)` pair: correlating the zero-inserted `in_h ×
/// in_w` activation with the up-sampled error.
pub fn w_conv_t_mul_counts(geom: &ConvGeom, in_h: usize, in_w: usize) -> MulCounts {
    let (zh, zw) = geom.zero_inserted(in_h, in_w);
    let grad_elems = (geom.kh() * geom.kw()) as u64;
    MulCounts {
        effectual: grad_elems * (in_h * in_w) as u64,
        total: grad_elems * (zh * zw) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_zeros_stride_one_is_identity() {
        let x = Fmaps::from_vec(1, 2, 2, vec![1.0f32, 2.0, 3.0, 4.0]);
        assert_eq!(insert_zeros(&x, 1), x);
    }

    #[test]
    fn insert_zeros_places_pixels_on_stride_grid() {
        let x = Fmaps::from_vec(1, 2, 3, vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let z = insert_zeros(&x, 3);
        assert_eq!(z.shape(), (1, 4, 7));
        assert_eq!(*z.at(0, 0, 0), 1.0);
        assert_eq!(*z.at(0, 0, 3), 2.0);
        assert_eq!(*z.at(0, 3, 6), 6.0);
        assert_eq!(z.count_zeros(), 4 * 7 - 6);
    }

    #[test]
    fn dilate_kernels_spreads_weights() {
        let k = Kernels::from_vec(1, 1, 2, 2, vec![1.0f32, 2.0, 3.0, 4.0]);
        let d = dilate_kernels(&k, 2);
        assert_eq!(d.shape(), (1, 1, 3, 3));
        assert_eq!(*d.at(0, 0, 0, 0), 1.0);
        assert_eq!(*d.at(0, 0, 0, 2), 2.0);
        assert_eq!(*d.at(0, 0, 2, 0), 3.0);
        assert_eq!(*d.at(0, 0, 2, 2), 4.0);
        assert_eq!(d.count_zeros(), 5);
    }

    #[test]
    fn t_conv_interior_zero_fraction_approaches_three_quarters() {
        // Large map, stride 2: 3 of every 4 operand positions are inserted
        // zeros (or out-of-range), so the ineffectual fraction tends to 75%.
        let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        let c = t_conv_mul_counts(&geom, 32, 32);
        let frac = c.ineffectual_fraction();
        assert!((0.70..0.80).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn t_conv_counts_effectual_equals_direct_macs() {
        // Effectual multiplications = MACs of the gather form of T-CONV =
        // MACs of the equivalent down-direction S-CONV (each input pixel
        // meets each kernel weight at most once per output map).
        let geom = ConvGeom::down(8, 8, 4, 4, 2, 4, 4).unwrap();
        let c = t_conv_mul_counts(&geom, 4, 4);
        // Scatter form: 4×4 inputs × 16 kernel positions, minus scatters that
        // fall outside the 8×8 output.
        let mut scatter = 0u64;
        for iy in 0..4i64 {
            for ix in 0..4i64 {
                for ky in 0..4i64 {
                    for kx in 0..4i64 {
                        let ty = 2 * iy + ky - 1;
                        let tx = 2 * ix + kx - 1;
                        if (0..8).contains(&ty) && (0..8).contains(&tx) {
                            scatter += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(c.effectual, scatter);
    }

    #[test]
    fn w_conv_s_fraction_is_about_three_quarters() {
        let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        let c = w_conv_s_mul_counts(&geom, 64, 64);
        let frac = c.ineffectual_fraction();
        assert!((0.70..0.80).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn w_conv_t_fraction_matches_grid_density() {
        let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        let c = w_conv_t_mul_counts(&geom, 32, 32);
        // 32² real pixels on a 63² grid.
        let expected = 1.0 - (32.0f64 * 32.0) / (63.0 * 63.0);
        assert!((c.ineffectual_fraction() - expected).abs() < 1e-12);
    }

    #[test]
    fn mul_counts_merge_and_fraction() {
        let a = MulCounts {
            effectual: 1,
            total: 4,
        };
        let b = MulCounts {
            effectual: 3,
            total: 4,
        };
        let m = a.merged(b);
        assert_eq!(
            m,
            MulCounts {
                effectual: 4,
                total: 8
            }
        );
        assert_eq!(m.ineffectual_fraction(), 0.5);
        assert_eq!(MulCounts::default().ineffectual_fraction(), 0.0);
    }
}
