//! Packed SIMD microkernel GEMM — the software analogue of the paper's
//! dense 16-bit MAC datapath.
//!
//! The scalar blocked kernel ([`crate::gemm`]'s `BlockedScalar`) walks the
//! sparse `A` operand element by element with a branch per word. That shape
//! is exactly what defeats wide SIMD lanes, so this module restructures the
//! multiply the way a BLIS-style microkernel (and the paper's PE array)
//! does:
//!
//! * **`B` is packed** into contiguous column panels of [`NR_F32`] /
//!   [`NR_FX`] lanes (zero-padded tails), so the inner loop issues nothing
//!   but sequential full-width loads.
//! * **`A` is scanned once** into per-row *k-panel structural-zero masks*
//!   ([`KP`] words per panel, one bit per panel): the zero-free lowerings
//!   produce patch matrices whose residual (boundary) zeros cluster, and a
//!   masked panel is skipped without any per-element branch in the vector
//!   loop — the paper's zero-free scheduling composed with SIMD instead of
//!   defeated by it.
//! * The **inner kernel** is explicit `std::arch` AVX2/FMA (f32: an
//!   [`MR_F32`]`×`[`NR_F32`] register tile — 6 rows of `A` share every
//!   8-lane `B` load, feeding 12 independent fused multiply–add chains;
//!   Q8.8: 16-lane `i16` multiply with exact widened-`i32` rounding and
//!   saturating accumulate) with a portable scalar fallback. The
//!   implementation is
//!   chosen **once** per process through a [`OnceLock`] kernel table:
//!   `ZFGAN_NO_SIMD=1` forces the fallback, otherwise
//!   `is_x86_feature_detected!` picks AVX2+FMA when the host has both.
//!
//! # Shape-aware dispatch
//!
//! Packing pays for itself only when enough rows of `A` reuse the packed
//! panels and the panel masks actually elide work. Two GAN shapes break
//! both assumptions: the projection GEMM (49×4900×128, ~2 % density with
//! stride-49 nonzero columns) defeats the KP-panel masks because every
//! row's few live words sit in distinct panels, and the `m = 1`
//! input-grad GEMMs amortize a full `B` pack over a single output row.
//! [`matmul_f32_at`] / [`matmul_fx_at`] therefore route each call through
//! [`choose_path`] to one of three engines ([`GemmPath`]):
//!
//! * [`GemmPath::Packed`] — the packed panel kernel above (the default).
//! * [`GemmPath::Ikj`] — a broadcast-FMA `ikj` kernel over **unpacked**
//!   `B` rows: zero `A` words are skipped element-wise (no mask
//!   granularity to defeat) and `B` is never packed.
//! * [`GemmPath::SmallM`] — the same register tile as the packed kernel
//!   run directly over unpacked `B` columns for `m ≤ `[`MR_F32`]: one
//!   pass over `B`, no pack. The workspace lowering drivers additionally
//!   stream `B` rows on the fly through this path
//!   (`crate::gemm::matmul_streamed_ws`) so small-`m` sites skip the
//!   materialized lowering fill entirely.
//!
//! The decision is a pure function of `(m, kk, n, zero-word count)` — all
//! thread- and SIMD-invariant — and `ZFGAN_FORCE_KERNEL=packed|ikj|smallm`
//! (or [`set_forced_path`]) pins it for testing. Every engine computes the
//! same per-element operation chain (see below), so dispatch is never a
//! semantics choice.
//!
//! # Determinism
//!
//! The packed f32 kernel defines its **own fixed accumulation order**: per
//! output element a single fused-multiply-add chain over `k` ascending.
//! The scalar fallback uses [`f32::mul_add`] — IEEE-754 correctly-rounded,
//! the same operation as one AVX2 `vfmadd` lane — so SIMD and no-SIMD
//! produce **bit-identical** results by construction, and any zero term
//! may be skipped at any granularity without changing bits
//! (`fma(0, b, acc) = acc` exactly for finite `b`). Row partitioning for
//! the pooled kernel therefore cannot change results either: panels run
//! along `k`, never across rows. The retained scalar oracle
//! (`MatmulKind::Naive` / `BlockedScalar`) differs only by the usual
//! fused-vs-separate rounding, bounded by the standard accumulation error
//! bound (pinned by `tests/fast_conv.rs`).
//!
//! The Q8.8 kernel is **bit-identical** to scalar [`Fx`] semantics, not
//! merely close: each term is widened to `i32`, rounded to nearest (ties
//! toward +∞) and saturated exactly as [`Fx`]'s `Mul`, then accumulated
//! with [`Fx`]'s saturating `Add`, in `k`-ascending order
//! (`crates/tensor/tests/fx_semantics.rs` pins the contract).
//!
//! [`Fx`]: crate::Fx

use std::sync::OnceLock;

use crate::fixed::{Fx, FRAC_BITS};
use crate::num::Num;

/// `k`-panel width: the granularity of the structural-zero masks. One mask
/// bit covers [`KP`] consecutive `A` words of one row.
pub const KP: usize = 8;

/// f32 column-panel width: 8 AVX2 lanes × 2 accumulator vectors per row
/// of the register tile.
pub const NR_F32: usize = 16;

/// f32 register-tile height: [`MR_F32`] rows of `A` share every packed-`B`
/// load, giving `MR_F32 × 2` = 12 independent FMA chains (comfortably
/// past the ~8–10 needed to hide fused-add latency on two FMA ports) from
/// just 2 loads + 6 broadcasts per `k`-step. With the 2 `B` vectors and
/// the broadcast register that is 15 of the 16 ymm registers.
pub const MR_F32: usize = 6;

/// Q8.8 column-panel width: 16 `i16` lanes × 2 saturating accumulator
/// vectors (the widened-`i32` rounding runs in registers between them).
pub const NR_FX: usize = 32;

/// `k`-chunk depth (a multiple of [`KP`]): the row-tile loop runs inside
/// each `KC × NR` block of packed `B`, so the block stays cache-resident
/// and is streamed from memory once per GEMM instead of once per row tile
/// (f32: `512 × 16 × 4 B` = 32 KB, innermost-cache-resident). Chunking is
/// bit-neutral: the per-element accumulator is stored to `out` between
/// chunks and reloaded exactly (an f32 register↔memory round trip is
/// exact, and the Q8.8 accumulator is saturated back into `i16` range
/// after every step), so the operation chain per element is identical to a
/// single pass.
pub const KC: usize = 512;

const _: () = assert!(
    KC.is_multiple_of(KP),
    "chunks must start on a mask-panel boundary"
);

/// Which inner kernel the process selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Explicit AVX2 + FMA `std::arch` kernels.
    Avx2Fma,
    /// Portable scalar fallback (`f32::mul_add` / scalar `i32` lanes) —
    /// bit-identical to the SIMD kernels by construction.
    Scalar,
}

/// Inner-kernel signatures. f32 runs an [`MR_F32`]-row register tile
/// (see [`F32Tile`]); Q8.8 runs one row's `k`-chunk at a time:
/// `(a_chunk, masks_row, panel0, packed_chunk, out, w, accumulate)`,
/// continuing the accumulation already in `out` when `accumulate` is set.
/// The pointers are `unsafe fn` because the AVX2 entries require the
/// features the table verified at selection time; the scalar entries
/// coerce in safely.
type F32TileFn = unsafe fn(&F32Tile, &mut [f32]);
type FxPanelFn = unsafe fn(&[i16], &[u64], usize, &[i16], &mut [i16], usize, bool);

/// The kernel table: the selected level and its bench label, fixed once
/// per process, then only read. [`f32_tile_for`] / [`fx_panel_for`] map
/// the level onto the inner-kernel pointers.
#[derive(Debug)]
struct KernelTable {
    level: SimdLevel,
    label: &'static str,
}

static KERNELS: OnceLock<KernelTable> = OnceLock::new();

fn kernel_table() -> &'static KernelTable {
    KERNELS.get_or_init(|| {
        let forced_off = std::env::var("ZFGAN_NO_SIMD")
            .map(|v| !v.trim().is_empty() && v.trim() != "0")
            .unwrap_or(false);
        let level = if forced_off {
            SimdLevel::Scalar
        } else {
            detect_level()
        };
        let label = match level {
            SimdLevel::Avx2Fma => "avx2",
            SimdLevel::Scalar => "scalar",
        };
        KernelTable { level, label }
    })
}

/// Resolves the f32 tile kernel for a level. The process-selected level
/// always resolves to a kernel whose feature requirements were verified
/// by [`kernel_table`].
fn f32_tile_for(level: SimdLevel) -> F32TileFn {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => f32_tile_avx2,
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2Fma => f32_tile_scalar,
        SimdLevel::Scalar => f32_tile_scalar,
    }
}

/// Resolves the Q8.8 row-panel kernel for a level (see [`f32_tile_for`]).
fn fx_panel_for(level: SimdLevel) -> FxPanelFn {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => fx_row_panel_avx2,
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2Fma => fx_row_panel_scalar,
        SimdLevel::Scalar => fx_row_panel_scalar,
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_level() -> SimdLevel {
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        SimdLevel::Avx2Fma
    } else {
        SimdLevel::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_level() -> SimdLevel {
    SimdLevel::Scalar
}

/// The inner-kernel implementation this process selected (respecting
/// `ZFGAN_NO_SIMD=1` and runtime feature detection), fixed for the
/// process lifetime.
pub fn simd_level() -> SimdLevel {
    kernel_table().level
}

/// `"avx2"` or `"scalar"` — the feature tag the bench JSON records carry.
pub fn simd_label() -> &'static str {
    kernel_table().label
}

/// Which GEMM engine the shape/density dispatch selected for one call
/// (see the module docs' dispatch section). All paths compute the same
/// per-element operation chain; the choice is pure performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmPath {
    /// The packed panel kernel: pack `B`, scan `A` into panel masks, run
    /// the register tile over packed panels.
    Packed,
    /// Broadcast-FMA `ikj` over unpacked `B` rows with an element-wise
    /// `a == 0` skip; bypasses the `B` pack entirely.
    Ikj,
    /// The register tile run directly over unpacked `B` columns — one
    /// streamed pass over `B`, no pack. Chosen for `m ≤ `[`MR_F32`].
    SmallM,
}

impl GemmPath {
    /// The telemetry / bench / `ZFGAN_FORCE_KERNEL` tag for this path.
    pub fn label(self) -> &'static str {
        match self {
            GemmPath::Packed => "packed",
            GemmPath::Ikj => "ikj",
            GemmPath::SmallM => "smallm",
        }
    }
}

/// Runtime forced-path override (bench harnesses): 0 = none, else
/// `GemmPath` discriminant + 1. Takes precedence over the env override.
static FORCED_RT: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// `ZFGAN_FORCE_KERNEL` parse, fixed once per process like the kernel
/// table.
static FORCED_ENV: OnceLock<Option<GemmPath>> = OnceLock::new();

/// Forces every dispatch decision in this process to `path` (`None`
/// restores normal dispatch). A bench/test knob — the trainstep harness
/// uses it to measure the always-packed baseline in-process; concurrent
/// GEMM callers see the change on their next dispatch.
pub fn set_forced_path(path: Option<GemmPath>) {
    let v = match path {
        None => 0,
        Some(GemmPath::Packed) => 1,
        Some(GemmPath::Ikj) => 2,
        Some(GemmPath::SmallM) => 3,
    };
    FORCED_RT.store(v, std::sync::atomic::Ordering::Relaxed);
}

/// The forced dispatch path, if any: [`set_forced_path`] wins over
/// `ZFGAN_FORCE_KERNEL=packed|ikj|smallm` (unset/empty/unknown values
/// force nothing).
pub fn forced_path() -> Option<GemmPath> {
    match FORCED_RT.load(std::sync::atomic::Ordering::Relaxed) {
        1 => return Some(GemmPath::Packed),
        2 => return Some(GemmPath::Ikj),
        3 => return Some(GemmPath::SmallM),
        _ => {}
    }
    *FORCED_ENV.get_or_init(|| {
        match std::env::var("ZFGAN_FORCE_KERNEL")
            .unwrap_or_default()
            .trim()
        {
            "packed" => Some(GemmPath::Packed),
            "ikj" => Some(GemmPath::Ikj),
            "smallm" => Some(GemmPath::SmallM),
            _ => None,
        }
    })
}

/// `Ikj` is chosen when at least [`IKJ_ZERO_NUM`]`/`[`IKJ_ZERO_DEN`] of
/// the `A` words are exactly zero. The threshold is deliberately high:
/// measured on the MNIST-GAN shapes, the packed tile still wins at 85–90 %
/// scattered zeros (its dense 6×16 FMA throughput beats the element skip),
/// and the broadcast engine only pulls ahead near the structural ~98 %
/// sparsity of the zero-free t-conv lowerings.
const IKJ_ZERO_NUM: u64 = 15;
const IKJ_ZERO_DEN: u64 = 16;

/// Minimum output width for any broadcast engine: below half a register
/// tile the per-live-element axpy overhead dominates and the packed tile
/// wins even on 98 %-sparse or single-row operands (measured at `n = 1`:
/// packed is 7–8× faster on the dense backward shapes).
const BROADCAST_MIN_N: usize = NR_F32 / 2;

/// Shape/density dispatch: a pure function of the GEMM shape and the
/// exact zero-word count of `A` (as counted by the panel-mask scan), so
/// the decision — and the `gemm_dispatch` telemetry derived from it — is
/// identical for every thread count and SIMD level. Thresholds are from
/// per-shape engine timings on the MNIST-GAN train step:
///
/// * `n ≥ 8` gates every broadcast route — narrower outputs can't
///   amortize a broadcast axpy;
/// * `m = 1`: packing `B` for one output row dwarfs the arithmetic →
///   `SmallM` (and the streamed drivers skip materializing `B` at all);
/// * `kk ≤ 2`: the pack writes ≥ `B`'s whole size for one or two axpys
///   per output row → `Ikj`;
/// * `A` ≥ 15/16 zero: element-wise skipping beats the dense tile →
///   `Ikj`.
pub fn choose_path(m: usize, kk: usize, n: usize, zero_words: u64) -> GemmPath {
    if n >= BROADCAST_MIN_N {
        if m == 1 {
            return GemmPath::SmallM;
        }
        if kk <= 2 && kk > 0 {
            return GemmPath::Ikj;
        }
        let total = (m * kk) as u64;
        if total > 0 && IKJ_ZERO_DEN * zero_words >= IKJ_ZERO_NUM * total {
            return GemmPath::Ikj;
        }
    }
    GemmPath::Packed
}

/// [`choose_path`] with the forced override applied — the decision the
/// drivers actually run.
fn dispatch_path(m: usize, kk: usize, n: usize, zero_words: u64) -> GemmPath {
    forced_path().unwrap_or_else(|| choose_path(m, kk, n, zero_words))
}

/// Element types the packed microkernel accelerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedKind {
    /// 32-bit float: AVX2/FMA f32x8 panels.
    F32,
    /// Q8.8 fixed point: widened-i32 8-lane panels.
    Fx,
}

/// Whether `T` has a packed kernel (`f32` and [`crate::Fx`] do; `f64` and
/// other [`Num`] types keep the scalar blocked path).
pub fn packed_kind<T: 'static>() -> Option<PackedKind> {
    use std::any::TypeId;
    let t = TypeId::of::<T>();
    if t == TypeId::of::<f32>() {
        Some(PackedKind::F32)
    } else if t == TypeId::of::<Fx>() {
        Some(PackedKind::Fx)
    } else {
        None
    }
}

/// Reusable packing scratch: the packed `B` panels and the per-row `A`
/// panel masks. Owned by a [`crate::ConvWorkspace`] on the workspace hot
/// path (steady-state zero allocation) and by a thread-local for the
/// allocating entry points.
#[derive(Debug, Default)]
pub struct PackScratch {
    /// Packed f32 `B` panels, `[panel][k][lane]`, tails zero-padded.
    bf32: Vec<f32>,
    /// Packed Q8.8 raw-`i16` `B` panels, same layout.
    bi16: Vec<i16>,
    /// Per-row panel masks, `words_per_row` `u64`s per row; a set bit
    /// marks an all-zero `A` panel.
    masks: Vec<u64>,
}

impl PackScratch {
    /// Creates empty scratch (buffers grow on first use and are reused).
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-row panel masks built by the last [`scan_gemm`] /
    /// [`plan_gemm`] call: `mask_geometry(kk).1` words per `A` row, a set
    /// bit marking an all-zero panel. The streamed-lowering driver reads
    /// these to skip dead `A` panels without touching the operand again.
    pub(crate) fn masks(&self) -> &[u64] {
        &self.masks
    }
}

/// Panel-mask geometry for a `m × kk` operand.
#[inline]
pub(crate) fn mask_geometry(kk: usize) -> (usize, usize) {
    let n_panels = kk.div_ceil(KP);
    (n_panels, n_panels.div_ceil(64))
}

/// Scans `A` into per-row panel masks. Returns `(skipped, zeros)`: how
/// many operand words the masked panels elide, and how many words are
/// exactly zero (the dispatch layer's density measurement — scattered
/// zeros count here even when no whole panel is maskable). Both are pure
/// functions of `A` and its shape, so the derived telemetry and the
/// dispatch decision are identical for every thread count and SIMD level.
fn build_masks<T: Num>(a: &[T], m: usize, kk: usize, masks: &mut Vec<u64>) -> (u64, u64) {
    let (n_panels, words_per_row) = mask_geometry(kk);
    masks.clear();
    masks.resize(m * words_per_row, 0);
    let mut skipped = 0u64;
    let mut zeros = 0u64;
    for i in 0..m {
        let row = &a[i * kk..(i + 1) * kk];
        let mrow = &mut masks[i * words_per_row..(i + 1) * words_per_row];
        for p in 0..n_panels {
            let k0 = p * KP;
            let k1 = (k0 + KP).min(kk);
            let zc = row[k0..k1].iter().filter(|v| v.is_zero()).count();
            zeros += zc as u64;
            if zc == k1 - k0 {
                mrow[p / 64] |= 1u64 << (p % 64);
                skipped += (k1 - k0) as u64;
            }
        }
    }
    (skipped, zeros)
}

#[inline]
pub(crate) fn mask_hit(masks_row: &[u64], panel: usize) -> bool {
    masks_row[panel / 64] & (1u64 << (panel % 64)) != 0
}

/// Packs `B` (`kk × n`, row-major) into `nr`-wide column panels,
/// `[panel][k][lane]`, zero-padding the tail panel so the kernels always
/// run full width.
fn pack_b<T: Num, const NR: usize>(b: &[T], kk: usize, n: usize, out: &mut Vec<T>) {
    let n_jp = n.div_ceil(NR);
    // Resize without a clear: every full lane is overwritten below and only
    // the tail panel's padding needs explicit zeros, so the buffer is never
    // bulk-zeroed first (that pre-pass used to double the write traffic).
    out.resize(n_jp * kk * NR, T::zero());
    for jp in 0..n_jp {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let panel = &mut out[jp * kk * NR..(jp + 1) * kk * NR];
        if w == NR {
            // Full-width panels are the hot path: a compile-time-sized
            // array copy per `k` row compiles to straight vector moves
            // instead of a runtime-length memcpy call.
            for k in 0..kk {
                let dst: &mut [T; NR] = (&mut panel[k * NR..(k + 1) * NR])
                    .try_into()
                    .expect("chunk is exactly NR wide");
                let src: &[T; NR] = b[k * n + j0..k * n + j0 + NR]
                    .try_into()
                    .expect("chunk is exactly NR wide");
                *dst = *src;
            }
        } else {
            for k in 0..kk {
                let dst = &mut panel[k * NR..(k + 1) * NR];
                dst[..w].copy_from_slice(&b[k * n + j0..k * n + j0 + w]);
                for pad in &mut dst[w..] {
                    *pad = T::zero();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// f32 kernels
// ---------------------------------------------------------------------------

/// One f32 register-tile task: up to [`MR_F32`] consecutive rows of `A`
/// against one `klen`-deep, [`NR_F32`]-wide chunk of `B`, continuing the
/// accumulation already in the output when `accumulate` is set.
///
/// `a_rows`, `masks` and the output slice all cover the same row range
/// (`i0` is relative to it); `kc0`/`klen` select the `k`-chunk and
/// `panel0` is the absolute mask-panel index of its first (KP-aligned)
/// panel. `bstride` is the distance between consecutive `k` rows of
/// `bchunk`: [`NR_F32`] for packed panels, the matrix row stride `n` when
/// the small-`m` driver runs the tile over unpacked `B` directly.
struct F32Tile<'a> {
    a_rows: &'a [f32],
    masks: &'a [u64],
    bchunk: &'a [f32],
    bstride: usize,
    kk: usize,
    wpr: usize,
    i0: usize,
    rows: usize,
    kc0: usize,
    klen: usize,
    panel0: usize,
    n: usize,
    j0: usize,
    w: usize,
    accumulate: bool,
}

/// Portable f32 tile kernel: per output element a single `mul_add` chain
/// over `k` ascending (resumed from the output across chunks), panels
/// masked in every tile row and zero `A` words skipped (all bit-neutral —
/// see the module docs). The row grouping cannot change bits either: each
/// element's chain never crosses rows.
fn f32_tile_scalar(t: &F32Tile, out_rows: &mut [f32]) {
    let mut acc = [[0.0f32; NR_F32]; MR_F32];
    if t.accumulate {
        for (r, acc_r) in acc.iter_mut().enumerate().take(t.rows) {
            let o = &out_rows[(t.i0 + r) * t.n + t.j0..][..t.w];
            acc_r[..t.w].copy_from_slice(o);
        }
    }
    let n_panels = t.klen.div_ceil(KP);
    for p in 0..n_panels {
        let live = (0..t.rows).any(|r| !mask_hit(&t.masks[(t.i0 + r) * t.wpr..], t.panel0 + p));
        if !live {
            continue;
        }
        let k0 = p * KP;
        let k1 = (k0 + KP).min(t.klen);
        for k in k0..k1 {
            let b_row = &t.bchunk[k * t.bstride..k * t.bstride + t.w];
            for (r, acc_r) in acc.iter_mut().enumerate().take(t.rows) {
                let av = t.a_rows[(t.i0 + r) * t.kk + t.kc0 + k];
                if av == 0.0 {
                    continue;
                }
                for (acc_v, &bv) in acc_r[..t.w].iter_mut().zip(b_row) {
                    *acc_v = <f32 as Num>::fused_mul_add(*acc_v, av, bv);
                }
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate().take(t.rows) {
        out_rows[(t.i0 + r) * t.n + t.j0..][..t.w].copy_from_slice(&acc_r[..t.w]);
    }
}

/// AVX2/FMA f32 tile kernel: dispatches on the tile's row count so each
/// variant keeps its `R × 2` accumulator vectors in registers.
///
/// # Safety
///
/// Caller must have verified `avx2` and `fma` are available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn f32_tile_avx2(t: &F32Tile, out_rows: &mut [f32]) {
    match t.rows {
        6 => f32_tile_avx2_rows::<6>(t, out_rows),
        5 => f32_tile_avx2_rows::<5>(t, out_rows),
        4 => f32_tile_avx2_rows::<4>(t, out_rows),
        3 => f32_tile_avx2_rows::<3>(t, out_rows),
        2 => f32_tile_avx2_rows::<2>(t, out_rows),
        _ => f32_tile_avx2_rows::<1>(t, out_rows),
    }
}

/// The `R`-row AVX2/FMA tile body: every `k`-step loads the two `B`
/// vectors once and feeds `R` broadcast `vfmadd`s — `2·R` independent
/// chains, `k` ascending. Lane-for-lane the same operation sequence as
/// [`f32_tile_scalar`] minus its (bit-neutral) per-element zero skip: a
/// row whose word is zero contributes `fma(0, b, acc) = acc` exactly.
///
/// # Safety
///
/// Caller must have verified `avx2` and `fma` are available, and `R` must
/// not exceed the tile's row count. Every `k`-step loads [`NR_F32`] `B`
/// lanes regardless of `t.w`, so `bchunk` must have `NR_F32` readable
/// words at each `k·bstride` (packed panels pad their tails; the
/// small-`m` driver routes partial-width strips of unpacked `B` to the
/// scalar tile instead).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn f32_tile_avx2_rows<const R: usize>(t: &F32Tile, out_rows: &mut [f32]) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm256_setzero_ps(); NR_F32 / 8]; R];
    if t.accumulate {
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let o = out_rows.as_ptr().add((t.i0 + r) * t.n + t.j0);
            if t.w == NR_F32 {
                acc_r[0] = _mm256_loadu_ps(o);
                acc_r[1] = _mm256_loadu_ps(o.add(8));
            } else {
                let mut tmp = [0.0f32; NR_F32];
                tmp[..t.w].copy_from_slice(std::slice::from_raw_parts(o, t.w));
                acc_r[0] = _mm256_loadu_ps(tmp.as_ptr());
                acc_r[1] = _mm256_loadu_ps(tmp.as_ptr().add(8));
            }
        }
    }
    // Hoist the per-row `A` chunk base pointers and mask-row slices out of
    // the k loop.
    let arow: [*const f32; R] =
        std::array::from_fn(|r| t.a_rows.as_ptr().add((t.i0 + r) * t.kk + t.kc0));
    let mrow: [&[u64]; R] = std::array::from_fn(|r| &t.masks[(t.i0 + r) * t.wpr..]);
    let n_panels = t.klen.div_ceil(KP);
    for p in 0..n_panels {
        let mut all_masked = true;
        for mr in &mrow {
            all_masked &= mask_hit(mr, t.panel0 + p);
        }
        if all_masked {
            continue;
        }
        let k0 = p * KP;
        let k1 = (k0 + KP).min(t.klen);
        for k in k0..k1 {
            let base = t.bchunk.as_ptr().add(k * t.bstride);
            let b0 = _mm256_loadu_ps(base);
            let b1 = _mm256_loadu_ps(base.add(8));
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*arow[r].add(k));
                acc_r[0] = _mm256_fmadd_ps(av, b0, acc_r[0]);
                acc_r[1] = _mm256_fmadd_ps(av, b1, acc_r[1]);
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        let o = out_rows.as_mut_ptr().add((t.i0 + r) * t.n + t.j0);
        if t.w == NR_F32 {
            _mm256_storeu_ps(o, acc_r[0]);
            _mm256_storeu_ps(o.add(8), acc_r[1]);
        } else {
            let mut tmp = [0.0f32; NR_F32];
            _mm256_storeu_ps(tmp.as_mut_ptr(), acc_r[0]);
            _mm256_storeu_ps(tmp.as_mut_ptr().add(8), acc_r[1]);
            std::slice::from_raw_parts_mut(o, t.w).copy_from_slice(&tmp[..t.w]);
        }
    }
}

/// Row-block height for the cache loop: inside one `k`-chunk, [`MC`] rows
/// of `A` (≤ `MC × KC × 4 B` = 72 KB, L2-resident) are run against every
/// column panel before the next block, so neither operand re-streams from
/// memory as `m` grows. Like all blocking here it is bit-neutral: loop
/// order over (row, column-panel) never touches a per-element chain.
pub const MC: usize = 72;

/// Packed f32 GEMM over a contiguous row range: `a_rows` holds the rows'
/// `A` data, `masks` their panel masks, `packed_b` the full packed `B`.
/// Writes every element of `out_rows`. Loop nest (outer→inner):
/// [`KC`] `k`-chunks → [`MC`] row blocks → column panels → [`MR_F32`]
/// row tiles, so the packed-`B` chunk (16 KB) stays L1-resident across
/// the row tiles and the `A` row block stays L2-resident across the
/// column panels. Bit-identical for every [`SimdLevel`].
pub fn f32_rows(
    level: SimdLevel,
    a_rows: &[f32],
    masks: &[u64],
    packed_b: &[f32],
    out_rows: &mut [f32],
    kk: usize,
    n: usize,
) {
    let m = a_rows.len().checked_div(kk).unwrap_or(0);
    debug_assert_eq!(out_rows.len(), m * n);
    let (_, wpr) = mask_geometry(kk);
    let kernel = f32_tile_for(level);
    let n_jp = n.div_ceil(NR_F32);
    let mut kc0 = 0;
    while kc0 < kk {
        let kc1 = (kc0 + KC).min(kk);
        let mut ib0 = 0;
        while ib0 < m {
            let ib1 = (ib0 + MC).min(m);
            for jp in 0..n_jp {
                let j0 = jp * NR_F32;
                let w = (n - j0).min(NR_F32);
                let base = jp * kk * NR_F32;
                let bchunk = &packed_b[base + kc0 * NR_F32..base + kc1 * NR_F32];
                let mut i0 = ib0;
                while i0 < ib1 {
                    let rows = (ib1 - i0).min(MR_F32);
                    let tile = F32Tile {
                        a_rows,
                        masks,
                        bchunk,
                        bstride: NR_F32,
                        kk,
                        wpr,
                        i0,
                        rows,
                        kc0,
                        klen: kc1 - kc0,
                        panel0: kc0 / KP,
                        n,
                        j0,
                        w,
                        accumulate: kc0 > 0,
                    };
                    // SAFETY: `f32_tile_for` only returns a feature-gated
                    // kernel for `Avx2Fma`, which is only selected (or
                    // passed by tests) after `is_x86_feature_detected!`
                    // verified avx2+fma.
                    unsafe { kernel(&tile, out_rows) };
                    i0 += rows;
                }
            }
            ib0 = ib1;
        }
        kc0 = kc1;
    }
}

/// f32 axpy signature: `out_row += av · b_row`, one fused multiply–add
/// per element. `unsafe fn` for the same feature-gating reason as
/// [`F32TileFn`].
type F32AxpyFn = unsafe fn(f32, &[f32], &mut [f32]);

fn f32_axpy_for(level: SimdLevel) -> F32AxpyFn {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => f32_axpy_avx2,
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2Fma => f32_axpy_scalar,
        SimdLevel::Scalar => f32_axpy_scalar,
    }
}

/// Portable f32 axpy: `out[j] = fma(av, b[j], out[j])` — the same
/// correctly-rounded operation as one `vfmadd` lane, so both levels are
/// bit-identical.
fn f32_axpy_scalar(av: f32, b_row: &[f32], out_row: &mut [f32]) {
    for (o, &bv) in out_row.iter_mut().zip(b_row) {
        *o = <f32 as Num>::fused_mul_add(*o, av, bv);
    }
}

/// AVX2/FMA f32 axpy: broadcast `av` once, fused multiply–add over
/// 8-lane groups with a `mul_add` scalar tail (the identical operation
/// per lane — see [`f32_axpy_scalar`]).
///
/// # Safety
///
/// Caller must have verified `avx2` and `fma` are available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn f32_axpy_avx2(av: f32, b_row: &[f32], out_row: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = out_row.len().min(b_row.len());
    let avv = _mm256_set1_ps(av);
    let bp = b_row.as_ptr();
    let op = out_row.as_mut_ptr();
    let mut j = 0;
    while j + 8 <= n {
        let b = _mm256_loadu_ps(bp.add(j));
        let o = _mm256_loadu_ps(op.add(j));
        _mm256_storeu_ps(op.add(j), _mm256_fmadd_ps(avv, b, o));
        j += 8;
    }
    while j < n {
        *op.add(j) = av.mul_add(*bp.add(j), *op.add(j));
        j += 1;
    }
}

/// Broadcast-FMA `ikj`-chain f32 GEMM over a contiguous row range, on
/// **unpacked** `B` (row-major, `kk × n`). Zero the output, then walk `k`
/// outermost: each live `A` word contributes one axpy of its `B` row —
/// exactly the packed kernel's per-element fused chain over `k` ascending
/// (the loop interchange reorders only *between* output elements, never
/// within one element's chain; bit-neutral, see the module docs), with
/// the accumulator round-tripping through `out` between `k` steps
/// (exact). Zero words skip element-wise, and a `B` row whose `A` column
/// is entirely zero is never read at all. `k` outermost means `B` is
/// streamed **sequentially, exactly once** — on the stride-49 projection
/// shape the i-outer order re-walks `B` in page-sized jumps and is
/// memory-latency-bound instead. The `k` loop is additionally tiled by
/// [`IKJ_KB`] (one f32 cache line) with the row loop inside the tile, so
/// each `A` line is loaded once and serves all [`IKJ_KB`] of its `k`
/// values instead of missing per element on large-`kk` column walks, and
/// the per-row [`KP`]-panel masks from the dispatch scan skip dead `A`
/// panels without touching `A` at all — on a ~2%-dense projection matrix
/// most of `A` is never re-read after the scan. Every output element
/// still sees its contributions over `k` ascending (tile-outer,
/// row-middle, `k`-inner), so the interchange stays bit-neutral.
/// Bit-identical for every [`SimdLevel`].
pub fn f32_ikj_rows(
    level: SimdLevel,
    a_rows: &[f32],
    masks: &[u64],
    b: &[f32],
    out_rows: &mut [f32],
    kk: usize,
    n: usize,
) {
    let m = a_rows.len().checked_div(kk).unwrap_or(0);
    let (_, wpr) = mask_geometry(kk);
    debug_assert_eq!(out_rows.len(), m * n);
    debug_assert_eq!(b.len(), kk * n);
    debug_assert_eq!(masks.len(), m * wpr);
    out_rows.fill(0.0);
    match level {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the kernel table only selects Avx2Fma after verifying
        // the features (see `f32_rows`); lengths were just asserted.
        SimdLevel::Avx2Fma => unsafe {
            f32_ikj_rows_avx2(a_rows, masks, wpr, b, out_rows, m, kk, n)
        },
        _ => {
            for kb in (0..kk).step_by(IKJ_KB) {
                let kend = (kb + IKJ_KB).min(kk);
                f32_ikj_tile_scalar(
                    a_rows,
                    masks,
                    wpr,
                    &b[kb * n..kend * n],
                    out_rows,
                    m,
                    kk,
                    n,
                    kb,
                    kend,
                );
            }
        }
    }
}

/// One `k`-tile of [`f32_ikj_rows`]'s portable nest: `btile` holds rows
/// `kb..kend` of the (possibly virtual) `B` operand, row `k` at offset
/// `(k − kb)·n` — the streamed-lowering driver points this at its
/// on-demand row buffer. Accumulates into `out_rows` without zeroing;
/// callers zero once before the first tile.
#[allow(clippy::too_many_arguments)]
fn f32_ikj_tile_scalar(
    a_rows: &[f32],
    masks: &[u64],
    wpr: usize,
    btile: &[f32],
    out_rows: &mut [f32],
    m: usize,
    kk: usize,
    n: usize,
    kb: usize,
    kend: usize,
) {
    for i in 0..m {
        let mrow = &masks[i * wpr..(i + 1) * wpr];
        let mut k = kb;
        while k < kend {
            let p = k / KP;
            let pend = (p * KP + KP).min(kend);
            if mask_hit(mrow, p) {
                k = pend;
                continue;
            }
            while k < pend {
                let av = a_rows[i * kk + k];
                if av != 0.0 {
                    let b_row = &btile[(k - kb) * n..(k - kb + 1) * n];
                    f32_axpy_scalar(av, b_row, &mut out_rows[i * n..(i + 1) * n]);
                }
                k += 1;
            }
        }
    }
}

/// `k`-tile width for the ikj kernels: 16 f32 / 32 `Fx` words — one
/// 64-byte cache line of `A` per row per tile for f32, and a whole number
/// of [`KP`]-panels so mask skips never straddle a tile. Shared with the
/// streamed-lowering driver (`gemm::broadcast_streamed`) so its on-demand
/// `B` row buffer covers exactly one tile.
pub(crate) const IKJ_KB: usize = 16;

/// The fused AVX2/FMA form of [`f32_ikj_rows`]'s loop nest: the axpy
/// body inlined into the tiled `k`/`i` walk, so the hot path pays no
/// per-live-element indirect call or slice construction. Same operations
/// in the same order as the scalar nest — bit-identical.
///
/// # Safety
///
/// Caller must have verified `avx2` and `fma` are available, and that
/// `a_rows.len() == m·kk`, `b.len() == kk·n`, `out_rows.len() == m·n`,
/// `masks.len() == m·wpr` with `wpr = mask_geometry(kk).1`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn f32_ikj_rows_avx2(
    a_rows: &[f32],
    masks: &[u64],
    wpr: usize,
    b: &[f32],
    out_rows: &mut [f32],
    m: usize,
    kk: usize,
    n: usize,
) {
    let mut kb = 0;
    while kb < kk {
        let kend = (kb + IKJ_KB).min(kk);
        f32_ikj_tile_avx2(
            a_rows,
            masks,
            wpr,
            &b[kb * n..kend * n],
            out_rows,
            m,
            kk,
            n,
            kb,
            kend,
        );
        kb = kend;
    }
}

/// The fused AVX2/FMA form of [`f32_ikj_tile_scalar`]: one `k`-tile over
/// `btile` (row `k` at offset `(k − kb)·n`), the axpy body inlined so the
/// hot path pays no per-live-element indirect call or slice construction.
/// Same operations in the same order as the scalar tile — bit-identical.
/// Accumulates; callers zero `out_rows` once before the first tile.
///
/// # Safety
///
/// Caller must have verified `avx2` and `fma` are available, and that
/// `a_rows.len() == m·kk`, `btile.len() == (kend − kb)·n`,
/// `out_rows.len() == m·n`, `masks.len() == m·wpr` with
/// `wpr = mask_geometry(kk).1`, `kb ≤ kend ≤ kk`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn f32_ikj_tile_avx2(
    a_rows: &[f32],
    masks: &[u64],
    wpr: usize,
    btile: &[f32],
    out_rows: &mut [f32],
    m: usize,
    kk: usize,
    n: usize,
    kb: usize,
    kend: usize,
) {
    use std::arch::x86_64::*;
    let ap = a_rows.as_ptr();
    let op0 = out_rows.as_mut_ptr();
    for i in 0..m {
        let mrow = &masks[i * wpr..(i + 1) * wpr];
        let arow = ap.add(i * kk);
        let op = op0.add(i * n);
        // Liveness-aware prefetch: live `A` panels land scattered (the
        // column-order walk defeats the hardware prefetcher), so pull
        // the *next* tile's line for this row now — but only when its
        // panels are live; prefetching dead lines would re-create the
        // traffic the mask skip exists to avoid.
        if kend < kk {
            let pn = kend / KP;
            if !mask_hit(mrow, pn)
                || (pn + 1 < wpr * 64 && (pn + 1) * KP < kk && !mask_hit(mrow, pn + 1))
            {
                _mm_prefetch(arow.add(kend) as *const i8, _MM_HINT_T0);
            }
        }
        let mut k = kb;
        while k < kend {
            let p = k / KP;
            let pend = (p * KP + KP).min(kend);
            if mask_hit(mrow, p) {
                k = pend;
                continue;
            }
            while k < pend {
                let av = *arow.add(k);
                k += 1;
                if av == 0.0 {
                    continue;
                }
                let bp = btile.as_ptr().add((k - 1 - kb) * n);
                let avv = _mm256_set1_ps(av);
                let mut j = 0;
                while j + 8 <= n {
                    let bv = _mm256_loadu_ps(bp.add(j));
                    let o = _mm256_loadu_ps(op.add(j));
                    _mm256_storeu_ps(op.add(j), _mm256_fmadd_ps(avv, bv, o));
                    j += 8;
                }
                while j < n {
                    *op.add(j) = av.mul_add(*bp.add(j), *op.add(j));
                    j += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Q8.8 kernels
// ---------------------------------------------------------------------------

const FX_HALF: i32 = 1 << (FRAC_BITS - 1);
const FX_MAX: i32 = i16::MAX as i32;
const FX_MIN: i32 = i16::MIN as i32;

#[inline]
fn fx_clamp(v: i32) -> i32 {
    v.clamp(FX_MIN, FX_MAX)
}

/// One scalar Q8.8 term + saturating accumulate — exactly [`Fx`]'s
/// `Mul` (widen, round to nearest with ties toward +∞, saturate) followed
/// by [`Fx`]'s saturating `Add`.
#[inline]
fn fx_mac(acc: i32, a: i16, b: i16) -> i32 {
    let term = fx_clamp((i32::from(a) * i32::from(b) + FX_HALF) >> FRAC_BITS);
    fx_clamp(acc + term)
}

/// Portable Q8.8 row kernel over one `k`-chunk of one packed column
/// panel, bit-identical to a `k`-ascending chain of scalar [`Fx`]
/// multiply–adds (resumed from `out` across chunks — exact, because the
/// saturated accumulator always fits `i16`).
#[allow(clippy::too_many_arguments)]
fn fx_row_panel_scalar(
    a_chunk: &[i16],
    masks_row: &[u64],
    panel0: usize,
    bchunk: &[i16],
    out: &mut [i16],
    w: usize,
    accumulate: bool,
) {
    let klen = a_chunk.len();
    let mut acc = [0i32; NR_FX];
    if accumulate {
        for (t, &o) in acc[..w].iter_mut().zip(&out[..w]) {
            *t = i32::from(o);
        }
    }
    let n_panels = klen.div_ceil(KP);
    for p in 0..n_panels {
        if mask_hit(masks_row, panel0 + p) {
            continue;
        }
        let k0 = p * KP;
        let k1 = (k0 + KP).min(klen);
        for k in k0..k1 {
            let av = a_chunk[k];
            if av == 0 {
                // A zero operand's term is (0 + half) >> 8 = 0, and a
                // saturating add of 0 is the identity: the skip is exact.
                continue;
            }
            let b_row = &bchunk[k * NR_FX..k * NR_FX + w];
            for (t, &bv) in acc[..w].iter_mut().zip(b_row) {
                *t = fx_mac(*t, av, bv);
            }
        }
    }
    for (o, &v) in out[..w].iter_mut().zip(&acc[..w]) {
        *o = v as i16;
    }
}

/// AVX2 Q8.8 row kernel: 16 `i16` lanes per vector, 2 saturating
/// accumulator vectors. Each lane performs exactly the scalar [`Fx`]
/// operation chain, with the i16-native instruction mix:
///
/// * `vpmullw`/`vpmulhw` + interleave reconstruct the exact widened
///   `i32` products (16 at a time, no slow `vpmulld`),
/// * add-half + `vpsrad` is [`Fx`]'s round-to-nearest (ties toward +∞),
/// * `vpackssdw` narrows with **saturation** — exactly the `Mul` clamp —
///   and restores lane order (unpack lo/hi then pack is order-preserving
///   within each 128-bit half),
/// * `vpaddsw` is exactly [`Fx`]'s saturating `Add`, so the accumulator
///   itself stays in i16 lanes (resuming from `out` across `k`-chunks is
///   a plain load).
///
/// # Safety
///
/// Caller must have verified `avx2` is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn fx_row_panel_avx2(
    a_chunk: &[i16],
    masks_row: &[u64],
    panel0: usize,
    bchunk: &[i16],
    out: &mut [i16],
    w: usize,
    accumulate: bool,
) {
    use std::arch::x86_64::*;
    let klen = a_chunk.len();
    let half = _mm256_set1_epi32(FX_HALF);
    let mut acc = [_mm256_setzero_si256(); NR_FX / 16];
    if accumulate {
        if w == NR_FX {
            for (v, a) in acc.iter_mut().enumerate() {
                *a = _mm256_loadu_si256(out.as_ptr().add(v * 16) as *const __m256i);
            }
        } else {
            let mut tmp = [0i16; NR_FX];
            tmp[..w].copy_from_slice(&out[..w]);
            for (v, a) in acc.iter_mut().enumerate() {
                *a = _mm256_loadu_si256(tmp.as_ptr().add(v * 16) as *const __m256i);
            }
        }
    }
    let n_panels = klen.div_ceil(KP);
    for p in 0..n_panels {
        if mask_hit(masks_row, panel0 + p) {
            continue;
        }
        let k0 = p * KP;
        let k1 = (k0 + KP).min(klen);
        for k in k0..k1 {
            // No per-element zero skip here (unlike the scalar kernel):
            // a zero word's term is exactly 0 either way, and a
            // data-dependent branch per `k` costs more in mispredictions
            // than the saved arithmetic on the vector path. Structural
            // zeros are handled at panel granularity by the masks.
            let av = _mm256_set1_epi16(*a_chunk.get_unchecked(k));
            let base = bchunk.as_ptr().add(k * NR_FX);
            for (v, a) in acc.iter_mut().enumerate() {
                let bv = _mm256_loadu_si256(base.add(v * 16) as *const __m256i);
                let lo = _mm256_mullo_epi16(av, bv);
                let hi = _mm256_mulhi_epi16(av, bv);
                // Exact i32 products: lanes 0–3/8–11 and 4–7/12–15.
                let p0 = _mm256_unpacklo_epi16(lo, hi);
                let p1 = _mm256_unpackhi_epi16(lo, hi);
                let t0 = _mm256_srai_epi32::<{ FRAC_BITS as i32 }>(_mm256_add_epi32(p0, half));
                let t1 = _mm256_srai_epi32::<{ FRAC_BITS as i32 }>(_mm256_add_epi32(p1, half));
                let term = _mm256_packs_epi32(t0, t1);
                *a = _mm256_adds_epi16(*a, term);
            }
        }
    }
    if w == NR_FX {
        for (v, a) in acc.iter().enumerate() {
            _mm256_storeu_si256(out.as_mut_ptr().add(v * 16) as *mut __m256i, *a);
        }
    } else {
        let mut tmp = [0i16; NR_FX];
        for (v, a) in acc.iter().enumerate() {
            _mm256_storeu_si256(tmp.as_mut_ptr().add(v * 16) as *mut __m256i, *a);
        }
        out[..w].copy_from_slice(&tmp[..w]);
    }
}

/// Packed Q8.8 GEMM over a contiguous row range (raw-`i16` views of
/// [`Fx`] data), with the same [`KC`]-chunked row loop as [`f32_rows`].
/// Bit-identical to scalar [`Fx`] semantics for every [`SimdLevel`].
pub fn fx_rows(
    level: SimdLevel,
    a_rows: &[i16],
    masks: &[u64],
    packed_b: &[i16],
    out_rows: &mut [i16],
    kk: usize,
    n: usize,
) {
    let m = a_rows.len().checked_div(kk).unwrap_or(0);
    debug_assert_eq!(out_rows.len(), m * n);
    let (_, words_per_row) = mask_geometry(kk);
    let kernel = fx_panel_for(level);
    let n_jp = n.div_ceil(NR_FX);
    let mut kc0 = 0;
    while kc0 < kk {
        let kc1 = (kc0 + KC).min(kk);
        let panel0 = kc0 / KP;
        let mut ib0 = 0;
        while ib0 < m {
            // Same [`MC`] row blocking as [`f32_rows`] (i16 halves the
            // bytes, so the block is even smaller in cache).
            let ib1 = (ib0 + MC).min(m);
            for jp in 0..n_jp {
                let j0 = jp * NR_FX;
                let w = (n - j0).min(NR_FX);
                let base = jp * kk * NR_FX;
                let bchunk = &packed_b[base + kc0 * NR_FX..base + kc1 * NR_FX];
                for i in ib0..ib1 {
                    let a_chunk = &a_rows[i * kk + kc0..i * kk + kc1];
                    let masks_row = &masks[i * words_per_row..(i + 1) * words_per_row];
                    let out = &mut out_rows[i * n + j0..i * n + j0 + w];
                    // SAFETY: as in `f32_rows` — feature-gated kernels are
                    // only resolved for levels whose features were
                    // detected.
                    unsafe { kernel(a_chunk, masks_row, panel0, bchunk, out, w, kc0 > 0) };
                }
            }
            ib0 = ib1;
        }
        kc0 = kc1;
    }
}

/// Q8.8 axpy signature (raw `i16`): `out_row = sat(out_row + round(av ·
/// b_row))` per element — one scalar [`Fx`] multiply–add step.
type FxAxpyFn = unsafe fn(i16, &[i16], &mut [i16]);

fn fx_axpy_for(level: SimdLevel) -> FxAxpyFn {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2Fma => fx_axpy_avx2,
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Avx2Fma => fx_axpy_scalar,
        SimdLevel::Scalar => fx_axpy_scalar,
    }
}

/// Portable Q8.8 axpy: one [`fx_mac`] per element, the accumulator
/// saturated back into `i16` each step (so resuming from memory between
/// `k` steps is exact — the same argument as the packed kernel's chunk
/// round trips).
fn fx_axpy_scalar(av: i16, b_row: &[i16], out_row: &mut [i16]) {
    for (o, &bv) in out_row.iter_mut().zip(b_row) {
        *o = fx_mac(i32::from(*o), av, bv) as i16;
    }
}

/// AVX2 Q8.8 axpy: the identical instruction mix as [`fx_row_panel_avx2`]
/// — `vpmullw`/`vpmulhw` exact widened products, add-half + `vpsrad`
/// rounding, `vpackssdw` saturating narrow, `vpaddsw` saturating
/// accumulate — applied to one unpacked `B` row, with an [`fx_mac`]
/// scalar tail (the same operation per lane).
///
/// # Safety
///
/// Caller must have verified `avx2` is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fx_axpy_avx2(av: i16, b_row: &[i16], out_row: &mut [i16]) {
    use std::arch::x86_64::*;
    let n = out_row.len().min(b_row.len());
    let half = _mm256_set1_epi32(FX_HALF);
    let avv = _mm256_set1_epi16(av);
    let bp = b_row.as_ptr();
    let op = out_row.as_mut_ptr();
    let mut j = 0;
    while j + 16 <= n {
        let bv = _mm256_loadu_si256(bp.add(j) as *const __m256i);
        let acc = _mm256_loadu_si256(op.add(j) as *const __m256i);
        let lo = _mm256_mullo_epi16(avv, bv);
        let hi = _mm256_mulhi_epi16(avv, bv);
        let p0 = _mm256_unpacklo_epi16(lo, hi);
        let p1 = _mm256_unpackhi_epi16(lo, hi);
        let t0 = _mm256_srai_epi32::<{ FRAC_BITS as i32 }>(_mm256_add_epi32(p0, half));
        let t1 = _mm256_srai_epi32::<{ FRAC_BITS as i32 }>(_mm256_add_epi32(p1, half));
        let term = _mm256_packs_epi32(t0, t1);
        _mm256_storeu_si256(op.add(j) as *mut __m256i, _mm256_adds_epi16(acc, term));
        j += 16;
    }
    while j < n {
        *op.add(j) = fx_mac(i32::from(*op.add(j)), av, *bp.add(j)) as i16;
        j += 1;
    }
}

/// Broadcast `ikj`-chain Q8.8 GEMM over a contiguous row range on
/// unpacked `B` (raw-`i16`, row-major `kk × n`): the non-packed
/// counterpart of [`fx_rows`], serving both the [`GemmPath::Ikj`] and
/// [`GemmPath::SmallM`] dispatch paths (byte-identity to scalar [`Fx`]
/// semantics is the only Q8.8 contract, and every order here is the same
/// `k`-ascending saturating chain per output element). `k` outermost
/// streams `B` sequentially exactly once, as in [`f32_ikj_rows`], with
/// the same [`IKJ_KB`]-tiled walk and [`KP`]-panel mask skips so dead `A`
/// panels are never re-read after the dispatch scan; zero `A` words skip
/// element-wise — exact, since a zero operand's term is exactly zero.
pub fn fx_ikj_rows(
    level: SimdLevel,
    a_rows: &[i16],
    masks: &[u64],
    b: &[i16],
    out_rows: &mut [i16],
    kk: usize,
    n: usize,
) {
    let m = a_rows.len().checked_div(kk).unwrap_or(0);
    let (_, wpr) = mask_geometry(kk);
    debug_assert_eq!(out_rows.len(), m * n);
    debug_assert_eq!(b.len(), kk * n);
    debug_assert_eq!(masks.len(), m * wpr);
    let axpy = fx_axpy_for(level);
    out_rows.fill(0);
    for kb in (0..kk).step_by(IKJ_KB) {
        let kend = (kb + IKJ_KB).min(kk);
        fx_ikj_tile(
            axpy,
            a_rows,
            masks,
            wpr,
            &b[kb * n..kend * n],
            out_rows,
            m,
            kk,
            n,
            kb,
            kend,
        );
    }
}

/// One `k`-tile of [`fx_ikj_rows`]'s nest over `btile` (row `k` at offset
/// `(k − kb)·n`) — the Q8.8 counterpart of [`f32_ikj_tile_scalar`],
/// applying the level-resolved axpy per live `A` word. Accumulates;
/// callers zero `out_rows` once before the first tile.
#[allow(clippy::too_many_arguments)]
fn fx_ikj_tile(
    axpy: FxAxpyFn,
    a_rows: &[i16],
    masks: &[u64],
    wpr: usize,
    btile: &[i16],
    out_rows: &mut [i16],
    m: usize,
    kk: usize,
    n: usize,
    kb: usize,
    kend: usize,
) {
    for i in 0..m {
        let mrow = &masks[i * wpr..(i + 1) * wpr];
        let mut k = kb;
        while k < kend {
            let p = k / KP;
            let pend = (p * KP + KP).min(kend);
            if mask_hit(mrow, p) {
                k = pend;
                continue;
            }
            while k < pend {
                let av = a_rows[i * kk + k];
                k += 1;
                if av == 0 {
                    continue;
                }
                let b_row = &btile[(k - 1 - kb) * n..(k - kb) * n];
                // SAFETY: feature-gated kernels are only resolved for levels
                // whose features were detected (see `fx_rows`).
                unsafe { axpy(av, b_row, &mut out_rows[i * n..(i + 1) * n]) };
            }
        }
    }
}

/// One `k`-tile of the broadcast engines for the streamed-lowering driver
/// in [`crate::gemm`]: `btile` is its on-demand row buffer holding rows
/// `kb..kend` of the virtual `B` operand (row `k` at offset `(k − kb)·n`).
/// Dispatches to the same fused/level-resolved tile kernels the in-memory
/// ikj engines run, so streaming changes *where `B` rows come from*, never
/// the per-element operation chain — bit-identity (f32) and byte-identity
/// (Q8.8) with the materialized paths follow from the tile kernels being
/// literally shared. Accumulates; zero `out` before the first tile.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ikj_tile_packed<T: Num>(
    kind: PackedKind,
    a: &[T],
    masks: &[u64],
    btile: &[T],
    out: &mut [T],
    kk: usize,
    n: usize,
    kb: usize,
    kend: usize,
) {
    let m = a.len().checked_div(kk).unwrap_or(0);
    let (_, wpr) = mask_geometry(kk);
    debug_assert_eq!(masks.len(), m * wpr);
    debug_assert_eq!(btile.len(), (kend - kb) * n);
    debug_assert_eq!(out.len(), m * n);
    match kind {
        PackedKind::F32 => {
            // SAFETY: `kind` proves `T == f32` (see `plan_gemm`).
            let (af, bf, of) = unsafe {
                (
                    std::slice::from_raw_parts(a.as_ptr() as *const f32, a.len()),
                    std::slice::from_raw_parts(btile.as_ptr() as *const f32, btile.len()),
                    std::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut f32, out.len()),
                )
            };
            match simd_level() {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: the level is only Avx2Fma after feature detection.
                SimdLevel::Avx2Fma => unsafe {
                    f32_ikj_tile_avx2(af, masks, wpr, bf, of, m, kk, n, kb, kend)
                },
                _ => f32_ikj_tile_scalar(af, masks, wpr, bf, of, m, kk, n, kb, kend),
            }
        }
        PackedKind::Fx => {
            // SAFETY: `kind` proves `T == Fx`, `repr(transparent)` over i16.
            let (ai, bi, oi) = unsafe {
                (
                    std::slice::from_raw_parts(a.as_ptr() as *const i16, a.len()),
                    std::slice::from_raw_parts(btile.as_ptr() as *const i16, btile.len()),
                    std::slice::from_raw_parts_mut(out.as_mut_ptr() as *mut i16, out.len()),
                )
            };
            fx_ikj_tile(
                fx_axpy_for(simd_level()),
                ai,
                masks,
                wpr,
                bi,
                oi,
                m,
                kk,
                n,
                kb,
                kend,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-matrix drivers
// ---------------------------------------------------------------------------

/// Runs one dispatch path's f32 engine. Assumes `scratch.masks` was just
/// built for `a`; packs `B` if (and only if) the path needs it.
#[allow(clippy::too_many_arguments)]
fn run_f32_path(
    level: SimdLevel,
    path: GemmPath,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    kk: usize,
    n: usize,
    scratch: &mut PackScratch,
) {
    match path {
        GemmPath::Packed => {
            pack_b::<_, NR_F32>(b, kk, n, &mut scratch.bf32);
            f32_rows(level, a, &scratch.masks, &scratch.bf32, out, kk, n);
        }
        // On materialized `B` the small-`m` path shares the ikj engine (one
        // streamed pass over `B`, no pack — the register tile re-walks `B`
        // once per column strip and loses); SmallM stays a distinct path
        // because the streamed driver in `crate::gemm` keys the
        // fill-row-on-demand lowering off it.
        GemmPath::Ikj | GemmPath::SmallM => f32_ikj_rows(level, a, &scratch.masks, b, out, kk, n),
    }
}

/// Dispatch-routed f32 GEMM at `level`: scans `A`, picks the engine via
/// [`choose_path`] (or the forced override) and runs it. Returns
/// `(skipped, visited)` operand-word counts — pure functions of `a` and
/// the shape (thread- and SIMD-invariant).
#[allow(clippy::too_many_arguments)]
pub fn matmul_f32_at(
    level: SimdLevel,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    kk: usize,
    n: usize,
    scratch: &mut PackScratch,
) -> (u64, u64) {
    let (skipped, zeros) = build_masks(a, m, kk, &mut scratch.masks);
    let path = dispatch_path(m, kk, n, zeros);
    run_f32_path(level, path, a, b, out, kk, n, scratch);
    (skipped, (m * kk) as u64)
}

/// f32 GEMM through one **explicit** dispatch path (ignores both
/// [`choose_path`] and the forced override) — the bit-equality proptests
/// and the shape benches pin each engine against the others through this
/// entry. Every path is correct for every shape.
#[allow(clippy::too_many_arguments)]
pub fn matmul_f32_path(
    level: SimdLevel,
    path: GemmPath,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    kk: usize,
    n: usize,
    scratch: &mut PackScratch,
) -> (u64, u64) {
    let (skipped, _) = build_masks(a, m, kk, &mut scratch.masks);
    run_f32_path(level, path, a, b, out, kk, n, scratch);
    (skipped, (m * kk) as u64)
}

/// [`matmul_f32_at`] at the process-selected [`simd_level`].
pub fn matmul_f32(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    kk: usize,
    n: usize,
    scratch: &mut PackScratch,
) -> (u64, u64) {
    matmul_f32_at(simd_level(), a, b, out, m, kk, n, scratch)
}

/// Runs one dispatch path's Q8.8 engine (see [`run_f32_path`]). The two
/// non-packed paths share [`fx_ikj_rows`]: byte-identity to scalar [`Fx`]
/// semantics is the only Q8.8 contract, and both satisfy it.
#[allow(clippy::too_many_arguments)]
fn run_fx_path(
    level: SimdLevel,
    path: GemmPath,
    a: &[i16],
    b: &[i16],
    out: &mut [i16],
    kk: usize,
    n: usize,
    scratch: &mut PackScratch,
) {
    match path {
        GemmPath::Packed => {
            pack_b_i16(b, kk, n, &mut scratch.bi16);
            fx_rows(level, a, &scratch.masks, &scratch.bi16, out, kk, n);
        }
        GemmPath::Ikj | GemmPath::SmallM => fx_ikj_rows(level, a, &scratch.masks, b, out, kk, n),
    }
}

/// Dispatch-routed Q8.8 GEMM at `level` on raw-`i16` views. Returns
/// `(skipped, visited)` as [`matmul_f32_at`].
#[allow(clippy::too_many_arguments)]
pub fn matmul_fx_at(
    level: SimdLevel,
    a: &[i16],
    b: &[i16],
    out: &mut [i16],
    m: usize,
    kk: usize,
    n: usize,
    scratch: &mut PackScratch,
) -> (u64, u64) {
    let a_fx: &[Fx] = fx_view(a);
    let (skipped, zeros) = build_masks(a_fx, m, kk, &mut scratch.masks);
    let path = dispatch_path(m, kk, n, zeros);
    run_fx_path(level, path, a, b, out, kk, n, scratch);
    (skipped, (m * kk) as u64)
}

/// Q8.8 GEMM through one explicit dispatch path (see
/// [`matmul_f32_path`]).
#[allow(clippy::too_many_arguments)]
pub fn matmul_fx_path(
    level: SimdLevel,
    path: GemmPath,
    a: &[i16],
    b: &[i16],
    out: &mut [i16],
    m: usize,
    kk: usize,
    n: usize,
    scratch: &mut PackScratch,
) -> (u64, u64) {
    let a_fx: &[Fx] = fx_view(a);
    let (skipped, _) = build_masks(a_fx, m, kk, &mut scratch.masks);
    run_fx_path(level, path, a, b, out, kk, n, scratch);
    (skipped, (m * kk) as u64)
}

/// [`matmul_fx_at`] at the process-selected [`simd_level`].
pub fn matmul_fx(
    a: &[i16],
    b: &[i16],
    out: &mut [i16],
    m: usize,
    kk: usize,
    n: usize,
    scratch: &mut PackScratch,
) -> (u64, u64) {
    matmul_fx_at(simd_level(), a, b, out, m, kk, n, scratch)
}

/// Reinterprets a raw-`i16` slice as [`Fx`] (`repr(transparent)`).
fn fx_view(raw: &[i16]) -> &[Fx] {
    // SAFETY: `Fx` is `#[repr(transparent)]` over `i16`.
    unsafe { std::slice::from_raw_parts(raw.as_ptr() as *const Fx, raw.len()) }
}

/// Packs a raw-`i16` `B` into [`NR_FX`]-wide panels (monomorphic helper;
/// layout identical to the generic [`pack_b`]).
fn pack_b_i16(b: &[i16], kk: usize, n: usize, out: &mut Vec<i16>) {
    let n_jp = n.div_ceil(NR_FX);
    // Same no-pre-zero strategy and full-width fast path as [`pack_b`].
    out.resize(n_jp * kk * NR_FX, 0);
    for jp in 0..n_jp {
        let j0 = jp * NR_FX;
        let w = (n - j0).min(NR_FX);
        let panel = &mut out[jp * kk * NR_FX..(jp + 1) * kk * NR_FX];
        if w == NR_FX {
            for k in 0..kk {
                let dst: &mut [i16; NR_FX] = (&mut panel[k * NR_FX..(k + 1) * NR_FX])
                    .try_into()
                    .expect("chunk is exactly NR_FX wide");
                let src: &[i16; NR_FX] = b[k * n + j0..k * n + j0 + NR_FX]
                    .try_into()
                    .expect("chunk is exactly NR_FX wide");
                *dst = *src;
            }
        } else {
            for k in 0..kk {
                let dst = &mut panel[k * NR_FX..(k + 1) * NR_FX];
                dst[..w].copy_from_slice(&b[k * n + j0..k * n + j0 + w]);
                dst[w..].fill(0);
            }
        }
    }
}

/// One GEMM's dispatch decision plus the zero-scan statistics it was
/// derived from — everything the caller needs to run row chunks and
/// record telemetry. All fields are pure functions of `A`, the shape and
/// the forced override, so a plan is identical for every thread count and
/// SIMD level.
#[derive(Debug, Clone, Copy)]
pub struct GemmPlan {
    /// The engine every row chunk of this GEMM must run.
    pub path: GemmPath,
    /// Operand words the panel masks elide (the structural-zero
    /// statistic, reported for every path).
    pub skipped: u64,
    /// Total `A` operand words (`m · kk`).
    pub visited: u64,
}

/// Scans `A` into the scratch panel masks and picks the dispatch path —
/// without touching `B` (the streamed lowering driver decides whether `B`
/// needs to be materialized at all based on the returned path). Follow
/// with [`plan_gemm`]-style packing or [`run_plan_rows`] as appropriate.
pub fn scan_gemm<T: Num>(
    a: &[T],
    m: usize,
    kk: usize,
    n: usize,
    scratch: &mut PackScratch,
) -> GemmPlan {
    let (skipped, zeros) = build_masks(a, m, kk, &mut scratch.masks);
    GemmPlan {
        path: dispatch_path(m, kk, n, zeros),
        skipped,
        visited: (m * kk) as u64,
    }
}

/// Shared planning for the blocked/pooled drivers: scans `A`, picks the
/// path and — only when the packed engine won — packs `B` once on the
/// calling thread. The pool workers then run [`run_plan_rows`] over
/// disjoint row chunks against the shared scratch.
pub fn plan_gemm<T: Num>(
    a: &[T],
    b: &[T],
    m: usize,
    kk: usize,
    n: usize,
    kind: PackedKind,
    scratch: &mut PackScratch,
) -> GemmPlan {
    let plan = scan_gemm(a, m, kk, n, scratch);
    if plan.path == GemmPath::Packed {
        match kind {
            PackedKind::F32 => {
                // SAFETY: `kind` is only `F32` when `T == f32`
                // (TypeId-checked by `packed_kind`).
                let bf: &[f32] =
                    unsafe { std::slice::from_raw_parts(b.as_ptr() as *const f32, b.len()) };
                pack_b::<_, NR_F32>(bf, kk, n, &mut scratch.bf32);
            }
            PackedKind::Fx => {
                // SAFETY: `kind` is only `Fx` when `T == Fx`
                // (repr(transparent) over i16).
                let bi: &[i16] =
                    unsafe { std::slice::from_raw_parts(b.as_ptr() as *const i16, b.len()) };
                pack_b_i16(bi, kk, n, &mut scratch.bi16);
            }
        }
    }
    plan
}

/// Runs one planned GEMM's engine at the process-selected level over a
/// contiguous row chunk. `row0` is the absolute first row of the chunk;
/// `b` is the **unpacked** `B` (the packed path reads the panels packed
/// into `scratch` by [`plan_gemm`] instead). Bit-neutral under any row
/// partition: every engine's per-element chain runs along `k`, never
/// across rows.
#[allow(clippy::too_many_arguments)]
pub fn run_plan_rows<T: Num>(
    path: GemmPath,
    a: &[T],
    b: &[T],
    scratch: &PackScratch,
    out_chunk: &mut [T],
    row0: usize,
    kk: usize,
    n: usize,
    kind: PackedKind,
) {
    let rows_here = out_chunk.len().checked_div(n).unwrap_or(0);
    let (_, wpr) = mask_geometry(kk);
    let masks = &scratch.masks[row0 * wpr..(row0 + rows_here) * wpr];
    match kind {
        PackedKind::F32 => {
            // SAFETY: `kind` proves `T == f32` (see `plan_gemm`).
            let (af, bf, of) = unsafe {
                (
                    std::slice::from_raw_parts(a.as_ptr() as *const f32, a.len()),
                    std::slice::from_raw_parts(b.as_ptr() as *const f32, b.len()),
                    std::slice::from_raw_parts_mut(
                        out_chunk.as_mut_ptr() as *mut f32,
                        out_chunk.len(),
                    ),
                )
            };
            let a_rows = &af[row0 * kk..(row0 + rows_here) * kk];
            match path {
                GemmPath::Packed => {
                    f32_rows(simd_level(), a_rows, masks, &scratch.bf32, of, kk, n);
                }
                GemmPath::Ikj | GemmPath::SmallM => {
                    f32_ikj_rows(simd_level(), a_rows, masks, bf, of, kk, n);
                }
            }
        }
        PackedKind::Fx => {
            // SAFETY: `kind` proves `T == Fx`, `repr(transparent)` over i16.
            let (ai, bi, oi) = unsafe {
                (
                    std::slice::from_raw_parts(a.as_ptr() as *const i16, a.len()),
                    std::slice::from_raw_parts(b.as_ptr() as *const i16, b.len()),
                    std::slice::from_raw_parts_mut(
                        out_chunk.as_mut_ptr() as *mut i16,
                        out_chunk.len(),
                    ),
                )
            };
            let a_rows = &ai[row0 * kk..(row0 + rows_here) * kk];
            match path {
                GemmPath::Packed => {
                    fx_rows(simd_level(), a_rows, masks, &scratch.bi16, oi, kk, n);
                }
                GemmPath::Ikj | GemmPath::SmallM => {
                    fx_ikj_rows(simd_level(), a_rows, masks, bi, oi, kk, n);
                }
            }
        }
    }
}

/// `out_row += av · b_row` with the packed family's exact per-element
/// semantics (one fused f32 step / one saturating Q8.8 step per element)
/// at the process-selected level — the inner update of the streamed
/// broadcast driver in [`crate::gemm`], which runs the same `k`-ascending
/// chain as every other engine with `B` rows produced on the fly.
pub fn axpy_packed<T: Num>(kind: PackedKind, av: T, b_row: &[T], out_row: &mut [T]) {
    match kind {
        PackedKind::F32 => {
            // SAFETY: `kind` proves `T == f32` (see `plan_gemm`).
            let (avf, bf, of) = unsafe {
                (
                    std::mem::transmute_copy::<T, f32>(&av),
                    std::slice::from_raw_parts(b_row.as_ptr() as *const f32, b_row.len()),
                    std::slice::from_raw_parts_mut(out_row.as_mut_ptr() as *mut f32, out_row.len()),
                )
            };
            let axpy = f32_axpy_for(simd_level());
            // SAFETY: feature-gated kernels are only resolved for levels
            // whose features were detected.
            unsafe { axpy(avf, bf, of) };
        }
        PackedKind::Fx => {
            // SAFETY: `kind` proves `T == Fx`, `repr(transparent)` over i16.
            let (avi, bi, oi) = unsafe {
                (
                    std::mem::transmute_copy::<T, i16>(&av),
                    std::slice::from_raw_parts(b_row.as_ptr() as *const i16, b_row.len()),
                    std::slice::from_raw_parts_mut(out_row.as_mut_ptr() as *mut i16, out_row.len()),
                )
            };
            let axpy = fx_axpy_for(simd_level());
            // SAFETY: as above.
            unsafe { axpy(avi, bi, oi) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_f32(len: usize, zero_frac: f64, rng: &mut SmallRng) -> Vec<f32> {
        (0..len)
            .map(|_| {
                if rng.gen_range(0.0..1.0) < zero_frac {
                    0.0
                } else {
                    rng.gen_range(-1.0f32..1.0)
                }
            })
            .collect()
    }

    /// Naive fused reference: one `mul_add` chain per element, `k`
    /// ascending — the semantics both levels must hit bit-for-bit.
    fn fused_reference(a: &[f32], b: &[f32], m: usize, kk: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k in 0..kk {
                    acc = a[i * kk + k].mul_add(b[k * n + j], acc);
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn f32_levels_are_bit_identical_and_match_the_fused_chain() {
        let mut rng = SmallRng::seed_from_u64(91);
        for (m, kk, n) in [
            (1, 1, 1),
            (3, 9, 5),
            (17, 70, 65),
            (5, 8, 64),
            (7, 129, 67),
            (3, 700, 70),
        ] {
            let a = random_f32(m * kk, 0.5, &mut rng);
            let b = random_f32(kk * n, 0.1, &mut rng);
            let reference = fused_reference(&a, &b, m, kk, n);
            let mut scratch = PackScratch::new();
            let mut out_s = vec![0.0f32; m * n];
            matmul_f32_at(
                SimdLevel::Scalar,
                &a,
                &b,
                &mut out_s,
                m,
                kk,
                n,
                &mut scratch,
            );
            assert_eq!(reference, out_s, "scalar {m}x{kk}x{n}");
            if detect_level() == SimdLevel::Avx2Fma {
                let mut out_v = vec![0.0f32; m * n];
                matmul_f32_at(
                    SimdLevel::Avx2Fma,
                    &a,
                    &b,
                    &mut out_v,
                    m,
                    kk,
                    n,
                    &mut scratch,
                );
                let same = out_s
                    .iter()
                    .zip(&out_v)
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(same, "avx2 diverged from scalar on {m}x{kk}x{n}");
            }
        }
    }

    #[test]
    fn fx_levels_match_scalar_fx_semantics_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(92);
        for (m, kk, n) in [(1, 1, 1), (4, 9, 5), (9, 33, 40), (3, 8, 32), (2, 300, 33)] {
            // Large magnitudes so saturation actually fires.
            let a: Vec<i16> = (0..m * kk)
                .map(|_| {
                    if rng.gen_range(0.0..1.0) < 0.4 {
                        0
                    } else {
                        rng.gen_range(i16::MIN..=i16::MAX)
                    }
                })
                .collect();
            let b: Vec<i16> = (0..kk * n)
                .map(|_| rng.gen_range(i16::MIN..=i16::MAX))
                .collect();
            // Scalar Fx oracle: k-ascending saturating multiply-add chain.
            let mut reference = vec![0i16; m * n];
            for i in 0..m {
                for j in 0..n {
                    let mut acc = Fx::ZERO;
                    for k in 0..kk {
                        acc += Fx::from_raw(a[i * kk + k]) * Fx::from_raw(b[k * n + j]);
                    }
                    reference[i * n + j] = acc.raw();
                }
            }
            let mut scratch = PackScratch::new();
            for level in [SimdLevel::Scalar, detect_level()] {
                let mut out = vec![0i16; m * n];
                matmul_fx_at(level, &a, &b, &mut out, m, kk, n, &mut scratch);
                assert_eq!(reference, out, "{level:?} {m}x{kk}x{n}");
            }
        }
    }

    #[test]
    fn masks_count_elided_and_zero_words_exactly() {
        // Row of 10 words, KP=8: panel 0 = words 0..8, panel 1 = words 8..10.
        let mut a = vec![0.0f32; 10];
        a[9] = 1.0; // panel 1 live, panel 0 all-zero
        let mut masks = Vec::new();
        let (skipped, zeros) = build_masks(&a, 1, 10, &mut masks);
        assert_eq!(skipped, 8, "only the all-zero panel is elidable");
        assert_eq!(zeros, 9, "every zero word counts toward density");
        assert!(mask_hit(&masks, 0));
        assert!(!mask_hit(&masks, 1));
    }

    #[test]
    fn choose_path_keys_on_shape_and_density() {
        // A single output row with a wide-enough output streams B.
        assert_eq!(choose_path(1, 6272, 100, 0), GemmPath::SmallM);
        // Multi-row dense shapes keep the packed engine even below one
        // register tile of rows — the dense 6×16 tile wins from m = 2 up.
        assert_eq!(choose_path(MR_F32, 100, 128, 0), GemmPath::Packed);
        assert_eq!(choose_path(49, 1600, 128, 0), GemmPath::Packed);
        // Degenerate-kk shapes dodge the pack entirely.
        assert_eq!(choose_path(100, 1, 6272, 0), GemmPath::Ikj);
        assert_eq!(choose_path(100, 3, 6272, 0), GemmPath::Packed);
        // The projection shape: ~98% zeros scattered across panels.
        let total = 49u64 * 4900;
        assert_eq!(
            choose_path(49, 4900, 128, total - 49 * 100),
            GemmPath::Ikj,
            "sparse-A shapes take the element-skipping path"
        );
        // Exactly at the 15/16 threshold the ikj path still wins.
        assert_eq!(choose_path(8, 100, 128, 750), GemmPath::Ikj);
        assert_eq!(choose_path(8, 100, 128, 749), GemmPath::Packed);
        // Narrow outputs can't amortize a broadcast axpy: everything
        // below n = 8 stays packed no matter the shape or density.
        assert_eq!(choose_path(49, 6272, 1, 49 * 6272 - 49), GemmPath::Packed);
        assert_eq!(choose_path(1, 6272, 7, 0), GemmPath::Packed);
        assert_eq!(choose_path(1, 6272, 8, 0), GemmPath::SmallM);
    }

    const ALL_PATHS: [GemmPath; 3] = [GemmPath::Packed, GemmPath::Ikj, GemmPath::SmallM];

    #[test]
    fn f32_paths_are_bit_identical_on_every_level() {
        let mut rng = SmallRng::seed_from_u64(93);
        // Degenerate shapes on purpose: m = 1, m > MR, n < NR, long k.
        for (m, kk, n, zf) in [
            (1, 1, 1, 0.0),
            (1, 700, 100, 0.5),
            (3, 40, 7, 0.9),
            (17, 70, 65, 0.98),
            (7, 129, 67, 0.0),
            (40, 50, 3, 0.3),
        ] {
            let a = random_f32(m * kk, zf, &mut rng);
            let b = random_f32(kk * n, 0.1, &mut rng);
            let reference = fused_reference(&a, &b, m, kk, n);
            let mut scratch = PackScratch::new();
            for path in ALL_PATHS {
                for level in [SimdLevel::Scalar, detect_level()] {
                    let mut out = vec![0.0f32; m * n];
                    matmul_f32_path(level, path, &a, &b, &mut out, m, kk, n, &mut scratch);
                    let same = reference
                        .iter()
                        .zip(&out)
                        .all(|(x, y)| x.to_bits() == y.to_bits());
                    assert!(same, "{path:?} {level:?} diverged on {m}x{kk}x{n}");
                }
            }
        }
    }

    #[test]
    fn fx_paths_match_scalar_fx_semantics_bit_for_bit() {
        let mut rng = SmallRng::seed_from_u64(94);
        for (m, kk, n) in [(1, 1, 1), (1, 300, 33), (4, 9, 5), (9, 33, 40), (8, 40, 3)] {
            let a: Vec<i16> = (0..m * kk)
                .map(|_| {
                    if rng.gen_range(0.0..1.0) < 0.6 {
                        0
                    } else {
                        rng.gen_range(i16::MIN..=i16::MAX)
                    }
                })
                .collect();
            let b: Vec<i16> = (0..kk * n)
                .map(|_| rng.gen_range(i16::MIN..=i16::MAX))
                .collect();
            let mut reference = vec![0i16; m * n];
            for i in 0..m {
                for j in 0..n {
                    let mut acc = Fx::ZERO;
                    for k in 0..kk {
                        acc += Fx::from_raw(a[i * kk + k]) * Fx::from_raw(b[k * n + j]);
                    }
                    reference[i * n + j] = acc.raw();
                }
            }
            let mut scratch = PackScratch::new();
            for path in ALL_PATHS {
                for level in [SimdLevel::Scalar, detect_level()] {
                    let mut out = vec![0i16; m * n];
                    matmul_fx_path(level, path, &a, &b, &mut out, m, kk, n, &mut scratch);
                    assert_eq!(reference, out, "{path:?} {level:?} {m}x{kk}x{n}");
                }
            }
        }
    }

    #[test]
    fn simd_label_matches_level() {
        let label = simd_label();
        match simd_level() {
            SimdLevel::Avx2Fma => assert_eq!(label, "avx2"),
            SimdLevel::Scalar => assert_eq!(label, "scalar"),
        }
    }
}
