//! Q8.8 16-bit fixed point — the accelerator's datapath type.
//!
//! The paper's implementation uses a 16-bit datapath ("the width of data is
//! 16 in our system"); DCGAN activations sit comfortably in `[-8, 8]` after
//! batch normalisation, so an 8.8 split gives enough headroom while keeping a
//! resolution of 1/256. Multiplication accumulates in `i32` and rounds to
//! nearest, saturating at the representable extremes — the standard DSP-slice
//! behaviour the FPGA design relies on.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use crate::num::Num;

/// Number of fractional bits in the representation.
pub const FRAC_BITS: u32 = 8;
const SCALE: f32 = (1 << FRAC_BITS) as f32;

/// A Q8.8 fixed-point number stored in 16 bits.
///
/// # Example
///
/// ```
/// use zfgan_tensor::Fx;
///
/// let a = Fx::from_f32(1.5);
/// let b = Fx::from_f32(-2.0);
/// assert_eq!((a * b).to_f32(), -3.0);
/// assert_eq!((a + b).to_f32(), -0.5);
/// ```
/// `repr(transparent)` lets the packed microkernel reinterpret `&[Fx]`
/// as `&[i16]` for its widened-lane Q8.8 path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Fx(i16);

impl Fx {
    /// The additive identity.
    pub const ZERO: Fx = Fx(0);
    /// The multiplicative identity (`1.0`).
    pub const ONE: Fx = Fx(1 << FRAC_BITS);
    /// Largest representable value (~127.996).
    pub const MAX: Fx = Fx(i16::MAX);
    /// Smallest representable value (−128.0).
    pub const MIN: Fx = Fx(i16::MIN);

    /// Creates a fixed-point value from its raw 16-bit representation.
    pub const fn from_raw(raw: i16) -> Self {
        Fx(raw)
    }

    /// The raw 16-bit representation.
    pub const fn raw(self) -> i16 {
        self.0
    }

    /// Converts from `f32`, rounding to nearest and saturating.
    pub fn from_f32(value: f32) -> Self {
        let scaled = (value * SCALE).round();
        if scaled >= f32::from(i16::MAX) {
            Fx::MAX
        } else if scaled <= f32::from(i16::MIN) {
            Fx::MIN
        } else {
            Fx(scaled as i16)
        }
    }

    /// Converts to `f32` exactly (every `Fx` is representable in `f32`).
    pub fn to_f32(self) -> f32 {
        f32::from(self.0) / SCALE
    }

    fn saturate(wide: i32) -> Self {
        if wide > i32::from(i16::MAX) {
            Fx::MAX
        } else if wide < i32::from(i16::MIN) {
            Fx::MIN
        } else {
            Fx(wide as i16)
        }
    }
}

impl Add for Fx {
    type Output = Fx;

    fn add(self, rhs: Fx) -> Fx {
        Fx::saturate(i32::from(self.0) + i32::from(rhs.0))
    }
}

impl Sub for Fx {
    type Output = Fx;

    fn sub(self, rhs: Fx) -> Fx {
        Fx::saturate(i32::from(self.0) - i32::from(rhs.0))
    }
}

impl Mul for Fx {
    type Output = Fx;

    fn mul(self, rhs: Fx) -> Fx {
        // 16×16→32-bit product carries 2·FRAC_BITS fractional bits; round to
        // nearest (ties toward +∞) when dropping the extra FRAC_BITS.
        let wide = i32::from(self.0) * i32::from(rhs.0);
        let half = 1 << (FRAC_BITS - 1);
        Fx::saturate((wide + half) >> FRAC_BITS)
    }
}

impl Neg for Fx {
    type Output = Fx;

    fn neg(self) -> Fx {
        Fx::saturate(-i32::from(self.0))
    }
}

impl AddAssign for Fx {
    fn add_assign(&mut self, rhs: Fx) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<i16> for Fx {
    fn from(raw: i16) -> Self {
        Fx::from_raw(raw)
    }
}

impl Num for Fx {
    fn zero() -> Self {
        Fx::ZERO
    }

    fn one() -> Self {
        Fx::ONE
    }

    fn from_f32(value: f32) -> Self {
        Fx::from_f32(value)
    }

    fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_values() {
        for v in [-4.0f32, -0.5, 0.0, 0.25, 1.0, 3.75, 100.0] {
            assert_eq!(Fx::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn multiplication_rounds_to_nearest() {
        let a = Fx::from_f32(0.5);
        let b = Fx::from_f32(0.5);
        assert_eq!((a * b).to_f32(), 0.25);
        // 1/256 * 1/2 = 1/512 rounds up to 1/256.
        let tiny = Fx::from_raw(1);
        assert_eq!((tiny * Fx::from_f32(0.5)).raw(), 1);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let big = Fx::from_f32(100.0);
        assert_eq!(big * big, Fx::MAX);
        assert_eq!(-Fx::MIN, Fx::MAX);
        assert_eq!(Fx::MIN + Fx::MIN, Fx::MIN);
    }

    #[test]
    fn from_f32_saturates() {
        assert_eq!(Fx::from_f32(1e6), Fx::MAX);
        assert_eq!(Fx::from_f32(-1e6), Fx::MIN);
    }

    #[test]
    fn num_impl_matches_inherent() {
        assert_eq!(<Fx as Num>::zero(), Fx::ZERO);
        assert_eq!(<Fx as Num>::one(), Fx::ONE);
        assert!(Fx::ZERO.is_zero());
        assert!(!Fx::ONE.is_zero());
    }

    #[test]
    fn display_prints_decimal() {
        assert_eq!(Fx::from_f32(1.5).to_string(), "1.5");
    }
}
