//! Property-based tests of the convolution algebra: linearity, adjointness
//! of forward/backward passes, zero-inserting consistency, and fixed-point
//! saturation invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use zfgan_tensor::zeros::{dilate_kernels, insert_zeros, t_conv_mul_counts};
use zfgan_tensor::{
    s_conv, s_conv_input_grad, t_conv, t_conv_via_zero_insert, ConvGeom, Fmaps, Fx, Kernels,
};

/// Inner product of two equally-shaped feature-map tensors.
fn dot(a: &Fmaps<f64>, b: &Fmaps<f64>) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x * y)
        .sum()
}

/// A random valid geometry with strides 1–3 and kernels 2–5.
fn arb_geom() -> impl Strategy<Value = (ConvGeom, usize)> {
    (1usize..=3, 2usize..=5, 2usize..=5).prop_filter_map(
        "padding must stay below kernel",
        |(stride, k, out)| {
            let in_hw = stride * out;
            ConvGeom::down(in_hw, in_hw, k, k, stride, out, out)
                .ok()
                .map(|g| (g, in_hw))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Convolution is linear: conv(a·x + y) = a·conv(x) + conv(y).
    #[test]
    fn s_conv_is_linear((geom, in_hw) in arb_geom(), a in -3.0f32..3.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let x: Fmaps<f64> = Fmaps::random(2, in_hw, in_hw, 1.0, &mut rng);
        let y: Fmaps<f64> = Fmaps::random(2, in_hw, in_hw, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(3, 2, geom.kh(), geom.kw(), 1.0, &mut rng);
        let combo = {
            let mut c = x.map(|v| f64::from(a) * v);
            c.add_assign(&y);
            c
        };
        let lhs = s_conv(&combo, &k, &geom).unwrap();
        let mut rhs = s_conv(&x, &k, &geom).unwrap().map(|v| f64::from(a) * v);
        rhs.add_assign(&s_conv(&y, &k, &geom).unwrap());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    /// Forward and backward-error passes are adjoint:
    /// ⟨s_conv(x), δ⟩ = ⟨x, s_conv_input_grad(δ)⟩ — the defining property
    /// of a correct backward pass, and the reason `D̄` *is* a T-CONV.
    #[test]
    fn s_conv_and_its_gradient_are_adjoint((geom, in_hw) in arb_geom(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let x: Fmaps<f64> = Fmaps::random(2, in_hw, in_hw, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(3, 2, geom.kh(), geom.kw(), 1.0, &mut rng);
        let y = s_conv(&x, &k, &geom).unwrap();
        let delta: Fmaps<f64> = Fmaps::random(y.channels(), y.height(), y.width(), 1.0, &mut rng);
        let dx = s_conv_input_grad(&delta, &k, &geom, in_hw, in_hw).unwrap();
        let lhs = dot(&y, &delta);
        let rhs = dot(&x, &dx);
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()), "⟨y,δ⟩={lhs} ⟨x,dx⟩={rhs}");
    }

    /// T-CONV direct and via explicit zero-inserting agree for any geometry.
    #[test]
    fn t_conv_zero_insert_equivalence((geom, in_hw) in arb_geom(), seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (oh, ow) = geom.down_out(in_hw, in_hw);
        let x: Fmaps<f64> = Fmaps::random(3, oh, ow, 1.0, &mut rng);
        let k: Kernels<f64> = Kernels::random(3, 2, geom.kh(), geom.kw(), 1.0, &mut rng);
        let a = t_conv(&x, &k, &geom).unwrap();
        let b = t_conv_via_zero_insert(&x, &k, &geom).unwrap();
        prop_assert!(a.max_abs_diff(&b) < 1e-9);
    }

    /// Zero-inserting preserves exactly the original values and adds only
    /// zeros; dilation does the same for kernels.
    #[test]
    fn zero_inserting_is_lossless(stride in 1usize..=4, h in 1usize..=6, w in 1usize..=6, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let x: Fmaps<f64> = Fmaps::random(2, h, w, 1.0, &mut rng);
        let z = insert_zeros(&x, stride);
        for c in 0..2 {
            for y in 0..h {
                for xx in 0..w {
                    prop_assert_eq!(*z.at(c, stride * y, stride * xx), *x.at(c, y, xx));
                }
            }
        }
        let nonzero_budget = x.len() - x.count_zeros();
        prop_assert_eq!(z.len() - z.count_zeros(), nonzero_budget);
        let k: Kernels<f64> = Kernels::random(1, 1, h, w, 1.0, &mut rng);
        let d = dilate_kernels(&k, stride);
        prop_assert_eq!(d.len() - d.count_zeros(), k.len() - k.count_zeros());
    }

    /// The effectual-multiplication census is conserved: counting by output
    /// position (gather) equals counting by input pixel (scatter).
    #[test]
    fn mul_census_gather_equals_scatter((geom, in_hw) in arb_geom()) {
        let (oh, ow) = geom.down_out(in_hw, in_hw);
        let counts = t_conv_mul_counts(&geom, oh, ow);
        // Scatter count: every (input pixel, kernel position) pair whose
        // target lands inside the up-sampled output.
        let (uh, uw) = geom.up_out(oh, ow);
        let s = geom.stride() as i64;
        let (pt, pl) = (geom.pad_top() as i64, geom.pad_left() as i64);
        let mut scatter = 0u64;
        for iy in 0..oh as i64 {
            for ix in 0..ow as i64 {
                for ky in 0..geom.kh() as i64 {
                    for kx in 0..geom.kw() as i64 {
                        let ty = s * iy + ky - pt;
                        let tx = s * ix + kx - pl;
                        if ty >= 0 && tx >= 0 && (ty as usize) < uh && (tx as usize) < uw {
                            scatter += 1;
                        }
                    }
                }
            }
        }
        prop_assert_eq!(counts.effectual, scatter);
    }

    /// Fixed-point arithmetic saturates monotonically: |a ⊕ b| never
    /// exceeds the representable range and ordering of magnitudes survives
    /// scaling by a positive constant.
    #[test]
    fn fixed_point_saturation(a in -200.0f32..200.0, b in -200.0f32..200.0) {
        let fa = Fx::from_f32(a);
        let fb = Fx::from_f32(b);
        for v in [fa + fb, fa * fb, fa - fb, -fa] {
            prop_assert!(v >= Fx::MIN && v <= Fx::MAX);
        }
        // Round-trip error of representable values is bounded by half an LSB.
        if a.abs() < 127.0 {
            prop_assert!((fa.to_f32() - a).abs() <= 1.0 / 512.0 + 1e-6);
        }
    }

    /// Down-then-up spatial round trip holds for every generated geometry.
    #[test]
    fn geometry_round_trip((geom, in_hw) in arb_geom()) {
        let (oh, ow) = geom.down_out(in_hw, in_hw);
        prop_assert_eq!(geom.up_out(oh, ow), (in_hw, in_hw));
    }
}
