//! The Q8.8 fixed-point contract that the vectorized microkernel must
//! honor bit for bit. Each property here pins one edge of the scalar
//! [`Fx`] semantics — saturation at the rail values, round-to-nearest
//! with ties toward +∞ at the ±0.5-LSB boundary, and the *per-step*
//! saturating accumulate (a widened i32 product, narrowed and clamped
//! after every multiply-add, never a wide running sum) — and the final
//! property checks that the packed kernel reproduces exactly that chain
//! at every SIMD level.

use proptest::prelude::*;
use zfgan_tensor::microkernel::{
    matmul_fx_at, matmul_fx_path, simd_level, GemmPath, PackScratch, SimdLevel,
};
use zfgan_tensor::{Fx, FRAC_BITS};

/// The scalar reference for one multiply: widen to i32, add the rounding
/// half, arithmetic-shift (floor), then clamp to the i16 rails.
fn ref_mul(a: i16, b: i16) -> i16 {
    let wide = (i32::from(a) * i32::from(b) + (1 << (FRAC_BITS - 1))) >> FRAC_BITS;
    wide.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16
}

/// The scalar reference for one add: widen, clamp.
fn ref_add(a: i16, b: i16) -> i16 {
    (i32::from(a) + i32::from(b)).clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16
}

/// The per-step saturating dot product — the exact chain the microkernel
/// contract requires (k ascending, saturate after every step).
fn ref_dot(a: &[i16], b: &[i16]) -> i16 {
    let mut acc: i16 = 0;
    for (&x, &y) in a.iter().zip(b) {
        acc = ref_add(acc, ref_mul(x, y));
    }
    acc
}

#[test]
fn rail_products_saturate_instead_of_wrapping() {
    // MIN·MIN exceeds the positive rail; MIN·MAX the negative one. A
    // wrapping implementation would flip the sign on both.
    assert_eq!(Fx::MIN * Fx::MIN, Fx::MAX);
    assert_eq!(Fx::MIN * Fx::MAX, Fx::MIN);
    assert_eq!(Fx::MAX * Fx::MAX, Fx::MAX);
    assert_eq!(Fx::MAX + Fx::MAX, Fx::MAX);
    assert_eq!(Fx::MIN + Fx::MIN, Fx::MIN);
    assert_eq!(-Fx::MIN, Fx::MAX);
}

#[test]
fn half_lsb_ties_round_toward_positive_infinity() {
    // raw 1 × raw 128 = 128/65536 = exactly +0.5 LSB → rounds up to 1.
    assert_eq!((Fx::from_raw(1) * Fx::from_raw(128)).raw(), 1);
    // raw -1 × raw 128 = exactly -0.5 LSB → ties toward +∞ give 0.
    assert_eq!((Fx::from_raw(-1) * Fx::from_raw(128)).raw(), 0);
    // Just past the tie in each direction.
    assert_eq!((Fx::from_raw(1) * Fx::from_raw(129)).raw(), 1);
    assert_eq!((Fx::from_raw(-1) * Fx::from_raw(129)).raw(), -1);
    assert_eq!((Fx::from_raw(1) * Fx::from_raw(127)).raw(), 0);
    assert_eq!((Fx::from_raw(-1) * Fx::from_raw(127)).raw(), 0);
}

#[test]
fn accumulation_saturates_per_step_not_at_the_end() {
    // +rail, +rail, −rail: a wide accumulator would land near +rail, but
    // the per-step chain clamps at MAX first and the subtraction then
    // pulls a full rail off. This asymmetry is the observable difference
    // between the two designs, and the kernel must show it.
    let a = [Fx::MAX.raw(), Fx::MAX.raw(), Fx::MIN.raw()];
    let b = [Fx::ONE.raw(), Fx::ONE.raw(), Fx::ONE.raw()];
    let stepwise = ref_dot(&a, &b);
    assert_eq!(
        stepwise,
        ref_add(i16::MAX, ref_mul(Fx::MIN.raw(), Fx::ONE.raw()))
    );
    let wide: i32 = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| i32::from(ref_mul(x, y)))
        .sum();
    assert_ne!(
        i32::from(stepwise),
        wide,
        "chain must differ from wide sum here"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `Fx` multiply equals widen → +half → floor-shift → clamp for every
    /// raw operand pair, including both rails.
    #[test]
    fn mul_matches_the_widened_rounded_clamped_reference(a in any::<i16>(), b in any::<i16>()) {
        prop_assert_eq!((Fx::from_raw(a) * Fx::from_raw(b)).raw(), ref_mul(a, b));
    }

    /// `Fx` add/sub equal widen → clamp for every raw operand pair.
    #[test]
    fn add_sub_match_the_widened_clamped_reference(a in any::<i16>(), b in any::<i16>()) {
        prop_assert_eq!((Fx::from_raw(a) + Fx::from_raw(b)).raw(), ref_add(a, b));
        let sub = (i32::from(a) - i32::from(b))
            .clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16;
        prop_assert_eq!((Fx::from_raw(a) - Fx::from_raw(b)).raw(), sub);
    }

    /// The packed Q8.8 GEMM is bit-identical to the per-step saturating
    /// reference chain at every SIMD level — full raw range, so the
    /// property covers saturation and rounding inside the kernel, not
    /// just on in-range training data.
    #[test]
    fn packed_fx_gemm_is_bit_identical_to_the_stepwise_chain(
        m in 1usize..=6,
        kk in 1usize..=40,
        n in 1usize..=70,
        raw0 in any::<i16>(),
        raw1 in any::<i16>(),
        seed in any::<u64>(),
    ) {
        // Cheap deterministic fill (xorshift) over the full i16 range,
        // with some exact zeros so the panel-skip masks engage.
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state % 5 == 0 { 0i16 } else { (state >> 16) as i16 }
        };
        let mut a: Vec<i16> = (0..m * kk).map(|_| next()).collect();
        let b: Vec<i16> = (0..kk * n).map(|_| next()).collect();
        // Splice the proptest-drawn raws (often rails under shrinking)
        // into A so edge operands definitely appear.
        a[0] = raw0;
        let last = a.len() - 1;
        a[last] = raw1;

        let mut expect = vec![0i16; m * n];
        for i in 0..m {
            for j in 0..n {
                let row = &a[i * kk..(i + 1) * kk];
                let col: Vec<i16> = (0..kk).map(|k| b[k * n + j]).collect();
                expect[i * n + j] = ref_dot(row, &col);
            }
        }

        let mut scratch = PackScratch::new();
        for level in [simd_level(), SimdLevel::Scalar] {
            let mut out = vec![0i16; m * n];
            matmul_fx_at(level, &a, &b, &mut out, m, kk, n, &mut scratch);
            prop_assert_eq!(&out, &expect, "level {:?} broke the Q8.8 chain", level);
        }
    }

    /// Every dispatch engine of the Q8.8 GEMM — packed panel, broadcast
    /// `ikj` over unpacked rows, and the small-`m` streaming variant —
    /// reproduces the per-step saturating scalar chain byte for byte at
    /// every SIMD level, including degenerate shapes (`m = 1`, all-zero
    /// rows, `n` below one register tile). This is what makes the shape
    /// dispatcher free to choose by cost alone.
    #[test]
    fn every_fx_dispatch_path_matches_the_stepwise_chain(
        m in 1usize..=9,
        kk in 1usize..=40,
        n in 1usize..=70,
        zero_rows in 0usize..=2,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state % 5 == 0 { 0i16 } else { (state >> 16) as i16 }
        };
        let mut a: Vec<i16> = (0..m * kk).map(|_| next()).collect();
        let b: Vec<i16> = (0..kk * n).map(|_| next()).collect();
        // Whole zero rows so the element- and panel-skip branches engage.
        for r in 0..zero_rows.min(m) {
            a[r * kk..(r + 1) * kk].fill(0);
        }

        let mut expect = vec![0i16; m * n];
        for i in 0..m {
            for j in 0..n {
                let row = &a[i * kk..(i + 1) * kk];
                let col: Vec<i16> = (0..kk).map(|k| b[k * n + j]).collect();
                expect[i * n + j] = ref_dot(row, &col);
            }
        }

        let mut scratch = PackScratch::new();
        for level in [simd_level(), SimdLevel::Scalar] {
            for path in [GemmPath::Packed, GemmPath::Ikj, GemmPath::SmallM] {
                let mut out = vec![0i16; m * n];
                matmul_fx_path(level, path, &a, &b, &mut out, m, kk, n, &mut scratch);
                prop_assert_eq!(
                    &out, &expect,
                    "path {:?} at {:?} broke the Q8.8 chain", path, level
                );
            }
        }
    }
}
