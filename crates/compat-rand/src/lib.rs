//! Offline stand-in for the slice of the `rand` crate API this workspace
//! uses: `SmallRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen,
//! gen_range}` over integer and float ranges.
//!
//! The container this repo builds in has no registry access, so external
//! crates are vendored as minimal compat shims (see `crates/compat-*`).
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` family uses — but the exact stream is
//! **not** promised to match upstream `rand`; everything in this repo that
//! cares about determinism seeds its own RNG and compares against itself.

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a value of the "standard" distribution for `T`
    /// (uniform bits for integers, uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a canonical "standard" distribution (the `rand::distributions::Standard` analogue).
pub trait Standard: Sized {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range a value can be drawn from.
///
/// Implemented once, generically, for `Range<T>` and `RangeInclusive<T>`
/// over every [`UniformSampler`] type — a *single* generic impl per range
/// shape, like upstream rand, so type inference can unify an unannotated
/// float literal range (`0.25..0.75`) with how the result is used.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: UniformSampler> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: UniformSampler> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_closed(lo, hi, rng)
    }
}

/// Primitive types that can be drawn uniformly from a range.
pub trait UniformSampler: Sized {
    /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`. Panics if `lo > hi`.
    fn sample_closed<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSampler for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }
            fn sample_closed<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampler for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
            fn sample_closed<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSampler for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng); // [0, 1)
                let v = lo + (hi - lo) * u;
                if v >= hi { lo } else { v }
            }
            fn sample_closed<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng); // [0, 1)
                // Stretch [0,1) over the closed interval; clamp for safety.
                let v = lo + (hi - lo) * u;
                if v > hi { hi } else { v }
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256++ with SplitMix64
    /// key expansion (the construction upstream `SmallRng` uses on
    /// 64-bit targets).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The generator's raw xoshiro256++ state words — everything
        /// needed to resume the stream bit-for-bit (checkpointing).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words captured by
        /// [`SmallRng::state`]. The resumed stream continues exactly
        /// where the captured one left off.
        ///
        /// The all-zero state is xoshiro's degenerate fixed point (the
        /// stream would be constant zero); callers restoring untrusted
        /// state should reject it — [`SmallRng::state`] never returns it
        /// for a generator seeded via `seed_from_u64`.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f32..=2.5);
            assert!((-2.5..=2.5).contains(&y));
            let z = rng.gen_range(0.25..0.75) * 4.0f32;
            assert!((1.0..3.0).contains(&z));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_ranges_cover_more_than_one_value() {
        let mut rng = SmallRng::seed_from_u64(9);
        let vals: Vec<f32> = (0..16).map(|_| rng.gen_range(-1.0f32..=1.0)).collect();
        assert!(vals.iter().any(|v| *v != vals[0]));
    }
}
