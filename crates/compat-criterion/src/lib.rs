//! Offline stand-in for the slice of `criterion` this workspace uses:
//! `Criterion`, `benchmark_group`/`bench_function`, `Bencher::{iter,
//! iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The measurement model is deliberately simple: a short calibration run
//! sizes the iteration count to a fixed measurement window, a warm-up
//! pass primes caches/branch predictors/lazy init, then the window is
//! split into several timed samples so each measurement carries a mean,
//! a min (the least-noisy point estimate on a busy machine) and a
//! standard deviation across samples. There are no HTML reports — the
//! workspace's benches compare alternatives within one process, where
//! these summary statistics are enough signal.
//!
//! Results are also recorded in-process so callers (e.g. the gemm bench)
//! can read back timings via [`Criterion::take_results`] and emit their
//! own JSON summaries.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimisation barrier.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost; the shim re-runs setup per
/// batch regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs (many iterations per setup).
    SmallInput,
    /// Large per-iteration inputs (few iterations per setup).
    LargeInput,
    /// Setup re-runs every iteration.
    PerIteration,
}

/// One recorded measurement: benchmark id → per-iteration time statistics
/// over the sampled measurement window.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function` identifier.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration, over all samples.
    pub mean_ns: f64,
    /// Fastest sample's nanoseconds per iteration (least scheduler noise).
    pub min_ns: f64,
    /// Standard deviation of the per-sample means, in nanoseconds.
    pub stddev_ns: f64,
    /// Total iterations measured across every sample.
    pub iters: u64,
}

/// The benchmark driver (a far smaller cousin of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    measurement_window: Duration,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_window: Duration::from_millis(300),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Shrinks or grows the per-benchmark measurement window.
    pub fn measurement_time(mut self, window: Duration) -> Self {
        self.measurement_window = window;
        self
    }

    /// Starts a named group; benchmark ids become `group/function`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let m = run_bench(&id, self.measurement_window, &mut f);
        self.results.push(m);
        self
    }

    /// Drains every measurement recorded so far (used by benches that
    /// emit their own JSON summary).
    pub fn take_results(&mut self) -> Vec<Measurement> {
        std::mem::take(&mut self.results)
    }
}

/// A named group of benchmarks sharing an id prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let window = self.criterion.measurement_window;
        let m = run_bench(&id, window, &mut f);
        self.criterion.results.push(m);
        self
    }

    /// Ends the group (upstream finalises reports here; the shim has
    /// nothing to flush).
    pub fn finish(self) {}
}

/// Timed samples per benchmark; the measurement window is split evenly
/// across them so mean/min/stddev come from independent timings.
const SAMPLES: u32 = 5;

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, window: Duration, f: &mut F) -> Measurement {
    let mut b = Bencher {
        mode: Mode::Calibrate,
        per_iter_ns: 0.0,
        iters_done: 0,
        window,
    };
    // Calibration pass: run once to find the per-iteration cost…
    f(&mut b);
    // …then a warm-up pass (caches, branch predictors, lazy init, pool
    // spin-up) whose timing is discarded…
    b.mode = Mode::Warmup;
    f(&mut b);
    // …then the timed samples, each sized to an equal share of the
    // measurement window (the calibration estimate is refreshed from the
    // latest sample, so later samples track the warmed-up cost).
    b.mode = Mode::Measure;
    let mut sample_means = Vec::with_capacity(SAMPLES as usize);
    let mut total_iters = 0u64;
    for _ in 0..SAMPLES {
        f(&mut b);
        sample_means.push(b.per_iter_ns);
        total_iters += b.iters_done;
    }
    let mean_ns = sample_means.iter().sum::<f64>() / sample_means.len() as f64;
    let min_ns = sample_means.iter().copied().fold(f64::INFINITY, f64::min);
    let var = sample_means
        .iter()
        .map(|s| (s - mean_ns).powi(2))
        .sum::<f64>()
        / sample_means.len() as f64;
    let m = Measurement {
        id: id.to_string(),
        mean_ns,
        min_ns,
        stddev_ns: var.sqrt(),
        iters: total_iters,
    };
    println!(
        "bench {id:<48} {:>14.1} ns/iter (min {:.1}, sd {:.1}, {} iters)",
        m.mean_ns, m.min_ns, m.stddev_ns, m.iters
    );
    m
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Calibrate,
    Warmup,
    Measure,
}

/// Passed to every benchmark closure; `iter`/`iter_batched` time the
/// routine.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    per_iter_ns: f64,
    iters_done: u64,
    window: Duration,
}

impl Bencher {
    fn target_iters(&self) -> u64 {
        if self.mode == Mode::Calibrate {
            return 1;
        }
        // Warm-up runs one sample's worth of iterations, discarded.
        let per_iter = self.per_iter_ns.max(1.0);
        let sample_ns = self.window.as_nanos() as f64 / f64::from(SAMPLES);
        ((sample_ns / per_iter).ceil() as u64).clamp(1, 1_000_000)
    }

    /// Times `routine` over an adaptively-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.target_iters();
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed().as_nanos() as f64;
        self.per_iter_ns = total / iters as f64;
        self.iters_done = iters;
    }

    /// Times `routine` on fresh inputs from `setup` (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = self.target_iters();
        let mut total_ns = 0.0;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos() as f64;
        }
        self.per_iter_ns = total_ns / iters as f64;
        self.iters_done = iters;
    }
}

/// Declares a named group of benchmark functions, like upstream's simple
/// form: `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. `--bench`); a custom
            // harness is free to ignore them.
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(black_box(i));
        }
        acc
    }

    #[test]
    fn iter_reports_positive_time() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("spin", |b| b.iter(|| spin(1000)));
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        assert!(results[0].mean_ns > 0.0);
        assert!(results[0].iters >= 1);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| {
            b.iter_batched(|| 10u64, spin, BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(c.take_results()[0].id, "g/f");
    }
}
