//! Offline stand-in for the one `crossbeam` API this workspace uses:
//! `crossbeam::thread::scope` with `scope.spawn(|_| …)`.
//!
//! Backed by `std::thread::scope` (stable since Rust 1.63), which provides
//! the same borrow-from-the-stack guarantee; the shim only adapts the call
//! shape (a `Result` return and a `&Scope` argument to every spawned
//! closure).

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// closure (crossbeam's signature; the workspace ignores the argument).
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle
        /// so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all threads are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload if any spawned thread (or `f`
    /// itself) panicked — the same contract as crossbeam's `scope`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6];
        let mut out = [0u64; 6];
        super::thread::scope(|scope| {
            for (o, chunk) in out.chunks_mut(2).zip(data.chunks(2)) {
                scope.spawn(move |_| {
                    for (o, v) in o.iter_mut().zip(chunk) {
                        *o = v * 10;
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(out, [10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
