//! The [`Dataflow`] trait and shared helpers.

use std::fmt;

use serde::{Deserialize, Serialize};
use zfgan_sim::{ConvKind, ConvShape, PhaseStats};

/// Integer ceiling division — tiling maths used by every cycle model.
///
/// # Panics
///
/// Panics if `b` is zero.
#[inline]
pub fn ceil_div(a: u64, b: u64) -> u64 {
    assert!(b > 0, "division by zero tile size");
    a.div_ceil(b)
}

/// Which of the five evaluated architectures a configuration belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchKind {
    /// No-Local-Reuse (Fig. 5a), improved with zero-skipping per the
    /// paper's evaluation methodology.
    Nlr,
    /// Weight-Stationary (Fig. 5b).
    Wst,
    /// Output-Stationary (Fig. 5c).
    Ost,
    /// Zero-Free Output-Stationary — the paper's ST-ARCH design (Fig. 11).
    Zfost,
    /// Zero-Free Weight-Stationary — the paper's W-ARCH design (Fig. 13).
    Zfwst,
}

impl ArchKind {
    /// All five architectures, in the paper's presentation order.
    pub const ALL: [ArchKind; 5] = [
        ArchKind::Nlr,
        ArchKind::Wst,
        ArchKind::Ost,
        ArchKind::Zfost,
        ArchKind::Zfwst,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ArchKind::Nlr => "NLR",
            ArchKind::Wst => "WST",
            ArchKind::Ost => "OST",
            ArchKind::Zfost => "ZFOST",
            ArchKind::Zfwst => "ZFWST",
        }
    }
}

impl fmt::Display for ArchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Publish one scheduled phase to the telemetry layer: a
/// `schedule/<arch>/<conv-kind>` span carrying the deterministic schedule
/// quantities (cycles, MACs, buffer accesses, DRAM bytes, idle-PE cycles,
/// utilization in ppm) plus arch-labelled running counters. No-op when
/// telemetry is off; every `Dataflow::schedule` impl calls this on its
/// result so all five architectures report through one channel.
pub(crate) fn record_schedule(kind: ArchKind, phase: &ConvShape, stats: &PhaseStats) {
    if !zfgan_telemetry::enabled() {
        return;
    }
    let conv = match phase.kind() {
        ConvKind::S => "s_conv",
        ConvKind::T => "t_conv",
        ConvKind::WGradS => "wgrad_s",
        ConvKind::WGradT => "wgrad_t",
    };
    let idle = (stats.cycles * stats.n_pes).saturating_sub(stats.effectual_macs);
    let mut span = zfgan_telemetry::span!("schedule/{}/{conv}", kind.name());
    span.record("cycles", stats.cycles);
    span.record("effectual_macs", stats.effectual_macs);
    span.record("n_pes", stats.n_pes);
    span.record("buffer_accesses", stats.access.total());
    span.record("dram_bytes", stats.dram.total_bytes());
    span.record("idle_pe_cycles", idle);
    span.record("util_ppm", (stats.utilization() * 1e6) as u64);
    let labels: &[(&str, &str)] = &[("arch", kind.name())];
    zfgan_telemetry::count("schedule_phases_total", labels, 1);
    zfgan_telemetry::count("schedule_cycles_total", labels, stats.cycles);
    zfgan_telemetry::count(
        "schedule_effectual_macs_total",
        labels,
        stats.effectual_macs,
    );
    zfgan_telemetry::count(
        "schedule_buffer_accesses_total",
        labels,
        stats.access.total(),
    );
    zfgan_telemetry::count(
        "schedule_dram_bytes_total",
        labels,
        stats.dram.total_bytes(),
    );
    zfgan_telemetry::count("schedule_idle_pe_cycles_total", labels, idle);
}

/// A dataflow architecture: maps a convolution phase onto a PE array and
/// reports the resulting schedule.
///
/// Implementors are *configurations* (an architecture plus its unrolling
/// factors); the same `Ost` type with different factors models the paper's
/// per-phase tuning of Table V.
pub trait Dataflow: fmt::Debug + Send + Sync {
    /// The architecture family.
    fn kind(&self) -> ArchKind;

    /// Number of PEs this configuration instantiates.
    fn n_pes(&self) -> u64;

    /// Schedules one convolution phase, returning cycles, access counts and
    /// PE occupancy.
    fn schedule(&self, phase: &ConvShape) -> PhaseStats;

    /// Schedules a sequence of phases back-to-back on this array.
    fn schedule_all(&self, phases: &[ConvShape]) -> PhaseStats {
        let mut total = PhaseStats {
            n_pes: self.n_pes(),
            ..Default::default()
        };
        for p in phases {
            total = total.merged(self.schedule(p));
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_rounds_up() {
        assert_eq!(ceil_div(10, 5), 2);
        assert_eq!(ceil_div(11, 5), 3);
        assert_eq!(ceil_div(0, 5), 0);
        assert_eq!(ceil_div(1, 1), 1);
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn ceil_div_rejects_zero() {
        let _ = ceil_div(1, 0);
    }

    #[test]
    fn arch_kind_names() {
        assert_eq!(ArchKind::Zfost.to_string(), "ZFOST");
        assert_eq!(ArchKind::ALL.len(), 5);
    }
}
