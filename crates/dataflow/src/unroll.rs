//! Unrolling-strategy search — the methodology behind the paper's Table V.
//!
//! The evaluation gives every architecture the same PE budget and, per
//! computing phase, "different unrolling strategies … to guarantee the
//! lowest idleness". [`UnrollChoice::search`] reproduces that: it enumerates
//! the configuration space of one architecture under a PE budget and picks
//! the configuration minimising total cycles over a set of phases, breaking
//! ties by on-chip accesses.
//!
//! [`PhaseTuned`] bundles one configuration per [`ConvKind`] into a single
//! [`Dataflow`], mirroring the per-phase rows of Table V.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};
use zfgan_sim::{ConvKind, ConvShape, PhaseStats};

use crate::arch::{ArchKind, Dataflow};
use crate::nlr::Nlr;
use crate::ost::Ost;
use crate::wst::Wst;
use crate::zfost::Zfost;
use crate::zfwst::Zfwst;

/// One concrete unrolling decision: architecture + factors.
///
/// `factors` means `(P_if, P_of)` for NLR and `(P_y, P_x, P_of)` for the
/// grid-based architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UnrollChoice {
    /// Which architecture family.
    pub arch: ArchKind,
    /// Grid rows (`P_if` for NLR, `P_ky`/`P_oy` otherwise).
    pub p_y: usize,
    /// Grid columns (1 for NLR).
    pub p_x: usize,
    /// Channel unrolling `P_of`.
    pub p_of: usize,
}

impl UnrollChoice {
    /// Instantiates the configured dataflow.
    pub fn build(&self) -> Box<dyn Dataflow> {
        match self.arch {
            ArchKind::Nlr => Box::new(Nlr::new(self.p_y, self.p_of)),
            ArchKind::Wst => Box::new(Wst::new(self.p_y, self.p_x, self.p_of)),
            ArchKind::Ost => Box::new(Ost::new(self.p_y, self.p_x, self.p_of)),
            ArchKind::Zfost => Box::new(Zfost::new(self.p_y, self.p_x, self.p_of)),
            ArchKind::Zfwst => Box::new(Zfwst::new(self.p_y, self.p_x, self.p_of)),
        }
    }

    /// Number of PEs the choice instantiates.
    pub fn n_pes(&self) -> usize {
        match self.arch {
            ArchKind::Nlr => self.p_y * self.p_of,
            _ => self.p_y * self.p_x * self.p_of,
        }
    }

    /// Searches the unrolling space of `arch` under `pe_budget` PEs for the
    /// configuration minimising total cycles over `phases` (ties broken by
    /// on-chip accesses, then by PE count).
    ///
    /// The grid dimensions range over `1..=max_grid` (the paper's grids stay
    /// ≤ 5×5; the default searches up to 8).
    ///
    /// The search is deterministic, so results are memoized process-wide
    /// by `(arch, budget, phases)`: the figure sweeps re-tune identical
    /// GAN ladders dozens of times, and every repeat is now a map lookup.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or `pe_budget` is zero.
    pub fn search(arch: ArchKind, pe_budget: usize, phases: &[ConvShape]) -> UnrollChoice {
        assert!(!phases.is_empty(), "need at least one phase to tune for");
        assert!(pe_budget > 0, "PE budget must be non-zero");
        let key = (arch, pe_budget, phases.to_vec());
        if let Some(hit) = search_cache().lock().expect("cache lock").get(&key) {
            return *hit;
        }
        let best = Self::search_uncached(arch, pe_budget, phases);
        search_cache().lock().expect("cache lock").insert(key, best);
        best
    }

    /// The actual enumeration behind [`UnrollChoice::search`].
    fn search_uncached(arch: ArchKind, pe_budget: usize, phases: &[ConvShape]) -> UnrollChoice {
        let max_grid = 8usize;
        // Enumerate the candidate space first…
        let mut candidates: Vec<UnrollChoice> = Vec::new();
        match arch {
            ArchKind::Nlr => {
                // The adder tree folding P_if lanes is NLR's defining
                // structure; a degenerate P_if would turn it into a
                // different machine, so the search keeps at least an
                // 8-input tree (the paper uses P_if = 16).
                for p_if in [8usize, 16, 32, 64] {
                    let p_of = pe_budget / p_if;
                    if p_of == 0 {
                        break;
                    }
                    candidates.push(UnrollChoice {
                        arch,
                        p_y: p_if,
                        p_x: 1,
                        p_of,
                    });
                }
            }
            _ => {
                for p_y in 1..=max_grid {
                    for p_x in 1..=max_grid {
                        let p_of = pe_budget / (p_y * p_x);
                        if p_of == 0 {
                            continue;
                        }
                        candidates.push(UnrollChoice {
                            arch,
                            p_y,
                            p_x,
                            p_of,
                        });
                    }
                }
            }
        }
        // …then score them (in parallel when the space is large enough to
        // pay for the threads) and take the deterministic argmin: candidate
        // order breaks exact ties, so the parallel result is identical to a
        // sequential scan.
        let score = |c: &UnrollChoice| -> (u64, u64, usize) {
            let stats = c.build().schedule_all(phases);
            (stats.cycles, stats.access.total(), c.n_pes())
        };
        let keys: Vec<(u64, u64, usize)> = if candidates.len() >= 16 {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2);
            let chunk = candidates.len().div_ceil(threads);
            let mut keys = vec![(0u64, 0u64, 0usize); candidates.len()];
            crossbeam::thread::scope(|scope| {
                for (slot, cand) in keys.chunks_mut(chunk).zip(candidates.chunks(chunk)) {
                    scope.spawn(move |_| {
                        for (k, c) in slot.iter_mut().zip(cand) {
                            *k = score(c);
                        }
                    });
                }
            })
            .expect("search worker panicked");
            keys
        } else {
            candidates.iter().map(score).collect()
        };
        let best = keys
            .iter()
            .enumerate()
            .min_by_key(|(i, k)| (**k, *i))
            .map(|(i, _)| candidates[i])
            .expect("non-empty search space");
        best
    }
}

/// Process-wide memo for [`UnrollChoice::search`], keyed by
/// `(arch, pe_budget, phases)`.
type SearchKey = (ArchKind, usize, Vec<ConvShape>);

fn search_cache() -> &'static Mutex<HashMap<SearchKey, UnrollChoice>> {
    static CACHE: OnceLock<Mutex<HashMap<SearchKey, UnrollChoice>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A per-phase-kind tuned architecture: one [`UnrollChoice`] per
/// [`ConvKind`], dispatched at schedule time — exactly how Table V assigns
/// ZFOST different `P` factors for `D̄w` and `Ḡw`.
#[derive(Debug)]
pub struct PhaseTuned {
    arch: ArchKind,
    n_pes: u64,
    by_kind: BTreeMap<&'static str, (ConvKind, Box<dyn Dataflow>, UnrollChoice)>,
}

impl PhaseTuned {
    /// Tunes `arch` under `pe_budget` separately for each phase kind present
    /// in `phases`.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn tune(arch: ArchKind, pe_budget: usize, phases: &[ConvShape]) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        let mut by_kind = BTreeMap::new();
        for kind in [ConvKind::S, ConvKind::T, ConvKind::WGradS, ConvKind::WGradT] {
            let subset: Vec<ConvShape> = phases
                .iter()
                .filter(|p| p.kind() == kind)
                .copied()
                .collect();
            if subset.is_empty() {
                continue;
            }
            let choice = UnrollChoice::search(arch, pe_budget, &subset);
            by_kind.insert(kind_key(kind), (kind, choice.build(), choice));
        }
        Self {
            arch,
            n_pes: pe_budget as u64,
            by_kind,
        }
    }

    /// The tuned choice for one phase kind, if any phase of that kind was
    /// provided at tuning time.
    pub fn choice(&self, kind: ConvKind) -> Option<UnrollChoice> {
        self.by_kind.get(kind_key(kind)).map(|(_, _, c)| *c)
    }
}

fn kind_key(kind: ConvKind) -> &'static str {
    match kind {
        ConvKind::S => "S",
        ConvKind::T => "T",
        ConvKind::WGradS => "WGradS",
        ConvKind::WGradT => "WGradT",
    }
}

impl Dataflow for PhaseTuned {
    fn kind(&self) -> ArchKind {
        self.arch
    }

    fn n_pes(&self) -> u64 {
        self.n_pes
    }

    fn schedule(&self, phase: &ConvShape) -> PhaseStats {
        let (_, df, _) = self
            .by_kind
            .get(kind_key(phase.kind()))
            .unwrap_or_else(|| panic!("no tuning for phase kind {:?}", phase.kind()));
        let mut stats = df.schedule(phase);
        // Report occupancy against the full budget: unused PEs are idle, not
        // free (the fairness rule of the evaluation).
        stats.n_pes = self.n_pes;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zfgan_tensor::ConvGeom;

    fn dcgan_phases(kind: ConvKind) -> Vec<ConvShape> {
        // The DCGAN discriminator ladder of Table IV (cGAN row).
        let dims = [
            (3usize, 64usize, 64usize),
            (64, 128, 32),
            (128, 256, 16),
            (256, 512, 8),
        ];
        dims.iter()
            .map(|&(large, small, lhw)| {
                let geom = ConvGeom::down(lhw, lhw, 4, 4, 2, lhw / 2, lhw / 2).unwrap();
                ConvShape::new(kind, geom, small, large, lhw, lhw)
            })
            .collect()
    }

    #[test]
    fn zfost_search_picks_4x4_grid_for_st_phases() {
        // Table V: ZFOST ST-ARCH picks P_ox=4, P_oy=4, P_of=75 — the
        // minimum output feature map of DCGAN is 4×4.
        let choice = UnrollChoice::search(ArchKind::Zfost, 1200, &dcgan_phases(ConvKind::S));
        assert_eq!((choice.p_y, choice.p_x), (4, 4), "{choice:?}");
        assert_eq!(choice.p_of, 75);
    }

    #[test]
    fn zfwst_search_uses_kernel_grid_for_wgrad() {
        // Table V: ZFWST W-ARCH picks P_kx=4, P_ky=4, P_of=30.
        let choice = UnrollChoice::search(ArchKind::Zfwst, 480, &dcgan_phases(ConvKind::WGradS));
        assert!(choice.n_pes() <= 480);
        let zf = choice.build();
        let stats = zf.schedule_all(&dcgan_phases(ConvKind::WGradS));
        // The searched config must not be worse than the paper's.
        let paper = Zfwst::new(4, 4, 30).schedule_all(&dcgan_phases(ConvKind::WGradS));
        assert!(stats.cycles <= paper.cycles);
    }

    #[test]
    fn search_respects_budget() {
        for arch in ArchKind::ALL {
            let c = UnrollChoice::search(arch, 480, &dcgan_phases(ConvKind::S));
            assert!(c.n_pes() <= 480, "{arch:?}: {c:?}");
            assert!(
                c.n_pes() > 240,
                "{arch:?} wastes more than half the budget: {c:?}"
            );
        }
    }

    #[test]
    fn phase_tuned_dispatches_by_kind() {
        let mut phases = dcgan_phases(ConvKind::WGradS);
        phases.extend(dcgan_phases(ConvKind::WGradT));
        let tuned = PhaseTuned::tune(ArchKind::Zfost, 480, &phases);
        assert!(tuned.choice(ConvKind::WGradS).is_some());
        assert!(tuned.choice(ConvKind::WGradT).is_some());
        assert!(tuned.choice(ConvKind::S).is_none());
        let stats = tuned.schedule(&phases[0]);
        assert_eq!(stats.n_pes, 480);
        assert!(stats.cycles > 0);
    }

    #[test]
    #[should_panic(expected = "no tuning")]
    fn phase_tuned_rejects_untuned_kind() {
        let tuned = PhaseTuned::tune(ArchKind::Ost, 480, &dcgan_phases(ConvKind::S));
        let _ = tuned.schedule(&dcgan_phases(ConvKind::T)[0]);
    }

    #[test]
    fn memoized_search_repeats_bit_for_bit() {
        let phases = dcgan_phases(ConvKind::T);
        let first = UnrollChoice::search(ArchKind::Zfost, 1200, &phases);
        for _ in 0..3 {
            assert_eq!(first, UnrollChoice::search(ArchKind::Zfost, 1200, &phases));
        }
        // A different budget is a different key, not a stale hit.
        let other = UnrollChoice::search(ArchKind::Zfost, 480, &phases);
        assert!(other.n_pes() <= 480);
    }

    #[test]
    fn tuned_beats_or_ties_untuned_default() {
        let phases = dcgan_phases(ConvKind::T);
        let searched = UnrollChoice::search(ArchKind::Ost, 1200, &phases).build();
        let naive = Ost::new(8, 8, 18);
        assert!(searched.schedule_all(&phases).cycles <= naive.schedule_all(&phases).cycles);
    }
}
