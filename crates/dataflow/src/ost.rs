//! OST — Output-Stationary (paper Fig. 5c).
//!
//! OST unrolls Loop-2: a `P_oy × P_ox` grid of PEs each owns one output
//! neuron; every cycle one kernel weight is broadcast to the grid and each
//! PE accumulates `weight × its-own-input` locally. `P_of` channel copies
//! run in parallel. Partial sums never leave the PE, so output traffic is
//! one write per finished neuron — OST's defining advantage.
//!
//! The cycle count is set by the kernel feed:
//!
//! ```text
//! cycles(S/T) = ⌈N_oy/P_oy⌉ · ⌈N_ox/P_ox⌉ · ⌈N_of/P_of⌉ · N_if · N_ky · N_kx
//! ```
//!
//! Paper §III-C3's two pathologies appear directly in the model:
//!
//! * **S-CONV breaks input sharing**: with stride 2, neighbouring PEs need
//!   inputs two pixels apart, so the register-shift reuse of Fig. 7(a)
//!   disappears and every PE fetches a fresh input each cycle
//!   (`input_reads = cycles · P_oy · P_ox`).
//! * **T-CONV cannot skip inserted zeros**: all `N_ky × N_kx` kernel
//!   positions are fed even though ~3/4 of the products are ineffectual, so
//!   the cycle count is ~4× the zero-free ideal.
//!
//! For `W-CONV` the grid holds the `K_h × K_w` gradient tile stationary and
//! the *error* operand is fed sequentially — including the inserted zeros of
//! the dilated error kernel in the Discriminator case.

use zfgan_sim::{AccessCounts, ConvKind, ConvShape, PhaseStats};

use crate::arch::{ceil_div, ArchKind, Dataflow};

/// An OST configuration (`P_oy × P_ox` output tile × `P_of` channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ost {
    p_oy: u64,
    p_ox: u64,
    p_of: u64,
}

impl Ost {
    /// Creates an OST array.
    ///
    /// # Panics
    ///
    /// Panics if any factor is zero.
    pub fn new(p_oy: usize, p_ox: usize, p_of: usize) -> Self {
        assert!(
            p_oy > 0 && p_ox > 0 && p_of > 0,
            "unrolling factors must be non-zero"
        );
        Self {
            p_oy: p_oy as u64,
            p_ox: p_ox as u64,
            p_of: p_of as u64,
        }
    }

    /// `(P_oy, P_ox, P_of)`.
    pub fn factors(&self) -> (usize, usize, usize) {
        (self.p_oy as usize, self.p_ox as usize, self.p_of as usize)
    }
}

impl Dataflow for Ost {
    fn kind(&self) -> ArchKind {
        ArchKind::Ost
    }

    fn n_pes(&self) -> u64 {
        self.p_oy * self.p_ox * self.p_of
    }

    fn schedule(&self, phase: &ConvShape) -> PhaseStats {
        let geom = *phase.geom();
        let (kh, kw) = (geom.kh() as u64, geom.kw() as u64);
        let stride = geom.stride() as u64;
        let (sh, sw) = phase.small_hw();
        let (lh, lw) = phase.large_hw();
        let (zh, zw) = geom.zero_inserted(sh, sw);
        let (small, large) = (phase.small() as u64, phase.large() as u64);
        let pairs = small * large;

        let (cycles, group_passes, input_reads_per_sched) = match phase.kind() {
            ConvKind::S => {
                // Surplus channel groups fold over additional spatial tiles
                // when a layer has fewer output maps than P_of.
                let tiles = ceil_div(sh as u64, self.p_oy) * ceil_div(sw as u64, self.p_ox);
                let fold = (self.p_of / small).max(1);
                let groups = ceil_div(small, self.p_of);
                let cycles = ceil_div(tiles, fold) * groups * large * kh * kw;
                // Strided access breaks the register-shift reuse: each PE
                // fetches its own input every cycle.
                (cycles, groups, cycles * self.p_oy * self.p_ox)
            }
            ConvKind::T => {
                let tiles = ceil_div(lh as u64, self.p_oy) * ceil_div(lw as u64, self.p_ox);
                let fold = (self.p_of / large).max(1);
                let groups = ceil_div(large, self.p_of);
                let cycles = ceil_div(tiles, fold) * groups * small * kh * kw;
                // Unit-stride over the zero-inserted map keeps shift reuse,
                // but the zeros are streamed like real data.
                (cycles, groups, small * (zh * zw) as u64 * groups)
            }
            ConvKind::WGradS => {
                // Gradient tile stationary; the dilated error kernel
                // (inserted zeros included) is fed one value per cycle.
                let (dh, dw) = (stride * (sh as u64 - 1) + 1, stride * (sw as u64 - 1) + 1);
                let tiles = ceil_div(kh, self.p_oy) * ceil_div(kw, self.p_ox);
                let groups = ceil_div(pairs, self.p_of);
                let cycles = tiles * groups * dh * dw;
                (cycles, groups, large * (lh * lw) as u64 * groups)
            }
            ConvKind::WGradT => {
                // Error operand is dense; the zero-inserted data operand is
                // what the PEs consume — streamed zeros included.
                let tiles = ceil_div(kh, self.p_oy) * ceil_div(kw, self.p_ox);
                let groups = ceil_div(pairs, self.p_of);
                let cycles = tiles * groups * (lh * lw) as u64;
                (cycles, groups, small * (zh * zw) as u64 * groups)
            }
        };
        let _ = group_passes;

        let stats = PhaseStats {
            cycles,
            effectual_macs: phase.effectual_macs(),
            n_pes: self.n_pes(),
            access: AccessCounts {
                // One kernel value per cycle per channel copy.
                weight_reads: cycles * self.p_of,
                input_reads: input_reads_per_sched,
                // Outputs stay in their PE until complete.
                output_reads: 0,
                output_writes: phase.output_count(),
            },
            dram: Default::default(),
        };
        crate::arch::record_schedule(self.kind(), phase, &stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zfgan_tensor::ConvGeom;

    fn dcgan_l1(kind: ConvKind) -> ConvShape {
        let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        ConvShape::new(kind, geom, 64, 3, 64, 64)
    }

    #[test]
    fn s_conv_is_ost_home_turf() {
        let ost = Ost::new(4, 4, 75);
        let s = ost.schedule(&dcgan_l1(ConvKind::S));
        // 8·8 tiles · 1 group · 3 maps · 16 = 3072 cycles.
        assert_eq!(s.cycles, 3072);
        assert!(s.utilization() > 0.8, "util {}", s.utilization());
    }

    #[test]
    fn t_conv_wastes_three_quarters() {
        let ost = Ost::new(4, 4, 75);
        let s = ost.schedule(&dcgan_l1(ConvKind::T));
        // 16·16 tiles folded 25× over the 3-map output: ⌈256/25⌉ = 11
        // sweeps · 64 maps · 16 kernel feeds; still only ~1/4 of products
        // are effectual because the inserted zeros are streamed.
        assert_eq!(s.cycles, 11 * 64 * 16);
        assert!(s.utilization() < 0.3, "util {}", s.utilization());
    }

    #[test]
    fn s_conv_input_reads_blow_up() {
        let ost = Ost::new(4, 4, 1);
        let s = ost.schedule(&dcgan_l1(ConvKind::S));
        assert_eq!(s.access.input_reads, s.cycles * 16);
        let t = ost.schedule(&dcgan_l1(ConvKind::T));
        // T-CONV keeps shift reuse: far fewer reads per cycle.
        assert!(t.access.input_reads < t.cycles * 4);
    }

    #[test]
    fn wgrad_s_pays_for_dilated_error() {
        let ost = Ost::new(5, 5, 19);
        let s = ost.schedule(&dcgan_l1(ConvKind::WGradS));
        // Dilated error is 63×63; gradient tile 4×4 fits in 5×5.
        assert_eq!(s.cycles, ceil_div(192, 19) * 63 * 63);
        assert!(s.utilization() < 0.25);
    }

    #[test]
    fn outputs_written_exactly_once() {
        let ost = Ost::new(4, 4, 8);
        for kind in [ConvKind::S, ConvKind::T, ConvKind::WGradS, ConvKind::WGradT] {
            let s = ost.schedule(&dcgan_l1(kind));
            assert_eq!(s.access.output_reads, 0, "{kind:?}");
            assert_eq!(
                s.access.output_writes,
                dcgan_l1(kind).output_count(),
                "{kind:?}"
            );
        }
    }
}
