//! Dataflow architectures for GAN convolutions: the paper's baselines
//! (NLR, WST, OST) and its contributions (**ZFOST**, **ZFWST**).
//!
//! Every architecture implements the [`Dataflow`] trait: given a
//! [`ConvShape`](zfgan_sim::ConvShape) phase it produces a
//! [`PhaseStats`](zfgan_sim::PhaseStats) — cycles, effectual MACs, PE count
//! and on-chip access counts. The cycle models are derived from each
//! architecture's loop mapping (documented per module) and are cross-checked
//! two ways:
//!
//! * the [`exec`] module contains *functional executors* for ZFOST and
//!   ZFWST that walk the dataflow tile by tile on real data, producing both
//!   the numerical result (validated against the `zfgan-tensor` golden
//!   reference) and an enumerated cycle count (validated against the
//!   closed-form schedule);
//! * property tests draw random shapes and assert closed-form ↔ enumerated
//!   agreement.
//!
//! The [`unroll`] module reproduces the paper's Table V: given a PE budget
//! and a workload's phases it searches the unrolling space per architecture
//! and per phase kind, exactly the "lowest idleness" tuning methodology of
//! the evaluation section.
//!
//! # Example
//!
//! ```
//! use zfgan_dataflow::{Dataflow, Ost, Zfost};
//! use zfgan_sim::{ConvKind, ConvShape};
//! use zfgan_tensor::ConvGeom;
//!
//! let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32)?;
//! // Generator forward: T-CONV with zero-inserted input.
//! let phase = ConvShape::new(ConvKind::T, geom, 64, 3, 64, 64);
//! let ost = Ost::new(4, 4, 75);
//! let zfost = Zfost::new(4, 4, 75);
//! // The zero-free dataflow needs ~4× fewer cycles at equal PE count.
//! let speedup = ost.schedule(&phase).cycles as f64 / zfost.schedule(&phase).cycles as f64;
//! assert!(speedup > 3.0);
//! # Ok::<(), zfgan_tensor::ShapeError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod arch;
pub mod exec;
pub use exec::ExecWorkspace;
mod nlr;
mod ost;
mod rs;
pub mod rtl;
pub mod unroll;
mod wst;
mod zfost;
mod zfwst;

pub use arch::{ceil_div, ArchKind, Dataflow};
pub use nlr::Nlr;
pub use ost::Ost;
pub use rs::RowStationary;
pub use unroll::{PhaseTuned, UnrollChoice};
pub use wst::Wst;
pub use zfost::Zfost;
pub use zfwst::Zfwst;
