//! ZFOST — Zero-Free Output-Stationary, the paper's ST-ARCH design
//! (Figs. 11–12).
//!
//! ZFOST keeps OST's output-stationary mapping (`P_oy × P_ox` outputs per
//! channel, `P_of` channels, one kernel weight broadcast per cycle) and adds
//! two mechanisms:
//!
//! 1. **Kernel-feed reordering** (Fig. 12a): weights enter in parity classes
//!    `(even,even), (even,odd), (odd,even), (odd,odd)`. For `S-CONV` this
//!    restores the register-shift temporal reuse of input neurons that the
//!    stride had broken — same cycles as OST, ~`P_oy·P_ox`× fewer input
//!    fetches.
//! 2. **Zero skipping** (Fig. 12b): on zero-inserted operands each parity
//!    class touches only real input pixels, so one pass of `N_ky × N_kx`
//!    feeds completes an `s·P_oy × s·P_ox` output region — "we can calculate
//!    4X output neurons within the same time":
//!
//! ```text
//! cycles(T) = ⌈N_oy/(s·P_oy)⌉ · ⌈N_ox/(s·P_ox)⌉ · ⌈N_of/P_of⌉ · N_if · N_ky·N_kx
//! ```
//!
//! For `W-CONV`, the gradient tile is stationary and only *real* error /
//! data values are streamed (`sh·sw` instead of the dilated/zero-inserted
//! sizes).

use zfgan_sim::{AccessCounts, ConvKind, ConvShape, PhaseStats};

use crate::arch::{ceil_div, ArchKind, Dataflow};

/// A ZFOST configuration (`P_oy × P_ox` output tile × `P_of` channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Zfost {
    p_oy: u64,
    p_ox: u64,
    p_of: u64,
    reorder: bool,
}

impl Zfost {
    /// Creates a ZFOST array.
    ///
    /// # Panics
    ///
    /// Panics if any factor is zero.
    pub fn new(p_oy: usize, p_ox: usize, p_of: usize) -> Self {
        assert!(
            p_oy > 0 && p_ox > 0 && p_of > 0,
            "unrolling factors must be non-zero"
        );
        Self {
            p_oy: p_oy as u64,
            p_ox: p_ox as u64,
            p_of: p_of as u64,
            reorder: true,
        }
    }

    /// Ablation variant: ZFOST *without* the parity kernel-feed reordering
    /// of paper Fig. 12(a). The zero-skip machinery for `S-CONV` input
    /// reuse and the 4× `T-CONV` output coverage both depend on the
    /// reorder, so this variant regresses to OST behaviour on those phases
    /// — quantifying exactly what the reorder buys.
    ///
    /// # Panics
    ///
    /// Panics if any factor is zero.
    pub fn without_reorder(p_oy: usize, p_ox: usize, p_of: usize) -> Self {
        let mut zf = Self::new(p_oy, p_ox, p_of);
        zf.reorder = false;
        zf
    }

    /// Whether the parity kernel-feed reordering is enabled.
    pub fn reorders_kernel_feed(&self) -> bool {
        self.reorder
    }

    /// `(P_oy, P_ox, P_of)`.
    pub fn factors(&self) -> (usize, usize, usize) {
        (self.p_oy as usize, self.p_ox as usize, self.p_of as usize)
    }
}

impl Dataflow for Zfost {
    fn kind(&self) -> ArchKind {
        ArchKind::Zfost
    }

    fn n_pes(&self) -> u64 {
        self.p_oy * self.p_ox * self.p_of
    }

    fn schedule(&self, phase: &ConvShape) -> PhaseStats {
        let geom = *phase.geom();
        let (kh, kw) = (geom.kh() as u64, geom.kw() as u64);
        let stride = geom.stride() as u64;
        let (sh, sw) = phase.small_hw();
        let (lh, lw) = phase.large_hw();
        let (small, large) = (phase.small() as u64, phase.large() as u64);
        let pairs = small * large;

        let (cycles, input_reads) = match phase.kind() {
            ConvKind::S => {
                // When the layer has fewer output maps than P_of channels
                // (the image-sized first/last layers), the surplus channel
                // groups fold over additional spatial tiles.
                let tiles = ceil_div(sh as u64, self.p_oy) * ceil_div(sw as u64, self.p_ox);
                let fold = (self.p_of / small).max(1);
                let groups = ceil_div(small, self.p_of);
                let cycles = ceil_div(tiles, fold) * groups * large * kh * kw;
                // Reordered feed restores shift reuse: each real input is
                // loaded into the register array once per group pass.
                // Without the reorder the stride breaks the shift pattern
                // and every PE fetches its own input each cycle (the OST
                // pathology of paper Fig. 7b).
                let reads = if self.reorder {
                    large * (lh * lw) as u64 * groups
                } else {
                    cycles * self.p_oy * self.p_ox
                };
                (cycles, reads)
            }
            ConvKind::T => {
                // One kernel sweep finishes an (s·P_oy)×(s·P_ox) region —
                // the reorder assigns each parity class its own sweep
                // phase. Without it the region shrinks to P_oy×P_ox and the
                // inserted zeros are multiplied like real data (OST
                // behaviour).
                let region = if self.reorder { stride } else { 1 };
                let tiles = ceil_div(lh as u64, region * self.p_oy)
                    * ceil_div(lw as u64, region * self.p_ox);
                let fold = (self.p_of / large).max(1);
                let groups = ceil_div(large, self.p_of);
                let cycles = ceil_div(tiles, fold) * groups * small * kh * kw;
                // Only real (non-inserted) inputs ever enter the registers.
                (cycles, small * (sh * sw) as u64 * groups)
            }
            ConvKind::WGradS => {
                // Gradient tile stationary; only the sh·sw real error values
                // are fed (zeros in the dilated kernel skipped). Feeding
                // with stride-spaced data breaks the register-shift reuse,
                // so every PE fetches its own input each cycle.
                let tiles = ceil_div(kh, self.p_oy) * ceil_div(kw, self.p_ox);
                let groups = ceil_div(pairs, self.p_of);
                let cycles = tiles * groups * (sh * sw) as u64;
                (cycles, cycles * self.p_oy * self.p_ox)
            }
            ConvKind::WGradT => {
                // Ḡw is ZFOST's blind spot: the inserted zeros live in the
                // *data* operand that pairs with the dense streamed error.
                // A fed error value aligns with real data for only ~1/s² of
                // the stationary gradient positions, and the unit-shift
                // register network cannot re-route stride-spaced data to
                // parity-split PE subsets, so the zeros are not skippable —
                // exactly why the paper assigns Ḡw to ZFWST. The full
                // gradient tile stays resident while the dense error
                // streams.
                let tiles = ceil_div(kh * kw, self.p_oy * self.p_ox);
                let groups = ceil_div(pairs, self.p_of);
                let cycles = tiles * groups * (lh * lw) as u64;
                (
                    cycles,
                    small * (sh * sw) as u64 * ceil_div(large, self.p_of),
                )
            }
        };

        let stats = PhaseStats {
            cycles,
            effectual_macs: phase.effectual_macs(),
            n_pes: self.n_pes(),
            access: AccessCounts {
                weight_reads: cycles * self.p_of,
                input_reads,
                output_reads: 0,
                output_writes: phase.output_count(),
            },
            dram: Default::default(),
        };
        crate::arch::record_schedule(self.kind(), phase, &stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ost::Ost;
    use zfgan_tensor::ConvGeom;

    fn dcgan_l1(kind: ConvKind) -> ConvShape {
        let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        ConvShape::new(kind, geom, 64, 3, 64, 64)
    }

    #[test]
    fn matches_ost_on_s_conv_with_fewer_reads() {
        let zf = Zfost::new(4, 4, 75);
        let ost = Ost::new(4, 4, 75);
        let s_zf = zf.schedule(&dcgan_l1(ConvKind::S));
        let s_ost = ost.schedule(&dcgan_l1(ConvKind::S));
        assert_eq!(s_zf.cycles, s_ost.cycles);
        assert!(s_zf.access.input_reads * 4 <= s_ost.access.input_reads);
    }

    #[test]
    fn t_conv_speedup_is_about_4x() {
        let zf = Zfost::new(4, 4, 75);
        let ost = Ost::new(4, 4, 75);
        let t_zf = zf.schedule(&dcgan_l1(ConvKind::T));
        let t_ost = ost.schedule(&dcgan_l1(ConvKind::T));
        let speedup = t_ost.cycles as f64 / t_zf.cycles as f64;
        assert!((3.5..=4.5).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn t_conv_cycles_closed_form() {
        let zf = Zfost::new(4, 4, 75);
        let s = zf.schedule(&dcgan_l1(ConvKind::T));
        // ⌈64/8⌉² = 64 regions folded 25× over the 3-map output:
        // ⌈64/25⌉ = 3 sweeps · 64 maps · 16 kernel feeds.
        assert_eq!(s.cycles, 3 * 64 * 16);
    }

    #[test]
    fn wgrad_skips_all_inserted_zeros() {
        let zf = Zfost::new(5, 5, 19);
        let ost = Ost::new(5, 5, 19);
        let zf_s = zf.schedule(&dcgan_l1(ConvKind::WGradS));
        let ost_s = ost.schedule(&dcgan_l1(ConvKind::WGradS));
        // 63² dilated feed vs 32² real feed: ~3.9×.
        let speedup = ost_s.cycles as f64 / zf_s.cycles as f64;
        assert!(speedup > 3.5, "speedup {speedup}");
    }

    #[test]
    fn reorder_ablation_quantifies_the_tricks() {
        // Without the parity reorder, S-CONV loses its input reuse (~16×
        // more reads at a 4×4 tile) and T-CONV loses its 4× cycle win.
        let with = Zfost::new(4, 4, 75);
        let without = Zfost::without_reorder(4, 4, 75);
        assert!(with.reorders_kernel_feed());
        assert!(!without.reorders_kernel_feed());
        let s_with = with.schedule(&dcgan_l1(ConvKind::S));
        let s_without = without.schedule(&dcgan_l1(ConvKind::S));
        assert_eq!(
            s_with.cycles, s_without.cycles,
            "reorder does not change S cycles"
        );
        assert!(s_without.access.input_reads >= 4 * s_with.access.input_reads);
        let t_with = with.schedule(&dcgan_l1(ConvKind::T));
        let t_without = without.schedule(&dcgan_l1(ConvKind::T));
        let ratio = t_without.cycles as f64 / t_with.cycles as f64;
        assert!(
            (3.0..=4.5).contains(&ratio),
            "T speedup from reorder: {ratio}"
        );
    }

    #[test]
    fn utilization_is_high_except_on_gw() {
        // With generous channel counts ZFOST keeps PEs busy on S, T and D̄w;
        // Ḡw is its blind spot (zeros in the stationary-side pairing cannot
        // be skipped), which is why the paper assigns Ḡw to ZFWST.
        let geom = ConvGeom::down(16, 16, 4, 4, 2, 8, 8).unwrap();
        let phase = ConvShape::new(ConvKind::S, geom, 64, 32, 16, 16);
        for kind in [ConvKind::S, ConvKind::T, ConvKind::WGradS] {
            let s = Zfost::new(4, 4, 8).schedule(&phase.with_kind(kind));
            assert!(s.utilization() > 0.5, "{kind:?}: util {}", s.utilization());
        }
        let gw = Zfost::new(4, 4, 8).schedule(&phase.with_kind(ConvKind::WGradT));
        assert!(gw.utilization() < 0.35, "Ḡw util {}", gw.utilization());
    }
}
