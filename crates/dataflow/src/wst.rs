//! WST — Weight-Stationary (paper Fig. 5b).
//!
//! WST unrolls Loop-3: a `P_ky × P_kx` grid of PEs holds kernel weights in
//! local registers; every cycle one input neuron is broadcast to the whole
//! grid, and each PE multiplies it with its stationary weight. `P_of`
//! channel copies share the broadcast.
//!
//! Consequences (paper §III-C2):
//!
//! * the cycle count is set by the number of *input* neurons streamed —
//!   including inserted zeros, which WST cannot skip:
//!
//!   ```text
//!   cycles(S/T) = N_if · N_iy · N_ix · ⌈N_of/P_of⌉ · ⌈N_ky/P_ky⌉ · ⌈N_kx/P_kx⌉
//!   ```
//!
//! * PE utilization collapses to `(N_oy·N_ox)/(N_iy·N_ix)` (Eq. 5) whenever
//!   the output is smaller than the input — i.e. on `S-CONV` and `W-CONV`;
//! * partial sums have no stationary home, so every effectual MAC costs an
//!   output-buffer read + write.
//!
//! For `W-CONV` the PE grid holds the `K_h × K_w` gradient accumulators'
//! positions and streams the data operand; the per-pair loop structure is
//! the same, with the error operand fetched per PE.

use zfgan_sim::{AccessCounts, ConvKind, ConvShape, PhaseStats};

use crate::arch::{ceil_div, ArchKind, Dataflow};

/// A WST configuration (`P_ky × P_kx` weight grid × `P_of` channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wst {
    p_ky: u64,
    p_kx: u64,
    p_of: u64,
}

impl Wst {
    /// Creates a WST array.
    ///
    /// # Panics
    ///
    /// Panics if any factor is zero.
    pub fn new(p_ky: usize, p_kx: usize, p_of: usize) -> Self {
        assert!(
            p_ky > 0 && p_kx > 0 && p_of > 0,
            "unrolling factors must be non-zero"
        );
        Self {
            p_ky: p_ky as u64,
            p_kx: p_kx as u64,
            p_of: p_of as u64,
        }
    }

    /// `(P_ky, P_kx, P_of)`.
    pub fn factors(&self) -> (usize, usize, usize) {
        (self.p_ky as usize, self.p_kx as usize, self.p_of as usize)
    }

    fn kernel_passes(&self, kh: u64, kw: u64) -> u64 {
        ceil_div(kh, self.p_ky) * ceil_div(kw, self.p_kx)
    }
}

impl Dataflow for Wst {
    fn kind(&self) -> ArchKind {
        ArchKind::Wst
    }

    fn n_pes(&self) -> u64 {
        self.p_ky * self.p_kx * self.p_of
    }

    fn schedule(&self, phase: &ConvShape) -> PhaseStats {
        let geom = *phase.geom();
        let (kh, kw) = (geom.kh() as u64, geom.kw() as u64);
        let passes = self.kernel_passes(kh, kw);
        let (sh, sw) = phase.small_hw();
        let (lh, lw) = phase.large_hw();
        let (zh, zw) = geom.zero_inserted(sh, sw);
        let (small, large) = (phase.small() as u64, phase.large() as u64);
        let pairs = small * large;

        let cycles = match phase.kind() {
            // Input = large side (no zeros), output groups over small side.
            ConvKind::S => large * (lh * lw) as u64 * ceil_div(small, self.p_of) * passes,
            // Input = zero-inserted small side; zeros are streamed too.
            ConvKind::T => small * (zh * zw) as u64 * ceil_div(large, self.p_of) * passes,
            // Data operand = layer input (large side, real); the per-pair
            // gradient grid is kh×kw; channel groups over the error side.
            ConvKind::WGradS => large * (lh * lw) as u64 * ceil_div(small, self.p_of) * passes,
            // Data operand = zero-inserted small-side activations.
            ConvKind::WGradT => small * (zh * zw) as u64 * ceil_div(large, self.p_of) * passes,
        };

        let e_total = phase.effectual_macs();
        // Whether layer weights (S/T) or the error operand (W-CONV), the
        // stationary set is loaded once per element.
        let stationary_loads = pairs * kh * kw;
        let stats = PhaseStats {
            cycles,
            effectual_macs: e_total,
            n_pes: self.n_pes(),
            access: AccessCounts {
                weight_reads: stationary_loads,
                // One broadcast per cycle, shared by the whole grid.
                input_reads: cycles,
                // No stationary partial sums: every effectual MAC
                // accumulates through the output buffer.
                output_reads: e_total,
                output_writes: e_total,
            },
            dram: Default::default(),
        };
        crate::arch::record_schedule(self.kind(), phase, &stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zfgan_tensor::ConvGeom;

    fn dcgan_l1(kind: ConvKind) -> ConvShape {
        let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        ConvShape::new(kind, geom, 64, 3, 64, 64)
    }

    #[test]
    fn s_conv_utilization_matches_eq5_envelope() {
        // Eq. 5: util ≤ (N_oy·N_ox)/(N_iy·N_ix) = 1/4 for stride 2.
        let wst = Wst::new(4, 4, 4);
        let phase = {
            let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
            ConvShape::new(ConvKind::S, geom, 64, 64, 64, 64)
        };
        let s = wst.schedule(&phase);
        let util = s.utilization();
        assert!((0.2..=0.26).contains(&util), "util {util} should be ≈ 1/4");
    }

    #[test]
    fn t_conv_streams_inserted_zeros() {
        // T-CONV input is the 63×63 zero-inserted map: cycles scale with
        // the naive size, not the 32×32 real one.
        let wst = Wst::new(4, 4, 75);
        let s = wst.schedule(&dcgan_l1(ConvKind::T));
        assert_eq!(s.cycles, 64 * (63 * 63));
    }

    #[test]
    fn oversize_kernel_needs_multiple_passes() {
        let geom = ConvGeom::down(28, 28, 5, 5, 2, 14, 14).unwrap();
        let phase = ConvShape::new(ConvKind::S, geom, 64, 1, 28, 28);
        let small_grid = Wst::new(4, 4, 1).schedule(&phase);
        let full_grid = Wst::new(5, 5, 1).schedule(&phase);
        assert_eq!(small_grid.cycles, 4 * full_grid.cycles);
    }

    #[test]
    fn output_traffic_dominates() {
        // WST's defining cost: psum read+write per MAC.
        let wst = Wst::new(4, 4, 30);
        let s = wst.schedule(&dcgan_l1(ConvKind::WGradS));
        assert_eq!(s.access.output_reads, s.effectual_macs);
        assert_eq!(s.access.output_writes, s.effectual_macs);
        assert!(s.access.total() > 2 * s.effectual_macs);
    }

    #[test]
    fn n_pes_is_grid_times_channels() {
        assert_eq!(Wst::new(5, 5, 48).n_pes(), 1200);
        assert_eq!(Wst::new(4, 4, 30).n_pes(), 480);
    }
}
