//! ZFWST — Zero-Free Weight-Stationary, the paper's W-ARCH design
//! (Fig. 13).
//!
//! ZFWST unrolls Loop-3 like WST, but PEs feed an **adder tree** so the
//! whole `P_ky × P_kx` grid contributes to *one* output neuron per cycle per
//! channel — the natural fit for `W-CONV`, whose four-dimensional output has
//! no cross-input-map accumulation. Only non-zero values are ever made
//! stationary ("we only allocate non-zero kernel weights to PEs") and only
//! non-zero inputs are loaded into the shared register array.
//!
//! For the weight-gradient phases, each `∇W[of][if][ky][kx]` output neuron
//! is a dot product over the `sh·sw` real error (D̄w) or data (Ḡw)
//! positions, folded `P_ky·P_kx` at a time through the adder tree:
//!
//! ```text
//! cycles(W) = ⌈pairs/P_of⌉ · K_h·K_w · ⌈sh·sw / (P_ky·P_kx)⌉
//! ```
//!
//! For `S-CONV`/`T-CONV` (evaluated in Fig. 15 for completeness) the grid
//! holds the layer's kernel — only its non-zero taps for the transposed
//! case — and produces one output neuron per `⌈K_eff/(P_ky·P_kx)⌉` cycles
//! per input map.

use zfgan_sim::{AccessCounts, ConvKind, ConvShape, PhaseStats};

use crate::arch::{ceil_div, ArchKind, Dataflow};

/// A ZFWST configuration (`P_ky × P_kx` stationary grid × `P_of` channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Zfwst {
    p_ky: u64,
    p_kx: u64,
    p_of: u64,
}

impl Zfwst {
    /// Creates a ZFWST array.
    ///
    /// # Panics
    ///
    /// Panics if any factor is zero.
    pub fn new(p_ky: usize, p_kx: usize, p_of: usize) -> Self {
        assert!(
            p_ky > 0 && p_kx > 0 && p_of > 0,
            "unrolling factors must be non-zero"
        );
        Self {
            p_ky: p_ky as u64,
            p_kx: p_kx as u64,
            p_of: p_of as u64,
        }
    }

    /// `(P_ky, P_kx, P_of)`.
    pub fn factors(&self) -> (usize, usize, usize) {
        (self.p_ky as usize, self.p_kx as usize, self.p_of as usize)
    }

    fn grid(&self) -> u64 {
        self.p_ky * self.p_kx
    }
}

impl Dataflow for Zfwst {
    fn kind(&self) -> ArchKind {
        ArchKind::Zfwst
    }

    fn n_pes(&self) -> u64 {
        self.grid() * self.p_of
    }

    fn schedule(&self, phase: &ConvShape) -> PhaseStats {
        let geom = *phase.geom();
        let (kh, kw) = (geom.kh() as u64, geom.kw() as u64);
        let stride = geom.stride() as u64;
        let (sh, sw) = phase.small_hw();
        let (lh, lw) = phase.large_hw();
        let (small, large) = (phase.small() as u64, phase.large() as u64);
        let pairs = small * large;

        let (cycles, passes_per_output, input_reads) = match phase.kind() {
            ConvKind::S => {
                // Full kernel stationary; one output per ⌈k²/grid⌉ cycles
                // per input map.
                let passes = ceil_div(kh * kw, self.grid());
                let groups = ceil_div(small, self.p_of);
                let cycles = groups * (sh * sw) as u64 * large * passes;
                (cycles, passes * large, large * (lh * lw) as u64 * groups)
            }
            ConvKind::T => {
                // Only the ~k²/s² non-zero taps per output parity class are
                // made stationary.
                let eff_kh = ceil_div(kh, stride);
                let eff_kw = ceil_div(kw, stride);
                let passes = ceil_div(eff_kh * eff_kw, self.grid());
                let groups = ceil_div(large, self.p_of);
                let cycles = groups * (lh * lw) as u64 * small * passes;
                (cycles, passes * small, small * (sh * sw) as u64 * groups)
            }
            ConvKind::WGradS | ConvKind::WGradT => {
                // ∇W neuron = dot product over sh·sw real positions, folded
                // grid-wide per cycle.
                let passes = ceil_div((sh * sw) as u64, self.grid());
                let groups = ceil_div(pairs, self.p_of);
                let cycles = groups * kh * kw * passes;
                let reads = match phase.kind() {
                    ConvKind::WGradS => large * (lh * lw) as u64 * ceil_div(small, self.p_of),
                    _ => small * (sh * sw) as u64 * ceil_div(large, self.p_of),
                };
                (cycles, passes, reads)
            }
        };

        // Stationary operand loads: each non-zero stationary value enters a
        // register once per group that uses it.
        let stationary_loads = match phase.kind() {
            ConvKind::S => pairs * kh * kw,
            ConvKind::T => pairs * ceil_div(kh, stride) * ceil_div(kw, stride) * stride * stride,
            // The real error (D̄w) / data values cycle through as the
            // "weights" of the gradient dot products.
            ConvKind::WGradS => small * (sh * sw) as u64,
            ConvKind::WGradT => large * (lh * lw) as u64,
        };
        // Partial sums ping-pong through the ∇W buffer when an output needs
        // more than one pass.
        let outputs = phase.output_count();
        let output_writes = outputs * passes_per_output.max(1);
        let output_reads = outputs * (passes_per_output.max(1) - 1);

        let stats = PhaseStats {
            cycles,
            effectual_macs: phase.effectual_macs(),
            n_pes: self.n_pes(),
            access: AccessCounts {
                weight_reads: stationary_loads,
                input_reads,
                output_reads,
                output_writes,
            },
            dram: Default::default(),
        };
        crate::arch::record_schedule(self.kind(), phase, &stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ost::Ost;
    use crate::zfost::Zfost;
    use zfgan_tensor::ConvGeom;

    fn dcgan_l1(kind: ConvKind) -> ConvShape {
        let geom = ConvGeom::down(64, 64, 4, 4, 2, 32, 32).unwrap();
        ConvShape::new(kind, geom, 64, 3, 64, 64)
    }

    #[test]
    fn wgrad_cycles_closed_form() {
        let zf = Zfwst::new(4, 4, 30);
        let s = zf.schedule(&dcgan_l1(ConvKind::WGradS));
        // ⌈192/30⌉ · 16 · ⌈1024/16⌉ = 7 · 16 · 64 = 7168.
        assert_eq!(s.cycles, 7 * 16 * 64);
        assert!(s.utilization() > 0.85, "util {}", s.utilization());
    }

    #[test]
    fn zfwst_beats_everything_on_weight_gradients() {
        // Paper Fig. 15: ZFWST yields the optimal performance on D̄w/Ḡw.
        let budget_configs: [(Box<dyn crate::Dataflow>, &str); 3] = [
            (Box::new(Zfwst::new(4, 4, 30)), "zfwst"),
            (Box::new(Zfost::new(5, 5, 19)), "zfost"),
            (Box::new(Ost::new(5, 5, 19)), "ost"),
        ];
        for kind in [ConvKind::WGradS, ConvKind::WGradT] {
            let phase = dcgan_l1(kind);
            let zfwst_cycles = budget_configs[0].0.schedule(&phase).cycles;
            for (arch, name) in &budget_configs[1..] {
                assert!(
                    zfwst_cycles <= arch.schedule(&phase).cycles,
                    "{kind:?}: ZFWST ({zfwst_cycles}) should beat {name}"
                );
            }
        }
    }

    #[test]
    fn t_conv_uses_only_nonzero_taps() {
        // 4×4 kernel, stride 2 ⇒ 2×2 effective taps fit a 3×3 grid in one
        // pass.
        let zf = Zfwst::new(3, 3, 133);
        let s = zf.schedule(&dcgan_l1(ConvKind::T));
        // 1 group · 64·64 outputs · 64 maps · 1 pass.
        assert_eq!(s.cycles, 64 * 64 * 64);
    }

    #[test]
    fn multi_pass_outputs_ping_pong_the_buffer() {
        let zf = Zfwst::new(4, 4, 30);
        let s = zf.schedule(&dcgan_l1(ConvKind::WGradS));
        let outputs = dcgan_l1(ConvKind::WGradS).output_count();
        assert_eq!(s.access.output_writes, outputs * 64);
        assert_eq!(s.access.output_reads, outputs * 63);
    }

    #[test]
    fn n_pes_matches_table_v() {
        assert_eq!(Zfwst::new(5, 5, 48).n_pes(), 1200);
        assert_eq!(Zfwst::new(4, 4, 30).n_pes(), 480);
    }
}
